"""Graph specs: name-the-recipe handles for generator-built graphs.

A :class:`GraphSpec` is a tiny picklable value — generator family name
plus the fully-bound call arguments — that deterministically identifies
one generator output.  Every generator in
:mod:`repro.graphs.generators` tags the graphs it returns with their
spec, and :func:`resolve_spec` rebuilds the identical graph from the
tag.

The point is sweep dispatch: shipping a 30-byte spec to a worker process
instead of a pickled ``2m``-entry graph, and memoising resolution
per-process (:data:`_CACHE`), means a 20-cell strategy matrix constructs
each graph **once per worker** instead of once per cell — and the parent
process never serialises the graph at all.  Generators are deterministic
functions of their arguments, so the resolved graph is ``==`` the tagged
original and sweep records stay byte-identical to a serial run.

Hand-built graphs (``PortLabeledGraph(...)``, ``from_networkx``,
``relabel``) carry no spec; sweeps fall back to pickling the graph
itself (cheap now too: CSR-bytes ``__reduce__``).
"""

from __future__ import annotations

import functools
import hashlib
import inspect
from typing import Callable, Dict, NamedTuple, Optional, Tuple

from ..errors import ConfigurationError
from .port_labeled import PortLabeledGraph

__all__ = [
    "GraphSpec",
    "spec_of",
    "resolve_spec",
    "clear_spec_cache",
    "register_family",
    "canonical_spec",
    "canonicalize_spec",
    "graph_fingerprint",
]


class GraphSpec(NamedTuple):
    """A deterministic recipe for one generator-built graph.

    ``family`` is the generator's registered name; ``args`` is the fully
    bound ``(parameter, value)`` tuple (defaults applied), so two calls
    that produce the same graph produce the same spec regardless of how
    the arguments were spelled.
    """

    family: str
    args: Tuple[Tuple[str, object], ...]


#: family name -> generator callable (populated by ``@_tagged`` in
#: :mod:`repro.graphs.generators` at import time).
_REGISTRY: Dict[str, Callable[..., PortLabeledGraph]] = {}

#: Per-process memo: spec -> resolved graph.  In a sweep worker this is
#: exactly the "construct each graph once per worker" cache.  Entries are
#: immutable graphs, safe to share across cells.
_CACHE: Dict[GraphSpec, PortLabeledGraph] = {}


def register_family(name: str, fn: Callable[..., PortLabeledGraph]) -> None:
    """Register ``fn`` as the builder for ``name`` specs."""
    _REGISTRY[name] = fn


def spec_of(graph: PortLabeledGraph) -> Optional[GraphSpec]:
    """The generator spec ``graph`` was built from, or ``None``."""
    return graph._spec


def tagged(fn: Callable[..., PortLabeledGraph]) -> Callable[..., PortLabeledGraph]:
    """Decorator: register a generator and tag its outputs with their spec."""
    sig = inspect.signature(fn)
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        bound = sig.bind(*args, **kwargs)
        bound.apply_defaults()
        graph = fn(*args, **kwargs)
        graph._spec = GraphSpec(name, tuple(bound.arguments.items()))
        return graph

    register_family(name, wrapper)
    return wrapper


def resolve_spec(spec: GraphSpec) -> PortLabeledGraph:
    """Rebuild (or fetch from the per-process memo) the graph for ``spec``."""
    graph = _CACHE.get(spec)
    if graph is None:
        if spec.family not in _REGISTRY:
            # A worker may resolve before anything imported the generators.
            from . import generators  # noqa: F401  (import populates the registry)
        fn = _REGISTRY.get(spec.family)
        if fn is None:
            raise ConfigurationError(f"unknown graph family {spec.family!r}")
        graph = fn(**dict(spec.args))
        _CACHE[spec] = graph
    return graph


def clear_spec_cache() -> None:
    """Drop the per-process memo (tests; long-lived servers with churn)."""
    _CACHE.clear()


def canonicalize_spec(spec: GraphSpec) -> GraphSpec:
    """The fully-bound form of a possibly hand-written spec.

    Binds ``spec.args`` against the generator's signature and applies
    defaults — without building the graph — so a partially-given or
    reordered spec keys identically to the spec a generator would tag
    its output with.  Raises :class:`ConfigurationError` for unknown
    families and unbindable arguments.
    """
    if spec.family not in _REGISTRY:
        from . import generators  # noqa: F401  (import populates the registry)
    fn = _REGISTRY.get(spec.family)
    if fn is None:
        raise ConfigurationError(f"unknown graph family {spec.family!r}")
    try:
        bound = inspect.signature(fn).bind(**dict(spec.args))
    except TypeError as exc:
        raise ConfigurationError(
            f"cannot build graph family {spec.family!r} "
            f"from args {dict(spec.args)!r}: {exc}"
        )
    bound.apply_defaults()
    return GraphSpec(spec.family, tuple(bound.arguments.items()))


# --------------------------------------------------------------------- #
# Canonical forms (content-addressed cache keys)
# --------------------------------------------------------------------- #

def _canonical_value(value):
    """JSON-safe canonical form of one spec argument value.

    Dict keys keep their type via ``repr`` (``1`` vs ``"1"`` must not
    alias to the same content address).
    """
    if isinstance(value, (tuple, list)):
        return [_canonical_value(v) for v in value]
    if isinstance(value, dict):
        return [
            [repr(k), _canonical_value(v)]
            for k, v in sorted(value.items(), key=lambda kv: repr(kv[0]))
        ]
    return value


def canonical_spec(spec: GraphSpec):
    """JSON-safe canonical form of ``spec`` for content-addressed keys.

    Argument order is the generator's signature order (fixed in code),
    and defaults were applied when the spec was bound, so two calls that
    build the same graph canonicalise identically regardless of how the
    arguments were spelled.
    """
    return ["spec", spec.family, [[k, _canonical_value(v)] for k, v in spec.args]]


def graph_fingerprint(graph: PortLabeledGraph):
    """JSON-safe content fingerprint of a graph for cache keys.

    Generator-built graphs fingerprint as their canonical spec — stable
    across processes and machines.  Hand-built graphs (no spec) fall
    back to a SHA-256 over their CSR arrays, so an identical hand-built
    graph still hits the cache.
    """
    spec = spec_of(graph)
    if spec is not None:
        return canonical_spec(spec)
    offsets, dest, in_port = graph.csr()
    h = hashlib.sha256()
    for arr in (offsets, dest, in_port):
        h.update(arr.tobytes())
    return ["csr", graph.n, h.hexdigest()]
