"""Tests for the k <= n robot driver and the schedule ablation."""

import pytest

from repro.byzantine import Adversary
from repro.core import solve_k_robots, solve_theorem3
from repro.errors import ConfigurationError
from repro.graphs import random_connected, ring


class TestKRobots:
    def test_k_equals_n_matches_theorem1_shape(self, rc10):
        rep = solve_k_robots(rc10, k=10, f=4, adversary=Adversary("squatter"))
        assert rep.success
        assert len(rep.settled) == 6  # honest robots

    @pytest.mark.parametrize("k", [1, 3, 7])
    def test_fewer_robots_than_nodes(self, rc10, k):
        rep = solve_k_robots(rc10, k=k, f=0, seed=2)
        assert rep.success
        assert len(set(rep.settled.values())) == k

    def test_byzantine_among_k(self, rc10):
        rep = solve_k_robots(
            rc10, k=6, f=5, adversary=Adversary("ghost_squatter"), start="gathered"
        )
        assert rep.success  # f = k-1: one honest robot, full tolerance

    @pytest.mark.parametrize("strategy", ["squatter", "flag_spammer", "idle", "stalker"])
    def test_strategies(self, rc10, strategy):
        rep = solve_k_robots(rc10, k=7, f=3, adversary=Adversary(strategy, seed=5))
        assert rep.success, rep.violations

    def test_rejects_k_above_n(self, rc10):
        with pytest.raises(ConfigurationError, match="k <= n"):
            solve_k_robots(rc10, k=11)

    def test_rejects_f_at_k(self, rc10):
        with pytest.raises(ConfigurationError):
            solve_k_robots(rc10, k=5, f=5)

    def test_rejects_symmetric_graph(self):
        with pytest.raises(ConfigurationError, match="quotient"):
            solve_k_robots(ring(8), k=4)

    def test_meta_records_k(self, rc10):
        rep = solve_k_robots(rc10, k=4, f=1, adversary=Adversary("idle"))
        assert rep.meta["k"] == 4 and rep.meta["algorithm"] == "k_robots"


class TestScheduleAblation:
    def test_round_robin_correct(self, rc8):
        rep = solve_theorem3(
            rc8, f=3, adversary=Adversary("squatter"), schedule="round_robin"
        )
        assert rep.success, rep.violations

    def test_round_robin_fewer_rounds(self, rc10):
        # At n=8 the two schedules tie at 7 slots; the circle method's
        # advantage appears from n=9 on (11 vs 9 slots at n=10).
        paper = solve_theorem3(rc10, f=4, adversary=Adversary("idle"), schedule="paper")
        rr = solve_theorem3(rc10, f=4, adversary=Adversary("idle"), schedule="round_robin")
        assert paper.success and rr.success
        assert rr.rounds_simulated < paper.rounds_simulated

    def test_same_final_settlement_structure(self, rc8):
        """Both schedules agree on the same majority map, so dispersion
        lands everyone somewhere valid (not necessarily identical nodes —
        tours start from the same root, so in fact they match)."""
        paper = solve_theorem3(rc8, f=2, adversary=Adversary("crash"), seed=4)
        rr = solve_theorem3(
            rc8, f=2, adversary=Adversary("crash"), seed=4, schedule="round_robin"
        )
        assert paper.settled == rr.settled

    def test_unknown_schedule_rejected(self, rc8):
        with pytest.raises(ConfigurationError):
            solve_theorem3(rc8, f=1, schedule="zigzag")

    def test_meta_records_schedule(self, rc8):
        rep = solve_theorem3(rc8, f=1, adversary=Adversary("idle"), schedule="round_robin")
        assert rep.meta["schedule"] == "round_robin"
