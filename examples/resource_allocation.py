#!/usr/bin/env python3
"""Scenario: self-organising workers claiming compute nodes.

The paper's motivation (Section 1): dispersion models "computational
entities sharing resources where sharing one resource is much more
expensive than searching for an unused one" — e.g. service replicas that
must each claim their own host, when some replicas are compromised and
actively lie about which hosts are taken.

We model a rack fabric as a random graph, start all replicas on the
ingress node (a gathered configuration), and compare the paper's two
gathered-start weak-Byzantine algorithms:

* Theorem 3 — tolerates up to ⌊n/2⌋−1 compromised replicas, O(n⁴) rounds.
* Theorem 4 — tolerates up to ⌊n/3⌋−1, but only O(n³) rounds.

Run:  python examples/resource_allocation.py
"""

from repro import Adversary
from repro.analysis import render_table
from repro.core import solve_theorem3, solve_theorem4
from repro.graphs import random_connected

FABRIC_NODES = 10
fabric = random_connected(FABRIC_NODES, seed=42, avg_degree=3.0)

rows = []
for name, solver, f_max in (
    ("Theorem 3 (pairing tournament)", solve_theorem3, FABRIC_NODES // 2 - 1),
    ("Theorem 4 (three groups)", solve_theorem4, FABRIC_NODES // 3 - 1),
):
    for strategy in ("squatter", "false_commander", "random_walker"):
        report = solver(
            fabric, f=f_max, adversary=Adversary(strategy, seed=3), seed=3
        )
        rows.append(
            {
                "algorithm": name,
                "compromised": f_max,
                "attack": strategy,
                "allocated": report.success,
                "rounds": report.rounds_simulated,
            }
        )

print(render_table(rows, title=f"Replica allocation on a {FABRIC_NODES}-node fabric"))

# Every honest replica got a private host in every configuration:
assert all(r["allocated"] for r in rows)

# The paper's trade-off, visible in the measurements: Theorem 4 is the
# faster algorithm, Theorem 3 the more tolerant one.
t3 = min(r["rounds"] for r in rows if "Theorem 3" in r["algorithm"])
t4 = max(r["rounds"] for r in rows if "Theorem 4" in r["algorithm"])
print(f"\nTheorem 4 worst case ({t4} rounds) beats Theorem 3 best case ({t3} rounds): {t4 < t3}")
