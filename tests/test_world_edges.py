"""Edge-case tests for world semantics that protocols lean on."""

import pytest

from repro.graphs import ring
from repro.sim import Move, RunReport, Stay, World, finish_report


class TestBoardsAndMovement:
    def test_messages_prev_read_at_destination_node(self):
        """A robot that moves reads the *destination's* previous board —
        the semantics the token protocol's command pickup relies on."""
        g = ring(4)
        w = World(g)
        heard = []

        def poster(api):  # sits at node 1, posts every round
            while True:
                api.say("beacon")
                yield Stay()

        def mover(api):  # hops from 0 to 1, then listens
            yield Move(1)
            heard.append(api.messages_prev())
            yield Stay()

        w.add_robot(1, 1, poster)
        w.add_robot(2, 0, mover)
        w.step()
        w.step()
        # Round 0: poster posted at node 1; mover moved 0->1.
        # Round 1: mover reads node 1's round-0 board.
        assert heard == [[(1, "beacon")]]

    def test_colocated_sorted_by_claimed_id(self):
        g = ring(4)
        w = World(g)
        seen = []

        def observer(api):
            seen.append([v.claimed_id for v in api.colocated()])
            yield Stay()

        def idle(api):
            while True:
                yield Stay()

        w.add_robot(9, 0, observer)
        w.add_robot(4, 0, idle)
        w.add_robot(7, 0, idle)
        w.step()
        assert seen == [[4, 7]]

    def test_terminated_robot_still_visible(self):
        g = ring(4)
        w = World(g)

        def quick_settler(api):
            api.settle()
            return
            yield  # pragma: no cover

        observed = []

        def late_observer(api):
            yield Stay()
            yield Stay()
            observed.append([(v.claimed_id, v.state) for v in api.colocated()])
            yield Stay()

        w.add_robot(1, 0, quick_settler)
        w.add_robot(2, 0, late_observer)
        for _ in range(3):
            w.step()
        assert observed == [[(1, "Settled")]]

    def test_moves_counted(self):
        g = ring(5)
        w = World(g)

        def hopper(api):
            for _ in range(4):
                yield Move(1)
            while True:
                yield Stay()

        w.add_robot(1, 0, hopper)
        w.run(max_rounds=6)
        assert w.robots[1].moves_made == 4
        assert w.robots[1].node == 4


class TestRunReport:
    def test_rounds_total_property(self):
        rep = RunReport(
            success=True, rounds_simulated=10, rounds_charged=100, settled={},
        )
        assert rep.rounds_total == 110

    def test_phases_recorded_in_order(self):
        g = ring(4)
        w = World(g)
        w.charge("alpha", 5)
        w.charge("beta", 7)

        def settler(api):
            api.settle()
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, settler)
        w.run(max_rounds=3)
        rep = finish_report(w)
        assert rep.phases == [("alpha", 5), ("beta", 7)]
        assert rep.rounds_charged == 12

    def test_meta_passthrough(self):
        g = ring(4)
        w = World(g)

        def settler(api):
            api.settle()
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, settler)
        w.run(max_rounds=3)
        rep = finish_report(w, theorem=42, custom="x")
        assert rep.meta["theorem"] == 42 and rep.meta["custom"] == "x"
