"""Batched multi-simulation engine: struct-of-arrays over one CSR graph.

Every sweep this repo runs — Table 1 rows, tolerance sweeps, seed grids —
is dozens-to-thousands of *independent* simulations of the same
(graph, solver) pair that differ only in seed, ``f``, or placement.  The
per-cell path pays Python dispatch per robot per round per cell;
:class:`BatchWorld` amortises it by stepping ``S`` simulations per round
over **one** shared CSR graph, holding robot state in numpy arrays
indexed ``[sim, robot]``, so per-round work is vectorized array ops plus
one Python callback per *batch* instead of per robot.

The engine is deliberately narrower than :class:`~repro.sim.world.World`:
synchronous activation only, weak model (claimed id == true id), no
whiteboards/messages.  Solvers opt in (see
:mod:`repro.analysis.batching`); everything else keeps the per-cell
oracle path, and batch-produced records are pinned byte-identical to it.

Round semantics replicated from the oracle world
------------------------------------------------
* Sub-rounds run in ascending claimed-id order; a robot's mutations
  (flag, public state) are visible **live** to later sub-rounds of the
  same round.
* Moves are simultaneous: positions only change at the end of the round
  (``queue_moves`` writes a shadow array that :meth:`step` commits).
* Terminated robots stay on the board: their public record remains
  visible to co-located robots forever (a crashed Byzantine robot is a
  permanent ``tobeSettled``/flag-0 contender; a settled honest robot a
  permanent ``Settled`` witness).
* ``activations`` counts one resume per live (non-terminated) robot per
  stepped round, exactly the synchronous world's tally.
* A simulation freezes once every honest robot has terminated; its
  ``done_at`` round matches ``World.run``'s ``rounds_simulated``
  accounting (the done-check runs *before* each step).
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.traversal import euler_tour

__all__ = [
    "BatchWorld",
    "Theorem1BatchProgram",
    "BYZ_NONE",
    "BYZ_IDLE",
    "BYZ_CRASH",
    "BYZ_SQUATTER",
    "BYZ_FLAG_SPAMMER",
]


#: Per-robot behaviour codes for :class:`Theorem1BatchProgram`.  These
#: are the strategies whose observable behaviour is deterministic and
#: position-free (never move, never draw from their RNG), which is what
#: makes them vectorizable without a per-robot program object.
BYZ_NONE = 0          # honest: runs Dispersion-Using-Map
BYZ_IDLE = 1          # sit forever claiming tobeSettled, flag 0
BYZ_CRASH = 2         # terminate at the first activation (round 0)
BYZ_SQUATTER = 3      # claim Settled at the start node, then sit forever
BYZ_FLAG_SPAMMER = 4  # raise the intent flag every round, never settle


class BatchWorld:
    """``S`` independent synchronous simulations over one shared graph.

    State lives in ``[n_sims, n_robots]`` numpy arrays; column ``j``
    holds the robot with claimed id ``j + 1`` in every simulation (the
    paper's compact 1..n assignment), so ascending column order **is**
    the world's sub-round order.  A *program* is one callable invoked
    once per round with the world; it reads the round-start snapshots
    (``flag0``/``pub_settled0``), mutates the live arrays in sub-round
    order, and queues moves through :meth:`queue_moves`.
    """

    def __init__(self, graph: PortLabeledGraph, n_sims: int, n_robots: int):
        offsets, dest, _ = graph.csr()
        self.graph = graph
        self.n = graph.n
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._dest = np.asarray(dest, dtype=np.int64)
        self.n_sims = n_sims
        self.n_robots = n_robots
        shape = (n_sims, n_robots)
        #: current node per robot (stable within a round)
        self.pos = np.zeros(shape, dtype=np.int64)
        #: claimed ids (weak model: the compact true ids 1..n_robots)
        self.claimed = np.tile(
            np.arange(1, n_robots + 1, dtype=np.int64), (n_sims, 1)
        )
        #: live public intent flag / public ``Settled`` claim
        self.flag = np.zeros(shape, dtype=np.int64)
        self.pub_settled = np.zeros(shape, dtype=bool)
        #: node an honest robot actually settled on (-1 = unsettled)
        self.settled_node = np.full(shape, -1, dtype=np.int64)
        self.terminated = np.zeros(shape, dtype=bool)
        self.honest = np.ones(shape, dtype=bool)
        #: sleep counters (rounds to skip); unused by the synchronous
        #: Theorem 1 program but part of the engine's state contract
        self.sleep = np.zeros(shape, dtype=np.int64)
        self.round = 0
        #: per-simulation completion (all honest robots terminated)
        self.done = np.zeros(n_sims, dtype=bool)
        self.done_at = np.full(n_sims, -1, dtype=np.int64)
        self.activations = np.zeros(n_sims, dtype=np.int64)
        # round-start snapshots, refreshed by step()
        self.flag0 = self.flag.copy()
        self.pub_settled0 = self.pub_settled.copy()
        self._next_pos = self.pos.copy()

    # -- queries -------------------------------------------------------- #

    def others_here(self, robot: int) -> np.ndarray:
        """``[n_sims, n_robots]`` mask: co-located with ``robot`` this
        round, excluding the robot itself (the ``colocated`` view set)."""
        here = self.pos == self.pos[:, robot : robot + 1]
        here[:, robot] = False
        return here

    def all_honest_terminated(self) -> np.ndarray:
        """``[n_sims]`` mask: every honest robot has terminated."""
        return (self.terminated | ~self.honest).all(axis=1)

    # -- mutation ------------------------------------------------------- #

    def queue_moves(self, sims: np.ndarray, robot: int, ports: np.ndarray) -> None:
        """Queue a simultaneous move through 1-based ``ports`` for
        ``robot`` in the selected ``sims`` (committed at round end, so
        co-location queries stay on round-start positions)."""
        src = self.pos[sims, robot]
        self._next_pos[sims, robot] = self._dest[self._offsets[src] + ports - 1]

    # -- stepping ------------------------------------------------------- #

    def step(self, program: Callable[["BatchWorld"], None]) -> None:
        """Advance every unfinished simulation by one synchronous round."""
        self.flag0 = self.flag.copy()
        self.pub_settled0 = self.pub_settled.copy()
        self._next_pos = self.pos.copy()
        live = ~self.done[:, None] & ~self.terminated
        self.activations += live.sum(axis=1)
        program(self)
        self.pos = self._next_pos
        self.round += 1

    def _refresh_done(self) -> None:
        newly = ~self.done & self.all_honest_terminated()
        self.done_at[newly] = self.round
        self.done |= newly

    def run(self, program: Callable[["BatchWorld"], None], max_rounds: int) -> np.ndarray:
        """Step until every simulation is done or the budget is spent.

        Returns the per-simulation simulated-round counts, matching
        ``World.run``: the round at which the all-honest-terminated check
        first passed, or ``max_rounds`` for budget-exhausted runs.
        """
        while self.round < max_rounds:
            self._refresh_done()
            if self.done.all():
                break
            self.step(program)
        self._refresh_done()
        return np.where(self.done_at >= 0, self.done_at, self.round)


class Theorem1BatchProgram:
    """Vectorized Dispersion-Using-Map (paper Section 2.2) over a batch.

    One instance drives every simulation of a batch group: same graph,
    same strategy; seeds, ``f`` and Byzantine placement vary per sim via
    the ``byz_kind`` matrix (``BYZ_*`` codes, ``[sim, robot]``).

    The world graph **must** be each robot's map up to relabeling — the
    Theorem 1 class guarantees it: every honest robot's private map is
    port-preserving isomorphic to the quotient graph, and
    :func:`~repro.graphs.traversal.euler_tour` is port-driven (ports
    explored in increasing order), so all private relabelings replay the
    identical port sequence from the same start node.  Tours are
    precomputed once per *start node* and shared across sims and robots —
    the amortisation the per-cell path cannot do.

    Byzantine blacklisting (Step 4) never fires under the supported
    strategy codes — recorded (``Settled``-claiming) robots never move —
    so the blacklist is statically empty and elided.
    """

    def __init__(self, world: BatchWorld, byz_kind: np.ndarray):
        self.world = world
        kinds = np.asarray(byz_kind, dtype=np.int64)
        if kinds.shape != (world.n_sims, world.n_robots):
            raise ValueError(
                f"byz_kind shape {kinds.shape} != {(world.n_sims, world.n_robots)}"
            )
        self.byz_kind = kinds
        world.honest[:] = kinds == BYZ_NONE
        #: per-robot progress along its (shared) Euler tour
        self.tour_idx = np.zeros((world.n_sims, world.n_robots), dtype=np.int64)
        self.start_node = world.pos.copy()
        self.tour_len = 2 * (world.n - 1) if world.n > 1 else 0
        self._tour_ports = np.zeros(
            (world.n, max(self.tour_len, 1)), dtype=np.int64
        )
        self._tour_ready = np.zeros(world.n, dtype=bool)

    def _ensure_tours(self, starts: np.ndarray) -> None:
        for c in np.unique(starts):
            c = int(c)
            if not self._tour_ready[c]:
                steps = euler_tour(self.world.graph, c)
                if steps:
                    self._tour_ports[c, : len(steps)] = [s.port for s in steps]
                self._tour_ready[c] = True

    def __call__(self, world: BatchWorld) -> None:
        act_sim = ~world.done
        pos = world.pos
        flag = world.flag
        pub = world.pub_settled
        settled0 = world.pub_settled0
        kinds = self.byz_kind
        round0 = world.round == 0
        for j in range(world.n_robots):
            kj = kinds[:, j]
            # Byzantine sub-round: deterministic public-record effects.
            if round0:
                world.terminated[act_sim & (kj == BYZ_CRASH), j] = True
                pub[act_sim & (kj == BYZ_SQUATTER), j] = True
            flag[act_sim & (kj == BYZ_FLAG_SPAMMER), j] = 1
            # Honest sub-round: Steps 1-3 of Section 2.2, vectorized
            # across simulations (Step 4 elided — see class docstring).
            act = act_sim & world.honest[:, j] & ~world.terminated[:, j]
            if not act.any():
                continue
            flag[act, j] = 0  # api.set_flag(0) at the top of the loop
            here = pos == pos[:, j : j + 1]
            here[:, j] = False
            here &= act[:, None]
            tbs0 = here & ~settled0          # snapshot tobeSettled peers
            settled_present = (here & settled0).any(axis=1)
            smaller_any = tbs0[:, :j].any(axis=1)
            move = act & settled_present     # Step 3c: move on, flag stays 0
            settle = act & ~settled_present & ~smaller_any  # Step 1/2a/3a
            dance = act & ~settled_present & smaller_any    # Step 2b/3b
            if dance.any():
                flag[dance, j] = 1
                # Live flags of snapshot-tbs contenders (any id — a
                # larger id's flag can be carry-over from its last dance).
                flagged = (tbs0 & (flag == 1)).any(axis=1)
                settle |= dance & ~flagged
                observe = dance & flagged
                if observe.any():
                    # Did a smaller contender settle earlier this round?
                    settled_now = (tbs0[:, :j] & pub[:, :j]).any(axis=1)
                    move |= observe & settled_now
                    settle |= observe & ~settled_now
            if settle.any():
                flag[settle, j] = 1
                pub[settle, j] = True
                world.settled_node[settle, j] = pos[settle, j]
                world.terminated[settle, j] = True  # settle + return, same resume
            if move.any():
                move_idx = np.flatnonzero(move)
                ti = self.tour_idx[move_idx, j]
                exhausted = ti >= self.tour_len
                # Tour exhausted without settling: terminate unsettled
                # (the oracle's beyond-tolerance fail-visibly path).
                world.terminated[move_idx[exhausted], j] = True
                go = move_idx[~exhausted]
                if go.size:
                    starts = self.start_node[go, j]
                    self._ensure_tours(starts)
                    ports = self._tour_ports[starts, self.tour_idx[go, j]]
                    world.queue_moves(go, j, ports)
                    self.tour_idx[go, j] += 1
