"""Derived Figure A: round growth vs n per algorithm (log-log slopes).

The paper states asymptotic bounds only; this benchmark measures how
simulated+charged rounds grow with ``n`` on a random-graph family and
fits power laws.  The attached ``alpha`` exponents are the reproduction's
"shape" evidence: charged rows must track their formulas exactly, and the
simulated rows must grow super-linearly with row 4 above row 5.
"""

import pytest

from conftest import SCALING_NS, attach
from repro.analysis import fit_power_law, scaling_sweep
from repro.core import get_row
from repro.graphs import is_quotient_isomorphic, random_connected


def _graphs():
    out = []
    for n in SCALING_NS:
        for seed in range(40):
            g = random_connected(n, seed=seed)
            if is_quotient_isomorphic(g):
                out.append(g)
                break
    return out


GRAPHS = _graphs()


@pytest.mark.parametrize("serial", [1, 4, 5, 7])
def bench_scaling_simulated_rows(benchmark, serial):
    """Rows with meaningful simulated rounds: measure and fit."""
    row = get_row(serial)

    def sweep():
        return scaling_sweep(row, GRAPHS, "squatter", seed=1, f_fraction_of_max=1.0)

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert all(r["success"] for r in records)
    ns = [r["n"] for r in records]
    totals = [max(r["rounds_total"], 1) for r in records]
    fit = fit_power_law(ns, totals)
    attach_dummy = records[-1]
    benchmark.extra_info.update(
        serial=serial,
        ns=str(ns),
        rounds=str(totals),
        alpha=round(fit.alpha, 2),
        r2=round(fit.r2, 3),
    )
    # Shape assertions: all of these rows are polynomial, super-linear
    # once charges/tournaments kick in, and far below the exponential row.
    assert fit.alpha > 0.5


def bench_scaling_row4_above_row5(benchmark):
    """The O(n^4) (row 4) vs O(n^3) (row 5) separation grows with n."""

    def sweep():
        r4 = scaling_sweep(get_row(4), GRAPHS, "idle", seed=2)
        r5 = scaling_sweep(get_row(5), GRAPHS, "idle", seed=2)
        return r4, r5

    r4, r5 = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ratios = [
        a["rounds_simulated"] / max(b["rounds_simulated"], 1)
        for a, b in zip(r4, r5)
    ]
    assert all(r > 1.0 for r in ratios)
    # The gap widens with n (one extra factor of ~n in the schedule).
    assert ratios[-1] > ratios[0]
    benchmark.extra_info.update(ratios=str([round(r, 2) for r in ratios]))


def bench_scaling_charged_rows_track_formulas(benchmark):
    """Rows 2/3/6: charged rounds equal the cited formulas at every n."""

    def sweep():
        out = {}
        for serial in (2, 3, 6):
            row = get_row(serial)
            out[serial] = scaling_sweep(row, GRAPHS, "idle", seed=3)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for serial, records in out.items():
        row = get_row(serial)
        for rec in records:
            assert rec["success"]
    # Row 2 dominates row 3 dominates nothing-at-small-n; row 6 explodes.
    for a, b in zip(out[2], out[3]):
        assert a["rounds_charged"] > b["rounds_charged"]
    benchmark.extra_info.update(
        row2=str([r["rounds_charged"] for r in out[2]]),
        row3=str([r["rounds_charged"] for r in out[3]]),
        row6=str([r["rounds_charged"] for r in out[6]]),
    )
