#!/usr/bin/env python3
"""Regenerate the paper's Table 1 empirically — as a declarative grid.

One `grid(...)` call names the whole experiment: every Table 1 row on
one graph at its full Byzantine tolerance (`f="max"`) under a hostile
strategy.  The grid compiles to the same plan executor the sweeps use,
so adding `store=RunStore(dir)` or `workers=N` to `.run()` makes the
reproduction resumable or parallel without touching the grid.

The printed table shows measured rounds next to the paper's asymptotic
bound (evaluated with constant 1).  This is the script whose output
EXPERIMENTS.md quotes.

Run:  python examples/table1_reproduction.py [n]
"""

import sys

from repro import grid
from repro.core import TABLE1
from repro.graphs import is_quotient_isomorphic, random_connected

n = int(sys.argv[1]) if len(sys.argv) > 1 else 9

for seed in range(50):
    graph = random_connected(n, seed=seed)
    if is_quotient_isomorphic(graph):
        break
else:
    raise SystemExit("no view-distinguishable graph sampled; try another n")

# The whole reproduction as one declarative value: rows default to the
# full table, inapplicable (row, graph) pairs drop out, f="max" is each
# row's own tolerance bound.
scenarios = grid(graphs=graph, strategies="ghost_squatter", f="max", seeds=1)
records = scenarios.run()

# Decorate with the paper's row metadata for a table mirroring the paper's.
by_serial = {row.serial: row for row in TABLE1}
for rec in records:
    row = by_serial[rec["serial"]]
    rec["tolerance"] = row.tolerance
    rec["note"] = row.note

print(
    records.table(
        columns=[
            "serial", "theorem", "running_time", "start", "tolerance",
            "strong", "f", "success", "rounds_simulated", "rounds_charged",
            "paper_bound",
        ],
        title=(
            f"Table 1 reproduction  (n={graph.n}, m={graph.m}, "
            f"strategy=ghost_squatter, f at each row's bound)"
        ),
    )
)

failures = records.filter(success=False)
if failures:
    raise SystemExit(f"reproduction FAILED for rows {[r['serial'] for r in failures]}")
print("\nAll applicable rows reproduced: every algorithm dispersed at its bound.")

# --- Beyond the paper: the activation-scheduler axis ------------------ #
# Table 1 assumes the fully synchronous model.  Crossing in a scheduler
# axis shows how timing interacts with fault tolerance: under an
# adversarial scheduler (starve the lowest-ranked unsettled honest robot,
# fairness window 4) the same algorithms at the same bounds mostly stop
# dispersing — the paper's round budgets are synchrony-limited.
timing = grid(rows=[4, 5], graphs=graph, strategies="ghost_squatter",
              schedulers=["synchronous", "adversarial(window=4)"], seeds=1)
print(
    timing.run().table(
        columns=["serial", "scheduler", "activations", "success",
                 "rounds_simulated"],
        title="Timing sensitivity (synchronous vs adversarial scheduler)",
    )
)
