"""End-to-end tests for Theorem 1 (quotient-graph algorithm, f <= n-1)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.byzantine import WEAK_STRATEGIES, Adversary
from repro.core import solve_theorem1, theorem1_round_bound
from repro.core.find_map import find_map_rounds, private_quotient_map
from repro.errors import ConfigurationError
from repro.graphs import (
    is_quotient_isomorphic,
    random_connected,
    ring,
    rooted_isomorphic,
    star,
)
import numpy as np


class TestFindMap:
    def test_private_map_isomorphic_and_rooted(self):
        g = random_connected(9, seed=3)
        m, root = private_quotient_map(g, 4, np.random.default_rng(0))
        assert rooted_isomorphic(g, 4, m, root)

    def test_private_relabeling_differs_between_robots(self):
        g = random_connected(9, seed=3)
        m1, r1 = private_quotient_map(g, 4, np.random.default_rng(1))
        m2, r2 = private_quotient_map(g, 4, np.random.default_rng(2))
        # Same graph up to iso but (almost surely) different labels.
        assert rooted_isomorphic(m1, r1, m2, r2)

    def test_rejected_on_collapsed_quotient(self):
        with pytest.raises(ConfigurationError):
            private_quotient_map(ring(6), 0, np.random.default_rng(0))

    def test_round_charge_polynomial(self):
        assert find_map_rounds(8, 12) == 8**3 * 3
        assert find_map_rounds(8, 12, constant=2) == 2 * 8**3 * 3


class TestDriverValidation:
    def test_rejects_collapsed_quotient_graph(self):
        with pytest.raises(ConfigurationError, match="quotient"):
            solve_theorem1(ring(6), f=0)

    def test_rejects_f_out_of_range(self):
        g = random_connected(8, seed=5)
        with pytest.raises(ConfigurationError):
            solve_theorem1(g, f=8)

    def test_star_is_admissible(self):
        # Port labels make star views distinct (see views tests).
        rep = solve_theorem1(star(6), f=2, adversary=Adversary("squatter"))
        assert rep.success


class TestEndToEnd:
    def test_all_honest_arbitrary(self, rc10):
        rep = solve_theorem1(rc10, f=0, seed=3)
        assert rep.success
        assert sorted(rep.settled.values()) == list(range(10))
        assert rep.rounds_charged == find_map_rounds(10, rc10.m)

    def test_max_byzantine(self, rc10):
        rep = solve_theorem1(rc10, f=9, adversary=Adversary("ghost_squatter"))
        assert rep.success

    @pytest.mark.parametrize("strategy", WEAK_STRATEGIES)
    def test_strategy_zoo_at_half(self, rc10, strategy):
        rep = solve_theorem1(
            rc10, f=5, adversary=Adversary(strategy, seed=7), seed=2
        )
        assert rep.success, rep.violations

    @pytest.mark.parametrize("start", ["arbitrary", "gathered", "spread"])
    def test_start_configurations(self, rc10, start):
        rep = solve_theorem1(rc10, f=3, adversary=Adversary("squatter"), start=start)
        assert rep.success

    def test_round_bound_respected(self, rc10):
        rep = solve_theorem1(rc10, f=4, adversary=Adversary("flag_spammer"))
        assert rep.rounds_total <= theorem1_round_bound(10, rc10.m) + 8

    def test_deterministic_under_seed(self, rc10):
        a = solve_theorem1(rc10, f=3, adversary=Adversary("random_walker", seed=5), seed=9)
        b = solve_theorem1(rc10, f=3, adversary=Adversary("random_walker", seed=5), seed=9)
        assert a.settled == b.settled
        assert a.rounds_simulated == b.rounds_simulated

    @given(
        seed=st.integers(0, 200),
        f=st.integers(0, 8),
        strategy=st.sampled_from(WEAK_STRATEGIES),
    )
    @settings(max_examples=30)
    def test_property_always_disperses(self, seed, f, strategy):
        for offset in range(30):
            g = random_connected(9, seed=seed + 999 * offset)
            if is_quotient_isomorphic(g):
                break
        else:
            pytest.skip("no view-distinct sample")
        rep = solve_theorem1(g, f=f, adversary=Adversary(strategy, seed=seed), seed=seed)
        assert rep.success, rep.violations
