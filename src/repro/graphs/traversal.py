"""Traversal utilities robots run on their *private maps*.

Everything here operates on a :class:`PortLabeledGraph` that a robot holds
in memory (its map) — never on the world graph directly.  Robots convert
the outputs (port sequences) into movement actions; the simulator then
validates them against the real graph.

* :func:`euler_tour` — the DFS-tree traversal of Section 2.2
  ("the normal DFS tree traversal takes at most 2n − 1 steps"): a sequence
  of port moves from the root that visits every node and returns to the
  root, each tree edge crossed exactly twice.
* :func:`navigate` — shortest port path between two map nodes (used by the
  token-mapping protocol's candidate checks and by Section 4's rooted
  dispersion).
* :func:`bfs_order` — the deterministic node ordering ``v(1), …, v(n)``
  of Section 4 Phase 2 (canonical BFS discovery order; identical for all
  honest robots because their maps are port-isomorphic with a common
  root).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import MapError, PortError
from .port_labeled import PortLabeledGraph

__all__ = ["TourStep", "euler_tour", "navigate", "bfs_order", "path_nodes"]


@dataclass(frozen=True)
class TourStep:
    """One move of an Euler tour over a DFS tree.

    Attributes
    ----------
    port:
        Port to leave the current node through.
    node:
        Map node reached after the move.
    first_visit:
        True iff this move *discovers* ``node`` (robots only run the
        settle-negotiation of Section 2.2 on first visits; backtracking
        re-entries skip it).
    """

    port: int
    node: int
    first_visit: bool


def euler_tour(graph: PortLabeledGraph, root: int) -> List[TourStep]:
    """DFS-tree Euler tour of the map, starting and ending at ``root``.

    Exactly ``2·(n−1)`` steps for a connected map on ``n`` nodes.  Ports
    are explored in increasing order, making the tour deterministic — all
    honest robots with isomorphic maps and the same start node produce the
    same tour (in map-local coordinates).
    """
    if graph.n == 0:
        return []
    visited = {root}
    steps: List[TourStep] = []

    # Iterative DFS to dodge recursion limits on large path-like maps.
    stack: List[Tuple[int, int]] = [(root, 1)]
    while stack:
        u, next_port = stack.pop()
        advanced = False
        row = graph.port_row(u)
        for p in range(next_port, len(row) + 1):
            v, q = row[p - 1]
            if v in visited:
                continue
            visited.add(v)
            steps.append(TourStep(port=p, node=v, first_visit=True))
            stack.append((u, p + 1))
            stack.append((v, 1))
            advanced = True
            break
        if not advanced and stack:
            # Backtrack to parent: the parent frame is on the stack; emit the
            # return move (enter parent via the port we came through).
            parent, _ = stack[-1]
            back_port = _port_between(graph, u, parent)
            steps.append(TourStep(port=back_port, node=parent, first_visit=False))
    if not _covers_all(graph, root, visited):
        raise MapError("euler_tour requires a connected map")
    return steps


def _port_between(graph: PortLabeledGraph, u: int, v: int) -> int:
    try:
        return graph.port_to(u, v)
    except PortError:
        raise MapError(f"map has no edge {u} -> {v}") from None


def _covers_all(graph: PortLabeledGraph, root: int, visited: set) -> bool:
    return len(visited) == graph.n


def navigate(graph: PortLabeledGraph, src: int, dst: int) -> List[int]:
    """Shortest path from ``src`` to ``dst`` as a list of ports (BFS).

    Ties are broken by smaller port number, so the path is deterministic —
    honest robots sharing isomorphic maps pick corresponding paths.
    """
    if src == dst:
        return []
    parent: Dict[int, Tuple[int, int]] = {}  # node -> (prev node, port used at prev)
    queue = deque([src])
    seen = {src}
    while queue:
        u = queue.popleft()
        for p, (v, _) in enumerate(graph.port_row(u), start=1):
            if v in seen:
                continue
            seen.add(v)
            parent[v] = (u, p)
            if v == dst:
                ports: List[int] = []
                node = dst
                while node != src:
                    prev, port = parent[node]
                    ports.append(port)
                    node = prev
                ports.reverse()
                return ports
            queue.append(v)
    raise MapError(f"map nodes {src} and {dst} are not connected")


def path_nodes(graph: PortLabeledGraph, src: int, ports: List[int]) -> List[int]:
    """Replay a port sequence on the map; return the node sequence visited."""
    nodes = [src]
    cur = src
    for p in ports:
        cur, _ = graph.traverse(cur, p)
        nodes.append(cur)
    return nodes


def bfs_order(graph: PortLabeledGraph, root: int) -> List[int]:
    """Canonical BFS discovery order of all map nodes from ``root``.

    Section 4 Phase 2: "the robots make a deterministic ordering of the
    nodes of the graph as v(1), …, v(n)".  Port-ordered BFS is such an
    ordering and is preserved by port isomorphisms fixing the root, so all
    honest robots (whose maps share the gathering node as root) order the
    *real* nodes identically even though their private labels differ.
    """
    order = [root]
    seen = {root}
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v, _ in graph.port_row(u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    if len(order) != graph.n:
        raise MapError("bfs_order requires a connected map")
    return order
