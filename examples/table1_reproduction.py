#!/usr/bin/env python3
"""Regenerate the paper's Table 1 empirically.

For every row: run the algorithm at its full Byzantine tolerance under a
hostile strategy and print the measured rounds next to the paper's
asymptotic bound (evaluated with constant 1).  This is the script whose
output EXPERIMENTS.md quotes.

Run:  python examples/table1_reproduction.py [n]
"""

import sys

from repro.analysis import render_table, run_table1
from repro.core import TABLE1
from repro.graphs import is_quotient_isomorphic, random_connected

n = int(sys.argv[1]) if len(sys.argv) > 1 else 9

for seed in range(50):
    graph = random_connected(n, seed=seed)
    if is_quotient_isomorphic(graph):
        break
else:
    raise SystemExit("no view-distinguishable graph sampled; try another n")

records = run_table1(graph, strategies=["ghost_squatter"], seed=1)

# Decorate with the paper's row metadata for a table mirroring the paper's.
by_serial = {row.serial: row for row in TABLE1}
for rec in records:
    row = by_serial[rec["serial"]]
    rec["tolerance"] = row.tolerance
    rec["note"] = row.note

print(
    render_table(
        records,
        columns=[
            "serial", "theorem", "running_time", "start", "tolerance",
            "strong", "f", "success", "rounds_simulated", "rounds_charged",
            "paper_bound",
        ],
        title=(
            f"Table 1 reproduction  (n={graph.n}, m={graph.m}, "
            f"strategy=ghost_squatter, f at each row's bound)"
        ),
    )
)

failures = [r for r in records if not r["success"]]
if failures:
    raise SystemExit(f"reproduction FAILED for rows {[r['serial'] for r in failures]}")
print("\nAll applicable rows reproduced: every algorithm dispersed at its bound.")
