"""Table 1 registry: one entry per row of the paper's results table.

Benchmarks, sweeps and the EXPERIMENTS harness iterate this registry so
that "reproduce Table 1" is a loop, not seven hand-written scripts.  Each
row knows its solver (normalised signature), its tolerance bound, the
paper's asymptotic round bound (evaluated with constant 1 for shape
comparison), its starting configuration, and whether it handles strong
Byzantine robots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

from ..gathering.oracle import (
    hirose_gathering_rounds,
    strong_gathering_rounds,
    weak_gathering_rounds,
)
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.quotient import is_quotient_isomorphic
from ..sim.ids import assign_ids
from ..sim.scheduler import RunReport
from .find_map import find_map_rounds
from .general_graphs import solve_theorem2, solve_theorem3, solve_theorem4, solve_theorem5
from .quotient_algorithm import solve_theorem1
from .strong_byzantine import solve_theorem6, solve_theorem7

__all__ = ["Table1Row", "TABLE1", "get_row", "row_applicable"]

Solver = Callable[..., RunReport]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 with everything needed to rerun it.

    ``paper_bound(graph, f)`` evaluates the stated asymptotic bound with
    constant 1 (exact integers; exponential rows get huge ints, which is
    the point).  ``f_max(graph)`` is the row's Byzantine tolerance.
    """

    serial: int
    theorem: int
    running_time: str
    start: str  # "Arbitrary" | "Gathered"
    tolerance: str
    strong: bool
    solver: Solver
    f_max: Callable[[PortLabeledGraph], int]
    paper_bound: Callable[[PortLabeledGraph, int], int]
    note: str = ""


def _ids(graph: PortLabeledGraph) -> List[int]:
    return assign_ids(graph.n, n_nodes=graph.n)


def _bound_row1(g: PortLabeledGraph, f: int) -> int:
    return find_map_rounds(g.n, g.m) + 2 * g.n + 2


def _bound_row2(g: PortLabeledGraph, f: int) -> int:
    # |Λgood| depends on *which* IDs are honest; the registry formula uses
    # the default convention (the f lowest IDs corrupted).  Other Byzantine
    # placements change the charge by at most one bit-length factor.
    honest = _ids(g)[f:]
    return weak_gathering_rounds(g, honest if honest else _ids(g))


def _bound_row3(g: PortLabeledGraph, f: int) -> int:
    return hirose_gathering_rounds(g, _ids(g), f)


def _bound_row4(g: PortLabeledGraph, f: int) -> int:
    return g.n**4


def _bound_row5(g: PortLabeledGraph, f: int) -> int:
    return g.n**3


def _bound_row6(g: PortLabeledGraph, f: int) -> int:
    return strong_gathering_rounds(g)


def _bound_row7(g: PortLabeledGraph, f: int) -> int:
    return g.n**3


def _f_sqrt(g: PortLabeledGraph) -> int:
    group = g.n // 2
    return max(0, min(int(math.isqrt(g.n)), (group + 1) // 2 - 1))


TABLE1: List[Table1Row] = [
    Table1Row(
        serial=1, theorem=1, running_time="polynomial(n)", start="Arbitrary",
        tolerance="n-1", strong=False,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem1(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, start="arbitrary", max_rounds=max_rounds, scheduler=scheduler),
        f_max=lambda g: g.n - 1,
        paper_bound=_bound_row1,
        note="graphs with quotient graph isomorphic to the graph",
    ),
    Table1Row(
        serial=2, theorem=2, running_time="O(n^4 |L_good| X(n))", start="Arbitrary",
        tolerance="floor(n/2)-1", strong=False,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem2(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, max_rounds=max_rounds, scheduler=scheduler),
        f_max=lambda g: max(0, g.n // 2 - 1),
        paper_bound=_bound_row2,
    ),
    Table1Row(
        serial=3, theorem=5, running_time="O((f+|L_all|) X(n))", start="Arbitrary",
        tolerance="O(sqrt(n))", strong=False,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem5(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, max_rounds=max_rounds, scheduler=scheduler),
        f_max=_f_sqrt,
        paper_bound=_bound_row3,
    ),
    Table1Row(
        serial=4, theorem=3, running_time="O(n^4)", start="Gathered",
        tolerance="floor(n/2)-1", strong=False,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem3(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, max_rounds=max_rounds, scheduler=scheduler),
        f_max=lambda g: max(0, g.n // 2 - 1),
        paper_bound=_bound_row4,
    ),
    Table1Row(
        serial=5, theorem=4, running_time="O(n^3)", start="Gathered",
        tolerance="floor(n/3)-1", strong=False,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem4(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, max_rounds=max_rounds, scheduler=scheduler),
        f_max=lambda g: max(0, g.n // 3 - 1),
        paper_bound=_bound_row5,
    ),
    Table1Row(
        serial=6, theorem=7, running_time="exponential(n)", start="Arbitrary",
        tolerance="floor(n/4)-1", strong=True,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem7(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, max_rounds=max_rounds, scheduler=scheduler),
        f_max=lambda g: max(0, g.n // 4 - 1),
        paper_bound=_bound_row6,
        note="requires robots to know f",
    ),
    Table1Row(
        serial=7, theorem=6, running_time="O(n^3)", start="Gathered",
        tolerance="floor(n/4)-1", strong=True,
        solver=lambda graph, f=0, adversary=None, seed=0, byz_placement="lowest", max_rounds=None, scheduler=None:
            solve_theorem6(graph, f=f, adversary=adversary, seed=seed,
                           byz_placement=byz_placement, max_rounds=max_rounds, scheduler=scheduler),
        f_max=lambda g: max(0, g.n // 4 - 1),
        paper_bound=_bound_row7,
    ),
]


def get_row(serial: int) -> Table1Row:
    """Fetch a Table 1 row by its serial number (1–7)."""
    for row in TABLE1:
        if row.serial == serial:
            return row
    raise KeyError(f"Table 1 has rows 1..7, not {serial}")


def row_applicable(row: Table1Row, graph: PortLabeledGraph) -> bool:
    """Whether the row's graph-class restriction admits ``graph``."""
    if row.serial == 1:
        return is_quotient_isomorphic(graph)
    return True
