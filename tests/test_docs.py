"""The docs gate, run as part of tier-1 (CI runs tools/check_docs.py too).

Pins the satellite contracts of the README/docs pass: a README exists
with a runnable ```python quickstart, no Markdown doc holds a dangling
relative link, and the extraction helpers behave (so a fence-format
change cannot silently turn the CI docs job into a no-op).
"""

import pathlib
import sys

TOOLS = pathlib.Path(__file__).resolve().parents[1] / "tools"
sys.path.insert(0, str(TOOLS))

import check_docs  # noqa: E402


def test_readme_exists():
    assert (check_docs.REPO_ROOT / "README.md").is_file()


def test_extract_code_blocks_filters_by_language():
    md = "\n".join([
        "intro", "```sh", "echo no", "```",
        "```python", "x = 1", "y = x + 1", "```",
        "```", "plain fence", "```",
        "```python", "z = 2", "```",
    ])
    blocks = check_docs.extract_code_blocks(md)
    assert blocks == ["x = 1\ny = x + 1\n", "z = 2\n"]


def test_readme_has_a_python_quickstart():
    readme = (check_docs.REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert check_docs.extract_code_blocks(readme), "README lost its quickstart"


def test_readme_quickstart_runs_verbatim():
    assert check_docs.run_readme_quickstart(check_docs.REPO_ROOT / "README.md") == []


def test_no_dangling_relative_links():
    assert check_docs.check_relative_links() == []


def test_lint_registry_matches_experiments_table():
    assert check_docs.check_lint_registry() == []


def test_lint_registry_catches_drift(tmp_path, monkeypatch):
    # A registered checker missing from the table, and a documented
    # checker no registry entry backs, are both gate failures.
    real = (check_docs.REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    drifted = real.replace("`no-unseeded-rng`", "`no-entropy-leaks`")
    (tmp_path / "EXPERIMENTS.md").write_text(drifted, encoding="utf-8")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_lint_registry()
    assert any("'no-unseeded-rng' is registered but missing" in e for e in errors)
    assert any("'no-entropy-leaks'" in e and "not a registered" in e for e in errors)


def test_lint_registry_requires_the_section(tmp_path, monkeypatch):
    (tmp_path / "EXPERIMENTS.md").write_text("# EXPERIMENTS\n", encoding="utf-8")
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    errors = check_docs.check_lint_registry()
    assert errors == ['EXPERIMENTS.md: no "## Determinism rules" section']


def test_link_checker_sees_through_fences(tmp_path, monkeypatch):
    # Links inside fenced code blocks are not links; links outside are.
    doc = tmp_path / "DOC.md"
    doc.write_text(
        "```sh\ncat [not a link](nowhere.json)\n```\n"
        "real: [gone](missing.md)\n",
        encoding="utf-8",
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(check_docs, "DOC_GLOBS", ("*.md",))
    errors = check_docs.check_relative_links()
    assert errors == ["DOC.md: broken link (missing.md)"]
