"""Theorems 2–5: Byzantine dispersion on arbitrary graphs (paper Section 3).

All four algorithms share the three-phase outline — (1) gather, (2) build
a map by exploration-with-movable-token, (3) Dispersion-Using-Map — and
differ in how phases 1–2 are realised:

=====  ========  ==========================  =============================
Thm    start     phase 1 (gathering)         phase 2 (map finding)
=====  ========  ==========================  =============================
2      arbitrary [24] weak oracle charge     pairing tournament (§3.1)
3      gathered  —                           pairing tournament (§3.1)
4      gathered  —                           three groups, 3 runs (§3.2)
5      arbitrary [27] Hirose oracle charge   two half groups, 1 run (§3.3)
=====  ========  ==========================  =============================

Phase 3 is identical everywhere.  Tolerances: ⌊n/2−1⌋ (Thm 2/3),
⌊n/3−1⌋ (Thm 4), O(√n) (Thm 5, we enforce ``f ≤ ⌊√n⌋``).
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Union

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..gathering.oracle import (
    canonical_gather_node,
    hirose_gathering_rounds,
    weak_gathering_rounds,
)
from ..graphs.port_labeled import PortLabeledGraph
from ..mapping.group_mapping import build_group_plan, group_phase_program, group_plan_rounds
from ..mapping.token_mapping import plan_honest_run
from ..sim.robot import Action, RobotAPI
from ..sim.scheduler import RunReport, finish_report
from ..sim.world import World
from ._setup import (
    Population,
    build_population,
    resolve_scheduler,
    round_budget,
    run_world_guarded,
)
from .dispersion_using_map import dispersion_rounds_bound, dispersion_using_map
from .phases import pairing_phase, pairing_phase_rounds, roster_phase

__all__ = [
    "solve_theorem2",
    "solve_theorem3",
    "solve_theorem4",
    "solve_theorem5",
    "tick_budget_for",
]


def tick_budget_for(graph: PortLabeledGraph, gather_node: int, margin: int = 2) -> int:
    """The fixed per-run tick budget all robots share (DESIGN.md §5.4).

    The paper fixes the slot by the theoretical ``T2 = O(n³)`` bound; we
    fix it by the exact dry run of the deterministic explorer plus a
    margin — a protocol-external scheduling constant either way.
    """
    ticks, _ = plan_honest_run(graph, gather_node)
    return ticks + margin


def _run_driver(
    graph: PortLabeledGraph,
    pop: Population,
    honest_program_factory,
    model: str,
    max_rounds: int,
    pre_charges,
    keep_trace: bool,
    scheduler=None,
    **meta,
) -> RunReport:
    """Shared world assembly + execution + reporting for Theorems 2–7.

    A non-default activation ``scheduler`` (see
    :mod:`repro.sim.schedulers`) is seeded from the adversary, records
    its canonical spec in the report meta, and runs *guarded*: the
    paper's protocols assume synchrony, so timing-induced protocol
    breakdowns (a robot tripping an invariant because a peer was
    starved) are recorded as violations in a failed report instead of
    crashing the sweep.
    """
    scheduler, canon = resolve_scheduler(scheduler)
    world = World(
        graph, model=model, keep_trace=keep_trace,
        scheduler=scheduler, scheduler_seed=pop.adversary.seed,
    )
    for label, rounds in pre_charges:
        world.charge(label, rounds)
    byz = set(pop.byz_ids)
    for rid in pop.ids:
        node = pop.placement[rid]
        if rid in byz:
            world.add_robot(rid, node, pop.adversary.program_factory(rid), byzantine=True)
        else:
            world.add_robot(rid, node, honest_program_factory(rid), byzantine=False)
    if scheduler is not None:
        meta["scheduler"] = canon
    extra = run_world_guarded(world, max_rounds, guarded=scheduler is not None)
    return finish_report(
        world,
        extra_violations=extra,
        f=pop.f,
        n=graph.n,
        strategy=pop.adversary.describe(),
        byz_ids=pop.byz_ids,
        **meta,
    )


def _pairing_solver(
    graph: PortLabeledGraph,
    f: int,
    adversary: Optional[Adversary],
    gather_node: int,
    seed: int,
    byz_placement: str,
    keep_trace: bool,
    pre_charges,
    theorem: int,
    schedule: str = "paper",
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Common body of Theorems 2 and 3 (pairing tournament from a gather node)."""
    n = graph.n
    pop = build_population(
        graph, f, start=gather_node, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    tb = tick_budget_for(graph, gather_node)
    base = 2  # after the roster phase

    def honest_program_factory(rid: int):
        def factory(api: RobotAPI) -> Iterator[Action]:
            return _pairing_program(api, tb, base, schedule)

        return factory

    bound = (
        base + pairing_phase_rounds(n, tb, schedule) + dispersion_rounds_bound(n) + 16
    )
    return _run_driver(
        graph, pop, honest_program_factory, "weak", round_budget(bound, max_rounds),
        pre_charges, keep_trace, scheduler=scheduler, theorem=theorem,
        tick_budget=tb, gather_node=gather_node, schedule=schedule,
    )


def _pairing_program(
    api: RobotAPI, tick_budget: int, base: int, schedule: str = "paper"
) -> Iterator[Action]:
    out: Dict = {}
    yield from roster_phase(api, out)
    yield from pairing_phase(api, out, tick_budget, base, schedule)
    m = out["map"]
    if m is None:
        api.log("no_map_agreed")
        return
    yield from dispersion_using_map(api, m, 0)


def _group_program(api: RobotAPI, scheme: str, tick_budget: int, base: int) -> Iterator[Action]:
    out: Dict = {}
    yield from roster_phase(api, out)
    plan = build_group_plan(out["roster"], scheme, base, tick_budget, api.n)
    yield from group_phase_program(api, plan, out)
    m = out["map"]
    if m is None:
        api.log("no_map_agreed")
        return
    yield from dispersion_using_map(api, m, 0)


def _group_solver(
    graph: PortLabeledGraph,
    f: int,
    adversary: Optional[Adversary],
    gather_node: int,
    seed: int,
    byz_placement: str,
    keep_trace: bool,
    pre_charges,
    scheme: str,
    theorem: int,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Common body of Theorems 4 and 5 (group map finding from a gather node)."""
    n = graph.n
    pop = build_population(
        graph, f, start=gather_node, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    tb = tick_budget_for(graph, gather_node)
    base = 2

    def honest_program_factory(rid: int):
        def factory(api: RobotAPI) -> Iterator[Action]:
            return _group_program(api, scheme, tb, base)

        return factory

    bound = base + group_plan_rounds(scheme, tb) + dispersion_rounds_bound(n) + 16
    return _run_driver(
        graph, pop, honest_program_factory, "weak", round_budget(bound, max_rounds),
        pre_charges, keep_trace, scheduler=scheduler, theorem=theorem,
        tick_budget=tb, gather_node=gather_node,
    )


# --------------------------------------------------------------------- #
# Public drivers
# --------------------------------------------------------------------- #


def solve_theorem3(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    gather_node: int = 0,
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
    schedule: str = "paper",
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Theorem 3: gathered start, ``f ≤ ⌊n/2−1⌋`` weak Byzantine, O(n⁴).

    Fully simulated (no oracle charges): roster discovery, the Section 3.1
    pairing tournament, map majority, Dispersion-Using-Map.

    ``schedule`` selects the tournament schedule: ``"paper"`` (the
    recursive halving of Section 3.1) or ``"round_robin"`` (circle
    method, ~half the slots) — the ablation showing the paper's O(n⁴) is
    schedule-limited, not protocol-limited.
    """
    _check_common(graph, f, graph.n // 2 - 1, "Theorem 3")
    return _pairing_solver(
        graph, f, adversary, gather_node, seed, byz_placement, keep_trace,
        pre_charges=[], theorem=3, schedule=schedule, max_rounds=max_rounds,
        scheduler=scheduler,
    )


def solve_theorem2(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Theorem 2: arbitrary start, ``f ≤ ⌊n/2−1⌋`` weak, Õ(n⁹).

    Phase 1 is the [24] gathering, charged at ``4·n⁴·|Λgood|·X(n)`` rounds
    and enacted at the canonical gather node (DESIGN.md §5.2); phases 2–3
    equal Theorem 3 and are fully simulated.
    """
    _check_common(graph, f, graph.n // 2 - 1, "Theorem 2")
    gather = canonical_gather_node(graph)
    # Honest IDs under the default compact assignment with the f lowest
    # corrupted: the remaining ones.  The charge needs |Λgood| over them.
    # Pass the adversary through: placement is derived from the
    # adversary's seed, so the preview must resolve the same one the
    # solver's population will, or the charged |Λgood| drifts from the
    # actually-honest IDs.
    pop_preview = build_population(
        graph, f, start=gather, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    charge = weak_gathering_rounds(graph, pop_preview.honest_ids)
    return _pairing_solver(
        graph, f, adversary, gather, seed, byz_placement, keep_trace,
        pre_charges=[("gathering_dpp_weak", charge)], theorem=2,
        max_rounds=max_rounds, scheduler=scheduler,
    )


def solve_theorem4(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    gather_node: int = 0,
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Theorem 4: gathered start, ``f ≤ ⌊n/3−1⌋`` weak Byzantine, O(n³).

    Three groups by sorted ID; three mapping runs with rotating roles and
    the ⌊k/6⌋+1 / ⌊k/3⌋+1 believe-thresholds; majority of the three maps;
    Dispersion-Using-Map.  Fully simulated.
    """
    _check_common(graph, f, graph.n // 3 - 1, "Theorem 4")
    return _group_solver(
        graph, f, adversary, gather_node, seed, byz_placement, keep_trace,
        pre_charges=[], scheme="three_groups", theorem=4, max_rounds=max_rounds,
        scheduler=scheduler,
    )


def solve_theorem5(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Theorem 5: arbitrary start, ``f ≤ ⌊√n⌋`` weak, Õ(n⁵·√n).

    Phase 1 is the Hirose et al. [27] gathering, charged at
    ``(f + |Λall|)·X(n)``; phase 2 splits the roster into two half groups
    for a single mapping run with in-group majorities; phase 3 as usual.

    Tolerance: the paper's ``f = O(√n)`` hides the constant required for
    the half-group majorities to survive all ``f`` faults landing in one
    group: ``f ≤ ⌈⌊n/2⌋/2⌉ − 1``.  Asymptotically ``√n`` binds (n ≥ 25);
    at small ``n`` the group bound binds.  We enforce the minimum of both.
    """
    group = graph.n // 2
    limit = min(int(math.isqrt(graph.n)), (group + 1) // 2 - 1)
    _check_common(graph, f, limit, "Theorem 5 (f = O(sqrt n) with half-group majorities)")
    gather = canonical_gather_node(graph)
    pop_preview = build_population(
        graph, f, start=gather, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    charge = hirose_gathering_rounds(graph, pop_preview.ids, f)
    return _group_solver(
        graph, f, adversary, gather, seed, byz_placement, keep_trace,
        pre_charges=[("gathering_hirose", charge)], scheme="two_groups_majority",
        theorem=5, max_rounds=max_rounds, scheduler=scheduler,
    )


def _check_common(graph: PortLabeledGraph, f: int, f_max: int, label: str) -> None:
    if not graph.is_connected():
        raise ConfigurationError("dispersion requires a connected graph")
    if graph.n < 3:
        raise ConfigurationError(f"{label} needs n >= 3")
    if not (0 <= f <= max(f_max, 0)):
        raise ConfigurationError(f"{label} tolerates 0 <= f <= {f_max}, got f={f}")
