"""Tests for the graph family generators."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    FAMILIES,
    GraphSpec,
    PortLabeledGraph,
    clique,
    complete_bipartite,
    erdos_renyi,
    hypercube,
    lollipop,
    path,
    quotient_graph,
    random_connected,
    random_regular,
    random_tree,
    resolve_spec,
    ring,
    spec_of,
    star,
    torus,
    view_partition,
)

#: Every generator with representative calls, including both the
#: canonical (seed=None) and the rng-scrambled labelings where they
#: exist.  Each entry: (generator name, args tuple).
GENERATOR_CALLS = [
    ("ring", (6,)),
    ("ring", (9, 4)),
    ("path", (2,)),
    ("path", (7, 1)),
    ("clique", (5,)),
    ("clique", (6, 2)),
    ("star", (6,)),
    ("star", (8, 3)),
    ("hypercube", (3,)),
    ("hypercube", (4, 5)),
    ("torus", (3, 4)),
    ("torus", (4, 5, 6)),
    ("complete_bipartite", (3, 4)),
    ("complete_bipartite", (1, 5, 2)),
    ("lollipop", (4, 3)),
    ("lollipop", (5, 2, 7)),
    ("random_tree", (2, 0)),
    ("random_tree", (11, 8)),
    ("random_regular", (10, 3, 1)),
    ("erdos_renyi", (12, 0.3, 2)),
    ("random_connected", (2, 1)),
    ("random_connected", (12, 9)),
]

_GENERATORS = {
    "ring": ring,
    "path": path,
    "clique": clique,
    "star": star,
    "hypercube": hypercube,
    "torus": torus,
    "complete_bipartite": complete_bipartite,
    "lollipop": lollipop,
    "random_tree": random_tree,
    "random_regular": random_regular,
    "erdos_renyi": erdos_renyi,
    "random_connected": random_connected,
}

_ids = [f"{name}{args}" for name, args in GENERATOR_CALLS]


class TestGeneratorEquivalence:
    """The networkx-free generators must be indistinguishable from the
    PR-1 networkx-built graphs: full validation, round-trips, and ``==``
    to the oracle path for fixed seeds."""

    @pytest.mark.parametrize("name,args", GENERATOR_CALLS, ids=_ids)
    def test_output_passes_full_validation(self, name, args):
        g = _GENERATORS[name](*args)
        # The validating constructor is the structural oracle: rebuilding
        # from the port table re-runs every check the trusted path skips.
        assert PortLabeledGraph(g.port_table()) == g

    @pytest.mark.parametrize("name,args", GENERATOR_CALLS, ids=_ids)
    def test_matches_networkx_oracle(self, name, args):
        from repro.analysis.graphbench import ORACLES

        assert _GENERATORS[name](*args) == ORACLES[name](*args)

    @pytest.mark.parametrize("name,args", GENERATOR_CALLS, ids=_ids)
    def test_networkx_round_trip(self, name, args):
        g = _GENERATORS[name](*args)
        h = g.to_networkx()
        assert h.number_of_nodes() == g.n and h.number_of_edges() == g.m
        # Deterministic relabeling of the exported edge structure yields a
        # valid graph with the same degree sequence.
        rebuilt = PortLabeledGraph.from_networkx(h)
        assert sorted(rebuilt.degree(u) for u in range(rebuilt.n)) == sorted(
            g.degree(u) for u in range(g.n)
        )

    @pytest.mark.parametrize("name,args", GENERATOR_CALLS, ids=_ids)
    def test_spec_round_trip(self, name, args):
        g = _GENERATORS[name](*args)
        spec = spec_of(g)
        assert isinstance(spec, GraphSpec) and spec.family == name
        assert resolve_spec(spec) == g

    def test_hand_built_graph_has_no_spec(self):
        g = PortLabeledGraph.from_edges(3, [(0, 1), (1, 2)])
        assert spec_of(g) is None

    def test_resolve_spec_memoises_per_process(self):
        spec = spec_of(ring(8, 1))
        assert resolve_spec(spec) is resolve_spec(spec)


class TestRing:
    def test_sizes(self):
        for n in (3, 4, 9):
            g = ring(n)
            assert g.n == n and g.m == n and g.is_regular()

    def test_canonical_labeling_symmetric(self):
        g = ring(6)
        for u in range(6):
            assert g.traverse(u, 1) == ((u + 1) % 6, 2)
            assert g.traverse(u, 2) == ((u - 1) % 6, 1)

    def test_canonical_quotient_collapses(self):
        assert quotient_graph(ring(8)).num_classes == 1

    def test_seeded_variant_valid(self):
        g = ring(7, seed=2)
        assert g.n == 7 and g.m == 7

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            ring(2)


class TestClique:
    def test_sizes(self):
        g = clique(5)
        assert g.n == 5 and g.m == 10

    def test_circulant_labeling_collapses(self):
        assert quotient_graph(clique(6)).num_classes == 1

    def test_circulant_structure(self):
        g = clique(5)
        for u in range(5):
            for p in range(1, 5):
                assert g.traverse(u, p) == ((u + p) % 5, 5 - p)

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            clique(1)


class TestHypercubeTorus:
    def test_hypercube_sizes(self):
        g = hypercube(3)
        assert g.n == 8 and g.m == 12 and g.is_regular()

    def test_hypercube_dimension_ports(self):
        g = hypercube(3)
        for u in range(8):
            for p in range(1, 4):
                v, q = g.traverse(u, p)
                assert v == u ^ (1 << (p - 1)) and q == p

    def test_hypercube_collapses(self):
        assert quotient_graph(hypercube(4)).num_classes == 1

    def test_torus_sizes(self):
        g = torus(3, 4)
        assert g.n == 12 and g.m == 24 and g.is_regular()

    def test_torus_collapses(self):
        assert quotient_graph(torus(3, 3)).num_classes == 1

    def test_torus_too_small(self):
        with pytest.raises(ConfigurationError):
            torus(2, 5)


class TestOtherFamilies:
    def test_path_endpoints(self):
        g = path(5)
        degs = sorted(g.degree(u) for u in range(5))
        assert degs == [1, 1, 2, 2, 2]

    def test_star_hub(self):
        g = star(6)
        assert g.max_degree() == 5 and g.m == 5

    def test_random_regular_connected(self):
        g = random_regular(10, 3, seed=0)
        assert g.is_connected() and g.is_regular() and g.degree(0) == 3

    def test_random_regular_impossible(self):
        with pytest.raises(ConfigurationError):
            random_regular(5, 3, seed=0)  # odd n*d

    def test_erdos_renyi_connected(self):
        g = erdos_renyi(12, 0.3, seed=1)
        assert g.is_connected() and g.n == 12

    def test_random_tree_is_tree(self):
        g = random_tree(9, seed=4)
        assert g.n == 9 and g.m == 8 and g.is_connected()

    def test_random_tree_n2(self):
        g = random_tree(2, seed=0)
        assert g.m == 1

    def test_lollipop_shape(self):
        g = lollipop(4, 3)
        assert g.n == 7 and g.is_connected()

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7 and g.m == 12

    def test_random_connected_connected_and_dense_enough(self):
        for seed in range(5):
            g = random_connected(10, seed=seed)
            assert g.is_connected()
            assert g.m >= g.n - 1

    def test_random_connected_usually_view_distinct(self):
        # Asymmetric random graphs are view-distinguishable w.h.p.; check a
        # majority of seeds to avoid over-fitting a single lucky instance.
        hits = sum(
            1
            for seed in range(8)
            if len(set(view_partition(random_connected(11, seed=seed)))) == 11
        )
        assert hits >= 6


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_registry_generates_connected(self, name):
        g = FAMILIES[name](9, seed=2)
        assert g.is_connected()
        assert g.n >= 8  # registry may round n for parity constraints
