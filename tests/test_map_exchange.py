"""Unit tests for the map-exchange collection (group modes' final step)."""

import pytest

from repro.graphs import canonical_form, random_connected, ring
from repro.mapping import RunSpec
from repro.mapping.token_mapping import _collect_map
from repro.sim import Stay, World


def exchange_world(posts, agent_ids, cmd_threshold, tag=("x",)):
    """Build a world where given (sender_id, payload) posts sit on the
    previous-round board, then collect from an honest observer's view."""
    g = ring(4)
    w = World(g)
    collected = {}
    run = RunSpec(
        tag=tag, start_round=0, tick_budget=1,
        agent_ids=frozenset(agent_ids), token_ids=frozenset({99}),
        cmd_threshold=cmd_threshold, exchange=True,
    )

    def poster_gen(api, payloads):
        for p in payloads:
            api.say(p)
        yield Stay()
        yield Stay()

    def observer(api):
        yield Stay()
        collected["result"] = _collect_map(api, run)
        yield Stay()

    # Posters get the IDs named in `posts` via distinct robots.
    for rid, payloads in posts.items():
        w.add_robot(rid, 0, lambda api, _p=payloads: poster_gen(api, _p), byzantine=True)

    w.add_robot(50, 0, observer)
    w.step()
    w.step()
    return collected["result"]


GOOD = canonical_form(random_connected(5, seed=1), 0)
BAD = canonical_form(ring(5), 0)


class TestCollectMap:
    def test_quorum_accepted(self):
        result = exchange_world(
            {1: [("map", ("x",), GOOD)], 2: [("map", ("x",), GOOD)]},
            agent_ids={1, 2}, cmd_threshold=2,
        )
        assert result == GOOD

    def test_below_threshold_rejected(self):
        result = exchange_world(
            {1: [("map", ("x",), GOOD)]},
            agent_ids={1, 2}, cmd_threshold=2,
        )
        assert result is None

    def test_non_agents_ignored(self):
        result = exchange_world(
            {7: [("map", ("x",), GOOD)], 8: [("map", ("x",), GOOD)]},
            agent_ids={1, 2}, cmd_threshold=1,
        )
        assert result is None

    def test_wrong_tag_ignored(self):
        result = exchange_world(
            {1: [("map", ("y",), GOOD)]},
            agent_ids={1}, cmd_threshold=1,
        )
        assert result is None

    def test_none_payload_ignored(self):
        result = exchange_world(
            {1: [("map", ("x",), None)]},
            agent_ids={1}, cmd_threshold=1,
        )
        assert result is None

    def test_largest_backing_wins(self):
        result = exchange_world(
            {
                1: [("map", ("x",), GOOD)],
                2: [("map", ("x",), GOOD)],
                3: [("map", ("x",), BAD)],
            },
            agent_ids={1, 2, 3}, cmd_threshold=1,
        )
        assert result == GOOD

    def test_duplicate_sender_counts_once(self):
        # One agent spamming the same encoding is a single distinct backer.
        result = exchange_world(
            {1: [("map", ("x",), BAD), ("map", ("x",), BAD)]},
            agent_ids={1, 2, 3}, cmd_threshold=2,
        )
        assert result is None
