"""Anonymous port-labeled graphs — the substrate of the paper's model.

The paper (Section 1.1) works on an *anonymous* graph: nodes carry no
identifiers visible to robots; instead, every node of degree ``d`` labels
its incident edges with distinct *ports* ``1..d``.  An edge ``{u, v}``
therefore has two independent port numbers, one per endpoint, and a robot
crossing it learns both (the outgoing port it chose and the incoming port
at the destination).

:class:`PortLabeledGraph` stores this structure explicitly.  Node names
``0..n-1`` exist only on the simulator side ("true names"); robot programs
never see them — they interact with the world exclusively through port
numbers, degrees and co-located robots (enforced by :mod:`repro.sim`).

Design notes
------------
* Simple graphs only (no self-loops or parallel edges): every graph the
  paper's evaluation needs is simple.  Quotient graphs *can* be non-simple;
  they get their own lightweight representation in
  :mod:`repro.graphs.quotient`.
* Port tables are plain tuples for cache-friendly, allocation-free
  traversal — ``traverse`` is the innermost hot call of the simulator
  (millions of invocations per benchmark), per the optimization guidance of
  profiling-first and avoiding per-call allocation.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..errors import GraphStructureError, PortError

__all__ = ["PortLabeledGraph"]


class PortLabeledGraph:
    """An undirected simple graph with local port labels at every node.

    Parameters
    ----------
    port_map:
        ``port_map[u][p] == (v, q)`` states that node ``u``'s port ``p``
        (1-based) leads to node ``v``, and the same edge is seen by ``v``
        through its port ``q``.  Mapping must be symmetric.

    The constructor validates the full structural contract (contiguous
    1-based ports, symmetry, simplicity) and is therefore the single choke
    point guaranteeing every ``PortLabeledGraph`` in the system is legal.
    """

    __slots__ = ("_ports", "_n", "_m", "_adjacency")

    def __init__(self, port_map: Mapping[int, Mapping[int, Tuple[int, int]]]):
        n = len(port_map)
        if set(port_map.keys()) != set(range(n)):
            raise GraphStructureError(
                f"nodes must be exactly 0..{n - 1}, got {sorted(port_map.keys())[:8]}..."
            )
        ports: List[Tuple[Tuple[int, int], ...]] = []
        for u in range(n):
            table = port_map[u]
            deg = len(table)
            if set(table.keys()) != set(range(1, deg + 1)):
                raise GraphStructureError(
                    f"node {u}: ports must be exactly 1..{deg}, got {sorted(table.keys())}"
                )
            row: List[Tuple[int, int]] = []
            seen_neighbours = set()
            for p in range(1, deg + 1):
                v, q = table[p]
                if not (0 <= v < n):
                    raise GraphStructureError(f"node {u} port {p}: endpoint {v} out of range")
                if v == u:
                    raise GraphStructureError(f"node {u} port {p}: self-loops not allowed")
                if v in seen_neighbours:
                    raise GraphStructureError(
                        f"node {u}: parallel edge to {v} (simple graphs only)"
                    )
                seen_neighbours.add(v)
                row.append((v, q))
            ports.append(tuple(row))
        # Symmetry: u--p-->(v,q) must be mirrored by v--q-->(u,p).
        for u in range(n):
            for p0, (v, q) in enumerate(ports[u]):
                p = p0 + 1
                if q < 1 or q > len(ports[v]):
                    raise GraphStructureError(
                        f"node {u} port {p}: remote port {q} out of range at node {v}"
                    )
                back_v, back_p = ports[v][q - 1]
                if (back_v, back_p) != (u, p):
                    raise GraphStructureError(
                        f"asymmetric ports: {u}-{p}->({v},{q}) but {v}-{q}->({back_v},{back_p})"
                    )
        self._ports = tuple(ports)
        self._n = n
        self._m = sum(len(row) for row in ports) // 2
        self._adjacency = tuple(tuple(v for v, _ in row) for row in ports)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph,
        rng=None,
    ) -> "PortLabeledGraph":
        """Build a port-labeled graph from a networkx simple graph.

        Nodes are relabeled to ``0..n-1`` in sorted order.  Each node's
        ports are assigned to its neighbours either in sorted-neighbour
        order (``rng is None``, deterministic) or in a random permutation
        drawn from ``rng`` (a ``numpy.random.Generator`` or
        ``random.Random``) — the paper stresses that the two endpoints of
        an edge may disagree on port numbers, and random assignment
        exercises that.
        """
        if graph.is_directed() or graph.is_multigraph():
            raise GraphStructureError("only undirected simple graphs are supported")
        nodes = sorted(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        port_map: Dict[int, Dict[int, Tuple[int, int]]] = {i: {} for i in range(len(nodes))}
        # First decide, per node, the port of each incident edge.
        port_of: Dict[Tuple[int, int], int] = {}
        for v in nodes:
            u = index[v]
            nbrs = sorted(index[w] for w in graph.neighbors(v))
            if rng is not None:
                nbrs = list(nbrs)
                _shuffle(rng, nbrs)
            for p, w in enumerate(nbrs, start=1):
                port_of[(u, w)] = p
        for (u, w), p in port_of.items():
            port_map[u][p] = (w, port_of[(w, u)])
        return cls(port_map)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "PortLabeledGraph":
        """Convenience: deterministic port labeling of an edge list."""
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        return cls.from_networkx(g)

    # ------------------------------------------------------------------ #
    # Core queries (hot path)
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def degree(self, u: int) -> int:
        """Degree of node ``u`` (== number of ports at ``u``)."""
        return len(self._ports[u])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (the paper's ``Δ``)."""
        return max((len(row) for row in self._ports), default=0)

    def traverse(self, u: int, port: int) -> Tuple[int, int]:
        """Cross the edge at ``u`` leaving through ``port``.

        Returns ``(v, q)``: the destination node and the *incoming* port at
        the destination — exactly the information the model grants a moving
        robot (Section 1.1: "it is aware of both port numbers assigned to
        the edge through which it passed").
        """
        row = self._ports[u]
        if port < 1 or port > len(row):
            raise PortError(f"node {u} has ports 1..{len(row)}, not {port}")
        return row[port - 1]

    def neighbours(self, u: int) -> Tuple[int, ...]:
        """True-name neighbours of ``u`` (simulator-side only)."""
        return self._adjacency[u]

    def port_to(self, u: int, v: int) -> int:
        """The port at ``u`` whose edge leads to ``v`` (simulator-side)."""
        for p0, (w, _) in enumerate(self._ports[u]):
            if w == v:
                return p0 + 1
        raise PortError(f"no edge {u} -> {v}")

    def ports(self, u: int) -> range:
        """Iterable of valid port numbers at ``u``."""
        return range(1, len(self._ports[u]) + 1)

    def edges(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate edges as ``(u, p, v, q)`` with ``u < v``."""
        for u in range(self._n):
            for p0, (v, q) in enumerate(self._ports[u]):
                if u < v:
                    yield (u, p0 + 1, v, q)

    # ------------------------------------------------------------------ #
    # Structure-level helpers
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        """True iff the graph is connected (dispersion requires it)."""
        if self._n == 0:
            return True
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def is_regular(self) -> bool:
        """True iff every node has the same degree."""
        degs = {len(row) for row in self._ports}
        return len(degs) <= 1

    def to_networkx(self) -> nx.Graph:
        """Export the underlying simple graph (port labels as edge attrs)."""
        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, p, v, q in self.edges():
            g.add_edge(u, v, ports={u: p, v: q})
        return g

    def relabel(self, perm: Sequence[int]) -> "PortLabeledGraph":
        """Return an isomorphic copy with node ``i`` renamed ``perm[i]``.

        Port numbers are preserved — the result is port-preserving
        isomorphic to ``self``.  Used to hand robots *privately relabeled*
        maps so no information leaks through true node names.
        """
        if sorted(perm) != list(range(self._n)):
            raise GraphStructureError("perm must be a permutation of 0..n-1")
        port_map: Dict[int, Dict[int, Tuple[int, int]]] = {i: {} for i in range(self._n)}
        for u in range(self._n):
            for p0, (v, q) in enumerate(self._ports[u]):
                port_map[perm[u]][p0 + 1] = (perm[v], q)
        return PortLabeledGraph(port_map)

    # ------------------------------------------------------------------ #
    # Dunder / misc
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._ports == other._ports

    def __hash__(self) -> int:
        return hash(self._ports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortLabeledGraph(n={self._n}, m={self._m})"

    def port_table(self) -> Dict[int, Dict[int, Tuple[int, int]]]:
        """Deep-copy the port map (for serialisation / relabeling)."""
        return {
            u: {p0 + 1: vq for p0, vq in enumerate(row)}
            for u, row in enumerate(self._ports)
        }


def _shuffle(rng, items: list) -> None:
    """Shuffle in place with either numpy Generator or random.Random."""
    if hasattr(rng, "shuffle") and hasattr(rng, "integers"):  # numpy Generator
        rng.shuffle(items)
    elif hasattr(rng, "shuffle"):  # random.Random
        rng.shuffle(items)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported rng type: {type(rng)!r}")
