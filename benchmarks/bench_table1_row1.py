"""Table 1 row 1 (Theorem 1): f <= n-1, arbitrary start, quotient-class graphs.

Regenerates the row empirically: at the maximum tolerance ``f = n − 1``
and at ``f = n/2``, under the most hostile weak strategies, the algorithm
must disperse within its polynomial bound.  ``extra_info`` carries the
round counts (the paper's metric); pytest-benchmark reports wall time.
"""

import pytest

from conftest import attach
from repro.byzantine import Adversary
from repro.core import get_row

ROW = get_row(1)


@pytest.mark.parametrize("strategy", ["squatter", "ghost_squatter", "flag_spammer"])
def bench_row1_full_tolerance(benchmark, bench_graph, strategy):
    f = ROW.f_max(bench_graph)

    def run():
        return ROW.solver(bench_graph, f=f, adversary=Adversary(strategy, seed=1), seed=1)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.success, report.violations
    attach(
        benchmark, report, f=f, strategy=strategy,
        paper_bound=ROW.paper_bound(bench_graph, f), tolerance="n-1",
    )


def bench_row1_half_byzantine(benchmark, bench_graph):
    f = bench_graph.n // 2

    def run():
        return ROW.solver(bench_graph, f=f, adversary=Adversary("random_walker", seed=2), seed=2)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.success
    attach(benchmark, report, f=f, strategy="random_walker")


def bench_row1_all_honest(benchmark, bench_graph):
    def run():
        return ROW.solver(bench_graph, f=0, seed=3)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.success
    attach(benchmark, report, f=0, strategy="none")
