"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.graphs import (
    clique,
    erdos_renyi,
    hypercube,
    lollipop,
    path,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)

# Project-wide hypothesis profile: simulations are slow-ish per example, so
# keep example counts modest and disable the wall-clock deadline.
settings.register_profile(
    "repro",
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
settings.load_profile("repro")


@pytest.fixture
def rc8():
    """A view-distinguishable random connected graph on 8 nodes."""
    return random_connected(8, seed=5)


@pytest.fixture
def rc10():
    """A view-distinguishable random connected graph on 10 nodes."""
    return random_connected(10, seed=3)


@pytest.fixture
def ring9():
    """Canonical symmetric ring on 9 nodes."""
    return ring(9)


#: Small zoo of named graphs reused by parametrised structure tests.
GRAPH_ZOO = {
    "ring6": lambda: ring(6),
    "ring9_scrambled": lambda: ring(9, seed=4),
    "path5": lambda: path(5),
    "clique5": lambda: clique(5),
    "star6": lambda: star(6),
    "hypercube3": lambda: hypercube(3),
    "torus3x3": lambda: torus(3, 3),
    "tree8": lambda: random_tree(8, seed=2),
    "regular3_8": lambda: random_regular(8, 3, seed=1),
    "er10": lambda: erdos_renyi(10, 0.4, seed=6),
    "lollipop": lambda: lollipop(4, 3),
    "rc9": lambda: random_connected(9, seed=7),
}


@pytest.fixture(params=sorted(GRAPH_ZOO))
def zoo_graph(request):
    """Parametrised fixture iterating the whole graph zoo."""
    return GRAPH_ZOO[request.param]()
