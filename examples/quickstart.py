#!/usr/bin/env python3
"""Quickstart: Byzantine dispersion, imperative and declarative.

Part 1 runs one algorithm directly — build an anonymous port-labeled
graph, corrupt most of the robots, run the paper's Theorem 1 algorithm,
and check every honest robot ends up alone on its node.

Part 2 says the same thing declaratively: a `Scenario` is a frozen,
serializable description of "what to run" whose `.key()` is the
run-store cache key of that exact work, and whose JSON form is what
`python -m repro scenario file.json` executes.

Part 3 turns one more knob: the activation scheduler (who gets to act
each round — see `repro.sim.schedulers`), the axis that relaxes the
paper's fully synchronous model.

Run:  python examples/quickstart.py
"""

from repro import Adversary, Scenario, solve_theorem1
from repro.graphs import is_quotient_isomorphic, random_connected

# A random connected graph on 12 nodes.  Random graphs are almost surely
# "view-distinguishable" (all nodes look different to a deterministic
# robot), which is exactly the graph class Theorem 1 needs.
graph = random_connected(12, seed=1)
assert is_quotient_isomorphic(graph), "resample the seed for this class"

# --- Part 1: the imperative API -------------------------------------- #
# 12 robots, 11 of them Byzantine fake-settlers, arbitrary start nodes.
report = solve_theorem1(
    graph,
    f=11,
    adversary=Adversary("ghost_squatter"),
    start="arbitrary",
    seed=7,
)

print(f"dispersed            : {report.success}")
print(f"simulated rounds     : {report.rounds_simulated}")
print(f"charged rounds       : {report.rounds_charged:,}  (Find-Map, polynomial)")
print(f"honest settlement    : {report.settled}")
assert report.success

# --- Part 2: the declarative API ------------------------------------- #
# The same experiment as a value.  f="max" means the row's tolerance
# bound (n-1 for row 1); .run() compiles to the sweep executor, so
# stores, resume, and workers all apply to single scenarios too.
scenario = Scenario(algorithm=1, graph=graph, strategy="ghost_squatter", seed=7)
records = scenario.run()

print(f"\nscenario             : {scenario.describe()}")
print(f"store cell key       : {scenario.key()}")
print(f"record               : success={records[0]['success']}, "
      f"f={records[0]['f']}, rounds={records[0]['rounds_simulated']}")
assert records[0]["success"]

# Scenarios serialize canonically; the JSON below is exactly what
# `python -m repro scenario file.json` accepts, and the round trip is a
# fixed point of the cache key.
print(f"as JSON              : {scenario.to_json()}")
assert Scenario.from_json(scenario.to_json()).key() == scenario.key()

# --- Part 3: the activation-scheduler axis ---------------------------- #
# The paper's model is fully synchronous; the `scheduler` axis relaxes
# that.  Here the same experiment under semi-synchronous timing: each
# robot is activated with probability 0.9 per round (the RNG stream is
# derived from the adversary seed, so the run is fully deterministic).
# Non-default schedulers land in their own store cells and tag their
# records with the spec and the activations tally.
semi = Scenario(algorithm=1, graph=graph, strategy="ghost_squatter", seed=7,
                scheduler="semi_synchronous(p=0.9)")
(sr,) = semi.run()

print(f"\nsemi-synchronous     : {semi.describe()}")
print(f"distinct store cell  : {semi.key() != scenario.key()}")
print(f"record               : success={sr['success']}, "
      f"activations={sr['activations']}, scheduler={sr['scheduler']}")
assert semi.key() != scenario.key()
assert sr["scheduler"] == "semi_synchronous(p=0.9)"
