#!/usr/bin/env python3
"""The prior work, alive: ring dispersion [34, 36] vs its generalisation.

The paper's Section 1.3 insight is that the ring algorithm worked
because a robot that knows n effectively *has a map* of the ring for
free.  This script shows both sides:

1. the ring-specific algorithm dispersing n robots with n−1 Byzantine
   fake-settlers in O(n) rounds (the prior work's headline), and
2. the generalisation (Theorem 3) solving the same instance with no
   ring-specific knowledge — at the price the paper quantifies.

Run:  python examples/ring_legacy.py
"""

from repro import Adversary
from repro.analysis import render_table
from repro.baselines import solve_ring_dispersion
from repro.core import solve_theorem3
from repro.graphs import ring

N = 12
rows = []

# Prior work: free map, maximum tolerance, linear rounds.
rep = solve_ring_dispersion(N, f=N - 1, adversary=Adversary("ghost_squatter"))
rows.append(
    {
        "algorithm": "ring prior work [34,36]",
        "f": N - 1,
        "rounds": rep.rounds_simulated,
        "dispersed": rep.success,
    }
)

# Same ring, half tolerance, general algorithm: the map must be *earned*
# through the pairing tournament.
rep_general = solve_theorem3(ring(N), f=N // 2 - 1, adversary=Adversary("ghost_squatter"))
rows.append(
    {
        "algorithm": "Theorem 3 (general graphs)",
        "f": N // 2 - 1,
        "rounds": rep_general.rounds_simulated,
        "dispersed": rep_general.success,
    }
)

print(render_table(rows, title=f"Ring of n={N}: prior work vs generalisation"))
assert all(r["dispersed"] for r in rows)
ratio = rep_general.rounds_simulated / rep.rounds_simulated
print(f"\nGeneralisation premium on the ring: {ratio:,.0f}x more rounds —")
print("exactly the paper's message: map knowledge, however obtained, is the game.")
