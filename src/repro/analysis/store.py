"""Content-addressed run store: resumable, crash-tolerant sweep caching.

A :class:`RunStore` is an on-disk cache of sweep *cell* results.  Each
cell — one ``(row serial, graph, adversary, f, seed)`` solver invocation
— is keyed by :func:`cell_key`, a SHA-256 over the canonical JSON of its
configuration **plus the record-schema version**, and maps to the list
of records the cell produced.  The executor in
:mod:`repro.analysis.experiments` streams completed cells into the store
as they finish and, on a re-run, skips every cell whose key is already
present — so an interrupted ``run_table1`` over a big grid resumes where
it died instead of recomputing, and a warm store answers the whole sweep
with zero solver calls.

Layout
------
A store is a directory::

    <path>/meta.json        {"format": "repro-run-store", "schema_version": N}
    <path>/shard-ab.jsonl   one JSON line per completed cell

Shards are named by the first two hex digits of the cell key (up to 256
shards), which keeps any one file small and append cheap.  Each line is
``{"key": ..., "sha": ..., "records": [...]}`` where ``sha`` is a
digest of the canonical records JSON.

Durability
----------
Appends are atomic at the line level: a line is written with a single
buffered write, flushed, and fsynced before :meth:`RunStore.put`
returns.  Loading tolerates torn or corrupt lines (a crash mid-append, a
truncated copy): any line that fails to parse — or whose ``sha`` does
not match its records at read time — is silently treated as absent, so
the worst a crash can cost is the one cell that was being appended.

The intended regime is **one writer per store at a time** (any number of
readers).  Concurrent writers cannot corrupt each other — appends are
line-atomic and every read is digest-checked — but each handle indexes
its own appends by the offset it observed, so interleaved writers can
invalidate one another's in-memory entries and trigger redundant
recomputes (a later open sees everything both wrote).

Invalidation
------------
The record-schema version is folded into every key, so bumping
:data:`SCHEMA_VERSION` (because record contents changed meaning) orphans
all old entries rather than serving stale shapes; the store file format
itself never needs migrating.  ``meta.json`` records the creating
version for external tooling (``benchmarks/check_regression.py`` refuses
to ``--update`` a baseline across a schema change).
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["SCHEMA_VERSION", "RunStore", "cell_key"]

#: Version of the *record* schema (the dict shape produced by
#: :mod:`repro.analysis.metrics`).  Bump when record contents change
#: meaning; every cached entry keyed under the old version then misses.
SCHEMA_VERSION = 1

_META_NAME = "meta.json"
_SHARD_PREFIX = "shard-"


def _canonical_json(value) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def _records_sha(records: List[Dict]) -> str:
    """Integrity digest of a cell's record list."""
    return hashlib.sha256(_canonical_json(records).encode("utf-8")).hexdigest()


def cell_key(
    kind: str,
    serial: int,
    graph,
    adversary,
    f: Optional[int],
    seed: int,
    schema_version: int = SCHEMA_VERSION,
    placement: str = "lowest",
    rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> str:
    """Canonical content hash identifying one sweep cell.

    ``graph`` is a JSON-safe graph fingerprint (canonical
    :class:`~repro.graphs.specs.GraphSpec` form, or a CSR content hash
    for hand-built graphs) and ``adversary`` a canonical adversary
    descriptor (:meth:`~repro.byzantine.adversary.Adversary.descriptor`).
    Two cells collide exactly when they would run the identical solver
    invocation under the identical record schema.

    ``placement`` (Byzantine placement), ``rounds`` (round budget), and
    ``scheduler`` (canonical activation-scheduler spec, see
    :mod:`repro.sim.schedulers`) join the hashed payload **only at
    non-default values**: a default cell's key is bit-identical to the
    PR-3 key, so existing stores stay warm as new axes are introduced —
    and no schema bump is needed when an axis arrives, because default
    records are unchanged and non-default cells cannot alias old keys.
    """
    config = {
        "kind": kind,
        "serial": serial,
        "graph": graph,
        "adversary": adversary,
        "f": f,
        "seed": seed,
        "schema": schema_version,
    }
    if placement != "lowest":
        config["placement"] = placement
    if rounds is not None:
        config["rounds"] = rounds
    if scheduler != "synchronous":
        config["scheduler"] = scheduler
    payload = _canonical_json(config)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class RunStore:
    """Append-only, content-addressed store of sweep-cell records.

    Opening a store scans its shards once to build an in-memory
    ``key -> (shard, offset, length)`` index; record payloads stay on
    disk until :meth:`get` fetches them, so a store indexing millions of
    cells does not hold millions of records in memory.

    ``hits``/``misses``/``puts`` count this handle's traffic (reported
    by ``repro sweep``).
    """

    def __init__(self, path: str, schema_version: int = SCHEMA_VERSION):
        self.path = str(path)
        self.schema_version = schema_version
        try:
            os.makedirs(self.path, exist_ok=True)
        except OSError as exc:
            raise ConfigurationError(
                f"cannot use {self.path!r} as a run store: {exc}"
            )
        self._init_meta()
        #: key -> (shard path, byte offset, byte length); later lines win.
        self._index: Dict[str, Tuple[str, int, int]] = {}
        #: shards whose last line lacks a trailing newline (torn append):
        #: the next put must start on a fresh line or it would merge into
        #: the garbage and be skipped by every later load.
        self._torn_shards: set = set()
        self._load_index()
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # ----------------------------------------------------------------- #
    # Metadata
    # ----------------------------------------------------------------- #

    def _init_meta(self) -> None:
        meta_path = os.path.join(self.path, _META_NAME)
        if os.path.exists(meta_path):
            try:
                with open(meta_path, "r", encoding="utf-8") as fh:
                    meta = json.load(fh)
            except (ValueError, OSError) as exc:
                raise ConfigurationError(
                    f"{meta_path} is not a run-store meta file: {exc}"
                )
            if meta.get("format") != "repro-run-store":
                raise ConfigurationError(
                    f"{self.path} exists but is not a run store"
                )
            #: schema version the store was created under; entries of
            #: other versions simply never hit (version is in the key).
            self.created_schema_version = meta.get("schema_version")
            return
        self.created_schema_version = self.schema_version
        tmp = meta_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(
                {"format": "repro-run-store", "schema_version": self.schema_version},
                fh,
                sort_keys=True,
            )
            fh.write("\n")
        os.replace(tmp, meta_path)

    # ----------------------------------------------------------------- #
    # Index / shards
    # ----------------------------------------------------------------- #

    def _shard_path(self, key: str) -> str:
        return os.path.join(self.path, f"{_SHARD_PREFIX}{key[:2]}.jsonl")

    def _shard_files(self) -> List[str]:
        return sorted(
            os.path.join(self.path, name)
            for name in os.listdir(self.path)
            if name.startswith(_SHARD_PREFIX) and name.endswith(".jsonl")
        )

    def _load_index(self) -> None:
        for shard in self._shard_files():
            offset = 0
            raw = b""
            with open(shard, "rb") as fh:
                for raw in fh:
                    length = len(raw)
                    start = offset
                    offset += length
                    try:
                        obj = json.loads(raw.decode("utf-8"))
                    except (ValueError, UnicodeDecodeError):
                        continue  # torn append / corrupt line
                    if not isinstance(obj, dict) or "key" not in obj:
                        continue
                    self._index[obj["key"]] = (shard, start, length)
            if raw and not raw.endswith(b"\n"):
                self._torn_shards.add(shard)

    # ----------------------------------------------------------------- #
    # Read / write
    # ----------------------------------------------------------------- #

    def get(self, key: str) -> Optional[List[Dict]]:
        """The records cached for ``key``, or ``None``.

        Integrity is checked at read time: an entry whose digest no
        longer matches its records is dropped from the index and treated
        as a miss (the executor recomputes and re-appends it).
        """
        loc = self._index.get(key)
        if loc is None:
            self.misses += 1
            return None
        shard, offset, length = loc
        try:
            with open(shard, "rb") as fh:
                fh.seek(offset)
                raw = fh.read(length)
            obj = json.loads(raw.decode("utf-8"))
            records = obj["records"]
            if obj.get("key") != key or obj.get("sha") != _records_sha(records):
                raise ValueError("integrity check failed")
        except (OSError, ValueError, KeyError, TypeError, UnicodeDecodeError):
            del self._index[key]
            self.misses += 1
            return None
        self.hits += 1
        return records

    def put(self, key: str, records: List[Dict]) -> None:
        """Append one cell's records; atomic at line granularity."""
        # Insertion order is the contract here: records must round-trip
        # through json.loads with their key order intact (warm-store
        # replays are byte-compared against freshly computed records),
        # and the envelope keys are literals.  Integrity is carried by
        # `sha`, computed over canonical sorted JSON.
        # repro: allow-unsorted-json — record key order is load-bearing
        line = json.dumps(
            {"key": key, "sha": _records_sha(records), "records": records},
            separators=(",", ":"),
        )
        data = (line + "\n").encode("utf-8")
        shard = self._shard_path(key)
        # A shard ending in a torn line must be terminated first, or this
        # append would merge into the garbage and vanish on reload.
        prefix = b"\n" if shard in self._torn_shards else b""
        with open(shard, "ab") as fh:
            offset = fh.tell() + len(prefix)
            fh.write(prefix + data)
            fh.flush()
            os.fsync(fh.fileno())
        self._torn_shards.discard(shard)
        self._index[key] = (shard, offset, len(data))
        self.puts += 1

    # ----------------------------------------------------------------- #
    # Maintenance
    # ----------------------------------------------------------------- #

    def verify(self) -> Dict:
        """Full-store integrity scan; returns a structured report.

        Every shard line is parsed and digest-checked — not just the
        indexed ones, so superseded duplicates and torn tails are
        counted too.  Nothing is modified; ``ok`` is True exactly when
        every *live* (index-winning) entry checks out, because dead
        bytes cost space, not answers.  Report keys::

            ok             True iff no live entry is corrupt
            cells          live (indexed) entries
            verified       live entries whose digest matched
            corrupt        live entries that failed the digest check
            corrupt_keys   their cell keys (sorted)
            stale_lines    parseable lines superseded by a later put
            torn_lines     unparseable lines (crash-torn appends etc.)
            torn_shards    shards whose final line lacks a newline
        """
        live: Dict[str, Tuple[str, int]] = {}  # key -> (shard, offset)
        stale_lines = 0
        torn_lines = 0
        corrupt_keys = []
        verified = 0
        for shard in self._shard_files():
            offset = 0
            with open(shard, "rb") as fh:
                for raw in fh:
                    start = offset
                    offset += len(raw)
                    try:
                        obj = json.loads(raw.decode("utf-8"))
                        key = obj["key"]
                        good = obj["sha"] == _records_sha(obj["records"])
                    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                        torn_lines += 1
                        continue
                    if key in live:
                        stale_lines += 1  # earlier line loses to this one
                    live[key] = (shard, start) if good else None
        for key, loc in live.items():
            if loc is None:
                corrupt_keys.append(key)
            else:
                verified += 1
        return {
            "ok": not corrupt_keys,
            "cells": len(live),
            "verified": verified,
            "corrupt": len(corrupt_keys),
            "corrupt_keys": sorted(corrupt_keys),
            "stale_lines": stale_lines,
            "torn_lines": torn_lines,
            "torn_shards": len(self._torn_shards),
        }

    def repair(self) -> Dict:
        """Drop corrupt entries and rewrite damaged shards in place.

        Each shard containing a torn line or a digest-failing live entry
        is rewritten atomically (temp file + ``fsync`` + ``os.replace``)
        keeping only lines that parse *and* verify; healthy shards are
        untouched.  Superseded duplicates survive repair — reclaiming
        them is :meth:`compact`'s job.  The in-memory index is rebuilt.
        Returns ``{"repaired_shards": n, "dropped_lines": n,
        "cells": live-entry count after repair}``.
        """
        repaired = 0
        dropped = 0
        for shard in self._shard_files():
            keep: List[bytes] = []
            dirty = False
            with open(shard, "rb") as fh:
                for raw in fh:
                    try:
                        obj = json.loads(raw.decode("utf-8"))
                        if obj["sha"] != _records_sha(obj["records"]):
                            raise ValueError("digest mismatch")
                    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                        dirty = True
                        dropped += 1
                        continue
                    if not raw.endswith(b"\n"):
                        raw += b"\n"  # valid JSON, just missing its newline
                        dirty = True
                    keep.append(raw)
            if not dirty:
                continue
            self._rewrite_shard(shard, keep)
            repaired += 1
        self._reload()
        return {
            "repaired_shards": repaired,
            "dropped_lines": dropped,
            "cells": len(self._index),
        }

    def compact(self) -> Dict:
        """Rewrite every shard keeping only the winning line per key.

        Reclaims the space of superseded duplicates and sheds torn or
        corrupt lines as a side effect (a corrupt line never wins its
        key).  Rewrites are atomic per shard; a crash mid-compaction
        leaves each shard either fully old or fully new — both readable.
        Returns ``{"reclaimed_bytes": n, "dropped_lines": n,
        "cells": live-entry count}``.
        """
        before = sum(os.path.getsize(s) for s in self._shard_files())
        dropped = 0
        for shard in self._shard_files():
            winners: Dict[str, bytes] = {}
            total = 0
            with open(shard, "rb") as fh:
                for raw in fh:
                    total += 1
                    try:
                        obj = json.loads(raw.decode("utf-8"))
                        if obj["sha"] != _records_sha(obj["records"]):
                            raise ValueError("digest mismatch")
                    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                        continue
                    if not raw.endswith(b"\n"):
                        raw += b"\n"
                    winners[obj["key"]] = raw  # later line wins
            if total == len(winners):
                continue  # nothing to reclaim
            dropped += total - len(winners)
            self._rewrite_shard(shard, list(winners.values()))
        self._reload()
        after = sum(os.path.getsize(s) for s in self._shard_files())
        return {
            "reclaimed_bytes": before - after,
            "dropped_lines": dropped,
            "cells": len(self._index),
        }

    def _rewrite_shard(self, shard: str, lines: List[bytes]) -> None:
        """Atomically replace ``shard`` with ``lines`` (or delete it if
        empty); the temp file is fsynced before the rename so a crash
        cannot leave a half-written replacement."""
        if not lines:
            os.remove(shard)
            return
        tmp = shard + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(b"".join(lines))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, shard)

    def _reload(self) -> None:
        """Rebuild the index from disk after a maintenance rewrite."""
        self._index.clear()
        self._torn_shards.clear()
        self._load_index()

    # ----------------------------------------------------------------- #
    # Introspection
    # ----------------------------------------------------------------- #

    def stats(self) -> Dict:
        """Inspectable on-disk facts (``repro store stats``): shard
        count, indexed cells, byte totals, and schema versions — without
        anyone having to read JSONL by hand.

        ``bytes`` is the shard payload on disk (meta.json excluded);
        ``indexed_bytes`` the bytes the live index points at — the gap is
        superseded or corrupt lines a future compaction could reclaim.
        """
        shards = self._shard_files()
        shard_bytes = 0
        for shard in shards:
            try:
                shard_bytes += os.path.getsize(shard)
            except OSError:
                pass
        return {
            "path": self.path,
            "format": "repro-run-store",
            "schema_version": self.schema_version,
            "created_schema_version": self.created_schema_version,
            "shards": len(shards),
            "cells": len(self._index),
            "bytes": shard_bytes,
            "indexed_bytes": sum(length for _, _, length in self._index.values()),
            "torn_shards": len(self._torn_shards),
        }

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> Iterator[str]:
        return iter(self._index)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunStore({self.path!r}, entries={len(self._index)}, "
            f"schema_version={self.schema_version})"
        )
