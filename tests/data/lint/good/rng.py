"""Fixture: the seeded-stream RNG discipline no-unseeded-rng allows."""
import random

import numpy as np


def draw(seed: int):
    rng = np.random.default_rng((seed, 0xA11))   # explicit seed stream
    sub = np.random.default_rng(np.random.SeedSequence(seed))
    legacy = random.Random(seed)                 # seeded instance is fine
    return rng.random(), sub.random(), legacy.random()
