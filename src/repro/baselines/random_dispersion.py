"""Randomized scatter baseline (no maps, no guarantees).

Each unsettled robot: settle if the current node shows no settled robot
and it is the smallest-ID unsettled robot present; otherwise take a
uniformly random edge.  Terminates with probability 1 for honest-only
populations (a lazy-random-walk coupon argument), in expectation within
``O(n·m·log n)`` rounds — but offers *nothing* against Byzantine robots:
a squatter claiming ``Settled`` vetoes a node forever, and there is no
blacklist to catch it.  The baselines benchmark quantifies exactly that
gap against the paper's algorithms.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..graphs.exploration import _log2_ceil
from ..graphs.port_labeled import PortLabeledGraph
from ..sim.robot import SETTLED, Move, RobotAPI, Stay
from ..sim.scheduler import RunReport, finish_report
from ..sim.world import World
from ..core._setup import build_population

__all__ = ["solve_random_baseline", "random_rounds_budget"]


def random_rounds_budget(graph: PortLabeledGraph) -> int:
    """Round budget: a few multiples of the expected cover-style bound."""
    n, m = graph.n, max(graph.m, 1)
    return 32 * n * m * _log2_ceil(n) + 128


def _program(api: RobotAPI, rng: np.random.Generator):
    while True:
        snapshot = api.colocated_at_round_start()
        any_settled = any(v.state == SETTLED for v in snapshot)
        live = api.colocated()
        any_settled = any_settled or any(v.state == SETTLED for v in live)
        unsettled_smaller = [
            v.claimed_id
            for v in live
            if v.state != SETTLED and v.claimed_id < api.id
        ]
        if not any_settled and not unsettled_smaller:
            api.settle()
            return
        deg = api.degree()
        if deg == 0:
            yield Stay()
        else:
            yield Move(int(rng.integers(1, deg + 1)))


def solve_random_baseline(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    start: Union[str, int, Dict[int, int]] = "arbitrary",
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = False,
) -> RunReport:
    """Run the randomized scatter baseline (budgeted; may fail by timeout)."""
    if not graph.is_connected():
        raise ConfigurationError("dispersion requires a connected graph")
    pop = build_population(
        graph, f, start=start, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    world = World(graph, model="weak", keep_trace=keep_trace)
    byz = set(pop.byz_ids)
    for rid in pop.ids:
        node = pop.placement[rid]
        if rid in byz:
            world.add_robot(rid, node, pop.adversary.program_factory(rid), byzantine=True)
        else:
            rng = np.random.default_rng((seed, rid, 0xA11))

            def factory(api: RobotAPI, _rng=rng):
                return _program(api, _rng)

            world.add_robot(rid, node, factory, byzantine=False)
    world.run(max_rounds=random_rounds_budget(graph))
    return finish_report(
        world,
        algorithm="random_baseline",
        f=f,
        n=graph.n,
        strategy=pop.adversary.describe(),
        byz_ids=pop.byz_ids,
    )
