"""Graph substrate: anonymous port-labeled graphs, views, quotients, maps.

Public surface of :mod:`repro.graphs`; see the individual modules for the
theory references.  Everything the simulator and the paper's algorithms
know about graphs flows through these exports.
"""

from .exploration import (
    DEFAULT_COST_MODEL,
    ExplorationCostModel,
    exploration_rounds,
    id_length_bits,
    random_walk_cover,
)
from .generators import (
    FAMILIES,
    clique,
    complete_bipartite,
    erdos_renyi,
    hypercube,
    lollipop,
    path,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
)
from .isomorphism import (
    are_isomorphic,
    canonical_form,
    canonical_forms_all_roots,
    find_isomorphism,
    rooted_isomorphic,
)
from .port_labeled import PortLabeledGraph
from .quotient import QuotientGraph, is_quotient_isomorphic, quotient_graph
from .specs import (
    GraphSpec,
    canonical_spec,
    clear_spec_cache,
    graph_fingerprint,
    resolve_spec,
    spec_of,
)
from .traversal import TourStep, bfs_order, euler_tour, navigate, path_nodes
from .views import truncated_view, view_partition, view_signature

__all__ = [
    "PortLabeledGraph",
    "GraphSpec",
    "spec_of",
    "canonical_spec",
    "graph_fingerprint",
    "resolve_spec",
    "clear_spec_cache",
    "QuotientGraph",
    "quotient_graph",
    "is_quotient_isomorphic",
    "view_partition",
    "view_signature",
    "truncated_view",
    "canonical_form",
    "canonical_forms_all_roots",
    "rooted_isomorphic",
    "are_isomorphic",
    "find_isomorphism",
    "TourStep",
    "euler_tour",
    "navigate",
    "bfs_order",
    "path_nodes",
    "ExplorationCostModel",
    "DEFAULT_COST_MODEL",
    "exploration_rounds",
    "random_walk_cover",
    "id_length_bits",
    "ring",
    "path",
    "clique",
    "star",
    "hypercube",
    "torus",
    "random_regular",
    "erdos_renyi",
    "random_tree",
    "lollipop",
    "complete_bipartite",
    "random_connected",
    "FAMILIES",
]
