"""Experiment sweeps: the code behind every benchmark table and figure.

Each function returns a list of flat records (see
:mod:`repro.analysis.metrics`) that the benchmarks print via
:mod:`repro.analysis.tables` and EXPERIMENTS.md quotes.  Keeping sweeps
here — not in the benchmark files — makes them unit-testable and
reusable from the examples.

Parallel execution
------------------
Every sweep takes an opt-in ``workers=`` argument.  ``workers`` of
``None``/``0``/``1`` runs serially (the default, zero overhead); larger
values fan the sweep's independent cells out over a
``concurrent.futures.ProcessPoolExecutor``.  Records come back in the
**same order with the same values** as a serial run: cells are mapped in
submission order (``Executor.map`` preserves it) and every cell is a
pure function of picklable inputs (graph, row serial, strategy, seed).

Rows are shipped to workers by *serial number* and re-resolved from the
:data:`~repro.core.runner.TABLE1` registry in the child process (row
objects hold lambdas, which do not pickle).  A row object that is not
the registry's — e.g. a hand-built ``Table1Row`` in a test — silently
falls back to serial execution for correctness.

Graphs are shipped the same way: a generator-built graph carries a
:class:`~repro.graphs.specs.GraphSpec` (family name + bound arguments +
seed), and the job tuple carries that spec instead of the pickled graph.
Workers resolve specs through a per-process memo cache
(:func:`~repro.graphs.specs.resolve_spec`), so a 20-cell matrix over one
graph constructs it **once per worker**, not once per cell.  Generators
are deterministic in their arguments, so the resolved graph is ``==``
the parent's and records stay identical to a serial run.  Hand-built
graphs (no spec) fall back to being pickled whole, exactly the PR-1
behaviour (that path is pinned by ``tests/test_parallel_sweeps.py``).
``scaling_sweep`` always ships graphs: each of its graphs appears in
exactly one cell, so the memo cannot hit and reconstructing (e.g.
resampling a random family) in the worker would cost more than
unpickling the CSR bytes.

Sweep plans and the run store
-----------------------------
All four public sweeps are thin wrappers that compile their grid into an
explicit list of :class:`SweepCell` values and hand it to
:func:`execute_plan`.  The executor optionally carries a
:class:`~repro.analysis.store.RunStore`: completed cells are streamed to
the store **as they finish** (chunked ``Executor.map`` submission,
results reassembled in submission order), and on a re-run with
``resume=True`` every cell whose content key is already present is
answered from disk without touching a solver.  Record lists stay
byte-identical to a serial, store-less run in every mode — serial,
``workers>1``, resumed-from-partial-store, and fully warm (zero solver
calls).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Union

from ..byzantine.adversary import Adversary
from ..core.runner import Table1Row, get_row, row_applicable
from ..errors import ReproError
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.specs import GraphSpec, canonical_spec, graph_fingerprint, resolve_spec, spec_of
from .metrics import record_from_report
from .store import RunStore, cell_key

__all__ = [
    "SweepCell",
    "cell_key_of",
    "execute_plan",
    "run_table1_row",
    "run_table1",
    "tolerance_sweep",
    "scaling_sweep",
    "scheduler_matrix",
    "strategy_matrix",
]

#: Default ``Executor.map`` chunksize for plan execution.  1 keeps cell
#: dispatch maximally load-balanced (the PR-1/2 behaviour); larger
#: chunks amortise IPC for big grids of cheap cells.  Never affects
#: record values or order.
DEFAULT_CHUNK = 1


def _solver_extras(
    placement: str, max_rounds: Optional[int], scheduler: str = "synchronous"
) -> Dict:
    """Non-default solver kwargs only: the default call stays bit-for-bit
    the historical one, and hand-built rows whose solvers predate the
    ``byz_placement``/``max_rounds``/``scheduler`` kwargs keep working."""
    extras: Dict = {}
    if placement != "lowest":
        extras["byz_placement"] = placement
    if max_rounds is not None:
        extras["max_rounds"] = max_rounds
    if scheduler != "synchronous":
        extras["scheduler"] = scheduler
    return extras


def run_table1_row(
    row: Table1Row,
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    f: Optional[int] = None,
    placement: str = "lowest",
    max_rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> List[Dict]:
    """Run one Table 1 row at its tolerance bound under several strategies."""
    extras = _solver_extras(placement, max_rounds, scheduler)
    f_used = row.f_max(graph) if f is None else f
    records = []
    for strat in strategies:
        report = row.solver(
            graph, f=f_used, adversary=Adversary(strat, seed=seed), seed=seed,
            **extras,
        )
        records.append(
            record_from_report(
                report,
                serial=row.serial,
                theorem=row.theorem,
                running_time=row.running_time,
                start=row.start,
                strong=row.strong,
                strategy=strat,
                f=f_used,
                n=graph.n,
                paper_bound=row.paper_bound(graph, f_used),
            )
        )
    return records


# --------------------------------------------------------------------- #
# Process-parallel cell execution
# --------------------------------------------------------------------- #

def _registry_serial(row: Table1Row) -> Optional[int]:
    """The row's serial iff it is the registry's own object (picklable by
    reference in a worker via :func:`get_row`); ``None`` otherwise."""
    try:
        registered = get_row(row.serial)
    except KeyError:
        return None
    return row.serial if registered is row else None


#: When True (default), generator-built graphs are shipped to workers as
#: their :class:`GraphSpec` instead of being pickled.  Tests flip this to
#: pin that the PR-1 graph-pickling path still produces identical records.
SHIP_GRAPH_SPECS = True

#: What a job tuple's graph slot may hold.
GraphPayload = Union[PortLabeledGraph, GraphSpec]


def _graph_payload(graph: PortLabeledGraph) -> GraphPayload:
    """The cheapest picklable handle for ``graph``: its spec if it came
    from a registered generator, the graph itself otherwise."""
    spec = spec_of(graph)
    if SHIP_GRAPH_SPECS and spec is not None:
        return spec
    return graph


def _resolve_payload(payload: GraphPayload) -> PortLabeledGraph:
    """Worker-side: turn a job's graph slot back into a graph.

    Spec payloads hit the per-process memo cache in
    :mod:`repro.graphs.specs`, so repeated cells on the same graph skip
    reconstruction entirely.
    """
    if isinstance(payload, GraphSpec):
        return resolve_spec(payload)
    return payload


@dataclass(frozen=True)
class SweepCell:
    """One independent solver invocation in a sweep plan.

    ``kind`` selects the record shape: ``"table1"`` (also used by the
    strategy matrix), ``"tolerance"`` (rejection-aware), or
    ``"scaling"`` (adds ``m``).  ``payload`` is the graph itself or its
    :class:`GraphSpec`; the content key is identical either way, so a
    cell computed serially (graph payload) is found by a later parallel
    run (spec payload) and vice versa.  ``f=None`` means "the row's
    tolerance bound on this graph" (deterministic given row + graph,
    hence safe to cache under ``None``).
    """

    kind: str
    serial: int
    payload: GraphPayload
    strategy: str
    seed: int
    f: Optional[int] = None
    #: Byzantine placement ("lowest"/"highest"/"random"), an optional
    #: round budget, and the activation scheduler's canonical spec (see
    #: :mod:`repro.sim.schedulers`).  Defaults reproduce the historical
    #: cells exactly and are omitted from the content key, so old stores
    #: stay warm.
    placement: str = "lowest"
    rounds: Optional[int] = None
    scheduler: str = "synchronous"


def _payload_fingerprint(payload: GraphPayload):
    if isinstance(payload, GraphSpec):
        return canonical_spec(payload)
    return graph_fingerprint(payload)


def cell_key_of(cell: SweepCell, fingerprint=None) -> str:
    """Content-addressed store key for ``cell``.

    The adversary descriptor is derived exactly as :func:`_cell_records`
    constructs the adversary (registry strategy name + run seed), so the
    key pins the full solver invocation.  ``fingerprint`` lets callers
    that key many cells over one graph (the plan executor) hash the
    payload once instead of once per cell.
    """
    return cell_key(
        kind=cell.kind,
        serial=cell.serial,
        graph=_payload_fingerprint(cell.payload) if fingerprint is None else fingerprint,
        adversary=Adversary(cell.strategy, seed=cell.seed).descriptor(),
        f=cell.f,
        seed=cell.seed,
        placement=cell.placement,
        rounds=cell.rounds,
        scheduler=cell.scheduler,
    )


def _cell_records(cell: SweepCell) -> List[Dict]:
    """Run one cell; module-level for pickling.  Always returns the
    cell's record *list* (single-record kinds wrap theirs)."""
    row = get_row(cell.serial)
    graph = _resolve_payload(cell.payload)
    if cell.kind == "table1":
        return run_table1_row(
            row, graph, [cell.strategy], seed=cell.seed, f=cell.f,
            placement=cell.placement, max_rounds=cell.rounds,
            scheduler=cell.scheduler,
        )
    if cell.kind == "tolerance":
        return [
            _tolerance_record(
                row, graph, cell.f, cell.strategy, cell.seed,
                placement=cell.placement, max_rounds=cell.rounds,
                scheduler=cell.scheduler,
            )
        ]
    if cell.kind == "scaling":
        return [
            _scaling_record(
                row, graph, cell.f, cell.strategy, cell.seed,
                placement=cell.placement, max_rounds=cell.rounds,
                scheduler=cell.scheduler,
            )
        ]
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def _cells_chunk(cells: List[SweepCell]) -> List[List[Dict]]:
    """Run one submission chunk in a worker; module-level for pickling."""
    return [_cell_records(cell) for cell in cells]


def _wire_cell(cell: SweepCell) -> SweepCell:
    """The cell as shipped to a worker: generator graphs go as specs
    (per-worker memo), except scaling cells, whose graphs each appear in
    exactly one cell (the memo cannot hit; CSR unpickling is cheaper
    than re-running a random family's sampling loop)."""
    if cell.kind != "scaling" and isinstance(cell.payload, PortLabeledGraph):
        payload = _graph_payload(cell.payload)
        if payload is not cell.payload:
            return replace(cell, payload=payload)
    return cell


def execute_plan(
    cells: Sequence[SweepCell],
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> List[List[Dict]]:
    """Execute a sweep plan; returns one record list per cell, in order.

    With a ``store``, cells already present are answered from disk
    (``resume=True``) and every freshly computed cell is appended to the
    store **as it completes** — after a crash, the next run picks up
    from the last persisted cell.  ``workers > 1`` fans the pending
    cells out over a process pool in submission chunks of ``chunk``;
    chunks are persisted in *completion* order (``as_completed``, so a
    slow first cell cannot hold finished work out of the store) while
    the returned list is reassembled in submission order — record values
    and order are deterministic regardless of scheduling.
    """
    results: List[Optional[List[Dict]]] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    pending: List[int] = []
    #: payload id -> fingerprint: a rows x strategies grid shares one
    #: graph, so hash its CSR/spec once, not once per cell.
    fingerprints: Dict[int, object] = {}
    for i, cell in enumerate(cells):
        if store is not None:
            fp = fingerprints.get(id(cell.payload))
            if fp is None:
                fp = _payload_fingerprint(cell.payload)
                fingerprints[id(cell.payload)] = fp
            keys[i] = cell_key_of(cell, fingerprint=fp)
            if resume:
                cached = store.get(keys[i])
                if cached is not None:
                    results[i] = cached
                    continue
        pending.append(i)

    def _finish(i: int, recs: List[Dict]) -> None:
        results[i] = recs
        if store is not None:
            store.put(keys[i], recs)

    size = max(1, chunk)
    groups = [pending[j:j + size] for j in range(0, len(pending), size)]
    if workers and workers > 1 and len(groups) > 1:
        with ProcessPoolExecutor(max_workers=min(workers, len(groups))) as pool:
            futures = {
                pool.submit(_cells_chunk, [_wire_cell(cells[i]) for i in group]): group
                for group in groups
            }
            for fut in as_completed(futures):
                for i, recs in zip(futures[fut], fut.result()):
                    _finish(i, recs)
    else:
        for i in pending:
            _finish(i, _cell_records(cells[i]))
    return results


def _scaling_record(
    row: Table1Row, graph: PortLabeledGraph, f: int, strategy: str, seed: int,
    placement: str = "lowest", max_rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> Dict:
    """One scaling-sweep record (shared by the serial and worker paths so
    the parallel-equals-serial guarantee cannot drift)."""
    report = row.solver(
        graph, f=f, adversary=Adversary(strategy, seed=seed), seed=seed,
        **_solver_extras(placement, max_rounds, scheduler),
    )
    return record_from_report(
        report, serial=row.serial, theorem=row.theorem, f=f,
        n=graph.n, m=graph.m, strategy=strategy,
        paper_bound=row.paper_bound(graph, f),
    )


def _tolerance_record(
    row: Table1Row, graph: PortLabeledGraph, f: int, strategy: str, seed: int,
    placement: str = "lowest", max_rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> Dict:
    """Run one ``f`` value, mapping in-bound driver rejections to a
    ``rejected`` record.  Only the repro error hierarchy is treated as a
    rejection — an unexpected ``TypeError``/``KeyError`` is an engine bug
    and must propagate, not masquerade as an out-of-tolerance result."""
    try:
        report = row.solver(
            graph, f=f, adversary=Adversary(strategy, seed=seed), seed=seed,
            **_solver_extras(placement, max_rounds, scheduler),
        )
        return record_from_report(
            report, serial=row.serial, theorem=row.theorem, f=f,
            n=graph.n, strategy=strategy, rejected=False,
        )
    except ReproError as exc:  # driver enforces the theorem's bound
        rec = dict(
            serial=row.serial, theorem=row.theorem, f=f, n=graph.n,
            strategy=strategy, rejected=True, success=False,
            rounds_simulated=0, rounds_charged=0, rounds_total=0,
            n_violations=0, reason=type(exc).__name__,
        )
        if scheduler != "synchronous":
            # Keep the scheduler axis on rejections too (zero activations
            # were granted), so per-scheduler summaries group correctly;
            # synchronous rejections stay byte-identical to the legacy
            # record shape.
            rec["scheduler"] = scheduler
            rec["activations"] = 0
        return rec


# --------------------------------------------------------------------- #
# Sweeps — compatibility presets over the Scenario API
# --------------------------------------------------------------------- #
#
# The four public sweeps are kept as deprecation shims: each compiles its
# historical signature into a ScenarioGrid preset (repro.scenarios) and
# runs it through execute_plan, producing byte-identical records to the
# pre-Scenario implementations.  New code should build grids directly —
# `from repro import grid` — where every workload axis (placement, round
# budgets, multiple graphs/seeds) is declarative instead of a new
# parameter list.  (Imports are function-local: repro.scenarios imports
# this module's executor.)

def run_table1(
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    serials: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> List[Dict]:
    """Reproduce every applicable Table 1 row on one graph.

    Deprecation shim for ``table1_grid(graph, strategies, ...).run()``.
    ``workers > 1`` fans the (row × strategy) cells out over processes;
    a ``store`` makes the sweep resumable (see :func:`execute_plan`).
    Record order and values match a serial, store-less run exactly.
    """
    from ..scenarios import table1_grid

    return table1_grid(graph, strategies, seed=seed, serials=serials).run(
        workers=workers, store=store, resume=resume, chunk=chunk
    )


def tolerance_sweep(
    row: Table1Row,
    graph: PortLabeledGraph,
    f_values: Sequence[int],
    strategy: str,
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> List[Dict]:
    """Success vs ``f`` for one algorithm (at, below, and — where the
    driver allows — beyond its bound; out-of-range values are recorded as
    ``rejected`` instead of run).

    Deprecation shim for ``tolerance_grid(row, graph, f_values, ...)``.
    """
    from ..scenarios import ResultSet, tolerance_grid

    serial = _registry_serial(row)
    if serial is None:
        # Hand-built row: lambdas do not pickle and the registry cannot
        # re-resolve it, so it can be neither parallelised nor cached.
        return ResultSet(
            _tolerance_record(row, graph, f, strategy, seed) for f in f_values
        )
    return tolerance_grid(serial, graph, f_values, strategy, seed=seed).run(
        workers=workers, store=store, resume=resume, chunk=chunk
    )


def scaling_sweep(
    row: Table1Row,
    graphs: Sequence[PortLabeledGraph],
    strategy: str,
    seed: int = 0,
    f_fraction_of_max: float = 1.0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> List[Dict]:
    """Measured rounds vs ``n`` across a graph family, at a fixed fraction
    of the row's tolerance (for power-law fitting against the bound).

    Deprecation shim for ``scaling_grid(row, graphs, strategy, ...)``.
    """
    from ..scenarios import ResultSet, scaling_grid

    serial = _registry_serial(row)
    if serial is None:
        applicable = [g for g in graphs if row_applicable(row, g)]
        fs = [int(row.f_max(g) * f_fraction_of_max) for g in applicable]
        return ResultSet(
            _scaling_record(row, g, f, strategy, seed)
            for g, f in zip(applicable, fs)
        )
    return scaling_grid(
        serial, graphs, strategy, seed=seed, f_fraction_of_max=f_fraction_of_max
    ).run(workers=workers, store=store, resume=resume, chunk=chunk)


def scheduler_matrix(
    rows: Sequence[Union[int, str, Table1Row]],
    graph: PortLabeledGraph,
    schedulers: Sequence[str],
    strategy: str = "squatter",
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> List[Dict]:
    """Algorithms × activation schedulers at each row's tolerance bound.

    The timing analogue of :func:`strategy_matrix`: one adversary
    strategy, the scheduler axis varying (canonical spec strings — see
    :mod:`repro.sim.schedulers`).  ``synchronous`` cells share their
    store entries with every legacy sweep; non-default schedulers land
    in distinct cells.  Summarize the result grouped by scheduler::

        records = scheduler_matrix([4, 5], g,
                                   ["synchronous", "semi_synchronous(p=0.5)"])
        records.summarize("scheduler", missing="synchronous")
    """
    from ..scenarios import scheduler_matrix_grid

    return scheduler_matrix_grid(
        rows, graph, schedulers, strategy=strategy, seed=seed
    ).run(workers=workers, store=store, resume=resume, chunk=chunk)


def strategy_matrix(
    rows: Sequence[Table1Row],
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
) -> List[Dict]:
    """Algorithms × strategies grid at each row's tolerance bound.

    Deprecation shim for ``strategy_matrix_grid(rows, graph, ...)``.
    """
    from ..scenarios import ResultSet, strategy_matrix_grid

    applicable = [row for row in rows if row_applicable(row, graph)]
    if all(_registry_serial(row) is not None for row in applicable):
        # Applicability is already filtered above; tell the grid not to
        # redo it (for row 1 that is an O(n·m) quotient-isomorphism check).
        return strategy_matrix_grid(
            [row.serial for row in applicable], graph, strategies, seed=seed,
            applicable_only=False,
        ).run(workers=workers, store=store, resume=resume, chunk=chunk)
    records = ResultSet()
    for row in applicable:
        records.extend(run_table1_row(row, graph, strategies, seed=seed))
    return records
