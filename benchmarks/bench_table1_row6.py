"""Table 1 row 6 (Theorem 7): arbitrary start, strong Byzantine, exponential.

Requires knowledge of ``f``.  The charge is [24]'s exponential strong
gathering; everything after is row 7's machinery.  The benchmark verifies
the exponential dominates every polynomial row on the same instance.
"""

import pytest

from conftest import attach
from repro.byzantine import Adversary
from repro.core import get_row

ROW6 = get_row(6)
ROW7 = get_row(7)


@pytest.mark.parametrize("strategy", ["impersonator", "id_cycler"])
def bench_row6_at_tolerance(benchmark, bench_graph, strategy):
    f = ROW6.f_max(bench_graph)

    def run():
        return ROW6.solver(bench_graph, f=f, adversary=Adversary(strategy, seed=11), seed=11)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.success, report.violations
    assert report.rounds_charged == 2 ** bench_graph.n * bench_graph.n**2
    attach(
        benchmark, report, f=f, strategy=strategy,
        paper_bound=ROW6.paper_bound(bench_graph, f),
    )


def bench_row6_exponential_gap_vs_row7(benchmark, bench_graph):
    """Rows 6 vs 7: identical algorithm body; the arbitrary start pays an
    exponential gathering premium over the gathered start."""
    f = ROW6.f_max(bench_graph)

    def run():
        return ROW6.solver(bench_graph, f=f, adversary=Adversary("squatter"), seed=12)

    report6 = benchmark.pedantic(run, rounds=2, iterations=1)
    report7 = ROW7.solver(bench_graph, f=f, adversary=Adversary("squatter"), seed=12)
    assert report6.success and report7.success
    assert report6.rounds_total > report7.rounds_total
    attach(benchmark, report6, f=f, row7_total=report7.rounds_total)
