"""Experiment sweeps: the code behind every benchmark table and figure.

Each function returns a list of flat records (see
:mod:`repro.analysis.metrics`) that the benchmarks print via
:mod:`repro.analysis.tables` and EXPERIMENTS.md quotes.  Keeping sweeps
here — not in the benchmark files — makes them unit-testable and
reusable from the examples.

Parallel execution
------------------
Every sweep takes an opt-in ``workers=`` argument.  ``workers`` of
``None``/``0``/``1`` runs serially (the default, zero overhead); larger
values fan the sweep's independent cells out over a
``concurrent.futures.ProcessPoolExecutor``.  Records come back in the
**same order with the same values** as a serial run: cells are mapped in
submission order (``Executor.map`` preserves it) and every cell is a
pure function of picklable inputs (graph, row serial, strategy, seed).

Rows are shipped to workers by *serial number* and re-resolved from the
:data:`~repro.core.runner.TABLE1` registry in the child process (row
objects hold lambdas, which do not pickle).  A row object that is not
the registry's — e.g. a hand-built ``Table1Row`` in a test — silently
falls back to serial execution for correctness.

Graphs are shipped the same way: a generator-built graph carries a
:class:`~repro.graphs.specs.GraphSpec` (family name + bound arguments +
seed), and the job tuple carries that spec instead of the pickled graph.
Workers resolve specs through a per-process memo cache
(:func:`~repro.graphs.specs.resolve_spec`), so a 20-cell matrix over one
graph constructs it **once per worker**, not once per cell.  Generators
are deterministic in their arguments, so the resolved graph is ``==``
the parent's and records stay identical to a serial run.  Hand-built
graphs (no spec) fall back to being pickled whole, exactly the PR-1
behaviour (that path is pinned by ``tests/test_parallel_sweeps.py``).
``scaling_sweep`` always ships graphs: each of its graphs appears in
exactly one cell, so the memo cannot hit and reconstructing (e.g.
resampling a random family) in the worker would cost more than
unpickling the CSR bytes.

Sweep plans and the run store
-----------------------------
All four public sweeps are thin wrappers that compile their grid into an
explicit list of :class:`SweepCell` values and hand it to
:func:`execute_plan`.  The executor optionally carries a
:class:`~repro.analysis.store.RunStore`: completed cells are streamed to
the store **as they finish** (chunked sliding-window submission, results
reassembled in submission order), and on a re-run with ``resume=True``
every cell whose content key is already present is answered from disk
without touching a solver.  Record lists stay byte-identical to a
serial, store-less run in every mode — serial, ``workers>1``,
resumed-from-partial-store, and fully warm (zero solver calls).

Fault tolerance
---------------
:func:`execute_plan` is built to survive its own workers.  An
:class:`ExecutionPolicy` sets the knobs: per-cell wall-clock
``timeout`` (a hung chunk's pool is killed and respawned, the hung
cells retried), bounded ``max_retries`` with exponential backoff, and
quarantine — a cell that keeps failing becomes a structured failure
record (``success=False, failed=True, reason=...``) instead of a
crashed sweep, unless ``strict=True`` opts back into raising
:class:`~repro.errors.SweepFaultError`.  A dead worker
(``BrokenProcessPool`` — OOM kill, segfault) respawns the pool;
completed cells are already safe in the store and surviving pending
cells are resubmitted.  :class:`~repro.errors.ReproError` is exempt
from all of this: the repro hierarchy means *deterministic rejection*
(f beyond a bound, an inapplicable graph) and propagates immediately —
retrying it cannot change the answer.  Failure records are **never**
written to the store, so a quarantined cell is recomputed by the next
run instead of poisoning the cache.

The failure paths are testable on demand: a
:class:`~repro.analysis.faults.FaultPlan` (``faults=``) injects
deterministic worker crashes, hangs, and transient errors into
designated cells by content key, and the chaos suite pins the signature
invariant — under any injected fault schedule, surviving records are
byte-identical to a clean serial run, and a resume after a crash
recomputes zero persisted cells.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..byzantine.adversary import Adversary
from ..core.runner import Table1Row, get_row, row_applicable
from ..errors import ConfigurationError, ReproError, SweepFaultError
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.specs import GraphSpec, canonical_spec, graph_fingerprint, resolve_spec, spec_of
from .faults import FaultPlan, FaultSpec, inject
from .metrics import record_from_report
from .store import RunStore, cell_key

__all__ = [
    "DEFAULT_POLICY",
    "ExecutionPolicy",
    "SweepCell",
    "cell_key_of",
    "execute_plan",
    "run_table1_row",
    "run_table1",
    "tolerance_sweep",
    "scaling_sweep",
    "scheduler_matrix",
    "strategy_matrix",
]

#: Default ``Executor.map`` chunksize for plan execution.  1 keeps cell
#: dispatch maximally load-balanced (the PR-1/2 behaviour); larger
#: chunks amortise IPC for big grids of cheap cells.  Never affects
#: record values or order.
DEFAULT_CHUNK = 1


def _solver_extras(
    placement: str, max_rounds: Optional[int], scheduler: str = "synchronous"
) -> Dict:
    """Non-default solver kwargs only: the default call stays bit-for-bit
    the historical one, and hand-built rows whose solvers predate the
    ``byz_placement``/``max_rounds``/``scheduler`` kwargs keep working."""
    extras: Dict = {}
    if placement != "lowest":
        extras["byz_placement"] = placement
    if max_rounds is not None:
        extras["max_rounds"] = max_rounds
    if scheduler != "synchronous":
        extras["scheduler"] = scheduler
    return extras


def run_table1_row(
    row: Table1Row,
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    f: Optional[int] = None,
    placement: str = "lowest",
    max_rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> List[Dict]:
    """Run one Table 1 row at its tolerance bound under several strategies."""
    extras = _solver_extras(placement, max_rounds, scheduler)
    f_used = row.f_max(graph) if f is None else f
    records = []
    for strat in strategies:
        report = row.solver(
            graph, f=f_used, adversary=Adversary(strat, seed=seed), seed=seed,
            **extras,
        )
        records.append(
            record_from_report(
                report,
                serial=row.serial,
                theorem=row.theorem,
                running_time=row.running_time,
                start=row.start,
                strong=row.strong,
                strategy=strat,
                f=f_used,
                n=graph.n,
                paper_bound=row.paper_bound(graph, f_used),
            )
        )
    return records


# --------------------------------------------------------------------- #
# Process-parallel cell execution
# --------------------------------------------------------------------- #

def _registry_serial(row: Table1Row) -> Optional[int]:
    """The row's serial iff it is the registry's own object (picklable by
    reference in a worker via :func:`get_row`); ``None`` otherwise."""
    try:
        registered = get_row(row.serial)
    except KeyError:
        return None
    return row.serial if registered is row else None


#: When True (default), generator-built graphs are shipped to workers as
#: their :class:`GraphSpec` instead of being pickled.  Tests flip this to
#: pin that the PR-1 graph-pickling path still produces identical records.
SHIP_GRAPH_SPECS = True

#: What a job tuple's graph slot may hold.
GraphPayload = Union[PortLabeledGraph, GraphSpec]


def _graph_payload(graph: PortLabeledGraph) -> GraphPayload:
    """The cheapest picklable handle for ``graph``: its spec if it came
    from a registered generator, the graph itself otherwise."""
    spec = spec_of(graph)
    if SHIP_GRAPH_SPECS and spec is not None:
        return spec
    return graph


def _resolve_payload(payload: GraphPayload) -> PortLabeledGraph:
    """Worker-side: turn a job's graph slot back into a graph.

    Spec payloads hit the per-process memo cache in
    :mod:`repro.graphs.specs`, so repeated cells on the same graph skip
    reconstruction entirely.
    """
    if isinstance(payload, GraphSpec):
        return resolve_spec(payload)
    return payload


@dataclass(frozen=True)
class SweepCell:
    """One independent solver invocation in a sweep plan.

    ``kind`` selects the record shape: ``"table1"`` (also used by the
    strategy matrix), ``"tolerance"`` (rejection-aware), or
    ``"scaling"`` (adds ``m``).  ``payload`` is the graph itself or its
    :class:`GraphSpec`; the content key is identical either way, so a
    cell computed serially (graph payload) is found by a later parallel
    run (spec payload) and vice versa.  ``f=None`` means "the row's
    tolerance bound on this graph" (deterministic given row + graph,
    hence safe to cache under ``None``).
    """

    kind: str
    serial: int
    payload: GraphPayload
    strategy: str
    seed: int
    f: Optional[int] = None
    #: Byzantine placement ("lowest"/"highest"/"random"), an optional
    #: round budget, and the activation scheduler's canonical spec (see
    #: :mod:`repro.sim.schedulers`).  Defaults reproduce the historical
    #: cells exactly and are omitted from the content key, so old stores
    #: stay warm.
    placement: str = "lowest"
    rounds: Optional[int] = None
    scheduler: str = "synchronous"


def _payload_fingerprint(payload: GraphPayload):
    if isinstance(payload, GraphSpec):
        return canonical_spec(payload)
    return graph_fingerprint(payload)


def cell_key_of(cell: SweepCell, fingerprint=None) -> str:
    """Content-addressed store key for ``cell``.

    The adversary descriptor is derived exactly as :func:`_cell_records`
    constructs the adversary (registry strategy name + run seed), so the
    key pins the full solver invocation.  ``fingerprint`` lets callers
    that key many cells over one graph (the plan executor) hash the
    payload once instead of once per cell.
    """
    return cell_key(
        kind=cell.kind,
        serial=cell.serial,
        graph=_payload_fingerprint(cell.payload) if fingerprint is None else fingerprint,
        adversary=Adversary(cell.strategy, seed=cell.seed).descriptor(),
        f=cell.f,
        seed=cell.seed,
        placement=cell.placement,
        rounds=cell.rounds,
        scheduler=cell.scheduler,
    )


def _cell_records(cell: SweepCell) -> List[Dict]:
    """Run one cell; module-level for pickling.  Always returns the
    cell's record *list* (single-record kinds wrap theirs)."""
    row = get_row(cell.serial)
    graph = _resolve_payload(cell.payload)
    if cell.kind == "table1":
        return run_table1_row(
            row, graph, [cell.strategy], seed=cell.seed, f=cell.f,
            placement=cell.placement, max_rounds=cell.rounds,
            scheduler=cell.scheduler,
        )
    if cell.kind == "tolerance":
        return [
            _tolerance_record(
                row, graph, cell.f, cell.strategy, cell.seed,
                placement=cell.placement, max_rounds=cell.rounds,
                scheduler=cell.scheduler,
            )
        ]
    if cell.kind == "scaling":
        return [
            _scaling_record(
                row, graph, cell.f, cell.strategy, cell.seed,
                placement=cell.placement, max_rounds=cell.rounds,
                scheduler=cell.scheduler,
            )
        ]
    raise ValueError(f"unknown cell kind {cell.kind!r}")


def _wire_cell(cell: SweepCell) -> SweepCell:
    """The cell as shipped to a worker: generator graphs go as specs
    (per-worker memo), except scaling cells, whose graphs each appear in
    exactly one cell (the memo cannot hit; CSR unpickling is cheaper
    than re-running a random family's sampling loop)."""
    if cell.kind != "scaling" and isinstance(cell.payload, PortLabeledGraph):
        payload = _graph_payload(cell.payload)
        if payload is not cell.payload:
            return replace(cell, payload=payload)
    return cell


# --------------------------------------------------------------------- #
# Fault-tolerant execution
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class ExecutionPolicy:
    """Fault-tolerance knobs for :func:`execute_plan`.

    ``timeout`` is a per-cell wall-clock budget in seconds (a dispatch
    chunk's deadline is ``timeout × cells-in-chunk``); it is enforced
    only under ``workers > 1``, where a hung worker can be killed — the
    serial path has no preemption.  ``max_retries`` bounds how many
    times a failing cell is re-run (``max_retries + 1`` total attempts)
    with exponential backoff ``backoff · backoff_factor^(k-1)`` capped
    at ``max_backoff`` seconds.  A cell that exhausts its budget is
    *quarantined* as a structured failure record unless ``strict=True``,
    which raises :class:`~repro.errors.SweepFaultError` instead.

    :class:`~repro.errors.ReproError` is never retried or quarantined —
    the repro hierarchy means deterministic rejection and always
    propagates (the tolerance kind records its own rejections before
    they ever reach the executor).
    """

    timeout: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.1
    backoff_factor: float = 2.0
    max_backoff: float = 2.0
    strict: bool = False

    def __post_init__(self):
        if self.timeout is not None and not self.timeout > 0:
            raise ConfigurationError(
                f"timeout must be positive or None, got {self.timeout!r}"
            )
        if (isinstance(self.max_retries, bool)
                or not isinstance(self.max_retries, int) or self.max_retries < 0):
            raise ConfigurationError(
                f"max_retries must be a non-negative int, got {self.max_retries!r}"
            )
        if self.backoff < 0 or self.max_backoff < 0 or self.backoff_factor < 1:
            raise ConfigurationError(
                "backoff/max_backoff must be >= 0 and backoff_factor >= 1"
            )

    def delay(self, failures: int) -> float:
        """Seconds to back off before retry number ``failures`` (1-based)."""
        if self.backoff <= 0:
            return 0.0
        return min(self.backoff * self.backoff_factor ** (failures - 1),
                   self.max_backoff)


#: The executor's defaults: no timeout, two retries with a short
#: exponential backoff, quarantine instead of raising.
DEFAULT_POLICY = ExecutionPolicy()

#: Per-cell outcome statuses shipped back from workers.  Values (not
#: exceptions) cross the process boundary so one bad cell cannot poison
#: its chunk-mates' results.
_OK, _REJECT, _FAIL = "ok", "reject", "fail"


def _run_job(
    cell: SweepCell, spec: Optional[FaultSpec], attempt: int, serial: bool = False
) -> Tuple[str, object]:
    """One cell attempt → ``(status, payload)``.

    ``payload`` is the record list (``_OK``), the original
    :class:`ReproError` (``_REJECT`` — deterministic rejection, the
    caller re-raises it), or a picklable ``(type name, message)`` pair
    (``_FAIL`` — a retryable fault).
    """
    try:
        inject(spec, attempt, serial=serial)
        return (_OK, _cell_records(cell))
    except ReproError as exc:
        return (_REJECT, exc)
    # The worker fault boundary: any non-Repro crash must become a
    # picklable retryable-fault payload (retried, then quarantined),
    # never a worker death.
    # repro: allow-broad-except — executor fault boundary
    except Exception as exc:
        return (_FAIL, (type(exc).__name__, str(exc)))


def _run_chunk(jobs: List[Tuple[SweepCell, Optional[FaultSpec], int]]) -> List[Tuple[str, object]]:
    """Run one dispatch chunk in a worker; module-level for pickling.
    ``jobs`` pairs each wire-format cell with its injected fault (or
    ``None``) and its 1-based dispatch attempt number."""
    return [_run_job(cell, spec, attempt) for cell, spec, attempt in jobs]


def _failure_records(
    cell: SweepCell, key: str, reason: str, message: str, attempts: int
) -> List[Dict]:
    """The structured record list a quarantined cell contributes.

    Shaped like a (failed) flat record so tables, ``success_rate`` and
    JSON export all keep working; ``failed=True`` is the marker
    :meth:`~repro.scenarios.ResultSet.failures` selects on, and ``key``
    names the cell for resume/debugging even in store-less runs.
    """
    rec = dict(
        kind=cell.kind, serial=cell.serial, strategy=cell.strategy,
        seed=cell.seed, success=False, failed=True, reason=reason,
        error=message, attempts=attempts, key=key,
    )
    if cell.f is not None:
        rec["f"] = cell.f
    if cell.placement != "lowest":
        rec["placement"] = cell.placement
    if cell.rounds is not None:
        rec["rounds"] = cell.rounds
    if cell.scheduler != "synchronous":
        rec["scheduler"] = cell.scheduler
    return [rec]


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a process pool: terminate workers, then shut down.

    Used on timeout kills, pool breaks, and Ctrl-C — the executor never
    waits politely on a worker it has already decided is dead or hung.
    (``_processes`` is private executor API, but there is no public way
    to kill a running worker; the fallback is a plain shutdown.)
    """
    # Parenthesisation matters: `x or {}.values()` would bind .values()
    # to the fallback only and iterate the *keys* of a real _processes
    # dict — ints, whose .terminate() raises and used to be silently
    # swallowed by a broad except here, so workers were never killed.
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.terminate()
        except (OSError, ValueError):  # dead or already-closed process
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    # A broken pool's shutdown can raise arbitrary executor internals;
    # teardown must proceed to the kill loop regardless.
    except Exception:  # pragma: no cover - broken pool  # repro: allow-broad-except
        pass
    for proc in procs:
        try:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        except (OSError, ValueError):  # pragma: no cover - already-reaped process
            pass


def _pop_ready(queue: deque, now: float):
    """Remove and return the first queued group whose backoff has
    elapsed, or ``None`` if every queued group is still backing off."""
    for idx in range(len(queue)):
        if queue[idx][1] <= now:
            group = queue[idx]
            del queue[idx]
            return group[0]
    return None


def _execute_serial(
    cells: Sequence[SweepCell],
    pending: Sequence[int],
    keys: Sequence[str],
    policy: ExecutionPolicy,
    faults: Optional[FaultPlan],
    finish: Callable[[int, List[Dict]], None],
    quarantine: Callable[[int, str, str, int], None],
) -> None:
    """In-process plan execution with the same retry/quarantine
    semantics as the pool path (timeouts excepted — no preemption)."""
    for i in pending:
        spec = faults.for_key(keys[i]) if faults is not None else None
        attempt = 0
        failures = 0
        while True:
            attempt += 1
            status, payload = _run_job(cells[i], spec, attempt, serial=True)
            if status == _OK:
                finish(i, payload)
                break
            if status == _REJECT:
                raise payload
            failures += 1
            if failures > policy.max_retries:
                quarantine(i, payload[0], payload[1], attempt)
                break
            time.sleep(policy.delay(failures))


def _execute_parallel(
    cells: Sequence[SweepCell],
    pending: Sequence[int],
    keys: Sequence[str],
    workers: int,
    chunk: int,
    policy: ExecutionPolicy,
    faults: Optional[FaultPlan],
    finish: Callable[[int, List[Dict]], None],
    quarantine: Callable[[int, str, str, int], None],
) -> None:
    """Sliding-window pool execution that outlives its own workers.

    At most ``max_workers`` chunks are in flight at once, so every
    failure is attributable to a small, known suspect set:

    * a chunk whose future carries an *exception* failed attributably —
      its cells are charged a retry;
    * a chunk past its *deadline* hung — the pool is killed (there is no
      portable way to kill one worker), the hung cells are charged, and
      undamaged in-flight chunks are resubmitted uncharged;
    * a ``BrokenProcessPool`` with exactly one unresolved chunk charges
      that chunk; with several, nobody is charged — the suspects are
      replayed one at a time (window of 1) so the next crash identifies
      its culprit exactly, and innocents are never quarantined for a
      chunk-mate's segfault.

    Completed futures are always harvested before a kill/respawn, so
    finished work reaches the store even when the pool dies around it.
    On Ctrl-C, finished-but-unpersisted chunks are flushed to the store
    before the interrupt re-raises (see ``KeyboardInterrupt`` handler).
    """
    size = max(1, chunk)
    queue: deque = deque(
        (list(pending[j:j + size]), 0.0) for j in range(0, len(pending), size)
    )
    max_workers = max(1, min(workers, len(queue)))
    attempts: Dict[int, int] = {i: 0 for i in pending}
    failures: Dict[int, int] = {i: 0 for i in pending}
    #: cells requeued after an unattributed pool break; while any exist
    #: the window narrows to 1 so the next break is attributable.
    suspects: Set[int] = set()
    done_cells: Set[int] = set()
    inflight: Dict = {}  # future -> (indices, deadline)
    pool = ProcessPoolExecutor(max_workers=max_workers)
    clean = False

    def spec_for(i: int) -> Optional[FaultSpec]:
        return faults.for_key(keys[i]) if faults is not None else None

    def submit(group: List[int]) -> None:
        jobs = [(_wire_cell(cells[i]), spec_for(i), attempts[i] + 1) for i in group]
        fut = pool.submit(_run_chunk, jobs)  # may raise BrokenProcessPool
        for i in group:
            attempts[i] += 1
        deadline = (
            time.monotonic() + policy.timeout * len(group)  # repro: allow-wallclock — retry/timeout deadline, never recorded
            if policy.timeout else None
        )
        inflight[fut] = (group, deadline)

    def charge(i: int, reason: str, message: str) -> None:
        failures[i] += 1
        suspects.discard(i)
        if failures[i] > policy.max_retries:
            quarantine(i, reason, message, attempts[i])
            done_cells.add(i)
        else:
            queue.appendleft(([i], time.monotonic() + policy.delay(failures[i])))  # repro: allow-wallclock — retry/timeout deadline, never recorded

    def apply_outcomes(group: List[int], outcomes) -> None:
        for i, (status, payload) in zip(group, outcomes):
            suspects.discard(i)
            if status == _OK:
                finish(i, payload)
                done_cells.add(i)
            elif status == _REJECT:
                raise payload
            else:
                charge(i, *payload)

    def harvest_finished() -> None:
        """Apply every future that completed with a real result (work
        finished before a crash/kill must not be lost)."""
        for fut, (group, _) in list(inflight.items()):
            if fut.done() and not fut.cancelled() and fut.exception() is None:
                del inflight[fut]
                apply_outcomes(group, fut.result())

    def absorb_break() -> None:
        """The pool died under us: save finished work, attribute or
        requeue the rest, respawn."""
        nonlocal pool
        harvest_finished()
        unresolved = [group for group, _ in inflight.values()]
        inflight.clear()
        _terminate_pool(pool)
        pool = ProcessPoolExecutor(max_workers=max_workers)
        if len(unresolved) == 1:
            for i in unresolved[0]:
                charge(i, "WorkerCrash",
                       "worker process died (BrokenProcessPool)")
        else:
            for group in unresolved:
                for i in group:
                    suspects.add(i)
                    queue.appendleft(([i], 0.0))

    def expire(now: float) -> bool:
        """Kill and respawn the pool if any chunk blew its deadline;
        the hung cells are charged, innocents resubmitted uncharged."""
        nonlocal pool
        expired = [
            fut for fut, (group, deadline) in inflight.items()
            if deadline is not None and now >= deadline and not fut.done()
        ]
        if not expired:
            return False
        harvest_finished()
        victims: List[int] = []
        for fut in expired:
            group, _ = inflight.pop(fut, (None, None))
            if group:
                victims.extend(group)
        for group, _ in inflight.values():
            queue.appendleft((group, 0.0))
        inflight.clear()
        _terminate_pool(pool)
        pool = ProcessPoolExecutor(max_workers=max_workers)
        for i in victims:
            charge(i, "TimeoutError",
                   f"cell exceeded the {policy.timeout}s wall-clock timeout")
        return True

    try:
        while queue or inflight:
            now = time.monotonic()  # repro: allow-wallclock — retry/timeout deadline, never recorded
            window = 1 if suspects else max_workers
            broke_on_submit = False
            while queue and len(inflight) < window:
                group = _pop_ready(queue, now)
                if group is None:
                    break
                try:
                    submit(group)
                except BrokenProcessPool:
                    queue.appendleft((group, 0.0))
                    absorb_break()
                    broke_on_submit = True
                    break
            if broke_on_submit:
                continue
            if not inflight:
                if not queue:
                    break
                # Every queued group is backing off; sleep to the earliest.
                time.sleep(max(0.0, min(r for _, r in queue) - now))
                continue
            waits = [dl - now for _, dl in inflight.values() if dl is not None]
            if queue and len(inflight) < window:
                waits.append(min(r for _, r in queue) - now)
            wait_for = max(0.01, min(waits)) if waits else None
            done, _ = wait(set(inflight), timeout=wait_for,
                           return_when=FIRST_COMPLETED)
            now = time.monotonic()  # repro: allow-wallclock — retry/timeout deadline, never recorded
            if not done:
                expire(now)
                continue
            broke = False
            for fut in done:
                group, _ = inflight.pop(fut)
                try:
                    outcomes = fut.result()
                except BrokenProcessPool:
                    inflight[fut] = (group, None)  # absorb_break attributes it
                    broke = True
                    break
                except ReproError:
                    raise
                # The dispatch itself failed (e.g. its jobs or result
                # would not pickle): arbitrary by nature, attributable
                # to this chunk, and converted to retry/quarantine.
                # repro: allow-broad-except — executor fault boundary
                except Exception as exc:
                    for i in group:
                        charge(i, type(exc).__name__, str(exc))
                else:
                    apply_outcomes(group, outcomes)
            if broke:
                absorb_break()
        clean = True
    except KeyboardInterrupt:
        # Ctrl-C: flush chunks that already finished — their work is
        # real, and dropping it would force recomputation on resume —
        # then shut the pool down hard and re-raise.
        try:
            for fut, (group, _) in list(inflight.items()):
                if fut.done() and not fut.cancelled() and fut.exception() is None:
                    for i, (status, payload) in zip(group, fut.result()):
                        if status == _OK and i not in done_cells:
                            finish(i, payload)
        except KeyboardInterrupt:
            pass  # a second Ctrl-C during the flush: stop flushing
        raise
    finally:
        if clean:
            pool.shutdown(wait=True, cancel_futures=True)
        else:
            _terminate_pool(pool)


def execute_plan(
    cells: Sequence[SweepCell],
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> List[List[Dict]]:
    """Execute a sweep plan; returns one record list per cell, in order.

    With a ``store``, cells already present are answered from disk
    (``resume=True``) and every freshly computed cell is appended to the
    store **as it completes** — after a crash, the next run picks up
    from the last persisted cell.  ``workers > 1`` fans the pending
    cells out over a process pool in submission chunks of ``chunk``;
    chunks are persisted in *completion* order (a slow first cell cannot
    hold finished work out of the store) while the returned list is
    reassembled in submission order — record values and order are
    deterministic regardless of scheduling.

    ``batch=True`` (default) first routes *compatible* pending cells —
    same graph fingerprint, solver serial, strategy, scheduler, and
    round budget, differing only in seed/``f``/placement — through the
    struct-of-arrays engine (:mod:`repro.sim.batch`), stepping a whole
    group per round instead of one robot at a time.  Batched records
    are byte-identical to the per-cell path (pinned by
    ``tests/test_batch.py``); singletons, fault-injected cells, and
    anything :mod:`repro.analysis.batching` rules out fall back to the
    per-cell path automatically, as does a whole group on an unexpected
    engine error.  ``batch=False`` forces per-cell execution.

    ``policy`` (default :data:`DEFAULT_POLICY`) governs the failure
    paths: per-cell timeouts, bounded retries with backoff, pool respawn
    on worker death, and quarantine-vs-``strict`` raising — see
    :class:`ExecutionPolicy` and the module docstring.  A quarantined
    cell's slot holds its structured failure record list (``failed=True``
    with the cell's content ``key``), which is returned but never stored.
    ``faults`` injects a deterministic :class:`~repro.analysis.faults.
    FaultPlan` for chaos testing.  Cell keys are computed store or no
    store, so retry and quarantine reporting can always name the failing
    cell by content key.
    """
    policy = DEFAULT_POLICY if policy is None else policy
    results: List[Optional[List[Dict]]] = [None] * len(cells)
    keys: List[str] = []
    pending: List[int] = []
    #: payload id -> fingerprint: a rows x strategies grid shares one
    #: graph, so hash its CSR/spec once, not once per cell.
    fingerprints: Dict[int, object] = {}
    for i, cell in enumerate(cells):
        fp = fingerprints.get(id(cell.payload))
        if fp is None:
            fp = _payload_fingerprint(cell.payload)
            fingerprints[id(cell.payload)] = fp
        keys.append(cell_key_of(cell, fingerprint=fp))
        if store is not None and resume:
            cached = store.get(keys[i])
            if cached is not None:
                results[i] = cached
                continue
        pending.append(i)

    def _finish(i: int, recs: List[Dict]) -> None:
        results[i] = recs
        if store is not None:
            store.put(keys[i], recs)

    def _quarantine(i: int, reason: str, message: str, attempts: int) -> None:
        if policy.strict:
            raise SweepFaultError(
                f"cell {keys[i]} (kind={cells[i].kind!r}, "
                f"serial={cells[i].serial}, strategy={cells[i].strategy!r}) "
                f"failed {attempts} attempt(s): {reason}: {message}"
            )
        results[i] = _failure_records(cells[i], keys[i], reason, message, attempts)

    if batch and len(pending) > 1:
        from .batching import STRICT, plan_groups, run_batch_group

        groups, rest = plan_groups(
            cells, pending, keys,
            lambda i: fingerprints[id(cells[i].payload)], faults=faults,
        )
        leftovers: List[int] = []
        for group in groups:
            try:
                leftovers.extend(run_batch_group(cells, group, _finish))
            # Engine trouble must never fail a sweep the per-cell
            # path can finish: recompute the whole group serially
            # (where ReproErrors land on their historical per-kind
            # paths — propagate for table1, reject for tolerance).
            # repro: allow-broad-except — batch-engine fallback boundary
            except Exception:
                if STRICT:
                    raise
                leftovers.extend(group)
        pending = sorted(rest + leftovers)

    size = max(1, chunk)
    n_groups = -(-len(pending) // size)
    if workers and workers > 1 and n_groups > 1:
        _execute_parallel(cells, pending, keys, workers, chunk, policy,
                          faults, _finish, _quarantine)
    else:
        _execute_serial(cells, pending, keys, policy, faults,
                        _finish, _quarantine)
    return results


def _scaling_record(
    row: Table1Row, graph: PortLabeledGraph, f: int, strategy: str, seed: int,
    placement: str = "lowest", max_rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> Dict:
    """One scaling-sweep record (shared by the serial and worker paths so
    the parallel-equals-serial guarantee cannot drift)."""
    report = row.solver(
        graph, f=f, adversary=Adversary(strategy, seed=seed), seed=seed,
        **_solver_extras(placement, max_rounds, scheduler),
    )
    return record_from_report(
        report, serial=row.serial, theorem=row.theorem, f=f,
        n=graph.n, m=graph.m, strategy=strategy,
        paper_bound=row.paper_bound(graph, f),
    )


def _tolerance_record(
    row: Table1Row, graph: PortLabeledGraph, f: int, strategy: str, seed: int,
    placement: str = "lowest", max_rounds: Optional[int] = None,
    scheduler: str = "synchronous",
) -> Dict:
    """Run one ``f`` value, mapping in-bound driver rejections to a
    ``rejected`` record.  Only the repro error hierarchy is treated as a
    rejection — an unexpected ``TypeError``/``KeyError`` is an engine bug
    and must propagate, not masquerade as an out-of-tolerance result."""
    try:
        report = row.solver(
            graph, f=f, adversary=Adversary(strategy, seed=seed), seed=seed,
            **_solver_extras(placement, max_rounds, scheduler),
        )
        return record_from_report(
            report, serial=row.serial, theorem=row.theorem, f=f,
            n=graph.n, strategy=strategy, rejected=False,
        )
    except ReproError as exc:  # driver enforces the theorem's bound
        rec = dict(
            serial=row.serial, theorem=row.theorem, f=f, n=graph.n,
            strategy=strategy, rejected=True, success=False,
            rounds_simulated=0, rounds_charged=0, rounds_total=0,
            n_violations=0, reason=type(exc).__name__,
        )
        if scheduler != "synchronous":
            # Keep the scheduler axis on rejections too (zero activations
            # were granted), so per-scheduler summaries group correctly;
            # synchronous rejections stay byte-identical to the legacy
            # record shape.
            rec["scheduler"] = scheduler
            rec["activations"] = 0
        return rec


# --------------------------------------------------------------------- #
# Sweeps — compatibility presets over the Scenario API
# --------------------------------------------------------------------- #
#
# The four public sweeps are kept as deprecation shims: each compiles its
# historical signature into a ScenarioGrid preset (repro.scenarios) and
# runs it through execute_plan, producing byte-identical records to the
# pre-Scenario implementations.  New code should build grids directly —
# `from repro import grid` — where every workload axis (placement, round
# budgets, multiple graphs/seeds) is declarative instead of a new
# parameter list.  (Imports are function-local: repro.scenarios imports
# this module's executor.)

def run_table1(
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    serials: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> List[Dict]:
    """Reproduce every applicable Table 1 row on one graph.

    Deprecation shim for ``table1_grid(graph, strategies, ...).run()``.
    ``workers > 1`` fans the (row × strategy) cells out over processes;
    a ``store`` makes the sweep resumable and ``policy`` governs the
    failure paths (see :func:`execute_plan`).  Record order and values
    match a serial, store-less run exactly.
    """
    from ..scenarios import table1_grid

    return table1_grid(graph, strategies, seed=seed, serials=serials).run(
        workers=workers, store=store, resume=resume, chunk=chunk,
        policy=policy, faults=faults, batch=batch,
    )


def tolerance_sweep(
    row: Table1Row,
    graph: PortLabeledGraph,
    f_values: Sequence[int],
    strategy: str,
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> List[Dict]:
    """Success vs ``f`` for one algorithm (at, below, and — where the
    driver allows — beyond its bound; out-of-range values are recorded as
    ``rejected`` instead of run).

    Deprecation shim for ``tolerance_grid(row, graph, f_values, ...)``.
    """
    from ..scenarios import ResultSet, tolerance_grid

    serial = _registry_serial(row)
    if serial is None:
        # Hand-built row: lambdas do not pickle and the registry cannot
        # re-resolve it, so it can be neither parallelised nor cached —
        # and this direct path bypasses the executor, so ``policy`` and
        # ``faults`` do not apply (errors propagate as they always did).
        return ResultSet(
            _tolerance_record(row, graph, f, strategy, seed) for f in f_values
        )
    return tolerance_grid(serial, graph, f_values, strategy, seed=seed).run(
        workers=workers, store=store, resume=resume, chunk=chunk,
        policy=policy, faults=faults, batch=batch,
    )


def scaling_sweep(
    row: Table1Row,
    graphs: Sequence[PortLabeledGraph],
    strategy: str,
    seed: int = 0,
    f_fraction_of_max: float = 1.0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> List[Dict]:
    """Measured rounds vs ``n`` across a graph family, at a fixed fraction
    of the row's tolerance (for power-law fitting against the bound).

    Deprecation shim for ``scaling_grid(row, graphs, strategy, ...)``.
    """
    from ..scenarios import ResultSet, scaling_grid

    serial = _registry_serial(row)
    if serial is None:
        # Hand-built row: direct serial path, no executor — ``policy``
        # and ``faults`` do not apply (see :func:`tolerance_sweep`).
        applicable = [g for g in graphs if row_applicable(row, g)]
        fs = [int(row.f_max(g) * f_fraction_of_max) for g in applicable]
        return ResultSet(
            _scaling_record(row, g, f, strategy, seed)
            for g, f in zip(applicable, fs)
        )
    return scaling_grid(
        serial, graphs, strategy, seed=seed, f_fraction_of_max=f_fraction_of_max
    ).run(workers=workers, store=store, resume=resume, chunk=chunk,
          policy=policy, faults=faults, batch=batch)


def scheduler_matrix(
    rows: Sequence[Union[int, str, Table1Row]],
    graph: PortLabeledGraph,
    schedulers: Sequence[str],
    strategy: str = "squatter",
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> List[Dict]:
    """Algorithms × activation schedulers at each row's tolerance bound.

    The timing analogue of :func:`strategy_matrix`: one adversary
    strategy, the scheduler axis varying (canonical spec strings — see
    :mod:`repro.sim.schedulers`).  ``synchronous`` cells share their
    store entries with every legacy sweep; non-default schedulers land
    in distinct cells.  Summarize the result grouped by scheduler::

        records = scheduler_matrix([4, 5], g,
                                   ["synchronous", "semi_synchronous(p=0.5)"])
        records.summarize("scheduler", missing="synchronous")
    """
    from ..scenarios import scheduler_matrix_grid

    return scheduler_matrix_grid(
        rows, graph, schedulers, strategy=strategy, seed=seed
    ).run(workers=workers, store=store, resume=resume, chunk=chunk,
          policy=policy, faults=faults, batch=batch)


def strategy_matrix(
    rows: Sequence[Table1Row],
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> List[Dict]:
    """Algorithms × strategies grid at each row's tolerance bound.

    Deprecation shim for ``strategy_matrix_grid(rows, graph, ...)``.
    """
    from ..scenarios import ResultSet, strategy_matrix_grid

    applicable = [row for row in rows if row_applicable(row, graph)]
    if all(_registry_serial(row) is not None for row in applicable):
        # Applicability is already filtered above; tell the grid not to
        # redo it (for row 1 that is an O(n·m) quotient-isomorphism check).
        return strategy_matrix_grid(
            [row.serial for row in applicable], graph, strategies, seed=seed,
            applicable_only=False,
        ).run(workers=workers, store=store, resume=resume, chunk=chunk,
              policy=policy, faults=faults, batch=batch)
    records = ResultSet()
    for row in applicable:
        records.extend(run_table1_row(row, graph, strategies, seed=seed))
    return records
