"""Table 1 row 7 (Theorem 6): gathered start, strong Byzantine, O(n³).

Fully simulated: quorum-protected two-group mapping + rank dispersion.
The benchmark exercises the strong adversary zoo, including ID fakers —
the attacks this row exists to survive.
"""

import pytest

from conftest import attach
from repro.byzantine import Adversary
from repro.core import get_row

ROW = get_row(7)


@pytest.mark.parametrize(
    "strategy", ["impersonator", "id_cycler", "squatter", "decoy_token", "false_commander"]
)
def bench_row7_at_tolerance(benchmark, bench_graph, strategy):
    f = ROW.f_max(bench_graph)

    def run():
        return ROW.solver(bench_graph, f=f, adversary=Adversary(strategy, seed=13), seed=13)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.success, report.violations
    assert report.rounds_charged == 0  # fully simulated
    attach(
        benchmark, report, f=f, strategy=strategy,
        paper_bound=ROW.paper_bound(bench_graph, f),
    )
