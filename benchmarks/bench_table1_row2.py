"""Table 1 row 2 (Theorem 2): arbitrary start, f <= n/2-1 weak, Õ(n⁹).

The dominant cost is the charged [24] gathering (4·n⁴·|Λgood|·X(n));
the simulated portion equals row 4's tournament.  The benchmark verifies
the charge dominates and matches the paper bound exactly.
"""

import pytest

from conftest import attach
from repro.byzantine import Adversary
from repro.core import get_row

ROW = get_row(2)


@pytest.mark.parametrize("strategy", ["squatter", "idle"])
def bench_row2_at_tolerance(benchmark, bench_graph, strategy):
    f = ROW.f_max(bench_graph)

    def run():
        return ROW.solver(bench_graph, f=f, adversary=Adversary(strategy, seed=8), seed=8)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.success, report.violations
    assert report.rounds_charged == ROW.paper_bound(bench_graph, f)
    assert report.rounds_charged > report.rounds_simulated  # gathering dominates
    attach(
        benchmark, report, f=f, strategy=strategy,
        paper_bound=ROW.paper_bound(bench_graph, f),
    )
