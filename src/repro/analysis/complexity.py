"""Empirical complexity estimation: polynomial orders from measurements.

The paper's Table 1 reports asymptotic round bounds; the scaling
benchmark checks our measured rounds *grow like* those bounds by fitting
``rounds ≈ c·n^α`` on log–log axes and comparing α against the stated
exponent.  Ordinary least squares on ``log`` values is entirely adequate
at simulation scale (guides: prefer the simple correct method, then
profile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PowerFit", "fit_power_law", "doubling_ratios"]


@dataclass(frozen=True)
class PowerFit:
    """Result of fitting ``y = c·x^alpha`` by log–log least squares.

    ``r2`` is the coefficient of determination in log space — how much of
    the variance a pure power law explains.
    """

    alpha: float
    log_c: float
    r2: float

    def predict(self, x: float) -> float:
        """Model prediction at ``x``."""
        return math.exp(self.log_c) * x**self.alpha


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Fit exponent ``alpha`` of ``y ~ x^alpha`` from positive samples."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ConfigurationError("need at least two (x, y) samples")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ConfigurationError("power-law fitting needs positive values")
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    alpha, log_c = np.polyfit(lx, ly, 1)
    pred = alpha * lx + log_c
    ss_res = float(np.sum((ly - pred) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerFit(alpha=float(alpha), log_c=float(log_c), r2=r2)


def doubling_ratios(xs: Sequence[float], ys: Sequence[float]) -> List[Tuple[float, float]]:
    """Consecutive growth ratios ``(x_{i+1}/x_i, y_{i+1}/y_i)``.

    A quick, fit-free shape check: for ``y ~ x^α``, doubling ``x``
    multiplies ``y`` by ``2^α``.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must align")
    return [
        (xs[i + 1] / xs[i], ys[i + 1] / ys[i])
        for i in range(len(xs) - 1)
        if xs[i] > 0 and ys[i] > 0
    ]
