"""Fixture: a cell_key that breaks the drop-at-default contract four ways,
plus a non-canonical JSON write in a canonical-bytes module."""
import json


def cell_key(kind, serial, graph, adversary, f, seed,
             rounds=None, scheduler="synchronous", ghost=0,
             schema_version=1):
    # Base payload lost the "schema" slot: old/new schema cells alias.
    config = {
        "kind": kind,
        "serial": serial,
        "graph": graph,
        "adversary": adversary,
        "f": f,
        "seed": seed,
    }
    # Unconditional write: every pre-existing cell re-keys.
    config["scheduler"] = scheduler
    # `rounds` accepted but never written; `ghost` has no Scenario field.
    return config


def save(config, fh):
    json.dump(config, fh, indent=2)  # missing sort_keys=True
