"""Ablations of the paper's design choices (DESIGN.md experiment F-abl).

1. **Pairing schedule** (Section 3.1): the paper's recursive halving vs
   the classic circle-method round robin.  Same protocol, same
   correctness, ~(2n+log n) vs (n−1) slots: the O(n⁴) bound is
   schedule-limited, not protocol-limited.
2. **Map source** (the paper's future-work question "is finding a map
   necessary in order for robots to settle?"): Dispersion-Using-Map with
   a *free* map (ring prior work / Theorem 1's Find-Map) versus a map
   *earned* through the tournament — quantifying what the mapping phase
   costs relative to the dispersion phase it enables.
"""

import pytest

from conftest import attach
from repro.baselines import solve_ring_dispersion
from repro.byzantine import Adversary
from repro.core import get_row, solve_theorem3
from repro.graphs import ring


def bench_ablation_schedule(benchmark, bench_graph):
    f = bench_graph.n // 2 - 1

    def run():
        return solve_theorem3(
            bench_graph, f=f, adversary=Adversary("squatter"), seed=1,
            schedule="round_robin",
        )

    rr = benchmark.pedantic(run, rounds=2, iterations=1)
    paper = solve_theorem3(
        bench_graph, f=f, adversary=Adversary("squatter"), seed=1, schedule="paper"
    )
    assert rr.success and paper.success
    assert rr.rounds_simulated <= paper.rounds_simulated
    benchmark.extra_info.update(
        paper_rounds=paper.rounds_simulated,
        round_robin_rounds=rr.rounds_simulated,
        saving=round(1 - rr.rounds_simulated / paper.rounds_simulated, 3),
    )


def bench_ablation_map_source(benchmark):
    """Free map vs earned map on the same ring instance: the entire
    polynomial cost of the general algorithms is the mapping phase; the
    dispersion phase itself is O(n) either way (the paper's Section 1.3
    'map knowledge is the game' claim, quantified)."""
    n = 12
    f = 2

    def run():
        return solve_ring_dispersion(n, f=f, adversary=Adversary("squatter"))

    free = benchmark.pedantic(run, rounds=3, iterations=1)
    earned = solve_theorem3(ring(n), f=f, adversary=Adversary("squatter"), seed=2)
    assert free.success and earned.success
    assert free.rounds_simulated <= 2 * n + 2
    benchmark.extra_info.update(
        free_map_rounds=free.rounds_simulated,
        earned_map_rounds=earned.rounds_simulated,
        mapping_premium=earned.rounds_simulated // max(free.rounds_simulated, 1),
    )


def bench_ablation_k_robots(benchmark, bench_graph):
    """k < n: fewer robots disperse in the same O(n) dispersion rounds
    (the procedure's cost is tour-bound, not population-bound)."""
    from repro.core import solve_k_robots

    def run():
        return solve_k_robots(bench_graph, k=bench_graph.n // 2, f=1,
                              adversary=Adversary("squatter"), seed=3)

    half = benchmark.pedantic(run, rounds=3, iterations=1)
    full = solve_k_robots(bench_graph, k=bench_graph.n, f=1,
                          adversary=Adversary("squatter"), seed=3)
    assert half.success and full.success
    benchmark.extra_info.update(
        half_population_rounds=half.rounds_simulated,
        full_population_rounds=full.rounds_simulated,
    )
