"""Standalone validation of dispersion configurations.

:func:`repro.sim.scheduler.finish_report` validates live worlds; these
helpers validate plain ``robot -> node`` mappings, so tests and the
impossibility construction can check configurations without a world.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["dispersion_violations", "is_dispersed", "settlement_histogram"]


def settlement_histogram(settled: Dict[int, Optional[int]]) -> Dict[int, List[int]]:
    """Group settled robot IDs by node (``None`` positions are skipped)."""
    by_node: Dict[int, List[int]] = {}
    for rid, node in settled.items():
        if node is not None:
            by_node.setdefault(node, []).append(rid)
    return {node: sorted(rids) for node, rids in by_node.items()}


def dispersion_violations(
    settled: Dict[int, Optional[int]],
    honest_cap: int = 1,
    require_all_settled: bool = True,
) -> List[str]:
    """All reasons this configuration fails (modified) Byzantine dispersion.

    ``settled`` maps **honest** robot IDs to nodes (``None`` = unsettled).
    ``honest_cap`` is ``⌈(k−f)/n⌉`` in the Section 5 variant, 1 otherwise.
    """
    if honest_cap < 1:
        raise ConfigurationError("honest_cap must be >= 1")
    violations: List[str] = []
    if require_all_settled:
        unsettled = sorted(rid for rid, node in settled.items() if node is None)
        if unsettled:
            violations.append(f"unsettled honest robots: {unsettled}")
    for node, rids in sorted(settlement_histogram(settled).items()):
        if len(rids) > honest_cap:
            violations.append(
                f"node {node} hosts {len(rids)} honest settlers (cap {honest_cap}): {rids}"
            )
    return violations


def is_dispersed(
    settled: Dict[int, Optional[int]],
    honest_cap: int = 1,
) -> bool:
    """True iff the configuration satisfies (modified) Byzantine dispersion."""
    return not dispersion_violations(settled, honest_cap=honest_cap)
