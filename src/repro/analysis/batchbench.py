"""Batched-engine benchmark: struct-of-arrays sweeps vs per-cell execution.

Companion to :mod:`repro.analysis.benchmark` (one simulation's hot loop)
and :mod:`repro.analysis.graphbench` (the graph substrate), covering the
cost this PR amortises: **Python dispatch across many independent
simulations**.  Every scenario times the same
:class:`~repro.scenarios.ScenarioGrid` through
:func:`~repro.analysis.experiments.execute_plan` twice — ``batch=True``
(grouped into one :class:`~repro.sim.batch.BatchWorld` per compatible
group) vs ``batch=False`` (the per-cell oracle path) — so the comparison
is between two live code paths on identical workloads.

Every scenario also verifies behaviour the way the batch tests do: both
modes run once into fresh :class:`~repro.analysis.store.RunStore`\\ s and
the verdict requires byte-identical record lists, identical store cell
key sets, and byte-identical per-key stored records.  A speedup can
never come from computing different answers.

The payload schema matches ``BENCH_engine.json``/``BENCH_graphs.json``
and is gated by ``benchmarks/check_regression.py``, which discovers
``BENCH_batch.json`` like every other ``BENCH_*.json``.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from typing import Callable, Dict, List, Optional

from ..graphs import generators as gen
from ..graphs.quotient import is_quotient_isomorphic
from .store import SCHEMA_VERSION as STORE_SCHEMA_VERSION
from .store import RunStore
from .tables import render_table

__all__ = [
    "BATCH_SCENARIOS",
    "run_batch_benchmark",
    "format_batch_report",
]

#: Graph size for every scenario: big enough that per-cell map
#: construction dominates the serial path, small enough that the bench
#: finishes in seconds.
GRAPH_N = 16


def _theorem1_graph(n: int, seed: int):
    """A connected, quotient-isomorphic random graph (the Theorem 1
    class), found by scanning generator seeds exactly like the CLI's
    graph sampler."""
    for s in range(seed, seed + 100):
        g = gen.random_connected(n, seed=s)
        if g.is_connected() and is_quotient_isomorphic(g):
            return g
    raise RuntimeError(f"no quotient-isomorphic graph in 100 seeds from {seed}")


def _grid_times(sg, repeats: int):
    """Identity verdict + best-of-``repeats`` wall time per mode.

    The verdict runs each mode once into a fresh store and compares
    record bytes, key sets, and stored cell bytes; timing runs are
    store-less so IO never flatters either mode.
    """
    with tempfile.TemporaryDirectory() as da, tempfile.TemporaryDirectory() as db:
        sa, sb = RunStore(da), RunStore(db)
        ra = sg.run(store=sa, batch=True)
        rb = sg.run(store=sb, batch=False)
        keys_a, keys_b = sorted(sa.keys()), sorted(sb.keys())
        identical = (
            json.dumps(list(ra)) == json.dumps(list(rb))
            and keys_a == keys_b
            and all(
                json.dumps(sa.get(k)) == json.dumps(sb.get(k)) for k in keys_a
            )
        )

    def run(batch: bool) -> float:
        best = None
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            sg.run(batch=batch)
            elapsed = time.perf_counter() - t0
            if best is None or elapsed < best:
                best = elapsed
        return best

    opt = run(True)
    ref = run(False)
    return opt, ref, identical


def _scenario_seed_sweep(seed: int, repeats: int, cells: int):
    """The ISSUE's headline workload: one (graph, row, strategy, f)
    point replicated across ``cells`` seeds — the shape of every
    statistical sweep."""
    from ..scenarios import grid

    g = _theorem1_graph(GRAPH_N, seed)
    sg = grid(
        rows=[1], graphs=g, strategies="squatter", f=GRAPH_N // 2,
        seeds=list(range(seed, seed + cells)), kind="table1",
    )
    return _grid_times(sg, repeats)


def _scenario_tolerance_sweep(seed: int, repeats: int, cells: int):
    """Tolerance-style workload: ``f`` spanning the full ``0..n-1``
    range (so group members differ in Byzantine count), idle adversary,
    enough seeds to reach ``cells`` simulations."""
    from ..scenarios import grid

    g = _theorem1_graph(GRAPH_N, seed)
    n_seeds = max(1, cells // GRAPH_N)
    sg = grid(
        rows=[1], graphs=g, strategies="idle", f=list(range(GRAPH_N)),
        seeds=list(range(seed, seed + n_seeds)), kind="tolerance",
    )
    return _grid_times(sg, repeats)


def _scenario_mixed_axes(seed: int, repeats: int, cells: int):
    """Strategies × placements × seeds: exercises the grouper (one
    batch group per strategy, placements and seeds varying inside)."""
    from ..scenarios import ScenarioGrid, grid

    g = _theorem1_graph(GRAPH_N, seed)
    strategies = ["crash", "idle", "squatter", "flag_spammer"]
    placements = ["lowest", "highest", "random"]
    n_seeds = max(1, cells // (len(strategies) * len(placements)))
    scenarios = []
    for placement in placements:
        scenarios.extend(
            grid(
                rows=[1], graphs=g, strategies=strategies, f=GRAPH_N // 2,
                seeds=list(range(seed, seed + n_seeds)), kind="table1",
                placement=placement,
            ).scenarios
        )
    return _grid_times(ScenarioGrid(scenarios), repeats)


#: name -> callable(seed, repeats, cells) -> (optimized_s, reference_s, identical)
BATCH_SCENARIOS: Dict[str, Callable] = {
    "seed_sweep": _scenario_seed_sweep,
    "tolerance_sweep": _scenario_tolerance_sweep,
    "mixed_axes": _scenario_mixed_axes,
}


def run_batch_benchmark(
    seed: int = 0,
    repeats: int = 3,
    cells: int = 64,
    scenarios: Optional[List[str]] = None,
) -> Dict:
    """Run the batched-engine benchmark; returns the BENCH_batch payload."""
    names = list(BATCH_SCENARIOS) if scenarios is None else list(scenarios)
    results = []
    for name in names:
        opt_s, ref_s, identical = BATCH_SCENARIOS[name](seed, repeats, cells)
        results.append(
            {
                "scenario": name,
                "optimized_s": round(opt_s, 6),
                "reference_s": round(ref_s, 6),
                "speedup": round(ref_s / opt_s, 3) if opt_s > 0 else float("inf"),
                "identical": identical,
            }
        )
    total_opt = sum(r["optimized_s"] for r in results)
    total_ref = sum(r["reference_s"] for r in results)
    return {
        "benchmark": "batch",
        "store_schema_version": STORE_SCHEMA_VERSION,
        "params": {"seed": seed, "repeats": repeats, "cells": cells},
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": results,
        "total_optimized_s": round(total_opt, 6),
        "total_reference_s": round(total_ref, 6),
        "overall_speedup": round(total_ref / total_opt, 3) if total_opt else 0.0,
        "all_identical": all(r["identical"] for r in results),
    }


def format_batch_report(payload: Dict) -> str:
    """Human-readable report for a :func:`run_batch_benchmark` payload."""
    table = render_table(
        payload["scenarios"],
        columns=["scenario", "optimized_s", "reference_s", "speedup", "identical"],
        title="Batched engine (SoA BatchWorld vs per-cell execute_plan)",
    )
    return (
        f"{table}\n"
        f"overall speedup   : {payload['overall_speedup']}x\n"
        f"behaviour matched : {payload['all_identical']}"
    )
