"""Experiment sweeps: the code behind every benchmark table and figure.

Each function returns a list of flat records (see
:mod:`repro.analysis.metrics`) that the benchmarks print via
:mod:`repro.analysis.tables` and EXPERIMENTS.md quotes.  Keeping sweeps
here — not in the benchmark files — makes them unit-testable and
reusable from the examples.

Parallel execution
------------------
Every sweep takes an opt-in ``workers=`` argument.  ``workers`` of
``None``/``0``/``1`` runs serially (the default, zero overhead); larger
values fan the sweep's independent cells out over a
``concurrent.futures.ProcessPoolExecutor``.  Records come back in the
**same order with the same values** as a serial run: cells are mapped in
submission order (``Executor.map`` preserves it) and every cell is a
pure function of picklable inputs (graph, row serial, strategy, seed).

Rows are shipped to workers by *serial number* and re-resolved from the
:data:`~repro.core.runner.TABLE1` registry in the child process (row
objects hold lambdas, which do not pickle).  A row object that is not
the registry's — e.g. a hand-built ``Table1Row`` in a test — silently
falls back to serial execution for correctness.

Graphs are shipped the same way: a generator-built graph carries a
:class:`~repro.graphs.specs.GraphSpec` (family name + bound arguments +
seed), and the job tuple carries that spec instead of the pickled graph.
Workers resolve specs through a per-process memo cache
(:func:`~repro.graphs.specs.resolve_spec`), so a 20-cell matrix over one
graph constructs it **once per worker**, not once per cell.  Generators
are deterministic in their arguments, so the resolved graph is ``==``
the parent's and records stay identical to a serial run.  Hand-built
graphs (no spec) fall back to being pickled whole, exactly the PR-1
behaviour (that path is pinned by ``tests/test_parallel_sweeps.py``).
``scaling_sweep`` always ships graphs: each of its graphs appears in
exactly one cell, so the memo cannot hit and reconstructing (e.g.
resampling a random family) in the worker would cost more than
unpickling the CSR bytes.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..byzantine.adversary import Adversary
from ..core.runner import TABLE1, Table1Row, get_row, row_applicable
from ..errors import ReproError
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.specs import GraphSpec, resolve_spec, spec_of
from .metrics import record_from_report

__all__ = [
    "run_table1_row",
    "run_table1",
    "tolerance_sweep",
    "scaling_sweep",
    "strategy_matrix",
]


def run_table1_row(
    row: Table1Row,
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    f: Optional[int] = None,
) -> List[Dict]:
    """Run one Table 1 row at its tolerance bound under several strategies."""
    f_used = row.f_max(graph) if f is None else f
    records = []
    for strat in strategies:
        report = row.solver(
            graph, f=f_used, adversary=Adversary(strat, seed=seed), seed=seed
        )
        records.append(
            record_from_report(
                report,
                serial=row.serial,
                theorem=row.theorem,
                running_time=row.running_time,
                start=row.start,
                strong=row.strong,
                strategy=strat,
                f=f_used,
                n=graph.n,
                paper_bound=row.paper_bound(graph, f_used),
            )
        )
    return records


# --------------------------------------------------------------------- #
# Process-parallel cell execution
# --------------------------------------------------------------------- #

def _registry_serial(row: Table1Row) -> Optional[int]:
    """The row's serial iff it is the registry's own object (picklable by
    reference in a worker via :func:`get_row`); ``None`` otherwise."""
    try:
        registered = get_row(row.serial)
    except KeyError:
        return None
    return row.serial if registered is row else None


#: When True (default), generator-built graphs are shipped to workers as
#: their :class:`GraphSpec` instead of being pickled.  Tests flip this to
#: pin that the PR-1 graph-pickling path still produces identical records.
SHIP_GRAPH_SPECS = True

#: What a job tuple's graph slot may hold.
GraphPayload = Union[PortLabeledGraph, GraphSpec]


def _graph_payload(graph: PortLabeledGraph) -> GraphPayload:
    """The cheapest picklable handle for ``graph``: its spec if it came
    from a registered generator, the graph itself otherwise."""
    spec = spec_of(graph)
    if SHIP_GRAPH_SPECS and spec is not None:
        return spec
    return graph


def _resolve_payload(payload: GraphPayload) -> PortLabeledGraph:
    """Worker-side: turn a job's graph slot back into a graph.

    Spec payloads hit the per-process memo cache in
    :mod:`repro.graphs.specs`, so repeated cells on the same graph skip
    reconstruction entirely.
    """
    if isinstance(payload, GraphSpec):
        return resolve_spec(payload)
    return payload


def _map_cells(fn: Callable, jobs: Sequence[Tuple], workers: Optional[int]) -> List:
    """Run ``fn`` over ``jobs`` serially or in a process pool.

    ``Executor.map`` yields results in submission order, so the output is
    byte-identical to the serial list regardless of worker scheduling.
    """
    if not workers or workers <= 1 or len(jobs) <= 1:
        return [fn(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(fn, jobs))


def _cell_table1(job: Tuple) -> List[Dict]:
    """One (row × strategy) cell; module-level for pickling."""
    serial, payload, strategy, seed, f = job
    graph = _resolve_payload(payload)
    return run_table1_row(get_row(serial), graph, [strategy], seed=seed, f=f)


def _cell_tolerance(job: Tuple) -> Dict:
    """One tolerance-sweep ``f`` cell; module-level for pickling."""
    serial, payload, f, strategy, seed = job
    row = get_row(serial)
    return _tolerance_record(row, _resolve_payload(payload), f, strategy, seed)


def _cell_scaling(job: Tuple) -> Dict:
    """One scaling-sweep graph cell; module-level for pickling."""
    serial, payload, strategy, seed, f = job
    return _scaling_record(get_row(serial), _resolve_payload(payload), f, strategy, seed)


def _scaling_record(
    row: Table1Row, graph: PortLabeledGraph, f: int, strategy: str, seed: int
) -> Dict:
    """One scaling-sweep record (shared by the serial and worker paths so
    the parallel-equals-serial guarantee cannot drift)."""
    report = row.solver(
        graph, f=f, adversary=Adversary(strategy, seed=seed), seed=seed
    )
    return record_from_report(
        report, serial=row.serial, theorem=row.theorem, f=f,
        n=graph.n, m=graph.m, strategy=strategy,
        paper_bound=row.paper_bound(graph, f),
    )


def _tolerance_record(
    row: Table1Row, graph: PortLabeledGraph, f: int, strategy: str, seed: int
) -> Dict:
    """Run one ``f`` value, mapping in-bound driver rejections to a
    ``rejected`` record.  Only the repro error hierarchy is treated as a
    rejection — an unexpected ``TypeError``/``KeyError`` is an engine bug
    and must propagate, not masquerade as an out-of-tolerance result."""
    try:
        report = row.solver(
            graph, f=f, adversary=Adversary(strategy, seed=seed), seed=seed
        )
        return record_from_report(
            report, serial=row.serial, theorem=row.theorem, f=f,
            n=graph.n, strategy=strategy, rejected=False,
        )
    except ReproError as exc:  # driver enforces the theorem's bound
        return dict(
            serial=row.serial, theorem=row.theorem, f=f, n=graph.n,
            strategy=strategy, rejected=True, success=False,
            rounds_simulated=0, rounds_charged=0, rounds_total=0,
            n_violations=0, reason=type(exc).__name__,
        )


# --------------------------------------------------------------------- #
# Sweeps
# --------------------------------------------------------------------- #

def run_table1(
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    serials: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> List[Dict]:
    """Reproduce every applicable Table 1 row on one graph.

    ``workers > 1`` fans the (row × strategy) cells out over processes;
    record order and values match the serial run exactly.
    """
    rows = [
        row
        for row in TABLE1
        if (serials is None or row.serial in serials) and row_applicable(row, graph)
    ]
    parallel = bool(workers) and workers > 1 and len(rows) * len(strategies) > 1
    payload = _graph_payload(graph) if parallel else graph
    jobs = [
        (row.serial, payload, strat, seed, None)
        for row in rows
        for strat in strategies
    ]
    cells = _map_cells(_cell_table1, jobs, workers)
    return [rec for cell in cells for rec in cell]


def tolerance_sweep(
    row: Table1Row,
    graph: PortLabeledGraph,
    f_values: Sequence[int],
    strategy: str,
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[Dict]:
    """Success vs ``f`` for one algorithm (at, below, and — where the
    driver allows — beyond its bound; out-of-range values are recorded as
    ``rejected`` instead of run)."""
    serial = _registry_serial(row)
    if serial is not None and workers and workers > 1 and len(f_values) > 1:
        payload = _graph_payload(graph)
        jobs = [(serial, payload, f, strategy, seed) for f in f_values]
        return _map_cells(_cell_tolerance, jobs, workers)
    return [_tolerance_record(row, graph, f, strategy, seed) for f in f_values]


def scaling_sweep(
    row: Table1Row,
    graphs: Sequence[PortLabeledGraph],
    strategy: str,
    seed: int = 0,
    f_fraction_of_max: float = 1.0,
    workers: Optional[int] = None,
) -> List[Dict]:
    """Measured rounds vs ``n`` across a graph family, at a fixed fraction
    of the row's tolerance (for power-law fitting against the bound)."""
    applicable = [g for g in graphs if row_applicable(row, g)]
    fs = [int(row.f_max(g) * f_fraction_of_max) for g in applicable]
    serial = _registry_serial(row)
    if serial is not None and workers and workers > 1:
        # Each graph appears in exactly one cell here, so the per-worker
        # spec memo can never hit — and re-running a random family's
        # sampling retry loop in the worker costs more than unpickling
        # the CSR bytes.  Ship the graphs themselves.
        jobs = [
            (serial, g, strategy, seed, f) for g, f in zip(applicable, fs)
        ]
        return _map_cells(_cell_scaling, jobs, workers)
    return [_scaling_record(row, g, f, strategy, seed) for g, f in zip(applicable, fs)]


def strategy_matrix(
    rows: Sequence[Table1Row],
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    workers: Optional[int] = None,
) -> List[Dict]:
    """Algorithms × strategies grid at each row's tolerance bound."""
    applicable = [row for row in rows if row_applicable(row, graph)]
    if (
        workers
        and workers > 1
        and len(applicable) * len(strategies) > 1
        and all(_registry_serial(row) is not None for row in applicable)
    ):
        payload = _graph_payload(graph)
        jobs = [
            (row.serial, payload, strat, seed, None)
            for row in applicable
            for strat in strategies
        ]
        cells = _map_cells(_cell_table1, jobs, workers)
        return [rec for cell in cells for rec in cell]
    records: List[Dict] = []
    for row in applicable:
        records.extend(run_table1_row(row, graph, strategies, seed=seed))
    return records
