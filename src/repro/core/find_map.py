"""Procedure **Find-Map** (paper Section 2.1) — quotient-graph maps.

Czyzowicz, Kosowski and Pelc [16] prove a single robot with O(m log n)
memory can construct the *quotient graph* of an anonymous port-labeled
graph in polynomial rounds, with no help from (and no interference
possible by) other robots.  The paper's Theorem 1 runs this procedure
independently on every robot, then requires the graph class where the
quotient graph is isomorphic to the graph itself.

Substitution (DESIGN.md §5.1): we compute the quotient graph directly —
the provable *output* of the prior-work protocol — and charge its round
cost through :func:`find_map_rounds`.  Each robot receives a **privately
relabeled** copy rooted at its own position, so no global node names leak:
two robots' maps agree only up to port-preserving isomorphism, exactly as
in the paper.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ConfigurationError
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.quotient import is_quotient_isomorphic, quotient_graph

__all__ = ["find_map_rounds", "private_quotient_map"]


def find_map_rounds(n: int, m: int, constant: int = 1) -> int:
    """Charged round cost of Find-Map.

    Lemma 1 states "polynomial in n" without an exponent; we charge
    ``c·n³·⌈log₂ n⌉`` (documented in DESIGN.md §8, constant configurable).
    Only the *shape* (a polynomial dominating the O(n) dispersion phase)
    matters for Theorem 1's statement.
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    return constant * n**3 * max(1, math.ceil(math.log2(max(n, 2))))


def private_quotient_map(
    graph: PortLabeledGraph,
    node: int,
    rng: np.random.Generator,
) -> Tuple[PortLabeledGraph, int]:
    """The map a robot standing at ``node`` obtains from Find-Map.

    Returns ``(map_graph, map_root)`` where ``map_graph`` is the quotient
    graph under a robot-private random relabeling and ``map_root`` is the
    map node corresponding to the robot's position.

    Requires the Theorem 1 graph class (quotient ≅ graph, i.e. all views
    distinct); raises :class:`ConfigurationError` otherwise, because a
    collapsed quotient cannot serve as a dispersion map (distinct world
    nodes would alias to one map node — the failure Section 2.1 warns
    about).
    """
    if not is_quotient_isomorphic(graph):
        raise ConfigurationError(
            "graph is not isomorphic to its quotient graph; Theorem 1 does not apply"
        )
    q = quotient_graph(graph)
    base = q.to_port_labeled()
    perm = [int(x) for x in rng.permutation(graph.n)]
    private = base.relabel(perm)
    root = perm[q.class_of[node]]
    return private, root
