"""Tests for view refinement and quotient graph construction."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import GraphStructureError
from repro.graphs import (
    PortLabeledGraph,
    clique,
    hypercube,
    is_quotient_isomorphic,
    path,
    quotient_graph,
    random_connected,
    ring,
    star,
    torus,
    truncated_view,
    view_partition,
    view_signature,
)


class TestViewPartition:
    def test_symmetric_ring_single_class(self):
        assert set(view_partition(ring(7))) == {0}

    def test_path_symmetry(self):
        # A path 0-1-2-3-4 with deterministic labeling: endpoints mirror,
        # and the middle node is alone in its class.
        part = view_partition(path(5))
        assert part[0] != part[2]
        assert len(set(part)) >= 2

    def test_star_all_views_distinct(self):
        # Each leaf sees a different in-port at the hub, so port labels
        # break the apparent symmetry: all views are distinct and the
        # star is in the Theorem 1 graph class.
        part = view_partition(star(6))
        assert len(set(part)) == 6
        assert is_quotient_isomorphic(star(6))

    def test_degree_refinement_baseline(self, zoo_graph):
        # Nodes in the same class must at minimum share a degree.
        g = zoo_graph
        part = view_partition(g)
        for u in range(g.n):
            for v in range(g.n):
                if part[u] == part[v]:
                    assert g.degree(u) == g.degree(v)

    def test_partition_deterministic(self, zoo_graph):
        assert view_partition(zoo_graph) == view_partition(zoo_graph)

    def test_empty_graph(self):
        assert view_partition(PortLabeledGraph({})) == []

    @given(seed=st.integers(0, 30), n=st.integers(4, 10))
    def test_agrees_with_truncated_views(self, seed, n):
        """Norris' theorem: depth n-1 truncated views decide equivalence."""
        g = random_connected(n, seed=seed)
        part = view_partition(g)
        depth = min(n - 1, 6)  # keep exponential blowup in check
        views = [truncated_view(g, u, depth) for u in range(g.n)]
        for u in range(g.n):
            for v in range(u + 1, g.n):
                if part[u] == part[v]:
                    assert views[u] == views[v]
                else:
                    # Distinct classes must differ within depth n-1; when we
                    # truncated earlier than n-1 the check is one-sided only.
                    if depth >= n - 1:
                        assert views[u] != views[v]

    def test_view_signature_consistency(self):
        g = ring(6)
        sigs = [view_signature(g, u) for u in range(6)]
        assert len(set(sigs)) == 1
        g2 = random_connected(6, seed=1)
        part = view_partition(g2)
        if len(set(part)) == 6:
            assert len({view_signature(g2, u) for u in range(6)}) == 6


class TestQuotientGraph:
    def test_collapsed_families(self):
        for g in (ring(6), clique(5), hypercube(3), torus(3, 3)):
            q = quotient_graph(g)
            assert q.num_classes == 1
            assert q.degree(0) == g.degree(0)

    def test_quotient_ports_consistent(self, zoo_graph):
        g = zoo_graph
        q = quotient_graph(g)
        # Every real edge must be reflected classwise in the quotient.
        for u in range(g.n):
            for p in g.ports(u):
                v, qport = g.traverse(u, p)
                assert q.traverse(q.class_of[u], p) == (q.class_of[v], qport)

    def test_class_sizes_sum_to_n(self, zoo_graph):
        q = quotient_graph(zoo_graph)
        assert sum(q.class_sizes()) == zoo_graph.n

    def test_to_port_labeled_when_distinct(self):
        g = random_connected(9, seed=7)
        if is_quotient_isomorphic(g):
            h = quotient_graph(g).to_port_labeled()
            assert h.n == g.n and h.m == g.m

    def test_to_port_labeled_rejected_when_collapsed(self):
        with pytest.raises(GraphStructureError):
            quotient_graph(ring(6)).to_port_labeled()

    def test_quotient_idempotent_on_distinct(self):
        g = random_connected(8, seed=5)
        assert is_quotient_isomorphic(g)
        h = quotient_graph(g).to_port_labeled()
        assert is_quotient_isomorphic(h)
        # Quotient of the quotient is itself.
        q2 = quotient_graph(h)
        assert q2.num_classes == h.n


class TestIsQuotientIsomorphic:
    def test_positive(self):
        assert is_quotient_isomorphic(random_connected(10, seed=3))

    def test_negative_vertex_transitive(self):
        for g in (ring(5), clique(4), hypercube(2), torus(3, 3)):
            assert not is_quotient_isomorphic(g)

    @given(seed=st.integers(0, 20))
    def test_equivalent_to_all_views_distinct(self, seed):
        g = random_connected(8, seed=seed)
        part = view_partition(g)
        assert is_quotient_isomorphic(g) == (len(set(part)) == g.n)
