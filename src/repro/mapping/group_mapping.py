"""Group-mode map finding: groups acting as agent / token (Sections 3.2–4).

The paper replaces individual robots with *groups* playing the agent and
token roles, protected by believe-thresholds:

* Section 3.2 (``f ≤ ⌊n/3−1⌋``, weak): three groups A, B, C by sorted ID;
  three runs with rotating roles (A vs B∪C, B vs A∪C, C vs A∪B); the
  token believes commands from ``⌊k/6⌋+1`` agent-group robots, the agent
  believes token presence shown by ``⌊k/3⌋+1`` token-group robots; the
  final map is the majority of the three runs.
* Section 3.3 (``f = O(√n)``, weak): two half groups, one run, simple
  majorities within each group.
* Section 4 (``f ≤ ⌊n/4−1⌋``, strong): two half groups, one run, both
  believe-thresholds fixed at ``⌊n/4⌋`` **distinct claimed IDs** — the
  dedup that defeats ID-faking quorums.

:func:`build_group_plan` turns a roster into the runs' :class:`RunSpec`s
plus a per-robot role map; :func:`group_phase_program` executes the plan
for one honest robot and stores the majority map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.robot import Action, RobotAPI
from .map_merge import decode_canonical, majority_encoding
from .token_mapping import RunSpec, agent_program, run_slot_rounds, token_program

__all__ = ["GroupPlan", "build_group_plan", "group_phase_program", "group_plan_rounds"]


@dataclass(frozen=True)
class GroupPlan:
    """Resolved schedule of group-mode mapping runs.

    ``runs`` are ordered; robot ``rid``'s role in run ``i`` is
    ``"agent"`` if ``rid in runs[i].agent_ids`` else ``"token"``.
    ``end_round`` is the first round after the whole phase.
    """

    runs: Tuple[RunSpec, ...]
    roster: Tuple[int, ...]
    end_round: int


def _split_groups(roster: Sequence[int], parts: int) -> List[List[int]]:
    """Sorted-ID split into ``parts`` contiguous groups (paper's grouping:
    smallest IDs in group A, and so on)."""
    ordered = sorted(roster)
    k = len(ordered)
    base = k // parts
    groups: List[List[int]] = []
    start = 0
    for i in range(parts):
        size = base if i < parts - 1 else k - base * (parts - 1)
        groups.append(ordered[start : start + size])
        start += size
    return groups


def build_group_plan(
    roster: Sequence[int],
    scheme: str,
    start_round: int,
    tick_budget: int,
    n_nodes: int,
) -> GroupPlan:
    """Construct the mapping runs for a grouping scheme.

    ``scheme``:

    * ``"three_groups"`` — Section 3.2 (3 runs, rotating roles).
    * ``"two_groups_majority"`` — Section 3.3 (1 run, in-group majorities).
    * ``"two_groups_strong"`` — Section 4 (1 run, both thresholds ⌊n/4⌋).

    Every honest robot calls this with the identical roster (from the
    hello phase), so all derive the same plan.
    """
    k = len(roster)
    if k < 3:
        raise ConfigurationError("group mapping needs at least 3 robots")
    slot = run_slot_rounds(tick_budget, exchange=True)
    if scheme == "three_groups":
        a, b, c = _split_groups(roster, 3)
        cmd_thr = k // 6 + 1
        presence_thr = k // 3 + 1
        role_cycle = [
            (a, b + c),
            (b, a + c),
            (c, a + b),
        ]
        runs = []
        for i, (agents, tokens) in enumerate(role_cycle):
            runs.append(
                RunSpec(
                    tag=("grp3", i),
                    start_round=start_round + i * slot,
                    tick_budget=tick_budget,
                    agent_ids=frozenset(agents),
                    token_ids=frozenset(tokens),
                    cmd_threshold=cmd_thr,
                    presence_threshold=presence_thr,
                    exchange=True,
                )
            )
    elif scheme == "two_groups_majority":
        a, b = _split_groups(roster, 2)
        runs = [
            RunSpec(
                tag=("grp2", 0),
                start_round=start_round,
                tick_budget=tick_budget,
                agent_ids=frozenset(a),
                token_ids=frozenset(b),
                cmd_threshold=len(a) // 2 + 1,
                presence_threshold=len(b) // 2 + 1,
                exchange=True,
            )
        ]
    elif scheme == "two_groups_strong":
        a, b = _split_groups(roster, 2)
        thr = max(1, n_nodes // 4)
        runs = [
            RunSpec(
                tag=("grpS", 0),
                start_round=start_round,
                tick_budget=tick_budget,
                agent_ids=frozenset(a),
                token_ids=frozenset(b),
                cmd_threshold=thr,
                presence_threshold=thr,
                exchange=True,
            )
        ]
    else:
        raise ConfigurationError(f"unknown grouping scheme {scheme!r}")
    return GroupPlan(
        runs=tuple(runs),
        roster=tuple(sorted(roster)),
        end_round=runs[-1].end_round,
    )


def group_plan_rounds(scheme: str, tick_budget: int) -> int:
    """Rounds the whole group phase occupies (for driver budgets)."""
    slot = run_slot_rounds(tick_budget, exchange=True)
    return 3 * slot if scheme == "three_groups" else slot


def group_phase_program(
    api: RobotAPI,
    plan: GroupPlan,
    out: Dict,
) -> Iterator[Action]:
    """Execute all runs of ``plan`` in role order, then vote.

    Stores the decoded majority map into ``out["map"]`` (``None`` when no
    believable map emerged — the beyond-tolerance failure mode).
    """
    scratch: Dict = {}
    for run in plan.runs:
        if api.id in run.agent_ids:
            yield from agent_program(api, run, scratch)
        else:
            yield from token_program(api, run, scratch)
    encodings = [scratch.get(("exchanged", run.tag)) for run in plan.runs]
    winner = majority_encoding(encodings)
    out["map"] = decode_canonical(winner) if winner is not None else None
    out["encodings"] = encodings
