#!/usr/bin/env python
"""Perf-regression gate: fresh microbenchmarks vs checked-in baselines.

Guards **both** benchmark files — ``BENCH_engine.json`` (engine hot
path) and ``BENCH_graphs.json`` (graph substrate) — with the same rule.
Each suite is re-run with its baseline's own parameters and fails
(exit 1) when a scenario regresses or when the optimized and reference
paths stop agreeing behaviourally.  A scenario counts as regressed only
when **both** signals agree, so a slow CI runner cannot trip the gate on
its own:

* wall-clock: fresh ``optimized_s`` exceeds ``--tolerance`` × the
  recorded baseline (machine-dependent, the generous 2× of the issue
  spec), **and**
* speedup: the fresh same-machine ``speedup`` (reference_s/optimized_s,
  measured in the same run, machine-independent) has dropped below the
  baseline's speedup / ``--tolerance``.

A real hot-path regression (losing the lazy snapshot, re-validating in a
generator, pickling graphs per sweep cell, …) trips both comfortably;
hardware variance trips at most the first.

Usage::

    python benchmarks/check_regression.py                 # guard both baselines
    python benchmarks/check_regression.py --suite engine  # just the engine
    python benchmarks/check_regression.py --tolerance 1.5
    python benchmarks/check_regression.py --update        # refresh baselines

Intended both for CI and for local runs before committing engine or
graph-layer changes.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.benchmark import run_benchmark, write_bench_json  # noqa: E402
from repro.analysis.graphbench import run_graph_benchmark  # noqa: E402

_HERE = os.path.dirname(__file__)

#: suite name -> (baseline path, rerun-with-baseline-params callable).
SUITES = {
    "engine": (
        os.path.join(_HERE, "BENCH_engine.json"),
        lambda params: run_benchmark(**params),
    ),
    "graphs": (
        os.path.join(_HERE, "BENCH_graphs.json"),
        lambda params: run_graph_benchmark(**params),
    ),
}


def check_suite(name: str, baseline_path: str, runner, tolerance: float,
                update: bool, allow_schema_change: bool = False) -> int:
    """Run one suite against its baseline; returns the number of failures."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    fresh = runner(baseline["params"])

    if update:
        base_schema = baseline.get("store_schema_version")
        fresh_schema = fresh.get("store_schema_version")
        if (
            base_schema is not None
            and fresh_schema != base_schema
            and not allow_schema_change
        ):
            # A baseline refresh must not silently paper over a record-
            # schema bump: the run-store cache keys (and hence every
            # cached sweep) changed meaning.  Make the operator say so.
            print(
                f"[{name}] REFUSING --update: fresh payload has "
                f"store_schema_version={fresh_schema} but the baseline was "
                f"recorded under {base_schema}; re-run with "
                f"--allow-schema-change if the bump is intentional"
            )
            return 1
        write_bench_json(fresh, baseline_path)
        print(f"[{name}] baseline refreshed: {baseline_path}")
        return 0

    base_by_name = {s["scenario"]: s for s in baseline["scenarios"]}
    failures = []
    print(f"[{name}]")
    print(f"{'scenario':<22} {'base_s':>10} {'fresh_s':>10} {'ratio':>7} "
          f"{'speedup':>8}  verdict")
    for s in fresh["scenarios"]:
        sname = s["scenario"]
        base = base_by_name.get(sname)
        if base is None:
            print(f"{sname:<22} {'-':>10} {s['optimized_s']:>10.4f} {'-':>7} "
                  f"{s['speedup']:>7.2f}x  new (no baseline)")
            continue
        ratio = (
            s["optimized_s"] / base["optimized_s"]
            if base["optimized_s"] > 0 else float("inf")
        )
        wall_clock_bad = ratio > tolerance
        speedup_bad = s["speedup"] < base["speedup"] / tolerance
        ok = s["identical"] and not (wall_clock_bad and speedup_bad)
        verdict = "ok" if ok else "REGRESSION"
        if not s["identical"]:
            verdict = "BEHAVIOUR MISMATCH"
        elif ok and wall_clock_bad:
            verdict = "ok (slow machine: speedup held)"
        print(f"{sname:<22} {base['optimized_s']:>10.4f} {s['optimized_s']:>10.4f} "
              f"{ratio:>6.2f}x {s['speedup']:>7.2f}x  {verdict}")
        if not ok:
            failures.append(sname)
    if failures:
        print(f"[{name}] FAIL: {len(failures)} scenario(s) regressed: "
              f"{', '.join(failures)}")
    else:
        print(f"[{name}] PASS: all scenarios within {tolerance}x of baseline "
              f"(fresh overall speedup {fresh['overall_speedup']}x vs reference)")
    return len(failures)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--suite", choices=(*SUITES, "all"), default="all",
                    help="which baseline(s) to guard (default: all)")
    ap.add_argument("--baseline", default=None,
                    help="override the baseline path (single suite only)")
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="max slowdown factor vs baseline (default 2x)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline(s) with this run instead of checking")
    ap.add_argument("--allow-schema-change", action="store_true",
                    help="let --update cross a run-store schema-version bump "
                         "(refused by default)")
    args = ap.parse_args(argv)

    names = list(SUITES) if args.suite == "all" else [args.suite]
    if args.baseline is not None and len(names) != 1:
        ap.error("--baseline requires --suite engine or --suite graphs")

    failures = 0
    for name in names:
        baseline_path, runner = SUITES[name]
        if args.baseline is not None:
            baseline_path = args.baseline
        failures += check_suite(
            name, baseline_path, runner, args.tolerance, args.update,
            allow_schema_change=args.allow_schema_change,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
