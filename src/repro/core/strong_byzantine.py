"""Theorems 6–7: strong Byzantine robots (paper Section 4).

Strong Byzantine robots fake IDs, so every ID-trusting mechanism of
Sections 2–3 (blacklists, per-ID map votes) is poisoned.  Section 4's
counter-design, implemented here:

* **Quorums instead of identities.**  Two half groups run one mapping run
  with both believe-thresholds at ``⌊n/4⌋`` *distinct claimed IDs*.  Each
  group contains at least ``⌊n/4⌋`` honest robots (``f ≤ ⌊n/4−1⌋``), so
  honest quorums always form and Byzantine ones never do — duplicated IDs
  collapse in the distinct count.
* **Rank dispersion instead of negotiation.**  With a common map and the
  remembered gathered roster, robot ranked ``i`` walks to the ``i``-th
  node of the canonical BFS order and settles.  Honest robots hold
  distinct ranks, so no negotiation — hence nothing to lie in — is needed.

Theorem 6: gathered start, O(n³).  Theorem 7: arbitrary start via the
exponential-round strong gathering of [24] (oracle charge; requires ``f``
to be known, which the driver asserts by taking it as input).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..gathering.oracle import canonical_gather_node, strong_gathering_rounds
from ..graphs.port_labeled import PortLabeledGraph
from ..mapping.group_mapping import build_group_plan, group_phase_program, group_plan_rounds
from ..sim.robot import Action, RobotAPI
from ..sim.scheduler import RunReport
from ._setup import build_population, round_budget
from .general_graphs import _run_driver, tick_budget_for
from .phases import rank_dispersion_phase, roster_phase

__all__ = ["solve_theorem6", "solve_theorem7"]


def _strong_program(api: RobotAPI, tick_budget: int, base: int) -> Iterator[Action]:
    out: Dict = {}
    yield from roster_phase(api, out)
    plan = build_group_plan(out["roster"], "two_groups_strong", base, tick_budget, api.n)
    yield from group_phase_program(api, plan, out)
    m = out["map"]
    if m is None:
        api.log("no_map_agreed")
        return
    yield from rank_dispersion_phase(api, m, 0, out["roster"])


def _strong_solver(
    graph: PortLabeledGraph,
    f: int,
    adversary: Optional[Adversary],
    gather_node: int,
    seed: int,
    byz_placement: str,
    keep_trace: bool,
    pre_charges,
    theorem: int,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    n = graph.n
    pop = build_population(
        graph, f, start=gather_node, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    tb = tick_budget_for(graph, gather_node)
    base = 2

    def honest_program_factory(rid: int):
        def factory(api: RobotAPI) -> Iterator[Action]:
            return _strong_program(api, tb, base)

        return factory

    bound = base + group_plan_rounds("two_groups_strong", tb) + n + 16
    return _run_driver(
        graph, pop, honest_program_factory, "strong", round_budget(bound, max_rounds),
        pre_charges, keep_trace, scheduler=scheduler, theorem=theorem,
        tick_budget=tb, gather_node=gather_node,
    )


def solve_theorem6(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    gather_node: int = 0,
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Theorem 6: gathered start, ``f ≤ ⌊n/4−1⌋`` **strong** Byzantine, O(n³)."""
    _check(graph, f)
    return _strong_solver(
        graph, f, adversary, gather_node, seed, byz_placement, keep_trace,
        pre_charges=[], theorem=6, max_rounds=max_rounds, scheduler=scheduler,
    )


def solve_theorem7(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Theorem 7: arbitrary start, ``f ≤ ⌊n/4−1⌋`` strong, exponential rounds.

    Phase 0 is [24]'s strong gathering (knowledge of ``f`` required —
    reflected by ``f`` being a driver input), charged exponentially and
    enacted at the canonical gather node; the rest equals Theorem 6.
    """
    _check(graph, f)
    gather = canonical_gather_node(graph)
    charge = strong_gathering_rounds(graph)
    return _strong_solver(
        graph, f, adversary, gather, seed, byz_placement, keep_trace,
        pre_charges=[("gathering_dpp_strong", charge)], theorem=7,
        max_rounds=max_rounds, scheduler=scheduler,
    )


def _check(graph: PortLabeledGraph, f: int) -> None:
    if not graph.is_connected():
        raise ConfigurationError("dispersion requires a connected graph")
    if graph.n < 4:
        raise ConfigurationError("strong-Byzantine dispersion needs n >= 4")
    f_max = max(graph.n // 4 - 1, 0)
    if not (0 <= f <= f_max):
        raise ConfigurationError(f"Theorems 6/7 tolerate 0 <= f <= {f_max}, got f={f}")
