"""Graph families used throughout the paper's setting and our benchmarks.

Every generator returns a connected :class:`~repro.graphs.port_labeled.
PortLabeledGraph`.  Families were chosen to cover the regimes the paper
cares about:

* **ring** — the setting of the prior work [34, 36] this paper extends;
  also the worst case for view-distinguishability (a ring's quotient graph
  has a single node for the canonical port labeling).
* **clique / hypercube / torus** — vertex-transitive families: quotient
  graphs collapse, so Theorem 1 does *not* apply; exercised by tests of
  :func:`repro.graphs.quotient.is_quotient_isomorphic`.
* **random regular / Erdős–Rényi / random tree / lollipop** — asymmetric
  families: almost surely all views are distinct, so Theorem 1 *does*
  apply; these are the Table-1 row-1 workloads.
* **path, star, complete bipartite** — edge cases for traversal code
  (degree-1 nodes, hub nodes).

Construction strategy (see PERFORMANCE.md, "Graph substrate")
-------------------------------------------------------------
The deterministic families are **closed-form**: they emit port rows (or
adjacency lists labeled by :func:`_label`) directly and build the graph
through the trusted ``_from_validated`` path — no networkx objects, no
O(n·Δ) re-validation.  The random families still *sample* with networkx
(one round-trip: sample → adjacency lists → fast labeling) because
reproducing networkx's RNG streams bit-for-bit is not worth owning.
``PortLabeledGraph.from_networkx`` remains the validating oracle path;
tests assert every generator here is ``==`` to its networkx-built
counterpart for fixed seeds.

Every generator is wrapped by :func:`repro.graphs.specs.tagged`: its
outputs carry a :class:`~repro.graphs.specs.GraphSpec` so sweeps can ship
the recipe instead of the graph.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from .port_labeled import PortLabeledGraph
from .specs import tagged

__all__ = [
    "ring",
    "path",
    "clique",
    "star",
    "hypercube",
    "torus",
    "random_regular",
    "erdos_renyi",
    "random_tree",
    "lollipop",
    "complete_bipartite",
    "random_connected",
    "FAMILIES",
]


def _rng(seed: Optional[int]):
    return None if seed is None else np.random.default_rng(seed)


def _label(adj: Sequence[Sequence[int]], rng=None) -> PortLabeledGraph:
    """Port-label adjacency lists exactly like ``from_networkx`` would.

    ``adj[u]`` holds the neighbours of ``u`` (any order, no duplicates).
    Each node's ports go to its neighbours in sorted order, optionally
    shuffled per node by ``rng`` — consumed in ascending node order, the
    same stream ``from_networkx`` draws, so for a fixed seed the output is
    ``==`` to the old networkx round-trip.  Construction is trusted
    (symmetric and simple by construction): no O(n·Δ) re-validation.
    """
    n = len(adj)
    if rng is not None and not hasattr(rng, "shuffle"):  # pragma: no cover - defensive
        raise TypeError(f"unsupported rng type: {type(rng)!r}")
    shuffle = None if rng is None else rng.shuffle
    ordered: List[List[int]] = []
    for u in range(n):
        nbrs = sorted(adj[u])
        if shuffle is not None:
            shuffle(nbrs)
        ordered.append(nbrs)
    back = [dict(zip(row, range(1, len(row) + 1))) for row in ordered]
    rows = tuple(
        tuple((w, back[w][u]) for w in ordered[u])
        for u in range(n)
    )
    return PortLabeledGraph._from_validated(rows)


def _connected(adj: Sequence[Sequence[int]]) -> bool:
    """BFS connectivity on adjacency lists (no graph object needed)."""
    n = len(adj)
    if n == 0:
        return True
    seen = [False] * n
    seen[0] = True
    stack = [0]
    count = 1
    while stack:
        u = stack.pop()
        for v in adj[u]:
            if not seen[v]:
                seen[v] = True
                count += 1
                stack.append(v)
    return count == n


def _prufer_to_adjacency(prufer: Sequence[int], n: int) -> List[List[int]]:
    """Decode a Prüfer sequence into adjacency lists.

    The labeled tree a Prüfer sequence encodes is unique, so this matches
    ``networkx.from_prufer_sequence`` edge-for-edge without the graph
    object.
    """
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    adj: List[List[int]] = [[] for _ in range(n)]
    leaves = [u for u in range(n) if degree[u] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        adj[leaf].append(x)
        adj[x].append(leaf)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    adj[u].append(v)
    adj[v].append(u)
    return adj


@tagged
def ring(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Cycle on ``n >= 3`` nodes.

    With ``seed=None`` the port labeling is the canonical symmetric one
    (port 1 = clockwise, port 2 = counter-clockwise at every node), making
    the ring vertex-transitive as a port-labeled graph — its quotient graph
    collapses to a single node, the worst case for Theorem 1.  A seeded
    labeling scrambles ports per node, usually breaking the symmetry.
    """
    if n < 3:
        raise ConfigurationError("ring needs n >= 3")
    if seed is not None:
        return _label([((u - 1) % n, (u + 1) % n) for u in range(n)], rng=_rng(seed))
    return PortLabeledGraph._from_validated(
        tuple((((u + 1) % n, 2), ((u - 1) % n, 1)) for u in range(n))
    )


@tagged
def path(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Path on ``n >= 2`` nodes (degree-1 endpoints)."""
    if n < 2:
        raise ConfigurationError("path needs n >= 2")
    adj = [
        [v for v in (u - 1, u + 1) if 0 <= v < n]
        for u in range(n)
    ]
    return _label(adj, rng=_rng(seed))


@tagged
def clique(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Complete graph on ``n >= 2`` nodes.

    With ``seed=None`` the labeling is circulant: at node ``u``, port ``p``
    leads to ``(u + p) mod n`` (arriving through port ``n − p``), which is
    vertex-transitive — all views coincide, quotient collapses to one node.
    """
    if n < 2:
        raise ConfigurationError("clique needs n >= 2")
    if seed is not None:
        return _label(
            [[v for v in range(n) if v != u] for u in range(n)], rng=_rng(seed)
        )
    return PortLabeledGraph._from_validated(
        tuple(
            tuple(((u + p) % n, n - p) for p in range(1, n))
            for u in range(n)
        )
    )


@tagged
def star(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Star: one hub (node 0), ``n - 1`` leaves."""
    if n < 2:
        raise ConfigurationError("star needs n >= 2")
    adj: List[List[int]] = [list(range(1, n))] + [[0] for _ in range(n - 1)]
    return _label(adj, rng=_rng(seed))


@tagged
def hypercube(dim: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Hypercube of dimension ``dim`` (``2**dim`` nodes).

    With ``seed=None``, port ``p`` flips bit ``p − 1`` (dimension-labeled,
    same port on both endpoints) — vertex-transitive, quotient collapses.
    """
    if dim < 1:
        raise ConfigurationError("hypercube needs dim >= 1")
    n = 1 << dim
    if seed is not None:
        adj = [[u ^ (1 << b) for b in range(dim)] for u in range(n)]
        return _label(adj, rng=_rng(seed))
    return PortLabeledGraph._from_validated(
        tuple(
            tuple((u ^ (1 << (p - 1)), p) for p in range(1, dim + 1))
            for u in range(n)
        )
    )


@tagged
def torus(rows: int, cols: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """2-D torus grid ``rows x cols`` (``rows, cols >= 3``).

    With ``seed=None``, ports are direction-labeled (1=+row, 2=−row,
    3=+col, 4=−col at every node) — vertex-transitive, quotient collapses.
    """
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus needs rows, cols >= 3")

    def idx(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    if seed is not None:
        adj = [
            [idx(r + 1, c), idx(r - 1, c), idx(r, c + 1), idx(r, c - 1)]
            for r in range(rows)
            for c in range(cols)
        ]
        return _label(adj, rng=_rng(seed))
    table = tuple(
        (
            (idx(r + 1, c), 2),
            (idx(r - 1, c), 1),
            (idx(r, c + 1), 4),
            (idx(r, c - 1), 3),
        )
        for r in range(rows)
        for c in range(cols)
    )
    return PortLabeledGraph._from_validated(table)


@tagged
def random_regular(n: int, d: int, seed: int = 0) -> PortLabeledGraph:
    """Connected random ``d``-regular graph (retries until connected).

    Sampling stays on networkx (its pairing-model RNG stream is the
    fixture contract); the sampled edge structure is labeled through the
    fast adjacency path in a single round-trip.
    """
    if n * d % 2 != 0 or d >= n:
        raise ConfigurationError(f"no {d}-regular graph on {n} nodes")
    import networkx as nx

    for attempt in range(64):
        g = nx.random_regular_graph(d, n, seed=seed + attempt)
        adj = [list(g.neighbors(u)) for u in range(n)]
        if _connected(adj):
            return _label(adj, rng=_rng(seed))
    raise ConfigurationError(f"could not sample connected {d}-regular graph on {n} nodes")


@tagged
def erdos_renyi(n: int, p: float, seed: int = 0) -> PortLabeledGraph:
    """Connected G(n, p) (resampled until connected; p is bumped on failure).

    Like :func:`random_regular`: networkx samples, we label — one
    round-trip, no re-validation.
    """
    import networkx as nx

    prob = p
    for attempt in range(64):
        g = nx.gnp_random_graph(n, prob, seed=seed + attempt)
        adj = [list(g.neighbors(u)) for u in range(n)]
        if _connected(adj):
            return _label(adj, rng=_rng(seed))
        prob = min(1.0, prob * 1.25)
    raise ConfigurationError(f"could not sample connected G({n},{p})")


@tagged
def random_tree(n: int, seed: int = 0) -> PortLabeledGraph:
    """Uniform random labeled tree on ``n`` nodes (Prüfer sampling)."""
    if n < 2:
        raise ConfigurationError("random_tree needs n >= 2")
    rng = np.random.default_rng(seed)
    if n == 2:
        return _label([[1], [0]])
    prufer = [int(rng.integers(0, n)) for _ in range(n - 2)]
    return _label(_prufer_to_adjacency(prufer, n), rng=rng)


@tagged
def lollipop(clique_n: int, path_n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Lollipop graph: a clique glued to a path (classic cover-time worst case).

    Nodes ``0..clique_n-1`` form the clique; ``clique_n..clique_n+path_n-1``
    the path, attached at node ``clique_n - 1`` (networkx's layout).
    """
    if clique_n < 3 or path_n < 1:
        raise ConfigurationError("lollipop needs clique_n >= 3, path_n >= 1")
    n = clique_n + path_n
    adj: List[List[int]] = [
        [v for v in range(clique_n) if v != u] for u in range(clique_n)
    ]
    adj[clique_n - 1].append(clique_n)
    for u in range(clique_n, n):
        row = [u - 1]
        if u + 1 < n:
            row.append(u + 1)
        adj.append(row)
    return _label(adj, rng=_rng(seed))


@tagged
def complete_bipartite(a: int, b: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Complete bipartite graph K(a, b): sides ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise ConfigurationError("complete_bipartite needs a, b >= 1")
    left = list(range(a))
    right = list(range(a, a + b))
    adj = [right] * a + [left] * b
    return _label(adj, rng=_rng(seed))


@tagged
def random_connected(n: int, seed: int = 0, avg_degree: float = 3.0) -> PortLabeledGraph:
    """A generic connected random graph with roughly ``avg_degree`` mean degree.

    The workhorse for property-based tests: take a random tree (guarantees
    connectivity) and sprinkle extra random edges on top.
    """
    rng = np.random.default_rng(seed)
    if n > 2:
        adj = _prufer_to_adjacency(
            [int(rng.integers(0, n)) for _ in range(n - 2)], n
        )
    else:
        adj = [[v for v in (u - 1, u + 1) if 0 <= v < n] for u in range(n)]
    edge_set = {(min(u, v), max(u, v)) for u in range(n) for v in adj[u]}
    extra = max(0, int(n * avg_degree / 2) - (n - 1))
    tries = 0
    while extra > 0 and tries < 50 * n:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        tries += 1
        if u != v and (min(u, v), max(u, v)) not in edge_set:
            edge_set.add((min(u, v), max(u, v)))
            adj[u].append(v)
            adj[v].append(u)
            extra -= 1
    return _label(adj, rng=rng)


#: Registry used by the experiment sweeps: name -> callable(n, seed) -> graph.
FAMILIES = {
    "ring": lambda n, seed=0: ring(n, seed),
    "clique": lambda n, seed=0: clique(n, seed),
    "random_regular_3": lambda n, seed=0: random_regular(n if (n * 3) % 2 == 0 else n + 1, 3, seed),
    "erdos_renyi": lambda n, seed=0: erdos_renyi(n, min(1.0, 2.5 * np.log(max(n, 2)) / max(n, 2)), seed),
    "random_tree": lambda n, seed=0: random_tree(n, seed),
    "random_connected": lambda n, seed=0: random_connected(n, seed),
}
