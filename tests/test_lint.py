"""Tests for the determinism linter (``repro lint`` / :mod:`repro.lint`).

Three layers:

* fixture tests — one bad + one good fixture per checker under
  ``tests/data/lint/``, plus a checked-in golden of the JSON output;
* the acceptance gate — the real ``src/repro`` tree lints clean, and
  breaking the Scenario ↔ cell_key contract in any of the ways ISSUE.md
  names (deleting a drop-at-default guard, adding an axis without
  canonicalisation, making a guarded write unconditional) turns the
  axis checker red;
* CLI plumbing — exit codes, ``--format json``, ``--select``
  validation, and the checker registry surfaced in ``--help``.
"""

import json
import pathlib
import shutil
import subprocess
import sys

import pytest

from repro.cli import main
from repro.lint import CHECKERS, default_lint_root, lint_paths
from repro.lint.base import run_lint

TESTS_DIR = pathlib.Path(__file__).resolve().parent
FIXTURES = TESTS_DIR / "data" / "lint"
BAD = FIXTURES / "bad"
GOOD = FIXTURES / "good"
SRC_REPRO = TESTS_DIR.parent / "src" / "repro"

CHECKER_NAMES = [c.name for c in CHECKERS]


def findings_for(path, select=None):
    return run_lint([path], CHECKERS, select=select)


def checker_hits(findings, checker):
    return [f for f in findings if f.checker == checker]


class TestFixtures:
    """Every checker has a firing bad fixture and a silent good one."""

    @pytest.fixture(scope="class")
    def bad_findings(self):
        return findings_for(BAD)

    @pytest.fixture(scope="class")
    def good_findings(self):
        return findings_for(GOOD)

    def test_good_tree_is_clean(self, good_findings):
        assert good_findings == []

    def test_every_checker_fires_on_bad_tree(self, bad_findings):
        fired = {f.checker for f in bad_findings}
        assert fired == set(CHECKER_NAMES)

    def test_unseeded_rng(self, bad_findings):
        hits = checker_hits(bad_findings, "no-unseeded-rng")
        assert [(f.path, f.line) for f in hits] == [
            ("rng.py", 9),   # random.seed
            ("rng.py", 10),  # random.random
            ("rng.py", 11),  # from-imported shuffle
            ("rng.py", 12),  # unseeded random.Random()
            ("rng.py", 13),  # SystemRandom
            ("rng.py", 14),  # np.random.rand
            ("rng.py", 15),  # unseeded default_rng()
        ]

    def test_wallclock(self, bad_findings):
        hits = checker_hits(bad_findings, "no-wallclock-in-records")
        assert [f.line for f in hits] == [7, 8, 9, 10, 11]
        assert all(f.path == "wallclock.py" for f in hits)

    def test_unordered_iteration(self, bad_findings):
        hits = checker_hits(bad_findings, "no-unordered-iteration")
        assert [f.line for f in hits] == [7, 9, 11, 12, 13, 14]
        assert all(f.path == "unordered.py" for f in hits)

    def test_canonical_json(self, bad_findings):
        hits = checker_hits(bad_findings, "canonical-json-only")
        assert len(hits) == 1
        assert hits[0].path == "repro/analysis/store.py"
        assert "sort_keys" in hits[0].message

    def test_exception_hygiene(self, bad_findings):
        hits = checker_hits(bad_findings, "exception-hygiene")
        assert [f.line for f in hits] == [7, 14, 21]
        assert all(f.path == "broad_except.py" for f in hits)

    def test_axis_contract_violations(self, bad_findings):
        hits = checker_hits(bad_findings, "scenario-axis-canonicalisation")
        messages = "\n".join(f.message for f in hits)
        assert "'schema' slot" in messages           # base payload key deleted
        assert "'humidity' has no default" in messages
        assert "'weather' never reaches cell_key" in messages
        assert "accepts 'rounds' but never writes it" in messages
        assert "'scheduler' joins the key payload without" in messages
        assert "'ghost' has no Scenario field" in messages
        assert len(hits) == 6

    def test_findings_carry_hints_and_positions(self, bad_findings):
        for f in bad_findings:
            assert f.hint, f
            assert f.line >= 1 and f.col >= 0

    def test_golden_json_output(self, bad_findings):
        golden = json.loads((FIXTURES / "golden.json").read_text())
        assert [f.to_dict() for f in bad_findings] == golden

    def test_benchmark_path_is_wallclock_exempt(self):
        # good/repro/analysis/benchmark.py reads perf_counter twice and
        # must stay silent purely by virtue of its path.
        hits = findings_for(GOOD / "repro" / "analysis" / "benchmark.py",
                            select=["no-wallclock-in-records"])
        assert hits == []


class TestPragmas:
    def test_line_pragma_suppresses(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import random\n"
            "x = random.random()  # repro: allow-rng — fixture justification\n"
        )
        assert findings_for(tmp_path) == []

    def test_preceding_comment_pragma_suppresses(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import time\n"
            "# repro: allow-wallclock — deadline, never recorded\n"
            "t = time.monotonic()\n"
        )
        assert findings_for(tmp_path) == []

    def test_file_pragma_suppresses_whole_module(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "# repro: allow-rng file\n"
            "import random\n"
            "a = random.random()\n"
            "b = random.random()\n"
        )
        assert findings_for(tmp_path) == []

    def test_wrong_pragma_token_does_not_suppress(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text(
            "import random\n"
            "x = random.random()  # repro: allow-wallclock\n"
        )
        assert len(findings_for(tmp_path)) == 1

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path):
        (tmp_path / "m.py").write_text("def broken(:\n")
        findings = findings_for(tmp_path)
        assert len(findings) == 1
        assert findings[0].checker == "syntax"


class TestRealTree:
    """The acceptance gate: src/repro lints clean, mutations go red."""

    def test_src_repro_is_clean(self):
        assert lint_paths() == []

    def test_default_root_is_the_package(self):
        assert default_lint_root() == SRC_REPRO

    @pytest.fixture()
    def real_tree(self, tmp_path):
        """Copy the real contract modules into a mini lintable tree."""
        (tmp_path / "repro" / "analysis").mkdir(parents=True)
        shutil.copy(SRC_REPRO / "scenarios.py", tmp_path / "repro" / "scenarios.py")
        shutil.copy(SRC_REPRO / "analysis" / "store.py",
                    tmp_path / "repro" / "analysis" / "store.py")
        return tmp_path

    def axis_findings(self, tree):
        return findings_for(tree, select=["scenario-axis-canonicalisation"])

    def test_real_contract_modules_pass(self, real_tree):
        assert self.axis_findings(real_tree) == []

    def test_deleting_a_guard_fails(self, real_tree):
        store = real_tree / "repro" / "analysis" / "store.py"
        src = store.read_text()
        guard = ('    if scheduler != "synchronous":\n'
                 '        config["scheduler"] = scheduler\n')
        assert guard in src
        store.write_text(src.replace(guard, ""))
        hits = self.axis_findings(real_tree)
        assert any("'scheduler'" in f.message and "never writes" in f.message
                   for f in hits)

    def test_unguarded_write_fails(self, real_tree):
        store = real_tree / "repro" / "analysis" / "store.py"
        src = store.read_text()
        guard = ('    if scheduler != "synchronous":\n'
                 '        config["scheduler"] = scheduler\n')
        assert guard in src
        store.write_text(src.replace(
            guard, '    config["scheduler"] = scheduler\n'))
        hits = self.axis_findings(real_tree)
        assert any("without a drop-at-default guard" in f.message
                   for f in hits)

    def test_new_axis_without_canonicalisation_fails(self, real_tree):
        scen = real_tree / "repro" / "scenarios.py"
        src = scen.read_text()
        anchor = '    scheduler: str = "synchronous"\n'
        assert anchor in src
        scen.write_text(src.replace(anchor, anchor + "    weak_byz: int = 0\n"))
        hits = self.axis_findings(real_tree)
        assert any("'weak_byz' never reaches cell_key" in f.message
                   for f in hits)

    def test_deleting_a_base_key_fails(self, real_tree):
        store = real_tree / "repro" / "analysis" / "store.py"
        src = store.read_text()
        slot = '        "seed": seed,\n'
        assert slot in src
        store.write_text(src.replace(slot, ""))
        hits = self.axis_findings(real_tree)
        assert any("lost the 'seed' slot" in f.message for f in hits)


class TestCli:
    def test_clean_tree_exits_zero(self, capsys):
        assert main(["lint", str(GOOD)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", str(BAD)]) == 1
        out = capsys.readouterr().out
        assert "[no-unseeded-rng]" in out
        assert "finding(s)" in out

    def test_json_format_round_trips(self, capsys):
        assert main(["lint", str(BAD), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert {f["checker"] for f in payload} == set(CHECKER_NAMES)

    def test_select_subsets_checkers(self, capsys):
        assert main(["lint", str(BAD), "--select", "no-unseeded-rng"]) == 1
        out = capsys.readouterr().out
        assert "[no-unseeded-rng]" in out
        assert "[exception-hygiene]" not in out

    def test_unknown_checker_exits_two(self, capsys):
        assert main(["lint", str(BAD), "--select", "no-such-checker"]) == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_help_lists_every_checker(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--help"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(TESTS_DIR.parent / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        for name in CHECKER_NAMES:
            assert name in proc.stdout

    def test_default_path_is_real_tree(self, capsys):
        # `repro lint` with no path argument lints src/repro — clean.
        assert main(["lint"]) == 0
