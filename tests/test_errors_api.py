"""Tests for the exception hierarchy and the public package surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    GraphStructureError,
    ImpossibleInstance,
    MapError,
    PortError,
    ProtocolViolation,
    ReproError,
    RoundLimitExceeded,
    SimulationError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            GraphStructureError,
            PortError,
            MapError,
            SimulationError,
            ProtocolViolation,
            RoundLimitExceeded,
            ConfigurationError,
            ImpossibleInstance,
        ):
            assert issubclass(exc, ReproError)

    def test_port_error_is_graph_error(self):
        assert issubclass(PortError, GraphStructureError)

    def test_protocol_violation_is_simulation_error(self):
        assert issubclass(ProtocolViolation, SimulationError)

    def test_impossible_instance_is_configuration_error(self):
        assert issubclass(ImpossibleInstance, ConfigurationError)

    def test_one_except_catches_library_errors(self):
        try:
            from repro.graphs import ring

            ring(1)
        except ReproError:
            pass
        else:
            pytest.fail("expected a ReproError subclass")


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.7.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_solvers_exported(self):
        for i in range(1, 8):
            assert callable(getattr(repro, f"solve_theorem{i}"))

    def test_subpackage_all_exports_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.byzantine
        import repro.core
        import repro.gathering
        import repro.graphs
        import repro.mapping
        import repro.sim

        for module in (
            repro.graphs,
            repro.sim,
            repro.byzantine,
            repro.mapping,
            repro.gathering,
            repro.core,
            repro.baselines,
            repro.analysis,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)

    def test_table1_importable_from_root(self):
        assert len(repro.TABLE1) == 7
