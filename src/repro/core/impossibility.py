"""Theorem 8 (paper Section 5) as an executable adversarial construction.

Claim: with ``k`` robots (``f`` Byzantine) on ``n`` nodes, no
deterministic algorithm solves the modified Byzantine dispersion
(≤ ``⌈(k−f)/n⌉`` honest robots per node) when
``⌈k/n⌉ > ⌈(k−f)/n⌉`` — even against *weak* Byzantine robots, even
knowing ``n, k, f``.

The proof is a two-execution indistinguishability argument, and because
our simulator is deterministic we can *run* it against any concrete
algorithm:

1. **Execution 1** — all ``k`` robots honest.  Some node ``w`` ends with
   ``⌈k/n⌉`` settlers (pigeonhole).
2. **Execution 2** — keep the ``⌈k/n⌉`` robots that settled at ``w``
   honest; corrupt ``f`` of the others and have them *behave exactly as
   in execution 1* (a legal weak-Byzantine strategy).  Determinism makes
   the executions indistinguishable, so the same ``⌈k/n⌉`` — now all
   honest — stack up on ``w``, exceeding the ``⌈(k−f)/n⌉`` cap.

:func:`demonstrate_impossibility` performs both executions with the
capacity-DFS baseline (any deterministic algorithm exhibits the bound)
and returns the machine-checked violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..baselines.dfs_dispersion import solve_dfs_baseline
from ..errors import ConfigurationError
from ..graphs.port_labeled import PortLabeledGraph
from ..sim.scheduler import RunReport

__all__ = ["ImpossibilityReport", "impossibility_applies", "demonstrate_impossibility"]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def impossibility_applies(n: int, k: int, f: int) -> bool:
    """Theorem 8's condition: ``⌈k/n⌉ > ⌈(k−f)/n⌉``."""
    if k < 1 or f < 0 or f > k or n < 1:
        raise ConfigurationError("need k >= 1, 0 <= f <= k, n >= 1")
    return _ceil_div(k, n) > _ceil_div(k - f, n)


@dataclass
class ImpossibilityReport:
    """Outcome of the two-execution construction.

    ``violated`` is True when execution 2 left more than
    ``⌈(k−f)/n⌉`` *honest* settlers on some node — the contradiction the
    theorem predicts whenever ``applies`` is True.
    """

    n: int
    k: int
    f: int
    applies: bool
    cap_all: int            # ⌈k/n⌉
    cap_required: int       # ⌈(k−f)/n⌉
    crowded_node: Optional[int]
    honest_at_crowded: int
    violated: bool
    exec1: RunReport
    exec2: RunReport


def demonstrate_impossibility(
    graph: PortLabeledGraph,
    k: int,
    f: int,
    seed: int = 0,
) -> ImpossibilityReport:
    """Run the Theorem 8 construction against the capacity-DFS algorithm.

    The choice of algorithm is immaterial to the theorem (the argument
    quantifies over all deterministic algorithms); the capacity-DFS
    baseline is used because it genuinely disperses ``k > n`` honest
    robots, making execution 1 representative.
    """
    n = graph.n
    applies = impossibility_applies(n, k, f)
    cap_all = _ceil_div(k, n)
    cap_required = _ceil_div(max(k - f, 0), n)

    # Execution 1: all honest, capacity ⌈k/n⌉.
    exec1 = solve_dfs_baseline(graph, k=k, f=0, cap=cap_all, seed=seed)
    by_node: Dict[int, List[int]] = {}
    for rid, node in exec1.settled.items():
        if node is not None:
            by_node.setdefault(node, []).append(rid)
    crowded = max(by_node.items(), key=lambda kv: (len(kv[1]), -kv[0]), default=None)
    if crowded is None:
        raise ConfigurationError("execution 1 settled nobody — baseline failure")
    crowded_node, crowd = crowded
    crowd = sorted(crowd)[:cap_all]

    # Execution 2: corrupt f robots outside the crowd; strategy = behave
    # exactly as honest robots do (the simulator runs the same program,
    # only flagged Byzantine — legal for weak Byzantine robots).
    others = [rid for rid in sorted(exec1.settled) if rid not in set(crowd)]
    if len(others) < f:
        raise ConfigurationError(
            f"cannot corrupt f={f} robots outside the crowded node's settlers"
        )
    byz_ids = others[:f]

    from ..byzantine.adversary import Adversary
    from ..baselines.dfs_dispersion import dfs_dispersion_program

    def honest_mimic(api, rng, _cap=cap_all):
        # Weak-Byzantine legality: runs the honest program verbatim.
        return dfs_dispersion_program(api, _cap)

    exec2 = solve_dfs_baseline(
        graph,
        k=k,
        cap=cap_all,
        byz_ids=byz_ids,
        adversary=Adversary(honest_mimic, seed=seed),
        seed=seed,
    )
    honest_at = [
        rid for rid, node in exec2.settled.items() if node == crowded_node
    ]
    violated = len(honest_at) > cap_required
    return ImpossibilityReport(
        n=n,
        k=k,
        f=f,
        applies=applies,
        cap_all=cap_all,
        cap_required=cap_required,
        crowded_node=crowded_node,
        honest_at_crowded=len(honest_at),
        violated=violated,
        exec1=exec1,
        exec2=exec2,
    )
