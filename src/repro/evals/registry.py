"""The named eval-suite registry: which regimes a solver must answer for.

An :class:`EvalSuite` is a *named, frozen workload*: a builder that
compiles to a :class:`~repro.scenarios.ScenarioGrid` (so every executor
guarantee — byte-identical records across serial/parallel/warm-store
runs, batched execution, fault quarantine — applies verbatim) plus a
``classify`` function that buckets each record into a **cell class**,
the granularity at which expected results are pinned in
``benchmarks/EVAL_<suite>.json``.

The starting suites mirror the paper's regimes:

* ``ring_weak_byz`` / ``torus_strong`` — the weak- and strong-Byzantine
  models of Molla, Mondal & Moses (arXiv:2004.11439): every Table 1 row
  against weak adversaries on a ring, and the strong rows against
  ID-faking adversaries on a torus.
* ``beyond_tolerance`` — the capacitated / beyond-tolerance stress
  regime (Moses & Redlich, arXiv:2311.01511): ``f`` swept past each
  row's bound, pinning *where* the driver starts rejecting.
* ``scheduler_stress`` — the asynchrony axis: the same solvers under
  semi-synchronous and adversarial activation schedulers, pinning which
  timing models each protocol survives.
* ``batch_scale`` — a seed sweep shaped to flow through the batched
  struct-of-arrays engine, pinning that scale-out execution answers
  exactly like per-cell execution.

Suites deliberately stay small (a few dozen cells at most): they are
CI-gated behavioural pins, not benchmarks — wall time lives in the
leaderboard display and never in a checked-in file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from ..core.runner import get_row
from ..errors import ConfigurationError
from ..graphs import random_connected, ring, torus
from ..scenarios import ScenarioGrid, grid

__all__ = ["EvalSuite", "SUITES", "get_suite", "suite_names"]


def _by_strategy(rec: Dict) -> str:
    """Cell class = adversary strategy (the default bucketing)."""
    return rec["strategy"]


def _by_scheduler(rec: Dict) -> str:
    """Cell class = activation-scheduler spec (synchronous-default
    records omit the key for cache compatibility)."""
    return rec.get("scheduler", "synchronous")


def _by_bound(rec: Dict) -> str:
    """Cell class = which side of the tolerance bound the cell landed on
    (tolerance-kind records carry ``rejected``)."""
    return "beyond_bound" if rec.get("rejected") else "within_bound"


@dataclass(frozen=True)
class EvalSuite:
    """One named scenario suite with its paper regime and cell classes.

    ``build`` compiles the workload afresh each call (grids are cheap;
    graphs resolve through the generator memo), ``classify`` maps a
    record to its cell-class label, and ``regime``/``claim`` document
    what the suite pins — EXPERIMENTS.md's "Eval suites" table quotes
    them and ``tools/check_docs.py`` keeps the two in sync.
    """

    name: str
    title: str
    regime: str
    claim: str
    build: Callable[[], ScenarioGrid] = field(repr=False)
    classify: Callable[[Dict], str] = field(repr=False)


def _ring_weak_byz() -> ScenarioGrid:
    """Every applicable Table 1 row on a ring at its tolerance bound,
    against the two strongest weak-model adversaries."""
    return grid(
        graphs=ring(8, seed=0),
        strategies=["squatter", "ghost_squatter"],
        f="max",
        seeds=0,
    )


def _torus_strong() -> ScenarioGrid:
    """The strong-model rows on a 3x3 torus against ID-faking
    adversaries (the strategies only the strong model allows)."""
    return grid(
        rows=[6, 7],
        graphs=torus(3, 3, seed=0),
        strategies=["impersonator", "id_cycler"],
        f="max",
        seeds=0,
    )


def _scheduler_stress() -> ScenarioGrid:
    """The gathered-start polynomial rows under hostile activation
    schedulers (synchronous column doubles as the control group)."""
    return grid(
        rows=[4, 5],
        graphs=ring(9, seed=0),
        strategies="squatter",
        schedulers=[
            "synchronous",
            "semi_synchronous(p=0.5)",
            "adversarial(window=4)",
        ],
        seeds=0,
    )


def _beyond_tolerance() -> ScenarioGrid:
    """``f`` swept from 0 to two past each row's bound — the rows have
    *different* bounds, so this is a union of per-row tolerance grids,
    not one product grid."""
    g = ring(9, seed=0)
    subgrids = []
    for serial in (4, 5):
        bound = get_row(serial).f_max(g)
        subgrids.append(
            grid(rows=serial, graphs=g, strategies="ghost_squatter",
                 f=list(range(0, bound + 3)), kind="tolerance",
                 applicable_only=False)
        )
    return ScenarioGrid.concat(subgrids)


def _batch_scale() -> ScenarioGrid:
    """A seed sweep of the map-based solver shaped so the batched
    struct-of-arrays engine takes it (same graph/solver/strategy, only
    the seed varying): the eval pins that batched execution answers
    byte-for-byte like per-cell execution."""
    return grid(
        rows=[1],
        graphs=random_connected(9, seed=0),
        strategies=["squatter", "idle"],
        f="max",
        seeds=[0, 1, 2, 3],
    )


#: The registry, in documentation order.  ``repro eval --help``,
#: ``benchmarks/check_evals.py`` discovery, and the EXPERIMENTS.md
#: suite table all derive from this dict.
SUITES: Dict[str, EvalSuite] = {
    suite.name: suite
    for suite in (
        EvalSuite(
            name="ring_weak_byz",
            title="weak Byzantine ring",
            regime="weak model (no ID faking), ring, f at each row's bound",
            claim="Table 1 rows disperse on rings despite f weak liars",
            build=_ring_weak_byz,
            classify=_by_strategy,
        ),
        EvalSuite(
            name="torus_strong",
            title="strong Byzantine torus",
            regime="strong model (ID faking), 3x3 torus, f at the bound",
            claim="Theorems 6-7 survive impersonation on a torus",
            build=_torus_strong,
            classify=_by_strategy,
        ),
        EvalSuite(
            name="scheduler_stress",
            title="hostile activation schedulers",
            regime="semi-synchronous and adversarial activation on a ring",
            claim="synchronous rows 4-5 succeed; timing attacks are recorded, not crashed",
            build=_scheduler_stress,
            classify=_by_scheduler,
        ),
        EvalSuite(
            name="beyond_tolerance",
            title="f beyond the bound",
            regime="tolerance sweep past each row's f_max on a ring",
            claim="drivers reject exactly the beyond-bound budgets",
            build=_beyond_tolerance,
            classify=_by_bound,
        ),
        EvalSuite(
            name="batch_scale",
            title="batched seed sweep",
            regime="seed sweep routed through the struct-of-arrays engine",
            claim="batched execution is byte-identical to per-cell runs",
            build=_batch_scale,
            classify=_by_strategy,
        ),
    )
}


def suite_names() -> List[str]:
    """The registered suite names, in registry (documentation) order."""
    return list(SUITES)


def get_suite(name: str) -> EvalSuite:
    """Look up a suite by name; unknown names raise naming the registry."""
    try:
        return SUITES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown eval suite {name!r} "
            f"(choose from: {', '.join(SUITES)})"
        )
