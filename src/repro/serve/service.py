"""The dispersion service: warm-store serving, single-flight, backpressure.

:class:`DispersionService` is the transport-free core of the serve
subsystem (the HTTP layer in :mod:`repro.serve.server` is a thin
routing shell around it).  One instance owns:

* an optional shared :class:`~repro.analysis.store.RunStore` — **warm
  cells are answered straight from disk with zero solver calls**;
* a single-flight table ``key -> Future`` — concurrent identical
  requests coalesce onto one in-flight computation whose result fans
  out to every waiter;
* a bounded submission queue feeding ``workers`` compute threads — a
  full queue is *explicit backpressure* (:class:`Busy` → HTTP 429 with
  ``Retry-After``), never an unbounded buffer;
* an :class:`~repro.serve.events.EventBroker` receiving the life cycle
  of every computed cell (``queued``/``started``/sampled ``round``
  progress/``result``/``quarantined``/``rejected``/``done``).

Byte-identity is inherited, not re-implemented: workers run cells
through the same :func:`~repro.analysis.experiments.execute_plan` →
``store.put`` path as the CLI, so records produced here are
byte-identical to CLI runs and land in the same store shards.  Failures
follow the executor's taxonomy: a :class:`~repro.errors.ReproError` is
a deterministic *rejection* (HTTP 422), a quarantined cell surfaces its
structured failure record as a 5xx body, and neither crashes the
server.

The wall clock appears **only** in the latency metrics path (EWMA cell
seconds driving ``Retry-After``) — records never see it.
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..analysis.experiments import ExecutionPolicy, execute_plan
from ..analysis.faults import FaultPlan
from ..analysis.store import RunStore
from ..errors import ReproError
from ..scenarios import Scenario
from ..sim import progress
from .events import EventBroker

__all__ = ["Busy", "DispersionService", "RunOutcome"]


class Busy(Exception):
    """The submission queue is full — explicit backpressure.

    Carries the advisory ``retry_after`` seconds the HTTP layer turns
    into a 429 ``Retry-After`` header.
    """

    def __init__(self, retry_after: int):
        super().__init__(f"submission queue is full; retry after ~{retry_after}s")
        self.retry_after = retry_after


@dataclass
class RunOutcome:
    """How one cell's computation ended (every waiter gets the same one).

    ``status`` is ``"ok"`` (records computed or replayed), ``"failed"``
    (the executor quarantined the cell — ``records`` holds its
    structured failure records), or ``"rejected"`` (a deterministic
    :class:`ReproError`; ``error`` holds type and message).
    """

    key: str
    status: str
    records: Optional[List[dict]] = None
    error: Optional[Dict[str, str]] = None


class _LockedStore:
    """A thread-safe facade over one shared :class:`RunStore` handle.

    The store's file format is append-atomic, but one *handle* (shared
    index, shard cursor) is built for one caller at a time; compute
    threads and the event loop therefore serialize on this lock.
    """

    def __init__(self, store: RunStore):
        self._store = store
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            return self._store.get(key)

    def put(self, key: str, records) -> None:
        with self._lock:
            self._store.put(key, records)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._store

    def stats(self) -> Dict:
        with self._lock:
            return self._store.stats()

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self._store.hits,
                "misses": self._store.misses,
                "puts": self._store.puts,
            }


class DispersionService:
    """Warm-store serving + single-flight dedup + bounded compute queue.

    Construct on the event loop thread; every public method except the
    worker internals must be called from that loop.
    """

    def __init__(
        self,
        store: Optional[RunStore] = None,
        workers: int = 2,
        queue_size: int = 64,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        round_every: int = 100,
        retain_done_events: int = 64,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if queue_size < 1:
            raise ValueError("queue_size must be >= 1")
        self.store = _LockedStore(store) if store is not None else None
        self.policy = policy if policy is not None else ExecutionPolicy()
        self.faults = faults
        self.workers = workers
        self.queue_size = queue_size
        #: Emit one ``round`` progress event every N completed rounds
        #: (round 0 always; terminal events are never sampled away).
        self.round_every = max(1, round_every)
        self.broker = EventBroker(retain_done=retain_done_events)
        self.counters: Dict[str, int] = {
            "requests": 0,
            "warm_hits": 0,
            "dedup_joined": 0,
            "enqueued": 0,
            "computed": 0,
            "failed": 0,
            "rejected": 0,
            "busy_429": 0,
        }
        self._queue: "asyncio.Queue[Tuple[str, Scenario]]" = asyncio.Queue(
            maxsize=queue_size
        )
        self._inflight: Dict[str, "asyncio.Future[RunOutcome]"] = {}
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._worker_tasks = [
            asyncio.ensure_future(self._worker()) for _ in range(workers)
        ]
        #: EWMA of recent cell compute seconds — drives ``Retry-After``.
        #: Metrics only; never touches records.
        self._ewma_cell_seconds = 1.0

    # -- submission (event-loop side) ---------------------------------- #

    def submit(self, scenario: Scenario):
        """Route one scenario: warm answer, joined in-flight, or enqueue.

        Returns ``("warm", key, records)`` for a store hit (zero solver
        calls), or ``(status, key, future)`` with ``status`` one of
        ``"joined"`` / ``"queued"``.  Raises :class:`Busy` when the
        bounded queue is full.
        """
        key = scenario.key()
        self.counters["requests"] += 1
        if self.store is not None:
            records = self.store.get(key)
            if records is not None:
                self.counters["warm_hits"] += 1
                return "warm", key, records
        future = self._inflight.get(key)
        if future is not None:
            self.counters["dedup_joined"] += 1
            return "joined", key, future
        future = self._loop.create_future()
        self._inflight[key] = future
        try:
            self._queue.put_nowait((key, scenario))
        except asyncio.QueueFull:
            del self._inflight[key]
            self.counters["busy_429"] += 1
            raise Busy(self.retry_after())
        self.counters["enqueued"] += 1
        self.broker.publish(key, "queued", {"key": key, "position": self._queue.qsize() - 1})
        return "queued", key, future

    def retry_after(self) -> int:
        """Advisory seconds until queue space is likely: the EWMA cell
        time scaled by the work ahead of a new submission."""
        backlog = self._queue.qsize() + len(self._inflight) + 1
        estimate = self._ewma_cell_seconds * backlog / self.workers
        return max(1, min(60, math.ceil(estimate)))

    def result_of(self, key: str):
        """``("done", records)`` from the store, ``("inflight", future)``
        while computing, or ``("unknown", None)``."""
        if self.store is not None:
            records = self.store.get(key)
            if records is not None:
                return "done", records
        future = self._inflight.get(key)
        if future is not None:
            return "inflight", future
        return "unknown", None

    def stats(self) -> Dict:
        """Store + queue + cache-hit counters (the ``/stats`` body)."""
        out: Dict = {
            "counters": dict(self.counters),
            "queue": {
                "depth": self._queue.qsize(),
                "capacity": self.queue_size,
                "inflight": len(self._inflight),
                "workers": self.workers,
            },
            "events": self.broker.stats(),
            "retry_after": self.retry_after(),
        }
        if self.store is not None:
            out["store"] = self.store.stats()
            out["store"].update(self.store.counters())
        else:
            out["store"] = None
        return out

    async def aclose(self) -> None:
        """Cancel workers and release the thread pool."""
        for task in self._worker_tasks:
            task.cancel()
        for task in self._worker_tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # repro: allow-broad-except — shutdown boundary: a worker's pending failure must not abort teardown
                pass
        self._executor.shutdown(wait=False)

    # -- computation (worker side) ------------------------------------- #

    async def _worker(self) -> None:
        while True:
            key, scenario = await self._queue.get()
            self.broker.publish(key, "started", {"key": key})
            t0 = time.monotonic()  # repro: allow-wallclock — latency metrics (EWMA for Retry-After); records never see this value
            try:
                outcome = await self._loop.run_in_executor(
                    self._executor, self._compute, key, scenario
                )
            except Exception as exc:  # repro: allow-broad-except — fault boundary: an executor bug becomes a structured 500, never a dead worker
                outcome = RunOutcome(
                    key=key, status="rejected",
                    error={"type": type(exc).__name__, "message": str(exc)},
                )
            elapsed = time.monotonic() - t0  # repro: allow-wallclock — latency metrics (EWMA for Retry-After); records never see this value
            self._ewma_cell_seconds += 0.3 * (elapsed - self._ewma_cell_seconds)
            self._settle(key, outcome)
            self._queue.task_done()

    def _compute(self, key: str, scenario: Scenario) -> RunOutcome:
        """Run one cell in a compute thread — the exact CLI code path.

        ``execute_plan`` with this service's shared store performs the
        same resume check, the same solver invocation, and the same
        ``store.put`` as ``repro scenario`` / ``repro sweep``; stored
        bytes are identical by construction.  A progress sink streams
        sampled rounds back to the event loop.
        """
        sink = self._make_sink(key)
        try:
            with progress.observe(sink):
                lists = execute_plan(
                    [scenario.cell()],
                    workers=None,
                    store=self.store,
                    resume=True,
                    policy=self.policy,
                    faults=self.faults,
                    batch=False,
                )
        except ReproError as exc:
            return RunOutcome(
                key=key, status="rejected",
                error={"type": type(exc).__name__, "message": str(exc)},
            )
        records = lists[0]
        if any(rec.get("failed") for rec in records):
            return RunOutcome(key=key, status="failed", records=records)
        return RunOutcome(key=key, status="ok", records=records)

    def _make_sink(self, key: str):
        every = self.round_every
        publish = self._publish_threadsafe

        def sink(world, completed_round: int) -> None:
            if completed_round % every:
                return
            publish(key, "round", {
                "round": completed_round,
                "activations": world.activations,
                "settled": progress.settled_count(world),
            })

        return sink

    def _publish_threadsafe(self, key: str, event: str, data: dict) -> None:
        try:
            self._loop.call_soon_threadsafe(self.broker.publish, key, event, data)
        except RuntimeError:
            pass  # loop already closed (shutdown mid-run): drop the event

    def _settle(self, key: str, outcome: RunOutcome) -> None:
        """Publish terminal events and fan the outcome out to waiters."""
        if outcome.status == "ok":
            self.counters["computed"] += 1
            self.broker.publish(key, "result", {"records": outcome.records})
        elif outcome.status == "failed":
            self.counters["failed"] += 1
            self.broker.publish(key, "quarantined", {"records": outcome.records})
        else:
            self.counters["rejected"] += 1
            self.broker.publish(key, "rejected", {"error": outcome.error})
        self.broker.publish(key, "done", {"status": outcome.status}, done=True)
        future = self._inflight.pop(key, None)
        if future is not None and not future.done():
            future.set_result(outcome)
