"""Pairing schedules for the Section 3.1 tournament.

The paper has every robot pair with every other robot, in ``O(n)`` pairing
slots, via recursive halving: split the group in two (padding the smaller
half with a dummy), cross-pair the halves in ``⌈G/2⌉`` sub-slots
(``G0_x`` with ``G1_{x+j}``), then recurse into both halves *in
parallel*.  Total slots: ``n/2 + n/4 + … + log n`` extra = ``O(n)``.

:func:`paper_pairing_schedule` reproduces that construction;
:func:`round_robin_schedule` (the classic circle method, ``n−1`` slots)
is provided for the ablation benchmark comparing schedule costs.  Both
return a list of *slots*, each a list of disjoint ``(a, b)`` pairs with
``a < b``; every unordered pair of distinct IDs appears in exactly one
slot (verified by property tests).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from ..errors import ConfigurationError

__all__ = ["paper_pairing_schedule", "round_robin_schedule", "pairs_covered"]

Pair = Tuple[int, int]
Slot = List[Pair]


def _norm(a: Optional[int], b: Optional[int]) -> Optional[Pair]:
    if a is None or b is None:
        return None
    return (a, b) if a < b else (b, a)


def paper_pairing_schedule(ids: Sequence[int]) -> List[Slot]:
    """The recursive-halving schedule of Section 3.1.

    Deterministic in the sorted ID list, so every robot derives the same
    schedule locally from the shared roster.
    """
    members: List[Optional[int]] = sorted(set(ids))
    if len(members) != len(list(ids)):
        raise ConfigurationError("pairing roster must not contain duplicates")

    def recurse(group: List[Optional[int]]) -> List[Slot]:
        real = [g for g in group if g is not None]
        if len(real) <= 1:
            return []
        half = (len(group) + 1) // 2
        g0: List[Optional[int]] = group[:half]
        g1: List[Optional[int]] = group[half:]
        while len(g1) < len(g0):
            g1.append(None)  # the paper's dummy robot
        cross: List[Slot] = []
        width = len(g0)
        for j in range(width):
            slot = []
            for x in range(width):
                p = _norm(g0[x], g1[(x + j) % width])
                if p is not None:
                    slot.append(p)
            cross.append(slot)
        sub0 = recurse(g0)
        sub1 = recurse(g1)
        merged: List[Slot] = []
        for t in range(max(len(sub0), len(sub1))):
            slot = []
            if t < len(sub0):
                slot.extend(sub0[t])
            if t < len(sub1):
                slot.extend(sub1[t])
            merged.append(slot)
        return cross + merged

    return [s for s in recurse(members) if s]


def round_robin_schedule(ids: Sequence[int]) -> List[Slot]:
    """Circle-method round robin: all pairs in ``n − 1`` slots (n even).

    Strictly fewer slots than the paper's recursion — used by the ablation
    benchmark to show the paper's bound is schedule-limited, not
    protocol-limited.
    """
    members: List[Optional[int]] = sorted(set(ids))
    if len(members) != len(list(ids)):
        raise ConfigurationError("pairing roster must not contain duplicates")
    if len(members) < 2:
        return []
    if len(members) % 2 == 1:
        members.append(None)
    half = len(members) // 2
    fixed = members[0]
    rest = members[1:]
    slots: List[Slot] = []
    for _ in range(len(members) - 1):
        ring = [fixed] + rest
        slot = []
        for i in range(half):
            p = _norm(ring[i], ring[len(ring) - 1 - i])
            if p is not None:
                slot.append(p)
        slots.append(slot)
        rest = rest[1:] + rest[:1]
    return slots


def pairs_covered(schedule: List[Slot]) -> Set[Pair]:
    """All pairs appearing in a schedule (test helper)."""
    out: Set[Pair] = set()
    for slot in schedule:
        seen_in_slot: Set[int] = set()
        for a, b in slot:
            if a in seen_in_slot or b in seen_in_slot:
                raise ConfigurationError(f"slot reuses a robot: {slot}")
            seen_in_slot.update((a, b))
            out.add((a, b))
    return out
