"""Tests for the synchronous simulator: sub-rounds, movement, messages."""

import pytest

from repro.errors import ProtocolViolation, SimulationError
from repro.graphs import PortLabeledGraph, ring
from repro.sim import (
    SETTLED,
    Move,
    Sleep,
    Stay,
    World,
    assign_ids,
    finish_report,
    id_space_upper_bound,
    validate_ids,
)
from repro.errors import ConfigurationError


def stay_forever(api):
    while True:
        yield Stay()


def one_move(port):
    def program(api):
        yield Move(port)
        while True:
            yield Stay()

    return program


class TestIds:
    def test_compact_assignment(self):
        assert assign_ids(4) == [1, 2, 3, 4]

    def test_seeded_assignment_distinct_in_range(self):
        ids = assign_ids(6, n_nodes=6, seed=7)
        assert len(set(ids)) == 6
        assert all(1 <= i <= 36 for i in ids)

    def test_upper_bound(self):
        assert id_space_upper_bound(10, 2.0) == 100
        with pytest.raises(ConfigurationError):
            id_space_upper_bound(10, 1.0)

    def test_validate_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            validate_ids([1, 1, 2], 10)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ConfigurationError):
            validate_ids([1, 101], 10)

    def test_too_many_ids(self):
        with pytest.raises(ConfigurationError):
            assign_ids(200, n_nodes=10, c=2.0)


class TestRounds:
    def test_movement_is_simultaneous(self):
        """Two robots swapping along an edge must pass each other, both
        ending on the other side (the model's task (ii) semantics)."""
        g = ring(4)
        w = World(g)
        w.add_robot(1, 0, one_move(1))
        w.add_robot(2, 1, one_move(2))
        w.step()
        assert w.robots[1].node == 1
        assert w.robots[2].node == 0

    def test_arrival_port_reported(self):
        g = ring(5)
        w = World(g)
        w.add_robot(1, 0, one_move(1))
        w.step()
        assert w.robots[1].arrival_port == 2

    def test_sub_round_order_visibility(self):
        """A smaller-ID robot's record update is visible to a larger-ID
        robot in the same round (the paper's sub-round rule) but not vice
        versa."""
        g = ring(3)
        w = World(g)
        seen_by_2 = []
        seen_by_1 = []

        def small(api):
            api.set_flag(1)
            seen_by_1.append([v.flag for v in api.colocated()])
            yield Stay()

        def big(api):
            seen_by_2.append([v.flag for v in api.colocated()])
            yield Stay()

        w.add_robot(1, 0, small)
        w.add_robot(2, 0, big)
        w.step()
        assert seen_by_2 == [[1]]  # robot 2 sees robot 1's flag raised
        assert seen_by_1 == [[0]]  # robot 1 acted before robot 2

    def test_round_start_snapshot_frozen(self):
        g = ring(3)
        w = World(g)
        snapshots = []

        def small(api):
            api.set_flag(1)
            yield Stay()

        def big(api):
            snapshots.append([v.flag for v in api.colocated_at_round_start()])
            yield Stay()

        w.add_robot(1, 0, small)
        w.add_robot(2, 0, big)
        w.step()
        assert snapshots == [[0]]  # snapshot predates robot 1's flag

    def test_invalid_port_raises(self):
        g = ring(3)
        w = World(g)
        w.add_robot(1, 0, one_move(7))
        with pytest.raises(SimulationError, match="invalid port"):
            w.step()

    def test_settled_honest_cannot_move(self):
        g = ring(3)
        w = World(g)

        def cheat(api):
            api.settle()
            yield Move(1)

        w.add_robot(1, 0, cheat)
        with pytest.raises(ProtocolViolation):
            w.step()

    def test_bad_action_rejected(self):
        g = ring(3)
        w = World(g)

        def bad(api):
            yield "north"

        w.add_robot(1, 0, bad)
        with pytest.raises(SimulationError, match="expected Move or Stay"):
            w.step()

    def test_program_end_terminates_robot(self):
        g = ring(3)
        w = World(g)

        def ephemeral(api):
            yield Stay()

        w.add_robot(1, 0, ephemeral)
        w.step()
        w.step()
        assert w.robots[1].terminated

    def test_robots_at_index(self):
        g = ring(4)
        w = World(g)
        w.add_robot(1, 0, one_move(1))
        w.add_robot(2, 2, stay_forever)
        assert [r.true_id for r in w.robots_at(0)] == [1]
        w.step()
        assert [r.true_id for r in w.robots_at(1)] == [1]
        assert w.robots_at(0) == ()

    def test_duplicate_id_rejected(self):
        w = World(ring(3))
        w.add_robot(1, 0, stay_forever)
        with pytest.raises(SimulationError):
            w.add_robot(1, 1, stay_forever)

    def test_node_out_of_range_rejected(self):
        w = World(ring(3))
        with pytest.raises(SimulationError):
            w.add_robot(1, 9, stay_forever)

    def test_unknown_model_rejected(self):
        with pytest.raises(SimulationError):
            World(ring(3), model="chaotic")


class TestMessaging:
    def test_same_round_visibility_by_order(self):
        g = ring(3)
        w = World(g)
        heard = []

        def talker(api):
            api.say("ping")
            yield Stay()

        def listener(api):
            heard.append(api.messages())
            yield Stay()

        w.add_robot(1, 0, talker)
        w.add_robot(2, 0, listener)
        w.step()
        assert heard == [[(1, "ping")]]

    def test_prev_round_board(self):
        g = ring(3)
        w = World(g)
        heard = []

        def talker(api):
            api.say("ping")
            yield Stay()
            yield Stay()

        def listener(api):
            yield Stay()
            heard.append(api.messages_prev())
            yield Stay()

        w.add_robot(2, 0, talker)   # larger ID: posts after listener acts
        w.add_robot(1, 0, listener)
        w.step()
        w.step()
        assert heard == [[(2, "ping")]]

    def test_boards_are_per_node(self):
        g = ring(4)
        w = World(g)
        heard = []

        def talker(api):
            api.say("here")
            yield Stay()

        def far_listener(api):
            heard.append(api.messages())
            yield Stay()

        w.add_robot(1, 0, talker)
        w.add_robot(2, 2, far_listener)
        w.step()
        assert heard == [[]]


class TestSleep:
    def test_sleep_skips_resumes(self):
        g = ring(3)
        w = World(g)
        wakes = []

        def sleeper(api):
            wakes.append(api.round)
            yield Sleep(5)
            wakes.append(api.round)
            yield Stay()

        w.add_robot(1, 0, sleeper)
        w.run(max_rounds=10)
        assert wakes == [0, 5]

    def test_all_asleep_fast_forward(self):
        g = ring(3)
        w = World(g)

        def sleeper(api):
            yield Sleep(100)
            yield Stay()

        w.add_robot(1, 0, sleeper)
        w.add_robot(2, 1, sleeper)
        w.step()  # both go to sleep; fast-forward fires
        assert w.round == 100

    def test_partial_sleep_no_fast_forward(self):
        g = ring(3)
        w = World(g)

        def sleeper(api):
            yield Sleep(50)
            yield Stay()

        w.add_robot(1, 0, sleeper)
        w.add_robot(2, 1, stay_forever)
        w.step()
        assert w.round == 1  # an awake robot pins the clock

    def test_sleep_invalid(self):
        g = ring(3)
        w = World(g)

        def bad(api):
            yield Sleep(0)

        w.add_robot(1, 0, bad)
        with pytest.raises(SimulationError):
            w.step()


class TestAccounting:
    def test_charges_accumulate(self):
        w = World(ring(3))
        w.charge("phase_a", 100)
        w.charge("phase_b", 20)
        assert w.charged_rounds == 120
        assert w.total_rounds == 120
        assert w.charged == [("phase_a", 100), ("phase_b", 20)]

    def test_negative_charge_rejected(self):
        w = World(ring(3))
        with pytest.raises(SimulationError):
            w.charge("oops", -1)

    def test_teleport(self):
        w = World(ring(5))
        w.add_robot(1, 0, stay_forever)
        w.teleport(1, 3)
        assert w.robots[1].node == 3
        assert w.robots[1].arrival_port is None
        assert [r.true_id for r in w.robots_at(3)] == [1]

    def test_run_respects_max_rounds(self):
        w = World(ring(3))
        w.add_robot(1, 0, stay_forever)
        assert not w.run(max_rounds=7)
        assert w.round == 7


class TestFinishReport:
    def test_success_requires_settle_and_uniqueness(self):
        g = ring(4)
        w = World(g)

        def settle_here(api):
            api.settle()
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, settle_here)
        w.add_robot(2, 1, settle_here)
        w.run(max_rounds=5)
        rep = finish_report(w)
        assert rep.success
        assert rep.settled == {1: 0, 2: 1}

    def test_collision_reported(self):
        g = ring(4)
        w = World(g)

        def settle_here(api):
            api.settle()
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, settle_here)
        w.add_robot(2, 0, settle_here)
        w.run(max_rounds=5)
        rep = finish_report(w)
        assert not rep.success
        assert any("hosts 2 honest settlers" in v for v in rep.violations)

    def test_honest_cap_relaxes_collisions(self):
        g = ring(4)
        w = World(g)

        def settle_here(api):
            api.settle()
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, settle_here)
        w.add_robot(2, 0, settle_here)
        w.run(max_rounds=5)
        assert finish_report(w, honest_cap=2).success

    def test_unsettled_reported(self):
        w = World(ring(3))

        def quitter(api):
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, quitter)
        w.run(max_rounds=3)
        rep = finish_report(w)
        assert not rep.success
        assert any("never settled" in v for v in rep.violations)

    def test_byzantine_excluded_from_validation(self):
        g = ring(4)
        w = World(g)

        def settle_here(api):
            api.settle()
            return
            yield  # pragma: no cover

        def byz(api):
            while True:
                yield Stay()

        w.add_robot(1, 0, settle_here)
        w.add_robot(2, 0, byz, byzantine=True)
        w.run(max_rounds=5)
        assert finish_report(w).success
