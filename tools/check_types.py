#!/usr/bin/env python3
"""Type-check ratchet: mypy over the typed core, gated by a baseline.

Runs ``mypy`` (config in ``mypy.ini``: the typed core is ``errors.py``,
``scenarios.py``, ``graphs/specs.py``, ``analysis/store.py``) and
compares the error count against the checked-in baseline in
``tools/mypy_baseline.json``:

* more errors than the baseline  -> exit 1 (a typing regression);
* fewer errors than the baseline -> exit 0, with a reminder to ratchet
  the baseline down (``--update`` rewrites it to the actual count);
* mypy not installed             -> exit 0 with a skip notice, so the
  check degrades gracefully in minimal environments (CI installs mypy;
  the offline dev container may not have it).

The baseline may only ever decrease: ``--update`` refuses to raise it.

Run:  python tools/check_types.py [--update]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
BASELINE_PATH = REPO_ROOT / "tools" / "mypy_baseline.json"

_SUMMARY_RE = re.compile(r"Found (\d+) errors?")


def load_baseline() -> dict:
    try:
        return json.loads(BASELINE_PATH.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        print(f"TYPES: missing or unreadable baseline {BASELINE_PATH}", file=sys.stderr)
        sys.exit(1)


def run_mypy() -> tuple[int, str]:
    """Returns ``(error count, raw output)``; exits 0 early if mypy is
    absent."""
    try:
        proc = subprocess.run(
            [sys.executable, "-m", "mypy", "--config-file", str(REPO_ROOT / "mypy.ini")],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
    except FileNotFoundError:
        print("types: skipped (python executable missing?)")
        sys.exit(0)
    output = proc.stdout + proc.stderr
    if "No module named mypy" in output:
        print("types: skipped — mypy is not installed in this environment")
        sys.exit(0)
    if proc.returncode == 0:
        return 0, output
    match = _SUMMARY_RE.search(output)
    if match:
        return int(match.group(1)), output
    # mypy crashed or produced no summary: treat as failure, show why.
    print(output, file=sys.stderr)
    print("TYPES: mypy did not produce an error summary", file=sys.stderr)
    sys.exit(1)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--update", action="store_true",
                        help="ratchet the baseline down to the actual count "
                             "(refuses to raise it)")
    args = parser.parse_args()

    baseline = load_baseline()
    allowed = int(baseline["max_errors"])
    count, output = run_mypy()

    if count > allowed:
        print(output, file=sys.stderr)
        print(f"TYPES: {count} mypy errors > baseline {allowed} — "
              f"typing of the core regressed", file=sys.stderr)
        return 1
    if count < allowed:
        if args.update:
            baseline["max_errors"] = count
            BASELINE_PATH.write_text(
                json.dumps(baseline, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"types: baseline ratcheted down {allowed} -> {count}")
            return 0
        print(f"types ok: {count} errors (baseline {allowed} — run "
              f"`python tools/check_types.py --update` to ratchet down)")
        return 0
    print(f"types ok: {count} errors (at baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
