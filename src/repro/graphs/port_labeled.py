"""Anonymous port-labeled graphs — the substrate of the paper's model.

The paper (Section 1.1) works on an *anonymous* graph: nodes carry no
identifiers visible to robots; instead, every node of degree ``d`` labels
its incident edges with distinct *ports* ``1..d``.  An edge ``{u, v}``
therefore has two independent port numbers, one per endpoint, and a robot
crossing it learns both (the outgoing port it chose and the incoming port
at the destination).

:class:`PortLabeledGraph` stores this structure explicitly.  Node names
``0..n-1`` exist only on the simulator side ("true names"); robot programs
never see them — they interact with the world exclusively through port
numbers, degrees and co-located robots (enforced by :mod:`repro.sim`).

Design notes
------------
* Simple graphs only (no self-loops or parallel edges): every graph the
  paper's evaluation needs is simple.  Quotient graphs *can* be non-simple;
  they get their own lightweight representation in
  :mod:`repro.graphs.quotient`.
* The canonical storage is a **flat CSR layout**: contiguous typed arrays
  ``offsets`` (length ``n + 1``), ``dest`` and ``in_port`` (length ``2m``,
  entry ``offsets[u] + p - 1`` describing port ``p`` of node ``u``), plus a
  cached per-node degree array.  Serialisation pickles exactly these three
  arrays (raw bytes, not nested tuples), which is what makes shipping
  graphs to sweep workers cheap.
* On top of the CSR arrays the constructor materialises per-node tuples of
  ``(dest, in_port)`` pairs — ``traverse`` returning a pre-built pair is
  allocation-free, and that is the innermost hot call of the simulator
  (millions of invocations per benchmark).  ``traverse_fast`` is the same
  lookup without the port-range check, for call sites whose ports are
  valid by construction (see PERFORMANCE.md for the ground rules).
* The validating ``__init__`` stays the public choke point; trusted
  builders (generators, ``relabel``, unpickling) go through
  :meth:`_from_validated` and skip the O(n·Δ) re-check of structure they
  construct correctly by design.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import networkx as nx

from ..errors import GraphStructureError, PortError

__all__ = ["PortLabeledGraph"]

#: Array typecode for all CSR arrays.  ``q`` (signed long long) is 8 bytes
#: on every platform CPython supports, unlike ``l`` (4 bytes on Windows) —
#: the pickle format ships raw array bytes, so the width must not vary
#: across machines.
_TYPECODE = "q"

#: Row type: node ``u``'s ports as a tuple of ``(dest, in_port)`` pairs,
#: ``row[p - 1]`` describing port ``p``.
Row = Tuple[Tuple[int, int], ...]


class PortLabeledGraph:
    """An undirected simple graph with local port labels at every node.

    Parameters
    ----------
    port_map:
        ``port_map[u][p] == (v, q)`` states that node ``u``'s port ``p``
        (1-based) leads to node ``v``, and the same edge is seen by ``v``
        through its port ``q``.  Mapping must be symmetric.

    The constructor validates the full structural contract (contiguous
    1-based ports, symmetry, simplicity) and is therefore the single choke
    point guaranteeing every externally supplied ``PortLabeledGraph`` is
    legal.  Internal builders that construct correct structure by design
    use :meth:`_from_validated` instead.
    """

    __slots__ = (
        "_ports",
        "_n",
        "_m",
        "_adjacency",
        "_offsets",
        "_dest",
        "_in_port",
        "_port_of_nbr",
        "_spec",
    )

    def __init__(self, port_map: Mapping[int, Mapping[int, Tuple[int, int]]]):
        n = len(port_map)
        if set(port_map.keys()) != set(range(n)):
            raise GraphStructureError(
                f"nodes must be exactly 0..{n - 1}, got {sorted(port_map.keys())[:8]}..."
            )
        rows: List[Row] = []
        for u in range(n):
            table = port_map[u]
            deg = len(table)
            if set(table.keys()) != set(range(1, deg + 1)):
                raise GraphStructureError(
                    f"node {u}: ports must be exactly 1..{deg}, got {sorted(table.keys())}"
                )
            row: List[Tuple[int, int]] = []
            seen_neighbours = set()
            for p in range(1, deg + 1):
                v, q = table[p]
                if not (0 <= v < n):
                    raise GraphStructureError(f"node {u} port {p}: endpoint {v} out of range")
                if v == u:
                    raise GraphStructureError(f"node {u} port {p}: self-loops not allowed")
                if v in seen_neighbours:
                    raise GraphStructureError(
                        f"node {u}: parallel edge to {v} (simple graphs only)"
                    )
                seen_neighbours.add(v)
                row.append((v, q))
            rows.append(tuple(row))
        # Symmetry: u--p-->(v,q) must be mirrored by v--q-->(u,p).
        for u in range(n):
            for p0, (v, q) in enumerate(rows[u]):
                p = p0 + 1
                if q < 1 or q > len(rows[v]):
                    raise GraphStructureError(
                        f"node {u} port {p}: remote port {q} out of range at node {v}"
                    )
                back_v, back_p = rows[v][q - 1]
                if (back_v, back_p) != (u, p):
                    raise GraphStructureError(
                        f"asymmetric ports: {u}-{p}->({v},{q}) but {v}-{q}->({back_v},{back_p})"
                    )
        self._init_from_rows(tuple(rows))

    # ------------------------------------------------------------------ #
    # Internal finalisation (shared by all construction paths)
    # ------------------------------------------------------------------ #

    def _init_from_rows(self, rows: Tuple[Row, ...]) -> None:
        """Set the canonical row storage; derived caches stay lazy.

        Construction cost is the whole point of the trusted path, so only
        what every workload needs is built here: the rows themselves and
        the node/edge counts.  The CSR arrays (pickling), the adjacency
        tuples (``neighbours``/connectivity) and the neighbour→port maps
        (``port_to``) are materialised on first use and cached.
        """
        self._ports = rows
        self._n = len(rows)
        self._m = sum(map(len, rows)) // 2
        self._offsets = None
        self._dest = None
        self._in_port = None
        self._adjacency = None
        self._port_of_nbr = None
        self._spec = None

    def _init_from_csr(self, n: int, offsets: array, dest: array, in_port: array) -> None:
        """Rebuild rows from already-validated CSR arrays (unpickling)."""
        self._ports = tuple(
            tuple(zip(dest[offsets[u]:offsets[u + 1]], in_port[offsets[u]:offsets[u + 1]]))
            for u in range(n)
        )
        self._n = n
        self._m = offsets[n] // 2
        self._offsets = offsets
        self._dest = dest
        self._in_port = in_port
        self._adjacency = None
        self._port_of_nbr = None
        self._spec = None

    # -- lazy derived caches ------------------------------------------- #

    def _csr_arrays(self) -> Tuple[array, array, array]:
        offsets = self._offsets
        if offsets is None:
            offsets = array(_TYPECODE, bytes())
            offsets.append(0)
            dest = array(_TYPECODE)
            in_port = array(_TYPECODE)
            total = 0
            for row in self._ports:
                total += len(row)
                offsets.append(total)
                if row:
                    vs, qs = zip(*row)
                    dest.extend(vs)
                    in_port.extend(qs)
            self._offsets = offsets
            self._dest = dest
            self._in_port = in_port
        return self._offsets, self._dest, self._in_port

    def _adjacency_rows(self) -> Tuple[Tuple[int, ...], ...]:
        adjacency = self._adjacency
        if adjacency is None:
            adjacency = tuple(
                tuple(zip(*row))[0] if row else () for row in self._ports
            )
            self._adjacency = adjacency
        return adjacency

    def _port_maps(self) -> Tuple[Dict[int, int], ...]:
        maps = self._port_of_nbr
        if maps is None:
            maps = tuple(
                dict(zip(vs, range(1, len(vs) + 1)))
                for vs in self._adjacency_rows()
            )
            self._port_of_nbr = maps
        return maps

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    @classmethod
    def _from_validated(cls, rows: Sequence[Row]) -> "PortLabeledGraph":
        """Trusted constructor: skip the O(n·Δ) structural re-check.

        ``rows[u][p - 1] == (v, q)`` must already satisfy the full contract
        (contiguous nodes/ports, symmetry, simplicity) — callers are the
        closed-form generators, :meth:`relabel`, and unpickling, all of
        which construct legal structure by design.  Passing bad rows here
        produces a corrupt graph instead of :class:`GraphStructureError`;
        never expose this to untrusted input.
        """
        graph = cls.__new__(cls)
        graph._init_from_rows(tuple(rows))
        return graph

    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph,
        rng=None,
    ) -> "PortLabeledGraph":
        """Build a port-labeled graph from a networkx simple graph.

        Nodes are relabeled to ``0..n-1`` in sorted order.  Each node's
        ports are assigned to its neighbours either in sorted-neighbour
        order (``rng is None``, deterministic) or in a random permutation
        drawn from ``rng`` (a ``numpy.random.Generator`` or
        ``random.Random``) — the paper stresses that the two endpoints of
        an edge may disagree on port numbers, and random assignment
        exercises that.

        This is the validating oracle path (arbitrary nx input goes
        through the full ``__init__`` check); the generators in
        :mod:`repro.graphs.generators` use the trusted fast path instead.
        """
        if graph.is_directed() or graph.is_multigraph():
            raise GraphStructureError("only undirected simple graphs are supported")
        nodes = sorted(graph.nodes())
        index = {v: i for i, v in enumerate(nodes)}
        port_map: Dict[int, Dict[int, Tuple[int, int]]] = {i: {} for i in range(len(nodes))}
        # First decide, per node, the port of each incident edge.
        port_of: Dict[Tuple[int, int], int] = {}
        for v in nodes:
            u = index[v]
            nbrs = sorted(index[w] for w in graph.neighbors(v))
            if rng is not None:
                nbrs = list(nbrs)
                _shuffle(rng, nbrs)
            for p, w in enumerate(nbrs, start=1):
                port_of[(u, w)] = p
        for (u, w), p in port_of.items():
            port_map[u][p] = (w, port_of[(w, u)])
        return cls(port_map)

    @classmethod
    def from_edges(cls, n: int, edges: Iterable[Tuple[int, int]]) -> "PortLabeledGraph":
        """Convenience: deterministic port labeling of an edge list."""
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(edges)
        return cls.from_networkx(g)

    # ------------------------------------------------------------------ #
    # Core queries (hot path)
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of edges."""
        return self._m

    def degree(self, u: int) -> int:
        """Degree of node ``u`` (== number of ports at ``u``)."""
        return len(self._ports[u])

    def max_degree(self) -> int:
        """Maximum degree over all nodes (the paper's ``Δ``)."""
        return max(map(len, self._ports), default=0)

    def traverse(self, u: int, port: int) -> Tuple[int, int]:
        """Cross the edge at ``u`` leaving through ``port``.

        Returns ``(v, q)``: the destination node and the *incoming* port at
        the destination — exactly the information the model grants a moving
        robot (Section 1.1: "it is aware of both port numbers assigned to
        the edge through which it passed").
        """
        row = self._ports[u]
        if port < 1 or port > len(row):
            raise PortError(f"node {u} has ports 1..{len(row)}, not {port}")
        return row[port - 1]

    def traverse_fast(self, u: int, port: int) -> Tuple[int, int]:
        """:meth:`traverse` without the port-range check.

        For internal call sites whose ports are valid by construction
        (port-ordered loops over ``ports(u)``, replaying a tour the same
        map produced, a port already validated by the simulator).  An
        invalid port raises ``IndexError``/garbage instead of
        :class:`PortError`; never feed it untrusted input.
        """
        return self._ports[u][port - 1]

    def port_row(self, u: int) -> Row:
        """Node ``u``'s full port row: ``port_row(u)[p - 1] == traverse(u, p)``.

        The bulk companion of :meth:`traverse_fast` for port-ordered
        scans — iterating the returned tuple replaces one method call per
        edge with plain tuple iteration.  The row is live internal
        storage: read-only.
        """
        return self._ports[u]

    def neighbours(self, u: int) -> Tuple[int, ...]:
        """True-name neighbours of ``u`` (simulator-side only)."""
        adjacency = self._adjacency
        if adjacency is None:
            adjacency = self._adjacency_rows()
        return adjacency[u]

    def port_to(self, u: int, v: int) -> int:
        """The port at ``u`` whose edge leads to ``v`` (simulator-side).

        O(1) after the first call: resolved through the cached
        neighbour→port reverse map (simulator-side helpers call this
        inside loops; the old implementation scanned O(Δ) ports per call).
        """
        maps = self._port_of_nbr
        if maps is None:
            maps = self._port_maps()
        p = maps[u].get(v)
        if p is None:
            raise PortError(f"no edge {u} -> {v}")
        return p

    def ports(self, u: int) -> range:
        """Iterable of valid port numbers at ``u``."""
        return range(1, len(self._ports[u]) + 1)

    def csr(self) -> Tuple[array, array, array]:
        """The flat CSR arrays ``(offsets, dest, in_port)``.

        Port ``p`` of node ``u`` lives at index ``offsets[u] + p - 1`` of
        ``dest``/``in_port``.  Built on first use, then cached; returned
        arrays are the live internal storage — treat them as read-only.
        """
        return self._csr_arrays()

    def edges(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate edges as ``(u, p, v, q)`` with ``u < v``."""
        for u in range(self._n):
            for p0, (v, q) in enumerate(self._ports[u]):
                if u < v:
                    yield (u, p0 + 1, v, q)

    # ------------------------------------------------------------------ #
    # Structure-level helpers
    # ------------------------------------------------------------------ #

    def is_connected(self) -> bool:
        """True iff the graph is connected (dispersion requires it)."""
        if self._n == 0:
            return True
        adjacency = self._adjacency_rows()
        seen = [False] * self._n
        stack = [0]
        seen[0] = True
        count = 1
        while stack:
            u = stack.pop()
            for v in adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    count += 1
                    stack.append(v)
        return count == self._n

    def is_regular(self) -> bool:
        """True iff every node has the same degree."""
        degs = set(map(len, self._ports))
        return len(degs) <= 1

    def to_networkx(self) -> nx.Graph:
        """Export the underlying simple graph (port labels as edge attrs)."""
        g = nx.Graph()
        g.add_nodes_from(range(self._n))
        for u, p, v, q in self.edges():
            g.add_edge(u, v, ports={u: p, v: q})
        return g

    def relabel(self, perm: Sequence[int]) -> "PortLabeledGraph":
        """Return an isomorphic copy with node ``i`` renamed ``perm[i]``.

        Port numbers are preserved — the result is port-preserving
        isomorphic to ``self``.  Used to hand robots *privately relabeled*
        maps so no information leaks through true node names.
        """
        if sorted(perm) != list(range(self._n)):
            raise GraphStructureError("perm must be a permutation of 0..n-1")
        rows: List[Optional[Row]] = [None] * self._n
        for u, row in enumerate(self._ports):
            rows[perm[u]] = tuple((perm[v], q) for v, q in row)
        # A permutation of valid rows is valid by construction.
        return PortLabeledGraph._from_validated(rows)  # type: ignore[arg-type]

    # ------------------------------------------------------------------ #
    # Dunder / misc
    # ------------------------------------------------------------------ #

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortLabeledGraph):
            return NotImplemented
        return self._ports == other._ports

    def __hash__(self) -> int:
        return hash(self._ports)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PortLabeledGraph(n={self._n}, m={self._m})"

    def __reduce__(self):
        """Pickle as the three raw CSR byte strings (plus the generator
        spec, if any) — far smaller and faster than the default per-slot
        nested-tuple state, and unpickling re-derives the caches through
        the trusted path instead of re-validating."""
        offsets, dest, in_port = self._csr_arrays()
        return (
            _unpickle,
            (
                self._n,
                offsets.tobytes(),
                dest.tobytes(),
                in_port.tobytes(),
                self._spec,
            ),
        )

    def port_table(self) -> Dict[int, Dict[int, Tuple[int, int]]]:
        """Deep-copy the port map (for serialisation / relabeling)."""
        return {
            u: {p0 + 1: vq for p0, vq in enumerate(row)}
            for u, row in enumerate(self._ports)
        }


def _unpickle(n: int, offsets: bytes, dest: bytes, in_port: bytes, spec):
    """Rebuild a graph from its pickled CSR bytes (trusted path)."""
    offs = array(_TYPECODE)
    offs.frombytes(offsets)
    dst = array(_TYPECODE)
    dst.frombytes(dest)
    inp = array(_TYPECODE)
    inp.frombytes(in_port)
    graph = PortLabeledGraph.__new__(PortLabeledGraph)
    graph._init_from_csr(n, offs, dst, inp)
    graph._spec = spec
    return graph


def _shuffle(rng, items: list) -> None:
    """Shuffle in place with either numpy Generator or random.Random."""
    if hasattr(rng, "shuffle"):
        rng.shuffle(items)
    else:  # pragma: no cover - defensive
        raise TypeError(f"unsupported rng type: {type(rng)!r}")
