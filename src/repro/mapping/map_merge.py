"""Majority voting over candidate maps (Sections 3.1–3.3).

Robots compare maps up to *rooted port-preserving isomorphism*; since
rooted port-labeled graphs are rigid, the canonical encoding of
:func:`repro.graphs.isomorphism.canonical_form` is a complete invariant
and voting reduces to counting equal encodings.  The winner is decoded
back into a :class:`PortLabeledGraph` whose node 0 is the root (the
node the robots stand on), ready for Dispersion-Using-Map.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Optional, Tuple

from ..errors import MapError
from ..graphs.isomorphism import CanonicalForm, canonical_form
from ..graphs.port_labeled import PortLabeledGraph

__all__ = ["majority_encoding", "decode_canonical", "majority_map"]


def majority_encoding(
    candidates: Iterable[Optional[CanonicalForm]],
) -> Optional[CanonicalForm]:
    """The most frequent non-``None`` encoding; ties break deterministically.

    Under the theorems' tolerance bounds the correct encoding holds an
    absolute majority, so the tie-break never fires on valid runs; it
    exists to keep beyond-tolerance experiments deterministic.
    """
    votes = Counter(c for c in candidates if c is not None)
    if not votes:
        return None
    best = max(votes.items(), key=lambda kv: (kv[1], kv[0]))
    return best[0]


def decode_canonical(encoding: CanonicalForm) -> PortLabeledGraph:
    """Rebuild the rooted map a canonical encoding describes.

    The encoding lists ``(u, p, v, q)`` for every directed port crossing
    in canonical labeling, which is exactly a port table.
    """
    table: Dict[int, Dict[int, Tuple[int, int]]] = {}
    for u, p, v, q in encoding:
        table.setdefault(u, {})[p] = (v, q)
        table.setdefault(v, {})
    n = len(table)
    if set(table.keys()) != set(range(n)):
        raise MapError("canonical encoding does not label nodes 0..n-1")
    return PortLabeledGraph(table)


def majority_map(
    candidates: Iterable[Optional[PortLabeledGraph]],
) -> Optional[PortLabeledGraph]:
    """Vote over map objects directly (root = node 0 by convention)."""
    encodings = [
        canonical_form(c, 0) if c is not None else None for c in candidates
    ]
    winner = majority_encoding(encodings)
    return decode_canonical(winner) if winner is not None else None
