"""Oracle-charged gathering substrates (paper Section 3 Phase 1, Section 4).

The paper's arbitrary-start algorithms open with a gathering phase taken
wholesale from prior work, and its round cost *dominates* the reported
bounds:

* weak Byzantine, any ``f``: Dieudonné–Pelc–Peleg [24] —
  ``4·n⁴·P(n, |Λgood|)`` rounds, with ``P(n, l) = O(l·X(n))`` [27].
* weak Byzantine, ``f = O(√n)``: Hirose et al. [27] —
  ``O((f + |Λall|)·X(n))`` rounds.
* strong Byzantine (``f`` known): [24] — exponential rounds.

Per DESIGN.md §5.2 we *enact the post-condition* (all honest robots
co-located on a deterministically chosen node; Byzantine robots placed by
the adversary) and charge the cited cost as an exact integer.  The
theorems consume gathering strictly as a black box, so downstream
behaviour is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ConfigurationError
from ..graphs.exploration import ExplorationCostModel, DEFAULT_COST_MODEL, id_length_bits
from ..graphs.isomorphism import canonical_form
from ..graphs.port_labeled import PortLabeledGraph

__all__ = [
    "GatheringCharge",
    "weak_gathering_rounds",
    "hirose_gathering_rounds",
    "strong_gathering_rounds",
    "canonical_gather_node",
]


@dataclass(frozen=True)
class GatheringCharge:
    """A priced gathering outcome: where everyone meets and what it cost."""

    node: int
    rounds: int
    method: str


def canonical_gather_node(graph: PortLabeledGraph) -> int:
    """A deterministic, label-invariant meeting node.

    The prior-work algorithms determine *some* common node; any fixed
    choice preserves behaviour.  We take the node whose rooted canonical
    form is lexicographically smallest, so the choice does not depend on
    simulator-internal node numbering (and ties across symmetric nodes
    resolve to the smallest true name, which is as arbitrary as the
    original algorithms' choice).
    """
    best_node = 0
    best_form = None
    for v in range(graph.n):
        form = canonical_form(graph, v)
        if best_form is None or form < best_form:
            best_form = form
            best_node = v
    return best_node


def weak_gathering_rounds(
    graph: PortLabeledGraph,
    honest_ids: Sequence[int],
    model: ExplorationCostModel = DEFAULT_COST_MODEL,
) -> int:
    """[24]'s weak-Byzantine gathering cost: ``4·n⁴·|Λgood|·X(n)``."""
    if not honest_ids:
        raise ConfigurationError("need at least one honest robot")
    n = graph.n
    lam = id_length_bits(honest_ids)
    return 4 * n**4 * lam * model.best_available(graph)


def hirose_gathering_rounds(
    graph: PortLabeledGraph,
    all_ids: Sequence[int],
    f: int,
    model: ExplorationCostModel = DEFAULT_COST_MODEL,
) -> int:
    """[27]'s gathering cost for ``f = O(√n)``: ``(f + |Λall|)·X(n)``."""
    if f < 0:
        raise ConfigurationError("f must be >= 0")
    lam = id_length_bits(all_ids)
    return (f + lam) * model.best_available(graph)


def strong_gathering_rounds(graph: PortLabeledGraph) -> int:
    """[24]'s strong-Byzantine gathering: exponential; we charge ``2ⁿ·n²``.

    The paper states only "exponential in n"; the stand-in formula is
    documented in DESIGN.md §8 and configurable in experiments — only the
    exponential-vs-polynomial contrast of Table 1 rows 6/7 matters.
    """
    n = graph.n
    return (2**n) * n * n
