"""``repro.lint`` — the determinism linter (``repro lint``).

Static proofs of the byte-identity invariants the dynamic suites only
sample: a shared AST walker (:mod:`repro.lint.base`), six checkers
targeting this repo's real nondeterminism vectors
(:mod:`repro.lint.checkers`, :mod:`repro.lint.axis`), per-checker
``# repro: allow-*`` pragmas, and structured findings with file:line
anchors and fix hints.

Programmatic use::

    from repro.lint import CHECKERS, lint_paths
    findings = lint_paths(["src/repro"])          # [] when clean

The checker registry is ordered and name-addressed; ``repro lint
--select`` and the docs gate (``tools/check_docs.py``) both read it.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from .axis import ScenarioAxisChecker
from .base import Checker, Finding, Module, ProjectChecker, load_module, run_lint
from .checkers import (
    CanonicalJsonChecker,
    ExceptionHygieneChecker,
    UnorderedIterationChecker,
    UnseededRngChecker,
    WallClockChecker,
)

__all__ = [
    "CHECKERS",
    "Checker",
    "Finding",
    "Module",
    "ProjectChecker",
    "default_lint_root",
    "lint_paths",
    "load_module",
    "run_lint",
]

#: The registry, in report order.  Adding a checker here is all it takes
#: to put it in the CLI, the CI gate, ``--help``, and the docs check.
CHECKERS: List[Checker] = [
    UnseededRngChecker(),
    WallClockChecker(),
    UnorderedIterationChecker(),
    CanonicalJsonChecker(),
    ScenarioAxisChecker(),
    ExceptionHygieneChecker(),
]


def default_lint_root() -> Path:
    """The installed ``repro`` package directory — what a bare
    ``repro lint`` scans."""
    return Path(__file__).resolve().parents[1]


def lint_paths(
    paths: Optional[Sequence] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the full registry over ``paths`` (default: the repro package).

    Returns the sorted finding list; empty means the tree is clean.
    """
    targets = [Path(p) for p in paths] if paths else [default_lint_root()]
    return run_lint(targets, CHECKERS, select=select)
