"""Baseline algorithms: non-Byzantine DFS, prior-work ring, random scatter."""

from .dfs_dispersion import dfs_dispersion_program, dfs_rounds_bound, solve_dfs_baseline
from .random_dispersion import random_rounds_budget, solve_random_baseline
from .ring_dispersion import solve_ring_dispersion

__all__ = [
    "solve_dfs_baseline",
    "dfs_dispersion_program",
    "dfs_rounds_bound",
    "solve_ring_dispersion",
    "solve_random_baseline",
    "random_rounds_budget",
]
