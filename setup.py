"""Legacy setup shim: enables `pip install -e .` without the wheel package.

All real metadata lives in pyproject.toml; this file only exists because the
offline environment lacks `wheel` (required for PEP 660 editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.7.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
)
