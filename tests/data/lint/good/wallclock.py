"""Fixture: what no-wallclock-in-records allows — sleeps (no value read)
and pragma-justified timeout machinery."""
import time


def pause():
    time.sleep(0.0)  # consumes time, reads no clock value
    deadline = time.monotonic()  # repro: allow-wallclock — fixture deadline math, never recorded
    return deadline
