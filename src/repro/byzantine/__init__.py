"""Byzantine adversary: corrupted-robot selection and behaviour strategies."""

from .adversary import Adversary, choose_byzantine_ids
from .strategies import (
    STRATEGIES,
    STRONG_STRATEGIES,
    WEAK_STRATEGIES,
    Strategy,
    get_strategy,
    sleeper,
)

__all__ = [
    "Adversary",
    "choose_byzantine_ids",
    "STRATEGIES",
    "WEAK_STRATEGIES",
    "STRONG_STRATEGIES",
    "Strategy",
    "get_strategy",
    "sleeper",
]
