"""The single-file determinism checkers.

Each checker targets one nondeterminism vector this codebase has
actually had to defend against (see EXPERIMENTS.md "Determinism rules"
for the rule-by-rule rationale and the pragma escape hatches):

* :class:`UnseededRngChecker` — all randomness must flow from seed
  streams; module-level ``random.*`` / legacy ``numpy.random.*`` global
  state cannot be replayed across processes or resumes.
* :class:`WallClockChecker` — clock reads in solver/record paths break
  byte-identity between runs; only bench modules and the executor's
  timeout machinery may measure time.
* :class:`UnorderedIterationChecker` — set iteration order is hash-
  dependent (and ``PYTHONHASHSEED``-dependent for strings); anything
  that feeds records, store writes, or sub-round order must iterate
  ``sorted(...)``.
* :class:`CanonicalJsonChecker` — the store and baseline writers must
  serialize with ``sort_keys=True`` or byte-level cache identity is at
  the mercy of dict construction order.
* :class:`ExceptionHygieneChecker` — a broad ``except`` can swallow the
  very nondeterminism the other rules exist to surface; only
  :class:`~repro.errors.ReproError` is a legitimate deterministic
  rejection in solver code.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from .base import Checker, Finding, ImportMap, Module

__all__ = [
    "CanonicalJsonChecker",
    "ExceptionHygieneChecker",
    "UnorderedIterationChecker",
    "UnseededRngChecker",
    "WallClockChecker",
]


# --------------------------------------------------------------------- #
# no-unseeded-rng
# --------------------------------------------------------------------- #

#: numpy.random attributes that are *not* legacy global state: explicit
#: generator/seed-material construction is exactly what the rule wants.
_NP_RANDOM_OK = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
})


class UnseededRngChecker(Checker):
    """Ban module-level ``random.*`` and legacy ``numpy.random.*`` calls.

    Every RNG in this repo is a :class:`numpy.random.Generator` derived
    from an explicit seed (adversary streams, ``scheduler_rng``, per-
    robot substreams).  Global-state RNG calls are invisible to that
    seeding discipline: they differ across processes, across resumes,
    and across library-internal draw order — the exact failure the
    byte-identity tests exist to catch, except unsampled.

    ``random.Random(seed)`` / ``np.random.default_rng(seed)`` with an
    explicit seed are fine; the same constructors with *no* arguments
    seed from OS entropy and are flagged.
    """

    name = "no-unseeded-rng"
    pragma = "allow-rng"
    description = ("module-level random.* / legacy numpy.random.* global "
                   "state (all RNG must flow from explicit seed streams)")
    hint = ("derive randomness from a seeded stream: "
            "np.random.default_rng((seed, substream)) threaded from the "
            "adversary/scheduler seed, or random.Random(seed)")

    def check(self, module: Module) -> Iterator[Finding]:
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin is None:
                continue
            finding = self._classify(module, node, origin)
            if finding is not None:
                yield finding

    def _classify(self, module: Module, node: ast.Call, origin: str) -> Optional[Finding]:
        if origin.startswith("random."):
            attr = origin[len("random."):]
            if attr == "Random":
                if not node.args and not node.keywords:
                    return self.emit(module, node,
                                     "random.Random() with no seed draws from OS entropy")
                return None
            if attr == "SystemRandom":
                return self.emit(module, node,
                                 "random.SystemRandom is OS entropy — unreproducible by design")
            return self.emit(module, node,
                             f"call into the random module's global state (random.{attr})")
        if origin.startswith("numpy.random."):
            attr = origin[len("numpy.random."):]
            if attr in _NP_RANDOM_OK:
                if attr == "default_rng" and not node.args and not node.keywords:
                    return self.emit(module, node,
                                     "np.random.default_rng() with no seed draws from OS entropy")
                return None
            if attr == "RandomState":
                if not node.args and not node.keywords:
                    return self.emit(module, node,
                                     "np.random.RandomState() with no seed draws from OS entropy")
                return self.emit(module, node,
                                 "np.random.RandomState is the legacy bit stream; use default_rng")
            return self.emit(module, node,
                             f"call into numpy's legacy global RNG state (numpy.random.{attr})")
        return None


# --------------------------------------------------------------------- #
# no-wallclock-in-records
# --------------------------------------------------------------------- #

#: Clock-reading callables (``time.sleep`` is deliberately absent: it
#: consumes time but feeds no value into records).
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
})


class WallClockChecker(Checker):
    """Ban clock reads outside bench modules and timeout machinery.

    A wall-clock value that reaches a record, a store shard, or a
    control-flow decision makes two otherwise-identical runs diverge.
    The bench modules (which exist to measure time) are exempted by
    path; the plan executor's timeout machinery carries line pragmas
    with justifications.
    """

    name = "no-wallclock-in-records"
    pragma = "allow-wallclock"
    description = ("time.time/perf_counter/datetime.now outside bench "
                   "modules and the executor's timeout machinery")
    hint = ("record-producing code must be a pure function of its seeds; "
            "move timing into benchmarks/ or a bench module, or pragma "
            "the line with a justification if it is timeout machinery")
    exempt_suffixes = (
        # Bench modules measure wall time by design; their outputs are
        # perf baselines, never solver records or store cells.
        "repro/analysis/benchmark.py",
        "repro/analysis/graphbench.py",
        "repro/analysis/batchbench.py",
    )

    def check(self, module: Module) -> Iterator[Finding]:
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin in _CLOCK_CALLS:
                finding = self.emit(module, node, f"wall-clock read ({origin})")
                if finding is not None:
                    yield finding


# --------------------------------------------------------------------- #
# no-unordered-iteration
# --------------------------------------------------------------------- #

#: Consumers whose result cannot depend on iteration order.
_ORDER_INSENSITIVE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
})

#: Set-returning method names (when called on a known set expression).
_SET_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})

#: Calls that materialise their argument's iteration order.
_ORDER_SENSITIVE_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})


class _SetTracker(ast.NodeVisitor):
    """Scope-aware detection of iteration over set-typed expressions.

    Performs a light, purely syntactic inference: set literals, set
    comprehensions, ``set(...)``/``frozenset(...)`` calls, set-operator
    expressions over those, set-returning methods on those, and local
    names assigned such expressions within the current function scope.
    No cross-function or cross-module dataflow — the point is catching
    the obvious hazard at review time, with a pragma for the rest.
    """

    def __init__(self, checker: "UnorderedIterationChecker", module: Module) -> None:
        self.checker = checker
        self.module = module
        self.findings: List[Finding] = []
        self._scopes: List[Set[str]] = [set()]
        #: GeneratorExp/SetComp nodes passed to order-insensitive calls.
        self._safe_nodes: Set[int] = set()

    # -- set-expression classification --------------------------------- #

    def _is_set_name(self, name: str) -> bool:
        return any(name in scope for scope in reversed(self._scopes))

    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_set_name(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in {"set", "frozenset"}:
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self.is_set_expr(func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self.is_set_expr(node.left) or (
                not isinstance(node.op, ast.Sub) and self.is_set_expr(node.right)
            )
        return False

    # -- scope handling ------------------------------------------------ #

    @staticmethod
    def _scope_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
        """Every statement in this scope, nested blocks included,
        nested function/class scopes excluded."""
        stack = list(body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield stmt
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    stack.append(child)
                elif isinstance(child, ast.ExceptHandler):
                    stack.extend(child.body)

    def _collect_set_names(self, body: List[ast.stmt]) -> Set[str]:
        names: Set[str] = set()
        for stmt in self._scope_statements(body):
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is not None and self.is_set_expr(value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    def _visit_scope(self, node, body: List[ast.stmt]) -> None:
        self._scopes.append(self._collect_set_names(body))
        self.generic_visit(node)
        self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node, node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node, node.body)

    def visit_Module(self, node: ast.Module) -> None:
        self._scopes[0] = self._collect_set_names(node.body)
        self.generic_visit(node)

    # -- flagged sites ------------------------------------------------- #

    def _flag(self, site: ast.AST, what: str) -> None:
        finding = self.checker.emit(
            self.module, site,
            f"{what} iterates a set — order is hash-dependent",
        )
        if finding is not None:
            self.findings.append(finding)

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            self._flag(node, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node, what: str) -> None:
        if id(node) not in self._safe_nodes:
            for gen in node.generators:
                if self.is_set_expr(gen.iter):
                    self._flag(node, what)
                    break
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_comprehension(node, "generator expression")

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # A set built from a set stays order-free; just recurse.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _ORDER_INSENSITIVE_CALLS:
                # sorted(x for x in S) etc.: the consumer erases order.
                for arg in node.args:
                    if isinstance(arg, (ast.GeneratorExp, ast.SetComp)):
                        self._safe_nodes.add(id(arg))
            elif func.id in _ORDER_SENSITIVE_WRAPPERS:
                for arg in node.args[:1]:
                    if self.is_set_expr(arg):
                        self._flag(node, f"{func.id}(...)")
        elif isinstance(func, ast.Attribute) and func.attr in {"join", "extend"}:
            for arg in node.args[:1]:
                if self.is_set_expr(arg):
                    self._flag(node, f".{func.attr}(...)")
        self.generic_visit(node)


class UnorderedIterationChecker(Checker):
    """Flag iteration over sets that is not wrapped in ``sorted(...)``.

    Set iteration order depends on element hashes — and, for strings,
    on ``PYTHONHASHSEED`` — so a set that leaks into record order,
    store writes, or sub-round order silently breaks byte-identity
    between interpreter invocations.  Order-insensitive consumers
    (``sorted``, ``len``, ``min``/``max``, ``sum``, ``any``/``all``,
    membership tests, building another set) are not flagged.
    """

    name = "no-unordered-iteration"
    pragma = "allow-unordered"
    description = ("iterating a set (or set-valued expression) without "
                   "sorted() — order is hash-dependent")
    hint = ("wrap the iterable in sorted(...); if the loop is provably "
            "order-commutative, pragma it with the justification")

    def check(self, module: Module) -> Iterator[Finding]:
        tracker = _SetTracker(self, module)
        tracker.visit(module.tree)
        return iter(tracker.findings)


# --------------------------------------------------------------------- #
# canonical-json-only
# --------------------------------------------------------------------- #

class CanonicalJsonChecker(Checker):
    """Require ``sort_keys=True`` in the store/baseline serializers.

    Scoped to the modules that write store shards or bench baselines:
    there, JSON bytes *are* identity (content hashes, cache keys,
    byte-compared baselines), so key order must be canonical, not
    whatever dict construction order happens to be.
    """

    name = "canonical-json-only"
    pragma = "allow-unsorted-json"
    description = ("json.dumps/json.dump without sort_keys=True in "
                   "store-shard / bench-baseline writer modules")
    hint = ("pass sort_keys=True (canonical bytes), or pragma with a "
            "justification when insertion order is itself the pinned "
            "contract")
    only_suffixes = (
        "repro/analysis/store.py",
        "repro/analysis/benchmark.py",
        "repro/analysis/batching.py",
    )

    def check(self, module: Module) -> Iterator[Finding]:
        imports = ImportMap.of(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            origin = imports.resolve(node.func)
            if origin not in ("json.dumps", "json.dump"):
                continue
            sort_keys = None
            for kw in node.keywords:
                if kw.arg == "sort_keys":
                    sort_keys = kw.value
            ok = (
                sort_keys is not None
                and isinstance(sort_keys, ast.Constant)
                and sort_keys.value is True
            )
            if not ok:
                finding = self.emit(
                    module, node,
                    f"{origin}(...) without sort_keys=True in a "
                    f"canonical-bytes module",
                )
                if finding is not None:
                    yield finding


# --------------------------------------------------------------------- #
# exception-hygiene
# --------------------------------------------------------------------- #

class ExceptionHygieneChecker(Checker):
    """Flag bare ``except:`` and ``except (Base)Exception``.

    In solver code (``core/``, ``baselines/``, ``sim/``) the only
    legitimate *deterministic* rejection is a
    :class:`~repro.errors.ReproError`; a broad handler can silently
    normalise a nondeterministic crash into a deterministic-looking
    result.  The executor's genuine fault boundaries (worker crash
    conversion, pool teardown) carry justified pragmas.
    """

    name = "exception-hygiene"
    pragma = "allow-broad-except"
    description = ("bare except / except Exception (only ReproError is a "
                   "legitimate deterministic rejection in solver code)")
    hint = ("catch the narrowest type that can actually occur (ReproError "
            "for deterministic rejections); pragma genuine fault "
            "boundaries with a justification")

    _BROAD = ("Exception", "BaseException")

    def _broad_name(self, node: Optional[ast.expr]) -> Optional[str]:
        if node is None:
            return "bare except:"
        if isinstance(node, ast.Name) and node.id in self._BROAD:
            return f"except {node.id}"
        if isinstance(node, ast.Tuple):
            for elt in node.elts:
                if isinstance(elt, ast.Name) and elt.id in self._BROAD:
                    return f"except (... {elt.id} ...)"
        return None

    def check(self, module: Module) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._broad_name(node.type)
            if broad is None:
                continue
            finding = self.emit(
                module, node,
                f"{broad} can swallow nondeterministic failures",
            )
            if finding is not None:
                yield finding
