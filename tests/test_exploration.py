"""Tests for exploration cost models and the random-walk explorer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    DEFAULT_COST_MODEL,
    ExplorationCostModel,
    PortLabeledGraph,
    exploration_rounds,
    id_length_bits,
    random_walk_cover,
    ring,
)


class TestCostModel:
    def test_general_formula(self):
        # n^5 * ceil(log2 n)
        assert DEFAULT_COST_MODEL.general(8) == 8**5 * 3
        assert DEFAULT_COST_MODEL.general(10) == 10**5 * 4

    def test_max_degree_formula(self):
        assert DEFAULT_COST_MODEL.max_degree(8, 3) == 9 * 8**3 * 3

    def test_regular_formula(self):
        assert DEFAULT_COST_MODEL.regular(8, 3) == 3 * 8**3 * 3

    def test_constant_scales(self):
        assert ExplorationCostModel(c=5).general(8) == 5 * DEFAULT_COST_MODEL.general(8)

    def test_regular_cheaper_than_max_degree(self):
        for n in (8, 16, 64):
            for d in (3, 4):
                assert DEFAULT_COST_MODEL.regular(n, d) < DEFAULT_COST_MODEL.max_degree(n, d)

    def test_best_available_picks_regular(self):
        g = ring(8)
        assert DEFAULT_COST_MODEL.best_available(g) == DEFAULT_COST_MODEL.regular(8, 2)

    def test_best_available_picks_max_degree(self):
        g = PortLabeledGraph.from_edges(4, [(0, 1), (1, 2), (1, 3)])
        assert DEFAULT_COST_MODEL.best_available(g) == DEFAULT_COST_MODEL.max_degree(4, 3)

    def test_facade_precedence(self):
        assert exploration_rounds(8) == DEFAULT_COST_MODEL.general(8)
        assert exploration_rounds(8, max_degree=3) == DEFAULT_COST_MODEL.max_degree(8, 3)
        assert exploration_rounds(8, regular_degree=3) == DEFAULT_COST_MODEL.regular(8, 3)
        # regular wins over max_degree when both given
        assert exploration_rounds(8, max_degree=5, regular_degree=3) == (
            DEFAULT_COST_MODEL.regular(8, 3)
        )

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            DEFAULT_COST_MODEL.general(0)
        with pytest.raises(ConfigurationError):
            DEFAULT_COST_MODEL.regular(8, 0)

    def test_monotone_in_n(self):
        vals = [DEFAULT_COST_MODEL.general(n) for n in range(2, 30)]
        assert vals == sorted(vals)


class TestRandomWalk:
    def test_covers_graph(self, zoo_graph):
        steps, order = random_walk_cover(zoo_graph, 0, np.random.default_rng(0))
        assert sorted(order) == list(range(zoo_graph.n))
        assert steps >= zoo_graph.n - 1

    def test_cost_model_upper_bounds_walk(self):
        """The paper's X(n) formulas dominate measured cover times on the
        benchmark families by construction — sanity check at small n."""
        g = ring(9)
        steps, _ = random_walk_cover(g, 0, np.random.default_rng(1))
        assert steps <= DEFAULT_COST_MODEL.regular(9, 2)

    def test_budget_exhaustion_raises(self):
        g = ring(12)
        with pytest.raises(ConfigurationError):
            random_walk_cover(g, 0, np.random.default_rng(0), max_steps=2)

    def test_disconnected_rejected(self):
        g = PortLabeledGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            random_walk_cover(g, 0, np.random.default_rng(0))

    def test_deterministic_under_seed(self):
        g = ring(8)
        s1, o1 = random_walk_cover(g, 0, np.random.default_rng(42))
        s2, o2 = random_walk_cover(g, 0, np.random.default_rng(42))
        assert (s1, o1) == (s2, o2)


class TestIdLength:
    def test_bit_lengths(self):
        assert id_length_bits([1]) == 1
        assert id_length_bits([1, 2, 3]) == 2
        assert id_length_bits([255]) == 8
        assert id_length_bits([256]) == 9

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            id_length_bits([0, 5])
