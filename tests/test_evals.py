"""Eval harness: registry, leaderboard determinism, and the drift gate.

The contracts under test:

* every registered suite builds a non-empty grid, and the set of
  checked-in ``benchmarks/EVAL_*.json`` pins equals the registry;
* one suite run produces **byte-identical** pinnable payloads and
  ``--json`` documents across serial, ``workers=2``, warm-store, and
  (where eligible) batched execution — and the warm run makes zero
  solver calls (raising stubs prove it);
* ``benchmarks/check_evals.py`` fails loudly, naming the offending
  path, on every mutation class: flipped success counts, deleted solver
  rows, stray pins for unregistered suites, missing pins, and
  non-canonical encodings;
* the ``repro eval`` CLI matches the checked-in golden fixture
  byte-for-byte in ``--json`` mode and stays aligned in ``--table``
  mode.
"""

import importlib.util
import json
import math
import pathlib
import shutil

import pytest

from repro.analysis import experiments
from repro.analysis.store import RunStore
from repro.cli import main
from repro.errors import ConfigurationError
from repro.evals import (
    SUITES,
    EvalReport,
    compare_payloads,
    dump_expected,
    expected_filename,
    get_suite,
    load_expected,
    run_suite,
    suite_names,
    write_expected,
)
from repro.scenarios import Scenario, ScenarioGrid, grid
from repro.graphs import ring

DATA = pathlib.Path(__file__).parent / "data"
BENCHMARKS = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"

#: The cheap suites tests re-run freely (a handful of cells each).
CHEAP = "torus_strong"


def _solver_ban(monkeypatch):
    """Make every per-cell solver entry point raise: any call proves a
    warm-store run recomputed instead of answering from disk."""

    def boom(*args, **kwargs):
        raise AssertionError("solver invoked despite warm store")

    monkeypatch.setattr(experiments, "run_table1_row", boom)
    monkeypatch.setattr(experiments, "_tolerance_record", boom)
    monkeypatch.setattr(experiments, "_scaling_record", boom)


def _load_evals_gate():
    spec = importlib.util.spec_from_file_location(
        "check_evals", BENCHMARKS / "check_evals.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #

class TestRegistry:
    def test_every_suite_builds_a_nonempty_grid(self):
        for name, suite in SUITES.items():
            g = suite.build()
            assert isinstance(g, ScenarioGrid) and len(g) > 0, name
            assert all(isinstance(s, Scenario) for s in g)

    def test_suite_names_order_is_registry_order(self):
        assert suite_names() == list(SUITES)

    def test_unknown_suite_raises_naming_registry(self):
        with pytest.raises(ConfigurationError, match="ring_weak_byz"):
            get_suite("nope")

    def test_checked_in_pins_equal_registry(self):
        """Every suite has a pin and every pin has a suite — the same
        union check_evals.py enforces, pinned here so a rename cannot
        land half-done."""
        pins = {p.name[len("EVAL_"):-len(".json")]
                for p in BENCHMARKS.glob("EVAL_*.json")}
        assert pins == set(SUITES)

    def test_builds_are_deterministic(self):
        for suite in SUITES.values():
            assert suite.build().keys() == suite.build().keys()


# --------------------------------------------------------------------- #
# ScenarioGrid union (the suite->grid helper)
# --------------------------------------------------------------------- #

class TestGridUnion:
    @pytest.fixture(scope="class")
    def g(self):
        return ring(6, seed=0)

    def test_concat_dedupes_by_identity(self, g):
        a = grid(rows=[4], graphs=g, strategies=["idle", "squatter"])
        b = grid(rows=[4], graphs=g, strategies=["squatter", "crash"])
        union = ScenarioGrid.concat([a, b])
        assert [s.strategy for s in union] == ["idle", "squatter", "crash"]
        assert len(union) == len(set(union.keys())) == 3

    def test_add_operator(self, g):
        a = grid(rows=[4], graphs=g, strategies="idle")
        assert len(a + a) == 1
        with pytest.raises(TypeError):
            a + [1, 2]

    def test_self_union_is_identity(self, g):
        a = grid(rows=[4, 5], graphs=g, strategies="idle")
        assert ScenarioGrid.concat([a, a]).keys() == a.keys()


# --------------------------------------------------------------------- #
# Determinism: one suite, four execution modes, identical bytes
# --------------------------------------------------------------------- #

class TestEvalDeterminism:
    @pytest.fixture(scope="class")
    def serial_report(self):
        return run_suite(CHEAP)

    def test_parallel_matches_serial(self, serial_report):
        parallel = run_suite(CHEAP, workers=2)
        assert dump_expected(parallel.expected_payload()) == \
            dump_expected(serial_report.expected_payload())
        assert parallel.json_payload() == serial_report.json_payload()

    def test_warm_store_matches_and_makes_zero_solver_calls(
            self, serial_report, tmp_path, monkeypatch):
        store = RunStore(tmp_path / "store")
        cold = run_suite(CHEAP, store=store)
        assert cold.json_payload() == serial_report.json_payload()
        _solver_ban(monkeypatch)
        warm = run_suite(CHEAP, store=store)
        assert warm.json_payload() == serial_report.json_payload()
        assert store.hits == len(warm.results)

    def test_warm_store_answers_batched_suite(self, tmp_path, monkeypatch):
        """batch_scale flows through the struct-of-arrays engine cold;
        warm it must come purely from the store — the batch engine is
        banned alongside the per-cell solvers."""
        from repro.analysis import batching

        store = RunStore(tmp_path / "store")
        cold = run_suite("batch_scale", store=store)

        def boom(*args, **kwargs):
            raise AssertionError("batch engine invoked despite warm store")

        _solver_ban(monkeypatch)
        monkeypatch.setattr(batching, "run_batch_group", boom)
        warm = run_suite("batch_scale", store=store)
        assert warm.json_payload() == cold.json_payload()

    def test_batched_matches_per_cell(self):
        batched = run_suite("batch_scale", batch=True)
        per_cell = run_suite("batch_scale", batch=False)
        assert batched.json_payload() == per_cell.json_payload()

    def test_wall_time_never_in_comparable_payloads(self, serial_report):
        text = json.dumps(serial_report.json_payload())
        assert "wall" not in text
        assert "wall" not in dump_expected(serial_report.expected_payload())
        # ...but the human table does show it.
        assert "wall_s" in serial_report.table()


# --------------------------------------------------------------------- #
# Leaderboard semantics
# --------------------------------------------------------------------- #

class TestLeaderboard:
    def _fabricated(self):
        """An EvalReport over hand-built records: serial 6 clean, serial
        7 fully quarantined."""
        suite = get_suite(CHEAP)
        records = [
            {"serial": 6, "strategy": "impersonator", "success": True,
             "rounds_simulated": 5, "rounds_total": 5},
            {"serial": 6, "strategy": "id_cycler", "success": False,
             "rounds_simulated": 9, "rounds_total": 9},
            {"serial": 7, "strategy": "impersonator", "failed": True,
             "reason": "error", "error": "boom", "attempts": 3,
             "key": "ab" * 32},
        ]
        return EvalReport(suite, records, {6: 0.5, 7: 0.0})

    def test_ordering_and_quarantine_column(self):
        board = self._fabricated().leaderboard()
        assert [r["serial"] for r in board] == [6, 7]  # nan rate sorts last
        assert board[0]["success_rate"] == 0.5
        assert math.isnan(board[1]["success_rate"])
        assert board[0]["quarantined"] == 0 and board[1]["quarantined"] == 1

    def test_clean_board_has_no_quarantine_column(self):
        board = run_suite(CHEAP).leaderboard()
        assert all("quarantined" not in r for r in board)

    def test_degraded_run_refuses_expected_payload(self):
        report = self._fabricated()
        with pytest.raises(ConfigurationError, match="quarantined"):
            report.expected_payload()
        doc = report.json_payload()
        assert doc["quarantined"] == 1 and "expected" not in doc

    def test_wall_column_only_on_request(self):
        report = self._fabricated()
        assert "wall_s" not in report.leaderboard()[0]
        assert report.leaderboard(wall=True)[0]["wall_s"] == 0.5


# --------------------------------------------------------------------- #
# Golden CLI outputs
# --------------------------------------------------------------------- #

class TestCliGolden:
    def test_json_matches_checked_in_fixture(self, capsys):
        """The full ring_weak_byz leaderboard document, byte-for-byte.
        Regenerate: python -m repro eval ring_weak_byz --json"""
        assert main(["eval", "ring_weak_byz", "--json"]) == 0
        fixture = (DATA / "eval_ring_weak_byz_golden.json").read_text()
        assert capsys.readouterr().out == fixture

    def test_table_columns_align(self, capsys):
        assert main(["eval", CHEAP, "--table"]) == 0
        out = capsys.readouterr().out
        lines = [ln for ln in out.splitlines() if ln.strip()]
        title, header, rule = lines[0], lines[1], lines[2]
        assert title.startswith(f"eval {CHEAP}")
        body = lines[1:]
        assert len({len(ln) for ln in body}) == 1  # every row same width
        assert set(rule) <= {"-", "+"}
        for column in ("serial", "solver", "success_rate", "wall_s"):
            assert column in header
        # separators line up between header and data rows
        pipes = [i for i, ch in enumerate(header) if ch == "|"]
        for line in body:
            assert all(line[i] == ("|" if line is not rule else "+")
                       for i in pipes)

    def test_solver_subset(self, capsys):
        assert main(["eval", CHEAP, "--solvers", "6", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert list(doc["expected"]["solvers"]) == ["6"]
        assert [r["serial"] for r in doc["leaderboard"]] == [6]

    def test_solver_subset_accepts_names(self, capsys):
        assert main(["eval", CHEAP, "--solvers", "theorem7", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert list(doc["expected"]["solvers"]) == ["6"]

    def test_unknown_solver_rejected(self, capsys):
        assert main(["eval", CHEAP, "--solvers", "4"]) == 2
        err = capsys.readouterr().err
        assert CHEAP in err and "serial 4" in err

    def test_update_expected_with_solvers_refused(self, capsys):
        assert main(["eval", CHEAP, "--solvers", "6",
                     "--update-expected"]) == 2
        assert "partial" in capsys.readouterr().err

    def test_update_expected_reproduces_checked_in_pin(self, tmp_path, capsys):
        out = tmp_path / expected_filename(CHEAP)
        assert main(["eval", CHEAP, "--update-expected",
                     "--expected", str(out)]) == 0
        pinned = (BENCHMARKS / expected_filename(CHEAP)).read_text()
        assert out.read_text() == pinned

    def test_unknown_suite_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["eval", "nope"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_help_lists_registry(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["eval", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in SUITES:
            assert name in out


# --------------------------------------------------------------------- #
# compare_payloads: precise drift messages
# --------------------------------------------------------------------- #

class TestComparePayloads:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_suite(CHEAP).expected_payload()

    def test_clean(self, payload):
        assert compare_payloads(payload, payload) == []

    def test_format_mismatch_short_circuits(self, payload):
        doctored = dict(payload, format=payload["format"] + 1)
        drift = compare_payloads(doctored, payload, label="pin.json")
        assert len(drift) == 1 and "format" in drift[0]
        assert drift[0].startswith("pin.json: ")

    def test_field_drift_names_solver_class_and_field(self, payload):
        doctored = json.loads(json.dumps(payload))
        doctored["solvers"]["6"]["classes"]["id_cycler"]["successes"] = 0
        drift = compare_payloads(doctored, payload)
        assert any("solver 6" in m and "id_cycler" in m and "successes" in m
                   for m in drift)

    def test_missing_solver_named(self, payload):
        doctored = json.loads(json.dumps(payload))
        del doctored["solvers"]["7"]
        drift = compare_payloads(doctored, payload)
        assert any("solver 7" in m and "no pinned row" in m for m in drift)


# --------------------------------------------------------------------- #
# check_evals.py: mutation acceptance
# --------------------------------------------------------------------- #

class TestCheckEvalsGate:
    @pytest.fixture()
    def gate(self):
        return _load_evals_gate()

    @pytest.fixture()
    def pin_dir(self, tmp_path):
        shutil.copy(BENCHMARKS / expected_filename(CHEAP), tmp_path)
        return tmp_path

    def _pin(self, pin_dir):
        return pin_dir / expected_filename(CHEAP)

    def test_clean_pin_passes(self, gate, pin_dir, capsys):
        assert gate.main(["--suite", CHEAP, "--dir", str(pin_dir)]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_flipped_success_fails_naming_path(self, gate, pin_dir, capsys):
        pin = self._pin(pin_dir)
        payload = json.loads(pin.read_text())
        payload["solvers"]["6"]["classes"]["id_cycler"]["successes"] = 0
        write_expected(payload, str(pin))
        assert gate.main(["--suite", CHEAP, "--dir", str(pin_dir)]) == 1
        out = capsys.readouterr().out
        assert str(pin) in out and "successes" in out and "FAIL" in out

    def test_deleted_solver_row_fails_naming_path(self, gate, pin_dir, capsys):
        pin = self._pin(pin_dir)
        payload = json.loads(pin.read_text())
        del payload["solvers"]["7"]
        write_expected(payload, str(pin))
        assert gate.main(["--suite", CHEAP, "--dir", str(pin_dir)]) == 1
        out = capsys.readouterr().out
        assert str(pin) in out and "solver 7" in out

    def test_unexpected_suite_file_fails(self, gate, tmp_path, capsys):
        stray = tmp_path / "EVAL_bogus.json"
        stray.write_text("{}\n")
        assert gate.main(["--dir", str(tmp_path), "--suite", "bogus"]) == 1
        out = capsys.readouterr().out
        assert str(stray) in out and "not in repro.evals.SUITES" in out

    def test_missing_pin_fails(self, gate, tmp_path, capsys):
        assert gate.main(["--suite", CHEAP, "--dir", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "missing" in out and CHEAP in out

    def test_noncanonical_encoding_fails(self, gate, pin_dir, capsys):
        pin = self._pin(pin_dir)
        pin.write_text(json.dumps(json.loads(pin.read_text())))
        assert gate.main(["--suite", CHEAP, "--dir", str(pin_dir)]) == 1
        assert "canonical" in capsys.readouterr().out

    def test_unknown_suite_arg_rejected(self, gate, capsys):
        with pytest.raises(SystemExit) as exc:
            gate.main(["--suite", "nope"])
        assert exc.value.code == 2

    def test_update_roundtrips_to_passing(self, gate, tmp_path, capsys):
        assert gate.main(["--suite", CHEAP, "--dir", str(tmp_path),
                          "--update"]) == 0
        assert gate.main(["--suite", CHEAP, "--dir", str(tmp_path)]) == 0
        # The refreshed pin is byte-identical to the checked-in one.
        assert self._pin(tmp_path).read_text() == \
            (BENCHMARKS / expected_filename(CHEAP)).read_text()


# --------------------------------------------------------------------- #
# Expected-results IO
# --------------------------------------------------------------------- #

class TestExpectedIO:
    def test_roundtrip_canonical(self, tmp_path):
        payload = run_suite(CHEAP).expected_payload()
        path = tmp_path / "pin.json"
        write_expected(payload, str(path))
        text = path.read_text()
        assert text.endswith("\n") and text == dump_expected(payload)
        assert load_expected(str(path)) == payload

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{nope")
        with pytest.raises(ConfigurationError, match="bad.json"):
            load_expected(str(bad))
        notdict = tmp_path / "arr.json"
        notdict.write_text("[1, 2]")
        with pytest.raises(ConfigurationError, match="JSON object"):
            load_expected(str(notdict))
