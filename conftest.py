"""Pytest bootstrap: make `src/` importable even without installation.

The canonical workflow is `pip install -e .` (or `python setup.py develop`
in offline environments without the `wheel` package); this shim merely
keeps `pytest` usable from a pristine checkout.
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))
