#!/usr/bin/env python
"""Behavioural-drift gate: fresh eval-suite runs vs checked-in pins.

The perf twin of :mod:`check_regression`: where that script guards
``BENCH_*.json`` timings, this one guards ``EVAL_*.json`` *behaviour* —
per solver × cell-class success counts and round totals for every named
suite in :data:`repro.evals.SUITES`.  Unlike timings, behaviour is
deterministic, so the comparison is exact: any drift fails, there is no
tolerance knob, and CI can gate on a full re-run without flakiness.

Discovery is the union of two sources, so nothing drops out silently:

* every ``benchmarks/EVAL_*.json`` file — a pin for a suite that is no
  longer registered fails loudly ("unexpected suite") instead of
  becoming a stale fossil;
* every registered suite — a registered suite whose pin was deleted
  fails loudly ("missing expected file") instead of becoming ungated.

Usage::

    python benchmarks/check_evals.py                       # gate every suite
    python benchmarks/check_evals.py --suite torus_strong,scheduler_stress
    python benchmarks/check_evals.py --update              # refresh the pins
    python benchmarks/check_evals.py --dir /tmp/pins       # gate another dir

Suites re-run fresh (no store, serial, batched) — the executor's
byte-identity guarantees mean any other mode would produce the same
payload anyway; see ``tests/test_evals.py`` for the proof.
"""

import argparse
import glob
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.errors import ReproError  # noqa: E402
from repro.evals import (  # noqa: E402
    SUITES,
    compare_payloads,
    dump_expected,
    expected_path,
    load_expected,
    run_suite,
    write_expected,
)

_HERE = os.path.dirname(__file__)


def discover(directory):
    """Every suite the gate covers: name -> pin path.

    Globs ``EVAL_*.json`` under ``directory`` and unions in every
    registered suite, so deletions and strays both surface.
    """
    suites = {}
    for path in sorted(glob.glob(os.path.join(directory, "EVAL_*.json"))):
        name = os.path.basename(path)[len("EVAL_"):-len(".json")]
        if name:
            suites[name] = path
    for name in SUITES:
        suites.setdefault(name, expected_path(name, directory))
    return suites


def check_suite(name, pin_path):
    """Gate one suite; prints verdicts, returns the number of failures."""
    if name not in SUITES:
        print(f"[{name}] FAIL: {pin_path} pins a suite that is not in "
              f"repro.evals.SUITES (renamed? delete the file or register "
              f"the suite)")
        return 1
    if not os.path.exists(pin_path):
        print(f"[{name}] FAIL: expected file {pin_path} is missing "
              f"(generate it: python -m repro eval {name} --update-expected)")
        return 1
    try:
        pinned = load_expected(pin_path)
    except ReproError as exc:
        print(f"[{name}] FAIL: {exc}")
        return 1

    canonical = dump_expected(pinned)
    with open(pin_path, encoding="utf-8") as fh:
        if fh.read() != canonical:
            print(f"[{name}] FAIL: {pin_path} is not in canonical form "
                  f"(sorted keys, indent 2, trailing newline); regenerate "
                  f"with --update")
            return 1

    try:
        report = run_suite(name)
        fresh = report.expected_payload()
    except ReproError as exc:
        print(f"[{name}] FAIL: fresh run failed: {exc}")
        return 1

    drift = compare_payloads(pinned, fresh, label=pin_path)
    if drift:
        print(f"[{name}] FAIL: behaviour drifted from the pin:")
        for message in drift:
            print(f"  - {message}")
        print(f"  (intentional change? refresh: python -m repro eval {name} "
              f"--update-expected)")
        return len(drift)
    print(f"[{name}] PASS: {pin_path} matches a fresh run "
          f"({fresh['cells']} cells, {len(fresh['solvers'])} solver(s))")
    return 0


def update_suite(name, pin_path):
    """Re-pin one suite from a fresh run; returns failures (0 or 1)."""
    if name not in SUITES:
        print(f"[{name}] FAIL: cannot --update {pin_path}: no such suite "
              f"registered (delete the stray file instead)")
        return 1
    try:
        report = run_suite(name)
        write_expected(report.expected_payload(), pin_path)
    except ReproError as exc:
        print(f"[{name}] FAIL: {exc}")
        return 1
    print(f"[{name}] pin refreshed: {pin_path}")
    return 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--suite", default="all",
                    help="comma-separated suite names to gate "
                         "(default: all discovered)")
    ap.add_argument("--dir", default=_HERE,
                    help="directory holding the EVAL_*.json pins "
                         "(default: benchmarks/)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the pin(s) from fresh runs instead of "
                         "checking")
    args = ap.parse_args(argv)

    suites = discover(args.dir)
    if args.suite == "all":
        names = list(suites)
    else:
        names = [tok.strip() for tok in args.suite.split(",") if tok.strip()]
        unknown = [n for n in names if n not in suites]
        if unknown:
            ap.error(f"unknown suite(s) {', '.join(unknown)} "
                     f"(discovered: {', '.join(suites)})")

    failures = 0
    for name in names:
        step = update_suite if args.update else check_suite
        failures += step(name, suites[name])
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
