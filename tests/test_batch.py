"""Batched engine: grouping safety and byte-identity with the serial path.

The contracts under test:

* ``plan_groups`` never mixes incompatible cells — a property test over
  randomly assembled plans asserts every group agrees on graph
  fingerprint, solver serial, strategy, scheduler, and round budget,
  and that singletons, ineligible cells (``ghost_squatter``,
  non-synchronous schedulers, other solver rows, scaling cells), and
  fault-targeted cells always stay on the per-cell path;
* batch-produced records are **byte-identical** to ``batch=False`` —
  same record JSON, same store cell keys, same stored bytes — across
  strategies, placements, ``f`` values (including out-of-range
  rejections), round budgets, both batchable kinds, and under an
  injected :class:`FaultPlan`;
* a store warmed by a batched run answers a later serial run entirely
  from cache (poison faults on every key prove zero recomputes);
* the batch engine genuinely runs (a spy on ``run_batch_group`` catches
  a regression where everything silently falls back), and graphs
  outside the Theorem 1 class are *returned* to the serial path, not
  simulated;
* the bench CLI rejects unknown suites, lists the ``batch`` suite in
  ``--help``, exposes ``--no-batch``, and ``--profile`` prints a
  cProfile table without touching baseline files.

Every test runs with :data:`repro.analysis.batching.STRICT` flipped on,
so an engine bug raises instead of hiding behind the serial fallback.
"""

import json
import random

import pytest

from repro.analysis import batching
from repro.analysis.batching import batchable, plan_groups, run_batch_group
from repro.analysis.experiments import (
    SweepCell,
    _payload_fingerprint,
    cell_key_of,
    execute_plan,
)
from repro.analysis.faults import FaultPlan, FaultSpec
from repro.analysis.store import RunStore
from repro.cli import main as cli_main
from repro.graphs import random_connected, ring

#: ``random_connected(12, seed=0)`` is connected and quotient-isomorphic
#: (n=12, m=18) — a Theorem 1 graph without any seed scanning.
QI_SEED = 0


@pytest.fixture(autouse=True)
def _strict(monkeypatch):
    """Fail loudly on engine errors instead of falling back serially."""
    monkeypatch.setattr(batching, "STRICT", True)


@pytest.fixture(scope="module")
def g():
    return random_connected(12, seed=QI_SEED)


@pytest.fixture(scope="module")
def g2():
    return random_connected(12, seed=3)  # same n, different fingerprint


def _plan(cells, faults=None):
    keys = [cell_key_of(c) for c in cells]
    return plan_groups(
        cells,
        list(range(len(cells))),
        keys,
        lambda i: _payload_fingerprint(cells[i].payload),
        faults=faults,
    )


def _run_both(cells, tmp_path, faults_a=None, faults_b=None):
    """Run ``cells`` batched and serially into fresh stores; assert
    byte-identical records, key sets, and stored bytes."""
    sa = RunStore(str(tmp_path / "a"))
    sb = RunStore(str(tmp_path / "b"))
    ra = execute_plan(cells, store=sa, batch=True, faults=faults_a)
    rb = execute_plan(cells, store=sb, batch=False, faults=faults_b)
    assert json.dumps(ra) == json.dumps(rb)
    keys_a, keys_b = sorted(sa.keys()), sorted(sb.keys())
    assert keys_a == keys_b
    assert keys_a == sorted(cell_key_of(c) for c in cells)
    for key in keys_a:
        assert json.dumps(sa.get(key)) == json.dumps(sb.get(key))
    return ra


class TestGrouping:
    def test_compatible_seed_sweep_groups(self, g):
        cells = [
            SweepCell("table1", 1, g, "squatter", seed, f=4) for seed in range(5)
        ]
        groups, rest = _plan(cells)
        assert groups == [[0, 1, 2, 3, 4]]
        assert rest == []

    def test_f_and_placement_vary_within_group(self, g):
        cells = [
            SweepCell("tolerance", 1, g, "idle", 0, f=f, placement=p)
            for f in (0, 3, 7)
            for p in ("lowest", "highest", "random")
        ]
        groups, rest = _plan(cells)
        assert groups == [list(range(9))]
        assert rest == []

    def test_singletons_stay_serial(self, g):
        cells = [
            SweepCell("table1", 1, g, "squatter", 0, f=4),
            SweepCell("table1", 1, g, "idle", 0, f=4),
        ]
        groups, rest = _plan(cells)
        assert groups == []
        assert rest == [0, 1]

    def test_ineligible_cells_never_batch(self, g):
        ineligible = [
            SweepCell("table1", 1, g, "ghost_squatter", 0, f=4),
            SweepCell("table1", 1, g, "squatter", 0, f=4,
                      scheduler="semi_synchronous(p=0.5)"),
            SweepCell("table1", 2, g, "squatter", 0, f=4),
            SweepCell("scaling", 1, g, "squatter", 0, f=4),
        ]
        for cell in ineligible:
            assert not batchable(cell)
        # Even duplicated (so compatibility alone would group them),
        # ineligible cells all land in rest, in plan order.
        cells = [c for cell in ineligible for c in (cell, cell)]
        groups, rest = _plan(cells)
        assert groups == []
        assert rest == list(range(len(cells)))

    def test_fault_targeted_cells_excluded(self, g):
        cells = [
            SweepCell("table1", 1, g, "squatter", seed, f=4) for seed in range(4)
        ]
        faults = FaultPlan({cell_key_of(cells[2]): FaultSpec("error")})
        groups, rest = _plan(cells, faults=faults)
        assert groups == [[0, 1, 3]]
        assert rest == [2]

    def test_property_random_plans_never_mix_axes(self, g, g2):
        """Property test: however a plan is assembled, every planned
        group is ≥2 cells that agree on every grouping axis, and the
        remainder preserves plan order exactly."""
        rng = random.Random(1234)
        kinds = ["table1", "tolerance", "scaling"]
        serials = [1, 1, 1, 2]
        strategies = ["crash", "idle", "squatter", "flag_spammer",
                      "ghost_squatter"]
        schedulers = ["synchronous", "synchronous", "semi_synchronous(p=0.5)"]
        rounds = [None, None, 8, 0]
        placements = ["lowest", "highest", "random"]
        graphs = [g, g2]
        for _ in range(20):
            cells = [
                SweepCell(
                    rng.choice(kinds), rng.choice(serials), rng.choice(graphs),
                    rng.choice(strategies), rng.randrange(4),
                    f=rng.choice([None, 0, 4, 11]),
                    placement=rng.choice(placements),
                    rounds=rng.choice(rounds),
                    scheduler=rng.choice(schedulers),
                )
                for _ in range(15)
            ]
            groups, rest = _plan(cells)
            grouped = [i for group in groups for i in group]
            # Partition: every index exactly once, rest in plan order.
            assert sorted(grouped + rest) == list(range(len(cells)))
            assert rest == [i for i in range(len(cells)) if i not in grouped]
            for group in groups:
                assert len(group) >= 2
                keys = {
                    batching._group_key(
                        cells[i], _payload_fingerprint(cells[i].payload)
                    )
                    for i in group
                }
                assert len(keys) == 1, "group mixes incompatible cells"
                assert all(batchable(cells[i]) for i in group)


class TestByteIdentity:
    def test_strategies_and_placements(self, g, tmp_path):
        cells = [
            SweepCell("table1", 1, g, strategy, seed, f=5, placement=placement)
            for strategy in ("crash", "idle", "squatter", "flag_spammer")
            for placement in ("lowest", "highest", "random")
            for seed in (0, 1)
        ]
        _run_both(cells, tmp_path)

    def test_tolerance_full_f_range_and_rejection(self, g, tmp_path):
        # f == n is out of range: the serial path answers with a
        # rejected record, and the batch path must hand the cell back
        # rather than invent its own rejection.
        cells = [
            SweepCell("tolerance", 1, g, "squatter", seed, f=f)
            for f in range(g.n + 1)
            for seed in (0, 1)
        ]
        records = _run_both(cells, tmp_path)
        rejected = [r for recs in records for r in recs if r.get("rejected")]
        assert len(rejected) == 2  # the two f == n cells

    def test_round_budgets(self, g, tmp_path):
        cells = [
            SweepCell("table1", 1, g, "idle", seed, f=3, rounds=rounds)
            for rounds in (None, 0, 5, 40)
            for seed in (0, 1)
        ]
        records = _run_both(cells, tmp_path)
        by_rounds = {}
        for cell, recs in zip(cells, records):
            by_rounds.setdefault(cell.rounds, []).extend(recs)
        # rounds=0 exhausts the budget immediately: both paths must
        # agree the run fails (nobody settled in zero rounds).
        assert all(not r["success"] for r in by_rounds[0])
        assert all(r["success"] for r in by_rounds[None])

    def test_nonsync_scheduler_falls_back_identically(self, g, tmp_path):
        cells = [
            SweepCell("table1", 1, g, "squatter", seed, f=4,
                      scheduler=scheduler)
            for scheduler in ("synchronous", "semi_synchronous(p=0.5)")
            for seed in (0, 1)
        ]
        records = _run_both(cells, tmp_path)
        semi = [
            r
            for cell, recs in zip(cells, records)
            for r in recs
            if cell.scheduler != "synchronous"
        ]
        assert all("scheduler" in r for r in semi)

    def test_injected_faultplan(self, g, tmp_path):
        """A fault-targeted cell rides the per-cell retry machinery and
        still lands byte-identical next to its batched siblings."""
        cells = [
            SweepCell("table1", 1, g, "squatter", seed, f=4)
            for seed in range(6)
        ]
        spec = FaultSpec("error", attempts=1)
        target = cell_key_of(cells[2])
        # Fresh plans per run: attempt counters are plan state.
        _run_both(
            cells, tmp_path,
            faults_a=FaultPlan({target: spec}),
            faults_b=FaultPlan({target: spec}),
        )

    def test_batch_engine_actually_runs(self, g, monkeypatch):
        """Guard against a regression where every group silently falls
        back: the grouped cells must be simulated by the engine."""
        ran = []
        original = batching.run_batch_group

        def spy(cells, indices, finish):
            leftover = original(cells, indices, finish)
            ran.append((list(indices), list(leftover)))
            return leftover

        monkeypatch.setattr(batching, "run_batch_group", spy)
        cells = [
            SweepCell("table1", 1, g, "squatter", seed, f=4) for seed in range(4)
        ]
        execute_plan(cells, batch=True)
        assert ran == [([0, 1, 2, 3], [])]

    def test_non_theorem1_graph_returned_to_serial(self, g):
        """``ring(6)`` is connected but not quotient-isomorphic: the
        engine must hand the whole group back untouched."""
        cells = [
            SweepCell("table1", 1, ring(6), "squatter", seed, f=2)
            for seed in (0, 1)
        ]

        def finish(i, recs):  # pragma: no cover - must not be called
            raise AssertionError("engine simulated an out-of-class graph")

        assert run_batch_group(cells, [0, 1], finish) == [0, 1]

    def test_batch_warmed_store_answers_serial_run(self, g, tmp_path):
        """Cache-key pinning end to end: a serial run over a store the
        batch engine wrote recomputes *zero* cells (poison faults on
        every key would quarantine any recompute)."""
        cells = [
            SweepCell(kind, 1, g, "idle", seed, f=4)
            for kind in ("table1", "tolerance")
            for seed in range(3)
        ]
        store = RunStore(str(tmp_path / "warm"))
        first = execute_plan(cells, store=store, batch=True)
        poison = FaultPlan({
            cell_key_of(c): FaultSpec("error", attempts=None) for c in cells
        })
        replay = execute_plan(
            cells, store=store, batch=False, faults=poison
        )
        assert json.dumps(replay) == json.dumps(first)
        assert not any(r.get("failed") for recs in replay for r in recs)


class TestBenchCLI:
    def test_unknown_suite_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["bench", "--suite", "nope"])
        assert exc.value.code == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_help_lists_suites_and_profile(self, capsys):
        with pytest.raises(SystemExit) as exc:
            cli_main(["bench", "--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        for name in ("engine", "graphs", "batch", "all", "--profile"):
            assert name in out

    def test_plan_commands_expose_no_batch(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--help"])
        assert "--no-batch" in capsys.readouterr().out

    def test_profile_prints_stats_and_skips_baselines(self, capsys, tmp_path):
        out_path = tmp_path / "BENCH_batch.json"
        rc = cli_main([
            "bench", "--suite", "batch", "--batch-cells", "2",
            "--repeats", "1", "--profile",
            "--batch-out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tottime" in out
        assert not out_path.exists(), "profiled run must not write baselines"
