"""Fixture: exception handling exception-hygiene allows — narrow types,
ReproError for deterministic rejection, pragma'd fault boundaries."""


class ReproError(Exception):
    pass


def run(task):
    try:
        return task()
    except ReproError:      # deterministic rejection: the legitimate catch
        return None
    except (OSError, ValueError):
        return None


def fault_boundary(task):
    try:
        return task()
    # repro: allow-broad-except — fixture executor fault boundary
    except Exception:
        return None
