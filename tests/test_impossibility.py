"""Tests for Theorem 8: the executable impossibility construction."""

import pytest

from repro.core import demonstrate_impossibility, impossibility_applies
from repro.errors import ConfigurationError
from repro.graphs import random_connected, ring


class TestCondition:
    def test_f_zero_never_applies(self):
        for n, k in [(5, 5), (5, 10), (3, 7)]:
            assert not impossibility_applies(n, k, 0)

    def test_k_equals_n(self):
        # ⌈n/n⌉ = 1; ⌈(n-f)/n⌉ = 1 for f < n: never applies until f = n.
        assert not impossibility_applies(5, 5, 4)
        assert impossibility_applies(5, 5, 5)  # zero survivors edge case

    def test_k_exceeds_n(self):
        # k=12, n=8: ⌈12/8⌉=2 > ⌈(12-f)/8⌉=1 once k-f <= 8, i.e. f >= 4.
        assert not impossibility_applies(8, 12, 3)
        assert impossibility_applies(8, 12, 4)
        assert impossibility_applies(8, 12, 6)

    def test_boundary_arithmetic(self):
        # Exactly the paper's inequality, over a grid.
        for n in (3, 5, 8):
            for k in (n, 2 * n - 1, 2 * n, 3 * n + 1):
                for f in range(0, k + 1):
                    lhs = -(-k // n)
                    rhs = -(-(k - f) // n)
                    assert impossibility_applies(n, k, f) == (lhs > rhs)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            impossibility_applies(5, 0, 0)
        with pytest.raises(ConfigurationError):
            impossibility_applies(5, 3, 4)


class TestConstruction:
    def test_violation_demonstrated_when_applies(self, rc8):
        rep = demonstrate_impossibility(rc8, k=12, f=6, seed=1)
        assert rep.applies
        assert rep.violated
        assert rep.honest_at_crowded > rep.cap_required

    def test_no_violation_when_not_applies(self, rc8):
        rep = demonstrate_impossibility(rc8, k=16, f=2, seed=1)
        assert not rep.applies
        assert not rep.violated

    def test_execution2_reproduces_execution1(self, rc8):
        """Determinism: Byzantine robots replaying honest behaviour leave
        the outcome bit-identical — the crux of the argument."""
        rep = demonstrate_impossibility(rc8, k=12, f=5, seed=2)
        settled2 = {rid: node for rid, node in rep.exec2.settled.items()}
        for rid, node in settled2.items():
            assert rep.exec1.settled[rid] == node

    def test_boundary_sweep(self, rc8):
        """Crossing the ⌈k/n⌉ > ⌈(k−f)/n⌉ line flips the outcome."""
        k = 2 * rc8.n
        outcomes = {}
        for f in (rc8.n - 2, rc8.n - 1, rc8.n, rc8.n + 1):
            rep = demonstrate_impossibility(rc8, k=k, f=f, seed=0)
            outcomes[f] = (rep.applies, rep.violated)
        # k=2n: applies iff k-f <= n  <=>  f >= n.
        assert outcomes[rc8.n - 1] == (False, False)
        assert outcomes[rc8.n][0] and outcomes[rc8.n][1]

    def test_ring_instance(self):
        rep = demonstrate_impossibility(ring(6), k=9, f=4, seed=3)
        assert rep.applies and rep.violated
