"""Theorem 1: Byzantine dispersion tolerating up to ``n − 1`` Byzantine
robots on graphs isomorphic to their quotient graphs.

The algorithm (paper Section 2): every robot independently runs
**Find-Map** (polynomial rounds, immune to interference — no communication
involved) and then **Dispersion-Using-Map** (O(n) rounds).  Because maps
are obtained without trusting anyone, *any* number of Byzantine robots
``f ≤ n − 1`` is tolerated — the strongest tolerance in Table 1 (row 1),
paid for by the restricted graph class.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.quotient import is_quotient_isomorphic
from ..sim.robot import RobotAPI
from ..sim.scheduler import RunReport, finish_report
from ..sim.world import World
from ._setup import build_population, resolve_scheduler, round_budget, run_world_guarded
from .dispersion_using_map import dispersion_rounds_bound, dispersion_using_map
from .find_map import find_map_rounds, private_quotient_map

__all__ = ["solve_theorem1", "theorem1_round_bound"]


def theorem1_round_bound(n: int, m: int) -> int:
    """Total charged+simulated round bound: polynomial Find-Map + O(n)."""
    return find_map_rounds(n, m) + dispersion_rounds_bound(n)


def solve_theorem1(
    graph: PortLabeledGraph,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    start: Union[str, int, Dict[int, int]] = "arbitrary",
    seed: int = 0,
    byz_placement: str = "lowest",
    id_seed: Optional[int] = None,
    keep_trace: bool = True,
    max_rounds: Optional[int] = None,
    scheduler=None,
) -> RunReport:
    """Run the Theorem 1 algorithm end to end.

    Parameters mirror the model: ``graph`` must be in the Theorem 1 class
    (checked), ``f`` of the ``n`` robots are Byzantine (weak model),
    ``start`` is any placement — Theorem 1 needs no gathering.
    ``max_rounds`` caps the *simulated* phase below the solver's own
    bound (a scenario round budget); a too-small budget reports
    ``success=False`` instead of raising.  ``scheduler`` selects a
    non-default activation model (:mod:`repro.sim.schedulers`); timing-
    induced protocol breakdowns under it are recorded as violations.

    Returns a :class:`~repro.sim.scheduler.RunReport`; ``rounds_charged``
    carries the Find-Map polynomial, ``rounds_simulated`` the O(n)
    dispersion phase.
    """
    if not graph.is_connected():
        raise ConfigurationError("dispersion requires a connected graph")
    if not is_quotient_isomorphic(graph):
        raise ConfigurationError(
            "Theorem 1 requires the quotient graph to be isomorphic to the graph"
        )
    if not (0 <= f <= graph.n - 1):
        raise ConfigurationError(f"Theorem 1 tolerates 0 <= f <= n-1, got f={f}")

    pop = build_population(
        graph,
        f,
        start=start,
        adversary=adversary,
        byz_placement=byz_placement,
        id_seed=id_seed,
        seed=seed,
    )
    scheduler, canon = resolve_scheduler(scheduler)
    world = World(
        graph, model="weak", keep_trace=keep_trace,
        scheduler=scheduler, scheduler_seed=pop.adversary.seed,
    )

    # Phase 1 — Find-Map: independent, parallel, interference-free; all
    # robots finish within the same polynomial bound (synchronous start),
    # so the whole phase is charged once, globally.
    world.charge("find_map", find_map_rounds(graph.n, graph.m))

    master = np.random.default_rng(seed)
    for rid in pop.ids:
        node = pop.placement[rid]
        if rid in set(pop.byz_ids):
            world.add_robot(rid, node, pop.adversary.program_factory(rid), byzantine=True)
        else:
            map_rng = np.random.default_rng((seed, rid, 0xD15))
            map_graph, map_root = private_quotient_map(graph, node, map_rng)

            def factory(api: RobotAPI, _m=map_graph, _r=map_root):
                return dispersion_using_map(api, _m, _r)

            world.add_robot(rid, node, factory, byzantine=False)

    # Phase 2 — Dispersion-Using-Map: O(n) simulated rounds (+ slack for
    # beyond-tolerance experiments to fail visibly rather than hang).
    budget = round_budget(dispersion_rounds_bound(graph.n) + 4, max_rounds)
    meta = {} if scheduler is None else {"scheduler": canon}
    extra = run_world_guarded(world, budget, guarded=scheduler is not None)
    return finish_report(
        world,
        extra_violations=extra,
        theorem=1,
        f=f,
        n=graph.n,
        strategy=pop.adversary.describe(),
        byz_ids=pop.byz_ids,
        **meta,
    )
