"""Prior-work baseline: Byzantine dispersion on rings (Molla et al. [34, 36]).

The paper generalises the ring algorithm ``Time-Opt-Ring-Dispersion``: on
a ring, a robot that knows ``n`` effectively *has* a map for free (the
cycle with the canonical clockwise/counter-clockwise port labeling), so
no Find-Map or token protocol is needed and Dispersion-Using-Map runs
directly in O(n) rounds while tolerating up to ``n − 1`` weak Byzantine
robots.  This module realises exactly that reduction — it is both the
prior-work baseline for benchmarks (the paper's Section 1: "previous work
solved this problem for rings") and a living demonstration of the
paper's observation that map knowledge, however obtained, is the whole
game (Section 1.3).

Restricted to the canonical symmetric ring labeling (port 1 = clockwise
everywhere); on scrambled labelings the free-map trick is unsound and the
general algorithms apply instead.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..graphs.generators import ring
from ..sim.robot import RobotAPI
from ..sim.scheduler import RunReport, finish_report
from ..sim.world import World
from ._shared import check_canonical_ring
from ..core._setup import build_population
from ..core.dispersion_using_map import dispersion_rounds_bound, dispersion_using_map

__all__ = ["solve_ring_dispersion"]


def solve_ring_dispersion(
    n: int,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    start: Union[str, int, Dict[int, int]] = "arbitrary",
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
) -> RunReport:
    """Ring Byzantine dispersion: ``n`` robots, ``f ≤ n − 1`` weak Byzantine.

    Each honest robot uses the canonical ring as its private map, rooted
    at its own start node (sound because the symmetric ring is
    vertex-transitive: the rooted map is isomorphic to the world from any
    node).  O(n) rounds — the prior work's time-optimal shape.
    """
    if n < 3:
        raise ConfigurationError("ring dispersion needs n >= 3")
    if not (0 <= f <= n - 1):
        raise ConfigurationError(f"ring dispersion tolerates 0 <= f <= n-1, got {f}")
    graph = ring(n)
    check_canonical_ring(graph)
    pop = build_population(
        graph, f, start=start, adversary=adversary,
        byz_placement=byz_placement, seed=seed,
    )
    world = World(graph, model="weak", keep_trace=keep_trace)
    byz = set(pop.byz_ids)
    map_graph = ring(n)  # the free map
    for rid in pop.ids:
        node = pop.placement[rid]
        if rid in byz:
            world.add_robot(rid, node, pop.adversary.program_factory(rid), byzantine=True)
        else:
            def factory(api: RobotAPI):
                return dispersion_using_map(api, map_graph, 0)

            world.add_robot(rid, node, factory, byzantine=False)
    world.run(max_rounds=dispersion_rounds_bound(n) + 4)
    return finish_report(
        world,
        algorithm="ring_prior_work",
        f=f,
        n=n,
        strategy=pop.adversary.describe(),
        byz_ids=pop.byz_ids,
    )
