"""Property-based tests of the paper's lemmas (Section 2.2).

These are the reproduction's heart: Hypothesis draws random graphs,
Byzantine counts/placements and adversary strategies, and we assert the
paper's invariants hold in every generated world:

* **Observation 1** — a robot alone at a node settles there.
* **Lemma 2** — no honest robot ever blacklists an honest robot.
* **Lemma 3** — no two honest robots settle at the same node.
* **Lemma 4** — every honest robot settles within O(n) rounds.

All tests run the Theorem 1 pipeline (every robot holds a correct private
map), which is exactly the procedure's pre-condition.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.byzantine import WEAK_STRATEGIES, Adversary
from repro.core.dispersion_using_map import (
    DispersionMemory,
    dispersion_rounds_bound,
    dispersion_using_map,
)
from repro.core.find_map import private_quotient_map
from repro.graphs import is_quotient_isomorphic, random_connected
from repro.sim import World, finish_report


def _view_distinct_graph(n, seed):
    """Draw a view-distinguishable connected graph (resample on symmetry)."""
    for offset in range(50):
        g = random_connected(n, seed=seed + 1000 * offset)
        if is_quotient_isomorphic(g):
            return g
    raise AssertionError("could not sample a view-distinguishable graph")


def _build(n, seed, f, strategy, placement_seed, byz_low):
    g = _view_distinct_graph(n, seed)
    rng = np.random.default_rng(placement_seed)
    w = World(g)
    mems = {}
    ids = list(range(1, n + 1))
    byz = set(ids[:f]) if byz_low else set(ids[-f:] if f else [])
    adv = Adversary(strategy, seed=seed)
    for rid in ids:
        node = int(rng.integers(0, n))
        if rid in byz:
            w.add_robot(rid, node, adv.program_factory(rid), byzantine=True)
        else:
            mem = DispersionMemory()
            mems[rid] = mem
            map_rng = np.random.default_rng((seed, rid))
            mg, root = private_quotient_map(g, node, map_rng)

            def factory(api, _mg=mg, _root=root, _mem=mem):
                return dispersion_using_map(api, _mg, _root, memory=_mem)

            w.add_robot(rid, node, factory)
    return g, w, mems, byz


strategy_st = st.sampled_from(WEAK_STRATEGIES)


@given(
    n=st.integers(5, 10),
    seed=st.integers(0, 500),
    f=st.integers(0, 9),
    strategy=strategy_st,
    placement_seed=st.integers(0, 100),
    byz_low=st.booleans(),
)
@settings(max_examples=40)
def test_lemma3_no_two_honest_settle_together(n, seed, f, strategy, placement_seed, byz_low):
    f = min(f, n - 1)
    g, w, mems, byz = _build(n, seed, f, strategy, placement_seed, byz_low)
    w.run(max_rounds=dispersion_rounds_bound(n) + 8)
    positions = [
        r.settled_node for r in w.robots.values()
        if not r.byzantine and r.settled_node is not None
    ]
    assert len(positions) == len(set(positions))


@given(
    n=st.integers(5, 10),
    seed=st.integers(0, 500),
    f=st.integers(0, 9),
    strategy=strategy_st,
    placement_seed=st.integers(0, 100),
    byz_low=st.booleans(),
)
@settings(max_examples=40)
def test_lemma2_honest_never_blacklist_honest(n, seed, f, strategy, placement_seed, byz_low):
    f = min(f, n - 1)
    g, w, mems, byz = _build(n, seed, f, strategy, placement_seed, byz_low)
    w.run(max_rounds=dispersion_rounds_bound(n) + 8)
    honest = set(range(1, n + 1)) - byz
    for mem in mems.values():
        assert mem.blacklist.isdisjoint(honest)


@given(
    n=st.integers(5, 10),
    seed=st.integers(0, 500),
    f=st.integers(0, 9),
    strategy=strategy_st,
    placement_seed=st.integers(0, 100),
    byz_low=st.booleans(),
)
@settings(max_examples=40)
def test_lemma4_all_honest_settle_within_bound(n, seed, f, strategy, placement_seed, byz_low):
    f = min(f, n - 1)
    g, w, mems, byz = _build(n, seed, f, strategy, placement_seed, byz_low)
    w.run(max_rounds=dispersion_rounds_bound(n) + 8)
    rep = finish_report(w)
    assert rep.success, rep.violations
    assert rep.rounds_simulated <= dispersion_rounds_bound(n) + 8


@given(
    n=st.integers(4, 9),
    seed=st.integers(0, 300),
)
@settings(max_examples=25)
def test_observation1_lone_robot_settles(n, seed):
    g = _view_distinct_graph(n, seed)
    rng = np.random.default_rng(seed)
    node = int(rng.integers(0, n))
    w = World(g)
    mg, root = private_quotient_map(g, node, np.random.default_rng((seed, 1)))
    w.add_robot(1, node, lambda api: dispersion_using_map(api, mg, root))
    w.run(max_rounds=4)
    assert w.robots[1].settled_node == node
    assert w.round <= 2


@given(
    n=st.integers(5, 9),
    seed=st.integers(0, 300),
    strategy=strategy_st,
)
@settings(max_examples=25)
def test_settled_honest_never_move(n, seed, strategy):
    """Once settled, an honest robot's position is frozen forever — the
    fact Lemma 2 rests on."""
    f = n // 2
    g, w, mems, byz = _build(n, seed, f, strategy, seed, True)
    first_settle = {}
    for _ in range(dispersion_rounds_bound(n) + 8):
        w.step()
        for r in w.robots.values():
            if r.byzantine:
                continue
            if r.settled_node is not None:
                if r.true_id in first_settle:
                    assert first_settle[r.true_id] == (r.settled_node, r.node)
                else:
                    first_settle[r.true_id] = (r.settled_node, r.node)
        if w.all_honest_done():
            break
