"""Non-Byzantine DFS dispersion baseline (Augustine & Moses Jr. [5] style).

The classic rooted dispersion algorithm: robots move as one group and use
*settled robots as landmarks* that remember a DFS state (parent port +
next child port) and guide later visitors.  No maps, no quotients — and
no Byzantine tolerance whatsoever, which is exactly why it is here: the
baseline benchmark shows it disperses ``k ≤ n`` honest robots in
``O(m)``-ish rounds and then collapses under a single lying landmark
(Byzantine squatter), motivating the paper's machinery.

A **capacity** parameter generalises to ``k > n`` robots with up to
``cap`` settlers per node — the substrate for the Theorem 8 impossibility
construction (Section 5's modified dispersion asks ≤ ``⌈(k−f)/n⌉``
honest robots per node).

Protocol (3 rounds per DFS step; gathered start):

1. *arrive* — the travelling group stands at a node; each member posts
   ``("visiting",)``.
2. *guide* — settlers at the node post ``("dfs", direction_port)``; a
   fresh node instead settles its ``cap`` smallest visitors (negotiated
   through public records, smallest IDs first).
3. *move* — remaining visitors follow the guidance port.

Landmark state advances once per visit; when children are exhausted the
guidance is the parent port (backtrack).  Termination: a robot terminates
when it settles, or when guidance backtracks out of the root (k > cap·n
leftovers — only in deliberately overfull experiments).
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..graphs.port_labeled import PortLabeledGraph
from ..sim.robot import SETTLED, Action, Move, RobotAPI, Stay
from ..sim.scheduler import RunReport, finish_report
from ..sim.world import World
from ..sim.ids import assign_ids

__all__ = ["dfs_dispersion_program", "solve_dfs_baseline", "dfs_rounds_bound"]


def dfs_rounds_bound(n: int, m: int, cap: int = 1) -> int:
    """Safety bound on rounds: 3 per step, ≤ 4m steps, per capacity wave."""
    return 12 * m * max(cap, 1) + 12 * n + 24


def dfs_dispersion_program(api: RobotAPI, cap: int = 1) -> Iterator[Action]:
    """One honest robot of the rooted DFS dispersion (gathered start)."""
    parent_port: Optional[int] = None  # set when this robot settles
    next_child = 1

    while True:
        # --- arrive round: announce the visit ------------------------------
        api.say(("visiting",))
        yield Stay()

        # --- guide round ----------------------------------------------------
        snapshot = api.colocated_at_round_start()
        settled_here = [v for v in snapshot if v.state == SETTLED]
        if len(settled_here) < cap:
            # Fresh (or not yet full) node: smallest `cap - settled` visitors
            # settle.  Visitors act in ID order, so counting live settlers
            # again is enough to know whether a slot remains for us.
            live_settled = [v for v in api.colocated() if v.state == SETTLED]
            if len(live_settled) < cap:
                api.settle()
                # Become the landmark (only the first settler guides).
                if not settled_here and not [v for v in live_settled]:
                    parent_port = api.arrival_port
                    yield from _landmark(api, parent_port)
                return
        # Node full: wait for guidance in the next round.
        yield Stay()
        direction = _read_guidance(api)
        if direction is None:
            # No guidance (all landmarks silent — Byzantine or root done):
            # terminate unsettled; the validator will flag it.
            api.log("dfs_no_guidance")
            return
        if direction == 0 or direction > api.degree():
            api.log("dfs_bad_guidance", port=direction)
            return
        yield Move(direction)


def _landmark(api: RobotAPI, parent_port: Optional[int]) -> Iterator[Action]:
    """Settled landmark: guide visitors forever (program never returns
    until the scheduler stops resuming it — it stays put, so the world
    treats it as settled; we simply keep answering)."""
    next_child = 1
    deg = api.degree()
    while True:
        # Did anyone announce a visit last round?
        visits = [1 for _, p in api.messages_prev() if p == ("visiting",)]
        if visits:
            while next_child <= deg and next_child == parent_port:
                next_child += 1
            if next_child <= deg:
                direction = next_child
                next_child += 1
            else:
                direction = parent_port if parent_port is not None else 0
            api.say(("dfs", direction))
        yield Stay()


def _read_guidance(api: RobotAPI) -> Optional[int]:
    """Take the guidance port posted by a (claimed) settled robot."""
    settled_ids = {v.claimed_id for v in api.colocated() if v.state == SETTLED}
    for sender, payload in api.messages_prev():
        if (
            isinstance(payload, tuple)
            and len(payload) == 2
            and payload[0] == "dfs"
            and sender in settled_ids
        ):
            return payload[1]
    return None


def solve_dfs_baseline(
    graph: PortLabeledGraph,
    k: Optional[int] = None,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    cap: Optional[int] = None,
    gather_node: int = 0,
    seed: int = 0,
    byz_placement: str = "lowest",
    byz_ids: Optional[List[int]] = None,
    keep_trace: bool = True,
) -> RunReport:
    """Run the DFS baseline with ``k`` robots (default ``n``), gathered start.

    ``cap`` defaults to ``⌈k/n⌉`` (exactly one per node when ``k ≤ n``).
    ``byz_ids`` overrides the placement-based choice — the impossibility
    construction needs to corrupt a specific set.
    """
    if not graph.is_connected():
        raise ConfigurationError("dispersion requires a connected graph")
    n = graph.n
    k = k if k is not None else n
    cap = cap if cap is not None else -(-k // n)  # ceil
    ids = assign_ids(k, n_nodes=n)
    adversary = adversary if adversary is not None else Adversary(seed=seed)
    if byz_ids is None:
        byz_ids = adversary.choose_ids(ids, f, placement=byz_placement)
    byz = set(byz_ids)
    world = World(graph, model="weak", keep_trace=keep_trace)
    for rid in ids:
        if rid in byz:
            world.add_robot(rid, gather_node, adversary.program_factory(rid), byzantine=True)
        else:
            def factory(api: RobotAPI, _cap=cap):
                return dfs_dispersion_program(api, _cap)

            world.add_robot(rid, gather_node, factory, byzantine=False)
    world.run(max_rounds=dfs_rounds_bound(n, graph.m, cap), until=_all_honest_settled_or_done)
    return finish_report(
        world,
        honest_cap=-(-(k - len(byz)) // n),  # ⌈(k−f)/n⌉ — Section 5's cap
        algorithm="dfs_baseline",
        k=k,
        cap=cap,
        f=len(byz),
        n=n,
        strategy=adversary.describe(),
        byz_ids=sorted(byz),
    )


def _all_honest_settled_or_done(world: World) -> bool:
    """Stop once every honest robot has settled or terminated.

    Landmark programs run forever (they keep guiding), so the default
    "all programs returned" condition never fires; settling is the real
    completion signal for this baseline.
    """
    return all(
        r.settled_node is not None or r.terminated
        for r in world.robots.values()
        if not r.byzantine
    )
