"""Fixture: a Scenario whose axes honour the store-key contract."""
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class Scenario:
    algorithm: str
    graph: str
    strategy: str = "squatter"
    f: str = "max"
    kind: str = "table1"
    placement: str = "lowest"
    seed: int = 0
    rounds: Optional[int] = None
    scheduler: str = "synchronous"
