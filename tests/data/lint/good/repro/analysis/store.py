"""Fixture: a cell_key that mirrors the real drop-at-default contract."""
import hashlib
import json


def cell_key(kind, serial, graph, adversary, f, seed,
             placement="lowest", rounds=None, scheduler="synchronous",
             schema_version=1):
    config = {
        "kind": kind,
        "serial": serial,
        "graph": graph,
        "adversary": adversary,
        "f": f,
        "seed": seed,
        "schema": schema_version,
    }
    if placement != "lowest":
        config["placement"] = placement
    if rounds is not None:
        config["rounds"] = rounds
    if scheduler != "synchronous":
        config["scheduler"] = scheduler
    payload = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]
