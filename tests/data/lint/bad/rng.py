"""Fixture: every form of global-state RNG no-unseeded-rng must catch."""
import random

import numpy as np
from random import shuffle


def draw():
    random.seed(7)                   # module-level global state
    x = random.random()              # module-level global state
    shuffle([1, 2, 3])               # from-imported global-state function
    unseeded = random.Random()       # no seed: OS entropy
    sysrng = random.SystemRandom()   # OS entropy by design
    y = np.random.rand(3)            # numpy legacy global state
    z = np.random.default_rng()      # no seed: OS entropy
    return x, unseeded, sysrng, y, z
