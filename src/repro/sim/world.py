"""The synchronous world: robots on a port-labeled graph, round by round.

Implements the model of Section 1.1 plus the sub-round refinement of
Section 2.2:

* Each round, robots act in ascending ``(claimed_id, true_id)`` order —
  the paper's "robot of rank Y waits until sub-round Y".  A robot's
  program is resumed exactly once per round and must yield a
  :class:`~repro.sim.robot.Move` or :class:`~repro.sim.robot.Stay`.
* During its sub-round a robot observes live public records (smaller-rank
  robots have already acted this round) and the frozen *round-start
  snapshot* (who was where, in which state, when the round began).
* All movements are applied simultaneously at the end of the round.
* Message boards are per-node, per-round; the previous round's board stays
  readable (one-round-latency channel for order-independent exchanges).

The world also keeps **charged rounds**: phases the paper prices via prior
work (gathering, Find-Map) add their cited round cost to the accounting
without being stepped one by one (see DESIGN.md §5).  Every result object
reports simulated and charged rounds separately.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..errors import ProtocolViolation, SimulationError
from ..graphs.port_labeled import PortLabeledGraph
from .robot import (
    SETTLED,
    Action,
    ByzantineAPI,
    Move,
    PublicView,
    Robot,
    RobotAPI,
    Sleep,
    Stay,
)
from .trace import Trace

__all__ = ["World"]

ProgramFactory = Callable[[RobotAPI], Iterator[Action]]


class World:
    """A running simulation instance.

    Parameters
    ----------
    graph:
        The anonymous port-labeled world graph (connected).
    model:
        ``"weak"`` — Byzantine robots cannot fake IDs (Sections 2 & 3);
        ``"strong"`` — they can (Section 4).
    keep_trace:
        Store full event objects (True) or only counters (False).
    """

    def __init__(
        self,
        graph: PortLabeledGraph,
        model: str = "weak",
        keep_trace: bool = True,
    ):
        if model not in ("weak", "strong"):
            raise SimulationError(f"unknown Byzantine model {model!r}")
        self.graph = graph
        self.model = model
        self.robots: Dict[int, Robot] = {}
        self.round = 0
        self.charged: List[Tuple[str, int]] = []
        self.board_current: Dict[int, List[Tuple[int, Any]]] = {}
        self.board_previous: Dict[int, List[Tuple[int, Any]]] = {}
        self.round_start_snapshot: Dict[int, Tuple[int, PublicView]] = {}
        self.trace = Trace(keep_events=keep_trace)
        self._by_node: Dict[int, List[Robot]] = {}

    # ------------------------------------------------------------------ #
    # Population management
    # ------------------------------------------------------------------ #

    def add_robot(
        self,
        true_id: int,
        node: int,
        program_factory: ProgramFactory,
        byzantine: bool = False,
    ) -> Robot:
        """Create a robot and bind its program.

        ``program_factory`` receives the robot's API (a
        :class:`ByzantineAPI` iff ``byzantine``) and must return a
        generator yielding one action per round.
        """
        if true_id in self.robots:
            raise SimulationError(f"duplicate robot ID {true_id}")
        if not (0 <= node < self.graph.n):
            raise SimulationError(f"node {node} out of range")
        robot = Robot(true_id=true_id, node=node, program=iter(()), byzantine=byzantine)
        api = ByzantineAPI(self, robot) if byzantine else RobotAPI(self, robot)
        robot.program = program_factory(api)
        self.robots[true_id] = robot
        self._by_node.setdefault(node, []).append(robot)
        return robot

    @property
    def honest_ids(self) -> List[int]:
        """True IDs of non-Byzantine robots, ascending."""
        return sorted(i for i, r in self.robots.items() if not r.byzantine)

    @property
    def byzantine_ids(self) -> List[int]:
        """True IDs of Byzantine robots, ascending."""
        return sorted(i for i, r in self.robots.items() if r.byzantine)

    def robots_at(self, node: int) -> List[Robot]:
        """Robots currently located at ``node`` (stable within a round)."""
        return self._by_node.get(node, [])

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Execute one synchronous round (sub-rounds + simultaneous moves)."""
        # Freeze the round-start snapshot: the paper's "in round t" sets.
        self.round_start_snapshot = {
            rid: (r.node, r.view()) for rid, r in self.robots.items()
        }
        self.board_current = {}

        order = sorted(
            (r for r in self.robots.values() if not r.terminated),
            key=lambda r: (r.claimed_id, r.true_id),
        )
        for robot in order:
            if robot.sleep_until > self.round:
                robot.pending_action = None
                continue
            try:
                action = next(robot.program)
            except StopIteration:
                robot.terminated = True
                robot.pending_action = None
                continue
            if isinstance(action, Sleep):
                if action.rounds < 1:
                    raise SimulationError("Sleep must cover at least 1 round")
                robot.sleep_until = self.round + action.rounds
                robot.pending_action = None
                continue
            if isinstance(action, Move):
                if not robot.byzantine and robot.settled_node is not None:
                    raise ProtocolViolation(
                        f"settled honest robot {robot.true_id} attempted to move"
                    )
                deg = self.graph.degree(robot.node)
                if not (1 <= action.port <= deg):
                    raise SimulationError(
                        f"robot {robot.true_id} used invalid port {action.port} "
                        f"at a degree-{deg} node"
                    )
                robot.pending_action = action
            elif isinstance(action, Stay):
                robot.pending_action = None
            else:
                raise SimulationError(
                    f"robot {robot.true_id} yielded {action!r}; expected Move or Stay"
                )

        # Task (ii): simultaneous movement.
        moved = False
        for robot in order:
            act = robot.pending_action
            if act is None:
                continue
            dest, in_port = self.graph.traverse(robot.node, act.port)
            self.trace.record(
                self.round, "move", robot=robot.true_id, src=robot.node, dst=dest, port=act.port
            )
            robot.node = dest
            robot.arrival_port = in_port
            robot.moves_made += 1
            robot.pending_action = None
            moved = True
        if moved:
            self._rebuild_index()

        self.board_previous = self.board_current
        self.round += 1

        # Fast-forward: if every live robot is dormant, jump to the first
        # round anyone wakes in one step.  Equivalent to stepping (dormant
        # robots observe nothing and boards decay to empty after a round).
        live = [r for r in self.robots.values() if not r.terminated]
        if live and all(r.sleep_until > self.round for r in live):
            wake = min(r.sleep_until for r in live)
            if wake > self.round + 1:
                self.round = wake
                self.board_previous = {}

    def run(
        self,
        max_rounds: int,
        until: Optional[Callable[["World"], bool]] = None,
    ) -> bool:
        """Step until all honest robots terminated (or ``until`` fires).

        Returns True if the stop condition was met within ``max_rounds``,
        False if the budget ran out first (callers decide whether that is
        a failure; it usually is).  ``max_rounds`` bounds the simulated
        round counter, not loop iterations (sleep fast-forwarding can
        advance many rounds per step).
        """
        deadline = self.round + max_rounds
        while self.round < deadline:
            if until is not None:
                if until(self):
                    return True
            elif self.all_honest_done():
                return True
            self.step()
        return (until(self) if until is not None else self.all_honest_done())

    def all_honest_done(self) -> bool:
        """True iff every honest robot's program has terminated."""
        return all(r.terminated for r in self.robots.values() if not r.byzantine)

    # ------------------------------------------------------------------ #
    # Oracle-phase support (charged rounds, simulator-side placement)
    # ------------------------------------------------------------------ #

    def charge(self, label: str, rounds: int) -> None:
        """Account ``rounds`` of a phase priced via cited prior work."""
        if rounds < 0:
            raise SimulationError("cannot charge negative rounds")
        self.charged.append((label, rounds))
        self.trace.record(self.round, "charge", label=label, rounds=rounds)

    @property
    def charged_rounds(self) -> int:
        """Total charged (non-simulated) rounds so far."""
        return sum(r for _, r in self.charged)

    @property
    def total_rounds(self) -> int:
        """Simulated + charged rounds — the number benchmarks report."""
        return self.round + self.charged_rounds

    def teleport(self, true_id: int, node: int) -> None:
        """Simulator-side relocation (enacting an oracle phase outcome)."""
        robot = self.robots[true_id]
        self.trace.record(self.round, "teleport", robot=true_id, src=robot.node, dst=node)
        robot.node = node
        robot.arrival_port = None
        self._rebuild_index()

    # ------------------------------------------------------------------ #
    # Messaging internals (used by RobotAPI)
    # ------------------------------------------------------------------ #

    def post_message(self, node: int, claimed_sender: int, payload: Any) -> None:
        """Append a message to the current round's board at ``node``."""
        self.board_current.setdefault(node, []).append((claimed_sender, payload))

    # ------------------------------------------------------------------ #
    # Inspection helpers
    # ------------------------------------------------------------------ #

    def honest_settled_positions(self) -> Dict[int, Optional[int]]:
        """``true_id -> settled node`` (``None`` = never settled)."""
        return {
            rid: r.settled_node
            for rid, r in self.robots.items()
            if not r.byzantine
        }

    def positions(self) -> Dict[int, int]:
        """Current ``true_id -> node`` for every robot."""
        return {rid: r.node for rid, r in self.robots.items()}

    def _rebuild_index(self) -> None:
        index: Dict[int, List[Robot]] = {}
        for r in self.robots.values():
            index.setdefault(r.node, []).append(r)
        self._by_node = index
