"""Derived Figure C: adversary-strategy ablation across algorithms.

Runs the algorithms x strategies grid at full tolerance and reports, per
strategy, success rate (must be 1.0 — the theorems are worst-case) and
the round inflation relative to the all-honest run (which strategies are
*expensive*, even though none are *fatal*).
"""

import pytest

from conftest import attach
from repro.analysis import strategy_matrix, summarize
from repro.byzantine import WEAK_STRATEGIES
from repro.core import TABLE1, get_row


def bench_strategy_grid_weak(benchmark, bench_graph):
    rows = [get_row(s) for s in (1, 4, 5)]

    def grid():
        return strategy_matrix(rows, bench_graph, WEAK_STRATEGIES, seed=3)

    records = benchmark.pedantic(grid, rounds=1, iterations=1)
    assert all(r["success"] for r in records), [
        (r["serial"], r["strategy"]) for r in records if not r["success"]
    ]
    by_strategy = summarize(records, "strategy")
    benchmark.extra_info.update(
        grid_size=len(records),
        by_strategy=str(
            {s["strategy"]: s["rounds_simulated_mean"] for s in by_strategy}
        ),
    )


def bench_strategy_round_inflation(benchmark, bench_graph):
    """Round inflation of the worst strategy vs the honest baseline, per
    algorithm — the 'cost of adversity' curve."""
    def measure():
        out = {}
        for serial in (1, 5, 7):
            row = get_row(serial)
            honest = row.solver(bench_graph, f=0, seed=4)
            worst = 0
            for strategy in ("squatter", "ghost_squatter", "flag_spammer"):
                rep = row.solver(
                    bench_graph, f=row.f_max(bench_graph),
                    adversary=__import__("repro").Adversary(strategy, seed=4), seed=4,
                )
                assert rep.success
                worst = max(worst, rep.rounds_simulated)
            out[serial] = (honest.rounds_simulated, worst)
        return out

    out = benchmark.pedantic(measure, rounds=1, iterations=1)
    benchmark.extra_info.update(
        inflation=str({s: round(w / max(h, 1), 2) for s, (h, w) in out.items()})
    )
