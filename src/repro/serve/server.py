"""HTTP routing + lifecycle for the dispersion service.

:class:`ServeApp` maps the API onto :class:`DispersionService`:

========  ====================  ==========================================
method    path                  behaviour
========  ====================  ==========================================
POST      ``/run``              one scenario; warm → 200 records, cold →
                                compute (``?wait=0`` → 202 + key), full
                                queue → 429 + ``Retry-After``
POST      ``/sweep``            scenario array (or ``{"scenarios": []}``);
                                per-cell warm/join/queue, partial accept
                                on a full queue
GET       ``/events/{key}``     Server-Sent Events: full history replay,
                                then live ``queued``/``started``/
                                ``round``/``result``/``quarantined``/
                                ``rejected``/``done``
GET       ``/result/{key}``     200 + records, 202 while computing, 404
GET       ``/stats``            store + queue + cache-hit counters
GET       ``/healthz``          liveness
========  ====================  ==========================================

Error mapping: malformed/invalid payloads → 400 (with the offending
``field`` when :class:`~repro.errors.ValidationError` names one),
deterministic :class:`~repro.errors.ReproError` rejections during a run
→ 422, quarantined cells → 500 with the structured failure records as
the body — the server never crashes on a failing cell.

:class:`ServerThread` runs the whole stack on a background thread for
tests, benchmarks, and the README tour; :func:`run_server` is the
blocking CLI entry point.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, List, Optional, Tuple

from .. import __version__
from ..analysis.experiments import ExecutionPolicy
from ..analysis.faults import FaultPlan
from ..analysis.store import RunStore
from ..errors import ReproError, ValidationError
from ..scenarios import Scenario, ScenarioGrid
from .http import (
    HttpError,
    Request,
    json_bytes,
    read_request,
    response_bytes,
    sse_frame,
    sse_preamble,
)
from .service import Busy, DispersionService, RunOutcome

__all__ = ["ServeApp", "ServerThread", "run_server"]

Headers = Tuple[Tuple[str, str], ...]


class ServeApp:
    """The connection handler: HTTP keep-alive loop over one service."""

    def __init__(self, service: DispersionService):
        self.service = service

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away / server shutting down
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(self, reader, writer) -> None:
        while True:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                await self._send_error(writer, exc, keep_alive=False)
                return
            if request is None:
                return  # clean close between requests
            keep_alive = request.headers.get("connection", "").lower() != "close"
            try:
                if request.method == "GET" and request.path.startswith("/events/"):
                    await self._sse(request, writer)
                    return  # event streams close the connection
                status, body, extra = await self._route(request)
                writer.write(response_bytes(
                    status, json_bytes(body),
                    keep_alive=keep_alive, extra_headers=extra,
                ))
                await writer.drain()
            except HttpError as exc:
                await self._send_error(writer, exc, keep_alive=keep_alive)
            except Exception as exc:  # repro: allow-broad-except — HTTP boundary: a handler bug must answer 500, never kill the server
                error = HttpError(
                    500, f"internal error: {type(exc).__name__}: {exc}"
                )
                await self._send_error(writer, error, keep_alive=False)
                return
            if not keep_alive:
                return

    async def _send_error(self, writer, exc: HttpError, keep_alive: bool) -> None:
        extra: Headers = ()
        if exc.retry_after is not None:
            extra = (("Retry-After", str(exc.retry_after)),)
        writer.write(response_bytes(
            exc.status, json_bytes(exc.body()),
            keep_alive=keep_alive, extra_headers=extra,
        ))
        await writer.drain()

    # -- routing ------------------------------------------------------- #

    async def _route(self, request: Request) -> Tuple[int, Dict, Headers]:
        path, method = request.path, request.method
        if path == "/healthz":
            self._require(method, "GET", path)
            return 200, {"ok": True, "version": __version__}, ()
        if path == "/stats":
            self._require(method, "GET", path)
            return 200, self.service.stats(), ()
        if path.startswith("/result/"):
            self._require(method, "GET", path)
            return self._result(path[len("/result/"):])
        if path == "/run":
            self._require(method, "POST", path)
            return await self._run(request)
        if path == "/sweep":
            self._require(method, "POST", path)
            return await self._sweep(request)
        raise HttpError(404, f"no route for {path}")

    @staticmethod
    def _require(method: str, expected: str, path: str) -> None:
        if method != expected:
            raise HttpError(405, f"{path} only accepts {expected}")

    def _result(self, key: str) -> Tuple[int, Dict, Headers]:
        state, payload = self.service.result_of(key)
        if state == "done":
            return 200, {"key": key, "status": "done", "records": payload}, ()
        if state == "inflight":
            return 202, {"key": key, "status": "computing"}, ()
        raise HttpError(404, f"unknown cell key {key}")

    @staticmethod
    def _parse_scenario(payload) -> Scenario:
        try:
            return Scenario.from_dict(payload)
        except ValidationError as exc:
            raise HttpError(400, str(exc), field=exc.field)
        except ReproError as exc:
            raise HttpError(400, str(exc))

    async def _run(self, request: Request) -> Tuple[int, Dict, Headers]:
        scenario = self._parse_scenario(request.json())
        try:
            status, key, result = self.service.submit(scenario)
        except Busy as exc:
            raise HttpError(429, str(exc), retry_after=exc.retry_after)
        if status == "warm":
            return 200, {"key": key, "status": "warm", "records": result}, ()
        if not request.flag("wait", True):
            return 202, {"key": key, "status": status}, ()
        outcome: RunOutcome = await result
        return self._outcome_response(outcome)

    @staticmethod
    def _outcome_response(outcome: RunOutcome) -> Tuple[int, Dict, Headers]:
        if outcome.status == "ok":
            return 200, {
                "key": outcome.key, "status": "ok", "records": outcome.records,
            }, ()
        if outcome.status == "failed":
            # The executor quarantined the cell: its structured failure
            # records *are* the body — a 5xx with substance, not a crash.
            return 500, {
                "key": outcome.key, "status": "failed",
                "records": outcome.records,
            }, ()
        return 422, {
            "key": outcome.key, "status": "rejected", "error": outcome.error,
        }, ()

    async def _sweep(self, request: Request) -> Tuple[int, Dict, Headers]:
        payload = request.json()
        if isinstance(payload, dict):
            payload = payload.get("scenarios")
        if not isinstance(payload, list):
            raise HttpError(
                400, "scenarios: must be an array of scenario objects "
                "(bare, or under a 'scenarios' key)", field="scenarios",
            )
        try:
            grid = ScenarioGrid.from_dicts(payload)
        except ValidationError as exc:
            raise HttpError(400, str(exc), field=exc.field)
        except ReproError as exc:
            raise HttpError(400, str(exc))
        submitted: List[Tuple[str, str, object]] = []
        busy: Optional[Busy] = None
        for scenario in grid:
            try:
                submitted.append(self.service.submit(scenario))
            except Busy as exc:
                busy = exc
                break
        if busy is not None:
            # Partial accept: already-submitted cells keep computing;
            # the client retries the remainder after Retry-After.
            return 429, {
                "error": str(busy), "status": 429,
                "accepted": [key for _, key, _ in submitted],
                "rejected": len(grid) - len(submitted),
            }, (("Retry-After", str(busy.retry_after)),)
        if not request.flag("wait", True):
            return 202, {
                "results": [
                    {"key": key, "status": status}
                    for status, key, _ in submitted
                ],
            }, ()
        results: List[Dict] = []
        all_ok = True
        for status, key, result in submitted:
            if status == "warm":
                results.append({"key": key, "status": "warm", "records": result})
                continue
            outcome: RunOutcome = await result
            entry: Dict = {"key": key, "status": outcome.status}
            if outcome.records is not None:
                entry["records"] = outcome.records
            if outcome.error is not None:
                entry["error"] = outcome.error
            all_ok = all_ok and outcome.status == "ok"
            results.append(entry)
        return 200, {"ok": all_ok, "results": results}, ()

    # -- SSE ----------------------------------------------------------- #

    async def _sse(self, request: Request, writer) -> None:
        key = request.path[len("/events/"):]
        if not key:
            raise HttpError(404, "missing cell key")
        service = self.service
        if not service.broker.known(key):
            state, payload = service.result_of(key)
            if state == "unknown":
                raise HttpError(404, f"unknown cell key {key}")
            if state == "done":
                # Warmed outside this server's lifetime (CLI or an
                # earlier process): synthesize the terminal transcript.
                writer.write(sse_preamble())
                writer.write(sse_frame("result", {"records": payload}, 0))
                writer.write(sse_frame("done", {"status": "ok"}, 1))
                await writer.drain()
                return
        history, queue = service.broker.subscribe(key)
        writer.write(sse_preamble())
        for event_id, name, data in history:
            writer.write(sse_frame(name, data, event_id))
        await writer.drain()
        if queue is None:
            return  # already done: history was the whole transcript
        try:
            while True:
                item = await queue.get()
                if item is None:
                    return
                event_id, name, data = item
                writer.write(sse_frame(name, data, event_id))
                await writer.drain()
        finally:
            service.broker.unsubscribe(key, queue)


# --------------------------------------------------------------------- #
# Lifecycle
# --------------------------------------------------------------------- #

def _build_service(
    store: Optional[RunStore],
    workers: int,
    queue_size: int,
    policy: Optional[ExecutionPolicy],
    faults: Optional[FaultPlan],
    round_every: int,
) -> DispersionService:
    return DispersionService(
        store=store, workers=workers, queue_size=queue_size,
        policy=policy, faults=faults, round_every=round_every,
    )


class ServerThread:
    """The full serve stack on a background thread (tests, benchmarks,
    the README tour, and ``tools/load_serve.py`` all boot through this).

    ``port=0`` binds an ephemeral port; ``.port`` / ``.base_url`` are
    valid once :meth:`start` returns.  ``.service`` exposes the live
    :class:`DispersionService` for white-box assertions.
    """

    def __init__(
        self,
        store: Optional[RunStore] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        queue_size: int = 64,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        round_every: int = 100,
    ):
        self._config = (store, workers, queue_size, policy, faults, round_every)
        self.host = host
        self.port = port
        self.service: Optional[DispersionService] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._startup_error: Optional[BaseException] = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self, timeout: float = 10.0) -> "ServerThread":
        ready = threading.Event()
        self._thread = threading.Thread(
            target=self._thread_main, args=(ready,),
            name="repro-serve-loop", daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"serve thread failed to start: {self._startup_error!r}"
            )
        return self

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self._stop_event is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass  # loop already closed
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _thread_main(self, ready: threading.Event) -> None:
        try:
            asyncio.run(self._amain(ready))
        except BaseException as exc:  # repro: allow-broad-except — thread boundary: surface startup failures to start() instead of dying silently
            self._startup_error = exc
        finally:
            ready.set()

    async def _amain(self, ready: threading.Event) -> None:
        service = _build_service(*self._config)
        app = ServeApp(service)
        server = await asyncio.start_server(app.handle, self.host, self.port)
        self.port = server.sockets[0].getsockname()[1]
        self.service = service
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        ready.set()
        try:
            async with server:
                await self._stop_event.wait()
        finally:
            await service.aclose()


def run_server(
    host: str = "127.0.0.1",
    port: int = 8008,
    store: Optional[RunStore] = None,
    workers: int = 2,
    queue_size: int = 64,
    policy: Optional[ExecutionPolicy] = None,
    round_every: int = 100,
) -> int:
    """Blocking entry point behind ``repro serve`` (Ctrl-C to stop)."""

    async def main() -> None:
        service = _build_service(store, workers, queue_size, policy, None,
                                 round_every)
        app = ServeApp(service)
        server = await asyncio.start_server(app.handle, host, port)
        bound = server.sockets[0].getsockname()
        store_desc = service.stats()["store"]
        print(f"repro serve listening on http://{bound[0]}:{bound[1]}")
        print(f"  workers={workers} queue={queue_size} "
              f"store={store_desc['path'] if store_desc else '(none: every request computes)'}")
        print("  POST /run /sweep · GET /events/{key} /result/{key} /stats /healthz")
        try:
            async with server:
                await server.serve_forever()
        finally:
            await service.aclose()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("repro serve: stopped")
    return 0
