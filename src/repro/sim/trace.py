"""Event tracing for simulations.

A trace is a flat list of ``(round, kind, data)`` events.  Tracing is
enabled by default for tests/examples (events are cheap dicts) and can be
disabled for large benchmark runs; the recorder then degrades to a no-op
that only keeps counters, so hot loops never pay for event storage they
will not use (guide rule: don't allocate on the fast path).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceEvent", "Trace"]


@dataclass(frozen=True)
class TraceEvent:
    """A single simulation event."""

    round: int
    kind: str
    data: Dict[str, Any]


class Trace:
    """Append-only event log with per-kind counters.

    Counters are always maintained (metrics need them); full events are
    kept only when ``keep_events=True``.
    """

    __slots__ = ("keep_events", "events", "counters")

    def __init__(self, keep_events: bool = True):
        self.keep_events = keep_events
        self.events: List[TraceEvent] = []
        self.counters: Counter = Counter()

    def record(self, round_no: int, kind: str, **data: Any) -> None:
        """Record one event."""
        self.counters[kind] += 1
        if self.keep_events:
            self.events.append(TraceEvent(round=round_no, kind=kind, data=data))

    def bump(self, kind: str) -> None:
        """Counter-only fast path for hot loops.

        Equivalent to :meth:`record` when ``keep_events`` is False, but
        builds no kwargs dict and no event object.  Hot call sites branch
        on ``keep_events`` themselves and call this on the cheap side.
        """
        self.counters[kind] += 1

    def count(self, kind: str) -> int:
        """How many events of ``kind`` were recorded."""
        return self.counters[kind]

    def of_kind(self, kind: str) -> Iterator[TraceEvent]:
        """Iterate stored events of one kind (empty if events not kept)."""
        return (e for e in self.events if e.kind == kind)

    def last(self, kind: str) -> Optional[TraceEvent]:
        """Most recent stored event of ``kind``, or ``None``."""
        for e in reversed(self.events):
            if e.kind == kind:
                return e
        return None

    def __len__(self) -> int:
        return len(self.events)
