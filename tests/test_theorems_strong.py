"""End-to-end tests for Theorems 6–7 (strong Byzantine robots)."""

import pytest

from repro.byzantine import STRONG_STRATEGIES, Adversary
from repro.core import solve_theorem6, solve_theorem7
from repro.errors import ConfigurationError
from repro.gathering import strong_gathering_rounds
from repro.graphs import random_connected, torus


class TestTheorem6:
    def test_all_honest(self, rc8):
        rep = solve_theorem6(rc8, f=0)
        assert rep.success

    @pytest.mark.parametrize("strategy", STRONG_STRATEGIES)
    def test_strategy_zoo_at_bound(self, rc8, strategy):
        rep = solve_theorem6(rc8, f=1, adversary=Adversary(strategy, seed=23))
        assert rep.success, (strategy, rep.violations)

    def test_larger_instance_with_more_byzantine(self):
        g = random_connected(13, seed=11)
        for strategy in ("impersonator", "id_cycler", "squatter"):
            rep = solve_theorem6(g, f=2, adversary=Adversary(strategy, seed=5))
            assert rep.success, (strategy, rep.violations)

    def test_symmetric_graph_ok(self):
        rep = solve_theorem6(torus(3, 3), f=1, adversary=Adversary("id_cycler"))
        assert rep.success

    def test_rank_dispersion_is_linear_tail(self, rc8):
        """After mapping, the dispersion tail is <= n rounds (no
        negotiation): total simulated rounds stay close to the mapping
        phase length."""
        rep = solve_theorem6(rc8, f=1, adversary=Adversary("impersonator"))
        from repro.mapping import run_slot_rounds

        tb = rep.meta["tick_budget"]
        phase_len = 2 + run_slot_rounds(tb, exchange=True)
        assert rep.rounds_simulated <= phase_len + rc8.n + 4

    def test_rejects_f_beyond_bound(self, rc8):
        with pytest.raises(ConfigurationError):
            solve_theorem6(rc8, f=2)  # n/4-1 = 1

    def test_rejects_tiny_graph(self):
        with pytest.raises(ConfigurationError):
            solve_theorem6(random_connected(3, seed=0), f=0)


class TestTheorem7:
    def test_charges_exponential(self, rc8):
        rep = solve_theorem7(rc8, f=1, adversary=Adversary("id_cycler"))
        assert rep.success
        assert rep.rounds_charged == strong_gathering_rounds(rc8)
        assert rep.rounds_charged == 2**8 * 64

    def test_exponential_dominates_everything(self, rc8):
        """Table 1's rows 6 vs 7: same algorithm body, but the arbitrary
        start pays an exponential gathering charge."""
        r6 = solve_theorem6(rc8, f=1, adversary=Adversary("squatter"))
        r7 = solve_theorem7(rc8, f=1, adversary=Adversary("squatter"))
        assert r7.rounds_total > r6.rounds_total
        assert r7.rounds_charged >= 2 ** rc8.n

    @pytest.mark.parametrize("strategy", ["impersonator", "id_cycler", "decoy_token"])
    def test_strategies(self, rc8, strategy):
        rep = solve_theorem7(rc8, f=1, adversary=Adversary(strategy, seed=3))
        assert rep.success, rep.violations
