#!/usr/bin/env python3
"""Quickstart: Byzantine dispersion in ten lines.

Build an anonymous port-labeled graph, corrupt most of the robots, run
the paper's Theorem 1 algorithm, and check every honest robot ends up
alone on its node.

Run:  python examples/quickstart.py
"""

from repro import Adversary, solve_theorem1
from repro.graphs import is_quotient_isomorphic, random_connected

# A random connected graph on 12 nodes.  Random graphs are almost surely
# "view-distinguishable" (all nodes look different to a deterministic
# robot), which is exactly the graph class Theorem 1 needs.
graph = random_connected(12, seed=1)
assert is_quotient_isomorphic(graph), "resample the seed for this class"

# 12 robots, 11 of them Byzantine fake-settlers, arbitrary start nodes.
report = solve_theorem1(
    graph,
    f=11,
    adversary=Adversary("ghost_squatter"),
    start="arbitrary",
    seed=7,
)

print(f"dispersed            : {report.success}")
print(f"simulated rounds     : {report.rounds_simulated}")
print(f"charged rounds       : {report.rounds_charged:,}  (Find-Map, polynomial)")
print(f"honest settlement    : {report.settled}")
assert report.success
