"""Small shared checks for baseline algorithms."""

from __future__ import annotations

from ..errors import GraphStructureError
from ..graphs.port_labeled import PortLabeledGraph

__all__ = ["check_canonical_ring"]


def check_canonical_ring(graph: PortLabeledGraph) -> None:
    """Assert the canonical symmetric ring labeling (port 1 = clockwise).

    The ring baseline's "free map" is only sound under this labeling;
    anything else must go through the general algorithms.
    """
    n = graph.n
    for u in range(n):
        if graph.degree(u) != 2:
            raise GraphStructureError("not a ring: node degree != 2")
        nxt, back = graph.traverse_fast(u, 1)
        if nxt != (u + 1) % n or back != 2:
            raise GraphStructureError(
                "ring baseline requires the canonical symmetric port labeling"
            )
