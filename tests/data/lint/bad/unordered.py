"""Fixture: hash-ordered set iteration no-unordered-iteration must catch."""


def emit(ids):
    seen = set(ids)
    out = []
    for rid in seen:                      # for over a local set
        out.append(rid)
    for pair in {("a", 1), ("b", 2)}:     # for over a set literal
        out.append(pair)
    listed = list({3, 1, 2})              # materialises set order
    joined = ",".join({"a", "b"})         # string order from set order
    squares = [x * x for x in set(ids)]   # comprehension over a set
    merged = [x for x in seen | {0}]      # set-operator expression
    return out, listed, joined, squares, merged
