"""Activation schedulers: who gets to act in each round.

The paper's model (Section 1.1) is fully synchronous — every robot is
activated every round — but the dispersion literature it builds on
treats the activation model as a free parameter (Kshemkalyani et al.
study asynchronous dispersion; Molla, Mondal & Moses show fault strength
and timing interact).  This module makes the activation model a
first-class axis: a :class:`Scheduler` is a callable

    ``scheduler(rnd, roster, rng) -> activated``

that receives the current round number, the live robot roster (the
world's sub-round order: non-terminated robots ascending by
``(claimed_id, true_id)``), and a dedicated RNG stream, and returns the
set of ``true_id``s activated this round — or ``None`` as a fast-path
shorthand for "everyone".  A robot that is not activated keeps its
public record frozen and its program un-resumed for the round; movement,
boards, and the round counter tick on regardless.

The built-in zoo, organised by the timing regime it models:

===================================  ==================================
scheduler                            timing regime
===================================  ==================================
synchronous                          the paper's model: everyone, every
                                     round (byte-identical to the
                                     scheduler-free engine)
semi_synchronous(p=0.5)              semi-synchronous: each live robot
                                     independently activated with
                                     probability ``p`` per round
adversarial(window=4)                worst case with a fairness bound:
                                     starves the lowest-ranked
                                     unsettled honest robot but must
                                     activate every robot at least once
                                     in any ``window`` consecutive
                                     rounds
crash_recovery(down=2,up=6)          deterministic outages: all robots
                                     run for ``up`` rounds, then are
                                     down for ``down`` rounds, cyclically
===================================  ==================================

Specs and determinism
---------------------
Schedulers are addressed by **canonical spec strings** — the left column
above — exactly like adversary strategies are addressed by registry
names: a spec is what a :class:`~repro.scenarios.Scenario` serializes,
what ``repro sweep --scheduler`` parses, and what joins the run-store
cell key (the ``synchronous`` default canonicalises *out* of the key, so
every pre-existing store cell stays warm).  :func:`parse_scheduler`
accepts positional or named arguments (``semi_synchronous(0.5)`` ==
``semi_synchronous(p=0.5)``); :func:`canonical_scheduler` normalises to
the named, signature-ordered form.

The scheduler RNG stream is derived from the **adversary seed** (the
scheduler is part of the adversary's power, like Byzantine placement):
:func:`scheduler_rng` seeds a dedicated child stream, so records are
deterministic in serial, parallel, and resumed runs and never perturb
the strategy or placement streams.

Stateful schedulers (``adversarial`` tracks per-robot activation ages)
are built **fresh per run** by :func:`build_scheduler`; never share one
instance between two worlds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "SCHEDULERS",
    "Scheduler",
    "SchedulerSpec",
    "SynchronousScheduler",
    "SemiSynchronousScheduler",
    "AdversarialScheduler",
    "CrashRecoveryScheduler",
    "build_scheduler",
    "canonical_scheduler",
    "parse_scheduler",
    "scheduler_rng",
]

#: Domain-separation tag for the scheduler RNG stream: the scheduler
#: draws from ``default_rng((seed, SCHEDULER_STREAM))`` so its stream is
#: independent of the per-robot strategy streams ``(seed, true_id)`` and
#: the placement stream ``(seed,)`` derived from the same adversary seed.
SCHEDULER_STREAM = 0x5C4ED

#: The protocol type: ``(round, roster, rng) -> activated true_ids``
#: (``None`` = all).  ``roster`` is the world's live sub-round order.
Scheduler = Callable[[int, Sequence, np.random.Generator], Optional[FrozenSet[int]]]


def scheduler_rng(seed: int) -> np.random.Generator:
    """The dedicated scheduler RNG stream derived from an adversary seed."""
    return np.random.default_rng((int(seed), SCHEDULER_STREAM))


# --------------------------------------------------------------------- #
# Built-in schedulers
# --------------------------------------------------------------------- #


class SynchronousScheduler:
    """Everyone, every round — the paper's fully synchronous model.

    The world treats this scheduler as absent: the hot path takes the
    scheduler-free branch, so behaviour (traces, records, store keys) is
    byte-identical to an engine that never heard of schedulers.
    """

    def __call__(self, rnd, roster, rng):
        return None


class SemiSynchronousScheduler:
    """Each live robot independently activated with probability ``p``.

    One uniform draw per roster robot per round, in roster (sub-round)
    order — the draw sequence is a pure function of the run, so records
    are identical in serial, parallel, and warm-store modes.  Sleeping
    robots consume their draw too (the draw schedule must not depend on
    program-internal sleep state).
    """

    def __init__(self, p: float):
        self.p = p

    def __call__(self, rnd, roster, rng):
        p = self.p
        return frozenset(r.true_id for r in roster if rng.random() < p)


class AdversarialScheduler:
    """Worst-case activation under the standard fairness bound.

    Each round, every robot is activated **except** the lowest-ranked
    unsettled honest robot (the one whose progress gates dispersion),
    which is starved — unless suppressing it would leave it inactive for
    ``window`` consecutive rounds, in which case the fairness bound
    forces its activation.  ``window=1`` degenerates to synchronous.
    """

    def __init__(self, window: int):
        self.window = window
        #: true_id -> round the robot was last activated (first sighting
        #: counts as "activated the round before", so a robot first seen
        #: in round r must run no later than round r + window - 1).
        self._last: Dict[int, int] = {}

    def __call__(self, rnd, roster, rng):
        last = self._last
        target = None
        active: List[int] = []
        for r in roster:
            if target is None and not r.byzantine and r.settled_node is None:
                target = r
                continue
            active.append(r.true_id)
            last[r.true_id] = rnd
        if target is not None:
            tid = target.true_id
            seen = last.setdefault(tid, rnd - 1)
            if rnd - seen >= self.window:  # fairness bound binds
                active.append(tid)
                last[tid] = rnd
        return frozenset(active)


class CrashRecoveryScheduler:
    """Deterministic global outage windows.

    Robots run for ``up`` rounds, then the whole system is down for
    ``down`` rounds, repeating.  Outage rounds still tick (boards decay,
    the round counter advances) — exactly what a crashed-and-recovering
    fleet observes.
    """

    def __init__(self, down: int, up: int):
        self.down = down
        self.up = up

    def __call__(self, rnd, roster, rng):
        return None if rnd % (self.up + self.down) < self.up else frozenset()


# --------------------------------------------------------------------- #
# Registry, spec parsing, canonicalisation
# --------------------------------------------------------------------- #


def _prob(name: str):
    def convert(value) -> float:
        try:
            out = float(value)
        except (TypeError, ValueError):
            raise ConfigurationError(f"scheduler arg {name} must be a number, got {value!r}")
        if not (0.0 < out <= 1.0):
            raise ConfigurationError(f"scheduler arg {name} must be in (0, 1], got {out}")
        return out

    return convert


def _positive_int(name: str):
    def convert(value) -> int:
        try:
            out = int(value)
        except (TypeError, ValueError):
            raise ConfigurationError(f"scheduler arg {name} must be an int, got {value!r}")
        if isinstance(value, float) and value != out:
            raise ConfigurationError(f"scheduler arg {name} must be an int, got {value!r}")
        if out < 1:
            raise ConfigurationError(f"scheduler arg {name} must be >= 1, got {out}")
        return out

    return convert


#: name -> (ordered (param, converter) signature, scheduler class).
SCHEDULERS: Dict[str, Tuple[Tuple, type]] = {
    "synchronous": ((), SynchronousScheduler),
    "semi_synchronous": ((("p", _prob("p")),), SemiSynchronousScheduler),
    "adversarial": ((("window", _positive_int("window")),), AdversarialScheduler),
    "crash_recovery": (
        (("down", _positive_int("down")), ("up", _positive_int("up"))),
        CrashRecoveryScheduler,
    ),
}

_SPEC_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z0-9_]*)\s*(?:\(\s*(.*?)\s*\))?\s*$")


def _format_value(value) -> str:
    """Canonical textual form of a bound arg (ints stay ints; floats use
    ``repr``, the shortest round-tripping form)."""
    return repr(value)


@dataclass(frozen=True)
class SchedulerSpec:
    """A parsed, validated scheduler designation.

    ``args`` is the full signature-ordered binding (no defaults exist —
    every parameter of a parameterised scheduler is explicit), so two
    specs are equal iff they build behaviourally identical schedulers.
    """

    name: str
    args: Tuple[Tuple[str, Union[int, float]], ...] = ()

    def canonical(self) -> str:
        """The canonical spec string (what keys, records, and JSON use)."""
        if not self.args:
            return self.name
        inner = ",".join(f"{k}={_format_value(v)}" for k, v in self.args)
        return f"{self.name}({inner})"

    def build(self) -> Scheduler:
        """A fresh scheduler instance (stateful ones must not be shared
        between runs)."""
        _, cls = SCHEDULERS[self.name]
        return cls(**dict(self.args))


def parse_scheduler(text: str) -> SchedulerSpec:
    """Parse a scheduler spec string into a validated :class:`SchedulerSpec`.

    Accepts the canonical named form (``crash_recovery(down=2,up=6)``),
    positional arguments in signature order (``crash_recovery(2,6)``),
    or a mix (positional before named, like Python calls).
    """
    if isinstance(text, SchedulerSpec):
        return text
    if not isinstance(text, str):
        raise ConfigurationError(
            f"scheduler spec must be a string, got {type(text).__name__}"
        )
    match = _SPEC_RE.match(text)
    if not match:
        raise ConfigurationError(f"malformed scheduler spec {text!r}")
    name, argtext = match.group(1), match.group(2)
    if name not in SCHEDULERS:
        raise ConfigurationError(
            f"unknown scheduler {name!r} (choose from: {', '.join(sorted(SCHEDULERS))})"
        )
    signature, _ = SCHEDULERS[name]
    tokens = [t.strip() for t in argtext.split(",") if t.strip()] if argtext else []
    if len(tokens) > len(signature):
        raise ConfigurationError(
            f"scheduler {name} takes {len(signature)} arg(s), got {len(tokens)}"
        )
    bound: Dict[str, str] = {}
    positional = True
    for i, token in enumerate(tokens):
        if "=" in token:
            positional = False
            key, _, raw = token.partition("=")
            key = key.strip()
            if key not in {p for p, _ in signature}:
                raise ConfigurationError(
                    f"scheduler {name} has no arg {key!r} "
                    f"(signature: {', '.join(p for p, _ in signature)})"
                )
            if key in bound:
                raise ConfigurationError(f"scheduler arg {key!r} given twice")
            bound[key] = raw.strip()
        else:
            if not positional:
                raise ConfigurationError(
                    f"positional scheduler arg after a named one in {text!r}"
                )
            param = signature[i][0]
            bound[param] = token
    missing = [p for p, _ in signature if p not in bound]
    if missing:
        raise ConfigurationError(
            f"scheduler {name} missing arg(s): {', '.join(missing)}"
        )
    args = tuple((param, convert(bound[param])) for param, convert in signature)
    return SchedulerSpec(name, args)


def canonical_scheduler(value: Union[None, str, SchedulerSpec, Scheduler]) -> str:
    """The canonical spec string for any scheduler designation.

    ``None`` means the synchronous default.  Callables that are not
    registry-built fall back to a ``callable:``-prefixed qualified name —
    usable for direct solver calls but rejected by the serializable
    Scenario layer (like bare-callable adversary strategies).
    """
    if value is None:
        return "synchronous"
    if isinstance(value, (str, SchedulerSpec)):
        return parse_scheduler(value).canonical()
    if isinstance(value, SynchronousScheduler):
        return "synchronous"
    if isinstance(value, SemiSynchronousScheduler):
        return SchedulerSpec("semi_synchronous", (("p", float(value.p)),)).canonical()
    if isinstance(value, AdversarialScheduler):
        return SchedulerSpec("adversarial", (("window", int(value.window)),)).canonical()
    if isinstance(value, CrashRecoveryScheduler):
        return SchedulerSpec(
            "crash_recovery", (("down", int(value.down)), ("up", int(value.up)))
        ).canonical()
    if callable(value):
        return "callable:" + getattr(value, "__qualname__", repr(value))
    raise ConfigurationError(f"not a scheduler designation: {value!r}")


def build_scheduler(value: Union[None, str, SchedulerSpec, Scheduler]) -> Scheduler:
    """A ready-to-run scheduler instance for any designation.

    Strings and specs build fresh instances; ``None`` builds the
    synchronous scheduler; scheduler callables pass through unchanged
    (the caller owns their state lifecycle).
    """
    if value is None:
        return SynchronousScheduler()
    if isinstance(value, (str, SchedulerSpec)):
        return parse_scheduler(value).build()
    if callable(value):
        return value
    raise ConfigurationError(f"not a scheduler designation: {value!r}")
