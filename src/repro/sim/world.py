"""The synchronous world: robots on a port-labeled graph, round by round.

Implements the model of Section 1.1 plus the sub-round refinement of
Section 2.2:

* Each round, robots act in ascending ``(claimed_id, true_id)`` order —
  the paper's "robot of rank Y waits until sub-round Y".  A robot's
  program is resumed exactly once per round and must yield a
  :class:`~repro.sim.robot.Move` or :class:`~repro.sim.robot.Stay`.
* During its sub-round a robot observes live public records (smaller-rank
  robots have already acted this round) and the frozen *round-start
  snapshot* (who was where, in which state, when the round began).
* All movements are applied simultaneously at the end of the round.
* Message boards are per-node, per-round; the previous round's board stays
  readable (one-round-latency channel for order-independent exchanges).

The world also keeps **charged rounds**: phases the paper prices via prior
work (gathering, Find-Map) add their cited round cost to the accounting
without being stepped one by one (see DESIGN.md §5).  Every result object
reports simulated and charged rounds separately.

Hot-path engineering (see PERFORMANCE.md for measurements):

* The round-start snapshot is **lazy**: no ``PublicView`` is built unless
  a program asks for one.  Robots carry a copy-on-write ``start_view``
  captured just before the first public-record mutation of a round.
* The sub-round order is **cached** and re-sorted only after a claimed-ID
  change, a termination, or a robot addition — not every round.
* The node index is updated **incrementally**: only robots that actually
  moved are relocated (lists stay in insertion-rank order, matching a
  full rebuild bit for bit).
* Board dictionaries are recycled on message-free rounds instead of being
  reallocated; a shared immutable empty mapping stands in for decayed
  previous-round boards.

Activation schedulers (see :mod:`repro.sim.schedulers`): a non-default
``scheduler`` decides, per round, which robots get their program resumed.
Robots left inactive keep their public record frozen for the round;
everything else (boards, the round counter, simultaneous movement of the
robots that *did* act) ticks on.  The default (no scheduler) takes the
historical fully synchronous branch untouched, so its behaviour is
byte-identical to the scheduler-free engine.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple, Union

from ..errors import ProtocolViolation, SimulationError
from ..graphs.port_labeled import PortLabeledGraph
from .progress import current_sink as _progress_sink
from .schedulers import (
    Scheduler,
    SchedulerSpec,
    SynchronousScheduler,
    build_scheduler,
    scheduler_rng,
)
from .robot import (
    SETTLED,
    Action,
    ByzantineAPI,
    Move,
    PublicView,
    Robot,
    RobotAPI,
    Sleep,
    Stay,
)
from .trace import Trace

__all__ = ["World"]

ProgramFactory = Callable[[RobotAPI], Iterator[Action]]

#: Sub-round rank (the paper's "robot of rank Y waits until sub-round Y").
_ORDER_KEY = attrgetter("claimed_id", "true_id")
#: Insertion rank — reproduces the robots-dict iteration order inside
#: per-node index lists, so incremental updates match a full rebuild.
_SEQ_KEY = attrgetter("_seq")

#: Shared stand-in for a decayed (empty) previous-round board.  Never
#: mutated by the simulator; treat it as read-only from the outside too.
_EMPTY_BOARD: Dict[int, List[Tuple[int, Any]]] = {}


class World:
    """A running simulation instance.

    Parameters
    ----------
    graph:
        The anonymous port-labeled world graph (connected).
    model:
        ``"weak"`` — Byzantine robots cannot fake IDs (Sections 2 & 3);
        ``"strong"`` — they can (Section 4).
    keep_trace:
        Store full event objects (True) or only counters (False).
    scheduler:
        Activation scheduler: ``None`` (the default — fully synchronous,
        the paper's model), a spec string like ``"semi_synchronous(p=0.5)"``,
        a :class:`~repro.sim.schedulers.SchedulerSpec`, or a scheduler
        callable.  See :mod:`repro.sim.schedulers`.
    scheduler_seed:
        Seeds the scheduler's dedicated RNG stream (conventionally the
        adversary seed — activation timing is adversary power).  Unused
        by the synchronous default.
    """

    #: API classes handed to robot programs; subclasses (the reference
    #: engine) swap in seed-faithful variants without touching this class.
    _api_cls = RobotAPI
    _byzantine_api_cls = ByzantineAPI

    def __init__(
        self,
        graph: PortLabeledGraph,
        model: str = "weak",
        keep_trace: bool = True,
        scheduler: Union[None, str, SchedulerSpec, Scheduler] = None,
        scheduler_seed: int = 0,
    ):
        if model not in ("weak", "strong"):
            raise SimulationError(f"unknown Byzantine model {model!r}")
        self.graph = graph
        self.model = model
        self.robots: Dict[int, Robot] = {}
        self.round = 0
        #: Total program resumptions so far (one per robot per round it
        #: was activated and awake).  Under the synchronous default this
        #: equals live-robot-rounds; schedulers make it a real measure.
        self.activations = 0
        if scheduler is not None:
            built = build_scheduler(scheduler)
            # A synchronous spec collapses to the scheduler-free fast
            # path: same branch, same bytes, zero per-round overhead.
            scheduler = None if isinstance(built, SynchronousScheduler) else built
        self._scheduler = scheduler
        self._scheduler_rng = (
            scheduler_rng(scheduler_seed) if scheduler is not None else None
        )
        self.charged: List[Tuple[str, int]] = []
        self.board_current: Dict[int, List[Tuple[int, Any]]] = {}
        self.board_previous: Dict[int, List[Tuple[int, Any]]] = {}
        self.trace = Trace(keep_events=keep_trace)
        self._by_node: Dict[int, List[Robot]] = {}
        self._order: List[Robot] = []
        self._order_dirty = True
        self._in_step = False
        self._seq_counter = 0

    # ------------------------------------------------------------------ #
    # Population management
    # ------------------------------------------------------------------ #

    def add_robot(
        self,
        true_id: int,
        node: int,
        program_factory: ProgramFactory,
        byzantine: bool = False,
    ) -> Robot:
        """Create a robot and bind its program.

        ``program_factory`` receives the robot's API (a
        :class:`ByzantineAPI` iff ``byzantine``) and must return a
        generator yielding one action per round.
        """
        if true_id in self.robots:
            raise SimulationError(f"duplicate robot ID {true_id}")
        if not (0 <= node < self.graph.n):
            raise SimulationError(f"node {node} out of range")
        robot = Robot(true_id=true_id, node=node, program=iter(()), byzantine=byzantine)
        robot._seq = self._seq_counter
        self._seq_counter += 1
        api = (self._byzantine_api_cls if byzantine else self._api_cls)(self, robot)
        robot.program = program_factory(api)
        self.robots[true_id] = robot
        self._by_node.setdefault(node, []).append(robot)
        self._order_dirty = True
        return robot

    @property
    def honest_ids(self) -> List[int]:
        """True IDs of non-Byzantine robots, ascending."""
        return sorted(i for i, r in self.robots.items() if not r.byzantine)

    @property
    def byzantine_ids(self) -> List[int]:
        """True IDs of Byzantine robots, ascending."""
        return sorted(i for i, r in self.robots.items() if r.byzantine)

    def robots_at(self, node: int) -> Tuple[Robot, ...]:
        """Robots currently located at ``node`` (stable within a round).

        Returns an immutable tuple: the underlying index must never be
        mutated by callers.
        """
        return tuple(self._by_node.get(node) or ())

    # ------------------------------------------------------------------ #
    # Round-start snapshot (lazy)
    # ------------------------------------------------------------------ #

    @property
    def round_start_snapshot(self) -> Dict[int, Tuple[int, PublicView]]:
        """``true_id -> (node, PublicView)`` as of the start of the
        current round.

        Built on demand: within a round, positions are unchanged since the
        round began (movement is simultaneous at round end) and records
        resolve through each robot's copy-on-write ``start_view``.
        """
        rnd = self.round
        return {
            rid: (r.node, r._start_view() if r.start_view_round == rnd else r.view())
            for rid, r in self.robots.items()
        }

    # ------------------------------------------------------------------ #
    # Round execution
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """Execute one synchronous round (sub-rounds + simultaneous moves)."""
        rnd = self.round
        ports = self.graph._ports  # package-internal: skip method dispatch
        trace = self.trace
        keep_events = trace.keep_events
        if self.board_current:  # posts made outside a round are discarded
            self.board_current = {}
        if self._order_dirty:
            self._order = sorted(
                (r for r in self.robots.values() if not r.terminated),
                key=_ORDER_KEY,
            )
            self._order_dirty = False
        order = self._order

        # Activation scheduling: ``None`` (synchronous, or a scheduler
        # answering "everyone") keeps the historical loop byte-identical;
        # otherwise only robots in ``active`` get their program resumed.
        # The scheduler sees the full live roster every round — draws and
        # fairness clocks must not depend on program-internal sleep state.
        scheduler = self._scheduler
        active = (
            None if scheduler is None else scheduler(rnd, order, self._scheduler_rng)
        )

        movers: List[Tuple[Robot, int]] = []
        append_mover = movers.append
        # Fast-forward bookkeeping, tracked in-loop so no extra pass over
        # the population is needed at round end: ``ff_blocked`` means some
        # live robot is guaranteed awake next round; ``ff_min`` is the
        # earliest wake round among dormant robots (-1 = none yet).
        any_live = False
        ff_blocked = False
        ff_min = -1
        self._in_step = True
        try:
            for robot in order:
                su = robot.sleep_until
                if su > rnd:  # dormant this round
                    any_live = True
                    if ff_min < 0 or su < ff_min:
                        ff_min = su
                    continue
                if active is not None and robot.true_id not in active:
                    # Not activated this round: record frozen, program
                    # un-resumed.  It may run next round, so the sleep
                    # fast-forward must never jump over it.
                    any_live = True
                    ff_blocked = True
                    continue
                self.activations += 1
                try:
                    action = next(robot.program)
                except StopIteration:
                    robot.terminated = True
                    self._order_dirty = True
                    continue
                if isinstance(action, Move):
                    if not robot.byzantine and robot.settled_node is not None:
                        raise ProtocolViolation(
                            f"settled honest robot {robot.true_id} attempted to move"
                        )
                    deg = len(ports[robot.node])
                    port = action.port
                    if not (1 <= port <= deg):
                        raise SimulationError(
                            f"robot {robot.true_id} used invalid port {port} "
                            f"at a degree-{deg} node"
                        )
                    append_mover((robot, port))
                    any_live = True
                    ff_blocked = True
                elif isinstance(action, Stay):
                    any_live = True
                    ff_blocked = True
                elif isinstance(action, Sleep):
                    rounds = action.rounds
                    if rounds < 1:
                        raise SimulationError("Sleep must cover at least 1 round")
                    su = rnd + rounds
                    robot.sleep_until = su
                    any_live = True
                    if ff_min < 0 or su < ff_min:
                        ff_min = su
                else:
                    raise SimulationError(
                        f"robot {robot.true_id} yielded {action!r}; expected Move or Stay"
                    )
        finally:
            self._in_step = False

        # Task (ii): simultaneous movement, applied incrementally to the
        # node index (only movers relocate; lists keep insertion rank).
        if movers:
            if not keep_events:
                trace.counters["move"] += len(movers)
            by_node = self._by_node
            touched = set()
            for robot, port in movers:
                src = robot.node
                dest, in_port = ports[src][port - 1]  # port validated above
                if keep_events:
                    trace.record(
                        rnd, "move", robot=robot.true_id, src=src, dst=dest, port=port
                    )
                robot.node = dest
                robot.arrival_port = in_port
                robot.moves_made += 1
                lst = by_node[src]
                lst.remove(robot)
                if not lst:
                    del by_node[src]
                dlst = by_node.get(dest)
                if dlst is None:
                    by_node[dest] = [robot]
                else:
                    dlst.append(robot)
                    touched.add(dest)
            for node in sorted(touched):
                by_node[node].sort(key=_SEQ_KEY)

        # Board decay: this round's board becomes readable for one more
        # round; on message-free rounds the empty dict is recycled.
        board = self.board_current
        if board:
            self.board_previous = board
            self.board_current = {}
        elif self.board_previous:
            self.board_previous = _EMPTY_BOARD

        self.round = nxt = rnd + 1

        # Fast-forward: if every live robot is dormant, jump to the first
        # round anyone wakes in one step.  Equivalent to stepping (dormant
        # robots observe nothing and boards decay to empty after a round).
        # Never under a scheduler: skipped rounds would skip its RNG draws
        # and fairness/outage clocks, changing activation semantics.
        if scheduler is None and any_live and not ff_blocked and ff_min > nxt + 1:
            self.round = ff_min
            self.board_previous = _EMPTY_BOARD

        # Progress observation (read-only; see repro.sim.progress): a
        # sink installed on this thread sees every completed round.  The
        # uninstalled fast path is one thread-local probe.
        sink = _progress_sink()
        if sink is not None:
            sink(self, rnd)

    def run(
        self,
        max_rounds: int,
        until: Optional[Callable[["World"], bool]] = None,
    ) -> bool:
        """Step until all honest robots terminated (or ``until`` fires).

        Returns True if the stop condition was met within ``max_rounds``,
        False if the budget ran out first (callers decide whether that is
        a failure; it usually is).  ``max_rounds`` bounds the simulated
        round counter, not loop iterations (sleep fast-forwarding can
        advance many rounds per step).
        """
        deadline = self.round + max_rounds
        while self.round < deadline:
            if until is not None:
                if until(self):
                    return True
            elif self.all_honest_done():
                return True
            self.step()
        return (until(self) if until is not None else self.all_honest_done())

    def all_honest_done(self) -> bool:
        """True iff every honest robot's program has terminated."""
        return all(r.terminated for r in self.robots.values() if not r.byzantine)

    # ------------------------------------------------------------------ #
    # Oracle-phase support (charged rounds, simulator-side placement)
    # ------------------------------------------------------------------ #

    def charge(self, label: str, rounds: int) -> None:
        """Account ``rounds`` of a phase priced via cited prior work."""
        if rounds < 0:
            raise SimulationError("cannot charge negative rounds")
        self.charged.append((label, rounds))
        self.trace.record(self.round, "charge", label=label, rounds=rounds)

    @property
    def charged_rounds(self) -> int:
        """Total charged (non-simulated) rounds so far."""
        return sum(r for _, r in self.charged)

    @property
    def total_rounds(self) -> int:
        """Simulated + charged rounds — the number benchmarks report."""
        return self.round + self.charged_rounds

    def teleport(self, true_id: int, node: int) -> None:
        """Simulator-side relocation (enacting an oracle phase outcome)."""
        robot = self.robots[true_id]
        src = robot.node
        self.trace.record(self.round, "teleport", robot=true_id, src=src, dst=node)
        robot.node = node
        robot.arrival_port = None
        if node != src:
            self._reindex_robot(robot, src, node)

    # ------------------------------------------------------------------ #
    # Messaging internals (used by RobotAPI)
    # ------------------------------------------------------------------ #

    def post_message(self, node: int, claimed_sender: int, payload: Any) -> None:
        """Append a message to the current round's board at ``node``."""
        self.board_current.setdefault(node, []).append((claimed_sender, payload))

    # ------------------------------------------------------------------ #
    # Inspection helpers
    # ------------------------------------------------------------------ #

    def honest_settled_positions(self) -> Dict[int, Optional[int]]:
        """``true_id -> settled node`` (``None`` = never settled)."""
        return {
            rid: r.settled_node
            for rid, r in self.robots.items()
            if not r.byzantine
        }

    def positions(self) -> Dict[int, int]:
        """Current ``true_id -> node`` for every robot."""
        return {rid: r.node for rid, r in self.robots.items()}

    def _reindex_robot(self, robot: Robot, src: int, dest: int) -> None:
        """Relocate one robot in the node index, preserving insertion rank."""
        by_node = self._by_node
        lst = by_node.get(src)
        if lst is not None:
            try:
                lst.remove(robot)
            except ValueError:  # pragma: no cover - defensive
                pass
            if not lst:
                del by_node[src]
        dlst = by_node.get(dest)
        if dlst is None:
            by_node[dest] = [robot]
        else:
            dlst.append(robot)
            if len(dlst) > 1:
                dlst.sort(key=_SEQ_KEY)

    def _rebuild_index(self) -> None:
        """Full node-index rebuild (reference path; the hot path updates
        incrementally and must stay equivalent to this)."""
        index: Dict[int, List[Robot]] = {}
        for r in self.robots.values():
            index.setdefault(r.node, []).append(r)
        self._by_node = index
