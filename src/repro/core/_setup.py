"""Shared driver plumbing: placements, populations, common validation.

Every theorem driver in :mod:`repro.core` goes through these helpers so
experiment configuration (who is Byzantine, where robots start, which
strategy runs) is uniform across algorithms and sweeps.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError, ReproError
from ..graphs.port_labeled import PortLabeledGraph
from ..sim.ids import assign_ids, validate_ids
from ..sim.schedulers import canonical_scheduler

__all__ = [
    "Population",
    "build_population",
    "make_placement",
    "resolve_scheduler",
    "round_budget",
    "run_world_guarded",
]


def resolve_scheduler(scheduler):
    """Normalise a driver's ``scheduler`` argument.

    Returns ``(scheduler_or_None, canonical_spec)``: the synchronous
    default (``None`` or any spec canonicalising to ``"synchronous"``)
    collapses to ``None`` so the world takes its scheduler-free fast
    path and reports stay byte-identical to the historical ones.
    """
    canon = canonical_scheduler(scheduler)
    return (None if canon == "synchronous" else scheduler), canon


def run_world_guarded(world, max_rounds: int, guarded: bool) -> List[str]:
    """Run a world to its budget; returns extra violation strings.

    With ``guarded`` (a non-default activation scheduler), the paper's
    synchrony assumptions no longer hold, so a timing-induced protocol
    breakdown — any :class:`~repro.errors.ReproError` out of the round
    loop — is *recorded* as a violation for a failed report instead of
    crashing the sweep.  Unguarded runs propagate, as ever: there an
    exception is an engine or program bug.
    """
    if not guarded:
        world.run(max_rounds=max_rounds)
        return []
    try:
        world.run(max_rounds=max_rounds)
    except ReproError as exc:
        return [f"scheduler-induced protocol breakdown: {type(exc).__name__}: {exc}"]
    return []


def round_budget(bound: int, max_rounds: Optional[int]) -> int:
    """The driver's simulated-round budget.

    Every solver computes its own termination ``bound``; an optional
    caller-supplied ``max_rounds`` (a :class:`~repro.scenarios.Scenario`
    round budget) can only *cap* it — the algorithm is finished by its
    bound anyway, so a larger budget never buys extra rounds.  A run that
    exhausts a smaller budget reports ``success=False`` rather than
    raising.
    """
    if max_rounds is None:
        return bound
    if max_rounds < 0:
        raise ConfigurationError(f"round budget must be >= 0, got {max_rounds}")
    return min(bound, max_rounds)


def make_placement(
    graph: PortLabeledGraph,
    ids: Sequence[int],
    start: Union[str, int, Dict[int, int]],
    seed: int = 0,
) -> Dict[int, int]:
    """Resolve a start specification into ``true_id -> node``.

    * ``"arbitrary"`` — independent uniform nodes (robots may share).
    * ``"gathered"`` or an ``int`` node — everyone on one node.
    * ``"spread"`` — distinct nodes round-robin (needs ``len(ids) <= n``).
    * explicit dict — used as-is after validation.
    """
    n = graph.n
    if isinstance(start, dict):
        for rid, node in start.items():
            if not (0 <= node < n):
                raise ConfigurationError(f"placement of robot {rid}: node {node} out of range")
        missing = set(ids) - set(start)
        if missing:
            raise ConfigurationError(f"placement missing robots: {sorted(missing)}")
        return {rid: start[rid] for rid in ids}
    if isinstance(start, int):
        if not (0 <= start < n):
            raise ConfigurationError(f"gather node {start} out of range")
        return {rid: start for rid in ids}
    if start == "gathered":
        return {rid: 0 for rid in ids}
    if start == "arbitrary":
        rng = np.random.default_rng(seed)
        return {rid: int(rng.integers(0, n)) for rid in ids}
    if start == "spread":
        if len(ids) > n:
            raise ConfigurationError("spread placement needs at most n robots")
        return {rid: i for i, rid in enumerate(sorted(ids))}
    raise ConfigurationError(f"unknown start spec {start!r}")


class Population:
    """Resolved robot population for one run.

    Attributes
    ----------
    ids / honest_ids / byz_ids:
        All, honest-only, Byzantine-only true IDs (ascending).
    placement:
        ``true_id -> start node``.
    adversary:
        The :class:`~repro.byzantine.adversary.Adversary` controlling the
        corrupted robots.
    """

    def __init__(
        self,
        ids: List[int],
        byz_ids: List[int],
        placement: Dict[int, int],
        adversary: Adversary,
    ):
        self.ids = sorted(ids)
        self.byz_ids = sorted(byz_ids)
        self.honest_ids = sorted(set(ids) - set(byz_ids))
        self.placement = placement
        self.adversary = adversary

    @property
    def f(self) -> int:
        return len(self.byz_ids)


def build_population(
    graph: PortLabeledGraph,
    f: int,
    start: Union[str, int, Dict[int, int]] = "arbitrary",
    adversary: Optional[Adversary] = None,
    n_robots: Optional[int] = None,
    byz_placement: str = "lowest",
    id_seed: Optional[int] = None,
    seed: int = 0,
) -> Population:
    """Standard population for the paper's setting: ``n`` robots, ``f`` Byzantine.

    ``n_robots`` defaults to ``graph.n`` (the paper's primary regime);
    Section 5 experiments override it.
    """
    k = n_robots if n_robots is not None else graph.n
    ids = assign_ids(k, n_nodes=graph.n, seed=id_seed)
    validate_ids(ids, graph.n)
    # The placement RNG is the adversary's: who gets corrupted is the
    # adversary's choice, so Adversary(seed=...) alone pins it (sweeps
    # pass adversaries seeded with the run seed, which keeps their
    # records unchanged).
    adversary = adversary if adversary is not None else Adversary(seed=seed)
    byz_ids = adversary.choose_ids(ids, f, placement=byz_placement)
    placement = make_placement(graph, ids, start, seed=seed)
    return Population(
        ids=ids,
        byz_ids=byz_ids,
        placement=placement,
        adversary=adversary,
    )
