"""Fixture: handlers exception-hygiene must catch."""


def run(task):
    try:
        return task()
    except Exception:
        return None


def run_bare(task):
    try:
        return task()
    except:  # noqa: E722
        return None


def run_tuple(task):
    try:
        return task()
    except (ValueError, BaseException):
        return None
