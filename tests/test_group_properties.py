"""Property tests: group-based theorems under randomized adversary draws.

Hypothesis draws the Byzantine subset, a per-robot strategy assignment,
and the graph; the theorems must hold every time.  This is the widest
net over the believe-threshold machinery (Sections 3.2–4).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.byzantine import Adversary, STRONG_STRATEGIES, WEAK_STRATEGIES
from repro.core import solve_theorem4, solve_theorem6
from repro.graphs import random_connected


@st.composite
def weak_assignment(draw, f_max):
    f = draw(st.integers(0, f_max))
    ids = draw(
        st.lists(st.integers(1, 12), min_size=f, max_size=f, unique=True)
    )
    strategies = draw(
        st.lists(st.sampled_from(WEAK_STRATEGIES), min_size=f, max_size=f)
    )
    return dict(zip(ids, strategies))


@given(
    seed=st.integers(0, 150),
    data=st.data(),
)
@settings(max_examples=25)
def test_theorem4_random_weak_adversaries(seed, data):
    g = random_connected(12, seed=seed)
    f_max = 12 // 3 - 1
    assignment = data.draw(weak_assignment(f_max))
    f = len(assignment)
    # Corrupt exactly the drawn IDs via explicit placement: remap the drawn
    # IDs onto the actual f lowest/highest/random choice by strategy dict.
    adv = Adversary(
        {rid: s for rid, s in zip(range(1, f + 1), assignment.values())},
        seed=seed,
    )
    rep = solve_theorem4(g, f=f, adversary=adv, seed=seed, byz_placement="lowest")
    assert rep.success, (assignment, rep.violations)


@given(
    seed=st.integers(0, 150),
    strategy_pair=st.tuples(
        st.sampled_from(STRONG_STRATEGIES), st.sampled_from(STRONG_STRATEGIES)
    ),
    placement=st.sampled_from(["lowest", "highest", "random"]),
)
@settings(max_examples=25)
def test_theorem6_random_strong_adversaries(seed, strategy_pair, placement):
    g = random_connected(12, seed=seed)
    f = 12 // 4 - 1  # = 2
    adv = Adversary({1: strategy_pair[0], 2: strategy_pair[1]}, seed=seed)
    rep = solve_theorem6(g, f=f, adversary=adv, seed=seed, byz_placement=placement)
    assert rep.success, (strategy_pair, placement, rep.violations)


@given(seed=st.integers(0, 100), f=st.integers(0, 2))  # n=10: f_max = 2
@settings(max_examples=20)
def test_theorem4_settlements_are_a_permutation(seed, f):
    """Beyond success: with n robots on n nodes and f Byzantine, the
    honest robots occupy n − f distinct nodes (full packing is not
    required by Definition 1 but distinctness is)."""
    g = random_connected(10, seed=seed)
    rep = solve_theorem4(g, f=f, adversary=Adversary("squatter", seed=seed), seed=seed)
    assert rep.success
    nodes = [v for v in rep.settled.values() if v is not None]
    assert len(nodes) == 10 - f
    assert len(set(nodes)) == len(nodes)
