"""Robots, their public records, actions, and the API programs see.

The simulator enforces the paper's information model (Section 1.1): an
honest robot program can observe *only*

* its own ID and the known value of ``n``,
* the degree of its current node and the port it arrived through,
* the public records (claimed ID, state, flag) of co-located robots,
* messages posted at its node (same round by earlier sub-round actors,
  or the full board of the previous round).

It acts by yielding :class:`Move` or :class:`Stay`; movement is applied
simultaneously at the end of the round (the model's task (ii)).

Byzantine robots run strategy programs bound to a :class:`ByzantineAPI`,
which additionally exposes the whole :class:`~repro.sim.world.World`
(worst-case adaptive adversary) and — in the *strong* model only — the
power to fake the claimed ID (Section 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Any, Iterator, List, Optional, Tuple

from ..errors import ProtocolViolation, SimulationError

__all__ = [
    "TOBESETTLED",
    "SETTLED",
    "Move",
    "Stay",
    "Sleep",
    "Action",
    "PublicView",
    "Robot",
    "RobotAPI",
    "ByzantineAPI",
]

#: The two robot states of Section 2.2.
TOBESETTLED = "tobeSettled"
SETTLED = "Settled"

#: Sort key for view lists (module-level: no per-call closure allocation).
_CLAIMED_KEY = attrgetter("claimed_id")


@dataclass(frozen=True)
class Move:
    """End the round by crossing the edge at the given local port."""

    port: int


@dataclass(frozen=True)
class Stay:
    """End the round without moving."""


@dataclass(frozen=True)
class Sleep:
    """End the round without moving, and stay dormant for ``rounds`` rounds.

    Semantically identical to yielding :class:`Stay` ``rounds`` times with
    no observations in between (public record frozen, no messages posted).
    Exists so that protocol phases with fixed slot lengths (the paper's
    "wait at the start node until the next stage begins", footnote 11)
    don't cost one generator resume per idle round; when *every* robot is
    asleep the scheduler fast-forwards in one jump.
    """

    rounds: int


Action = object  # Move | Stay | Sleep — kept loose for isinstance dispatch.


@dataclass(frozen=True)
class PublicView:
    """What co-located robots can see of a robot in a given instant.

    ``claimed_id`` equals the true ID for honest and weak-Byzantine robots;
    strong Byzantine robots choose it freely each round (Section 4).
    """

    claimed_id: int
    state: str
    flag: int


class Robot:
    """Simulator-side robot record.  Programs never touch this directly."""

    __slots__ = (
        "true_id",
        "node",
        "arrival_port",
        "byzantine",
        "claimed_id",
        "state",
        "flag",
        "program",
        "terminated",
        "settled_node",
        "moves_made",
        "pending_action",
        "sleep_until",
        "_seq",
        "_view_cache",
        "start_view",
        "start_view_round",
        "start_claimed",
        "start_state",
        "start_flag",
    )

    def __init__(
        self,
        true_id: int,
        node: int,
        program: Iterator[Action],
        byzantine: bool,
    ):
        self.true_id = true_id
        self.node = node
        self.arrival_port: Optional[int] = None
        self.byzantine = byzantine
        self.claimed_id = true_id
        self.state = TOBESETTLED
        self.flag = 0
        self.program = program
        self.terminated = False
        self.settled_node: Optional[int] = None
        self.moves_made = 0
        self.pending_action: Optional[Action] = None
        self.sleep_until = 0  # robot is dormant while world.round < sleep_until
        self._seq = 0  # world-assigned insertion rank (index ordering)
        self._view_cache: Optional[PublicView] = None
        # Copy-on-write round-start record: raw fields captured just
        # before the first public-record mutation of a round (allocation
        # free); the PublicView is materialised lazily on first read.
        # While ``start_view_round`` lags the current round the record is
        # unchanged since the round began and the live view doubles as
        # the round-start view.
        self.start_view: Optional[PublicView] = None
        self.start_view_round = -1
        self.start_claimed = true_id
        self.start_state = self.state
        self.start_flag = 0

    def view(self) -> PublicView:
        """Snapshot of this robot's public record (cached until it changes)."""
        v = self._view_cache
        if v is None:
            v = PublicView(claimed_id=self.claimed_id, state=self.state, flag=self.flag)
            self._view_cache = v
        return v

    def _touch_record(self, world: "World") -> None:  # noqa: F821 - forward ref
        """Pre-mutation hook for the public record (claimed ID, state, flag).

        First mutation within a round copies the raw record fields as the
        round-start state (copy-on-write, no allocation); every mutation
        invalidates the cached live view.  Mutations outside a round
        belong to the upcoming round's start state — no capture then.
        """
        if world._in_step and self.start_view_round != world.round:
            self.start_view_round = world.round
            self.start_claimed = self.claimed_id
            self.start_state = self.state
            self.start_flag = self.flag
            self.start_view = self._view_cache  # may be None: built on read
        self._view_cache = None

    def _start_view(self) -> PublicView:
        """The round-start view, materialised on demand (only valid when
        ``start_view_round`` equals the current round)."""
        v = self.start_view
        if v is None:
            v = PublicView(
                claimed_id=self.start_claimed,
                state=self.start_state,
                flag=self.start_flag,
            )
            self.start_view = v
        return v


class RobotAPI:
    """The honest robot's window into the world.

    One instance per robot, handed to its program generator.  All methods
    are safe to call any number of times within the robot's sub-round.
    """

    __slots__ = ("_world", "_robot")

    def __init__(self, world: "World", robot: Robot):  # noqa: F821 - forward ref
        self._world = world
        self._robot = robot

    # -- identity & global knowledge the model grants ------------------- #

    @property
    def id(self) -> int:
        """This robot's own (true) ID."""
        return self._robot.true_id

    @property
    def n(self) -> int:
        """Number of graph nodes — known to all robots (Section 1.1)."""
        return self._world.graph.n

    @property
    def round(self) -> int:
        """Current round number (synchronous system: globally shared)."""
        return self._world.round

    # -- local observation ---------------------------------------------- #

    def degree(self) -> int:
        """Degree of (== number of ports at) the current node."""
        return len(self._world.graph._ports[self._robot.node])

    @property
    def arrival_port(self) -> Optional[int]:
        """Port through which this robot entered its current node.

        ``None`` before the first move (initial placement has no port).
        """
        return self._robot.arrival_port

    def colocated(self) -> List[PublicView]:
        """Live public records of other robots at this node, sorted by
        claimed ID.  "Live" = including updates made earlier this round by
        robots with smaller sub-round rank (the paper's sub-round rule)."""
        me = self._robot
        views = [
            r.view()
            for r in self._world._by_node.get(me.node, ())
            if r is not me
        ]
        views.sort(key=_CLAIMED_KEY)
        return views

    def colocated_at_round_start(self) -> List[PublicView]:
        """Public records of co-located robots as of the *start* of this
        round (after last round's movement, before anyone's sub-round).

        This is the paper's "``S_s(v)`` and ``S_tbs(v)`` … in round ``t``"
        snapshot; comparing it with :meth:`colocated` tells a robot who
        "changed its state to Settled" during the current round.

        Positions are stable within a round (movement is simultaneous at
        round end), so only the *records* need round-start resolution: a
        copy-on-write ``start_view`` is served for robots whose record
        changed earlier this round, the (cached) live view otherwise.
        """
        me = self._robot
        world = self._world
        rnd = world.round
        views = []
        for r in world._by_node.get(me.node, ()):
            if r is me:
                continue
            views.append(r._start_view() if r.start_view_round == rnd else r.view())
        views.sort(key=_CLAIMED_KEY)
        return views

    # -- public record updates ------------------------------------------ #

    def set_flag(self, value: int) -> None:
        """Publish the 0/1 intent flag of Section 2.2."""
        if value not in (0, 1):
            raise ProtocolViolation("flag must be 0 or 1")
        me = self._robot
        me._touch_record(self._world)
        me.flag = value

    def settle(self) -> None:
        """Settle at the current node: state := Settled, forever.

        The simulator records the settle position for validation; an honest
        robot must never move nor change state afterwards (enforced).
        """
        me = self._robot
        if me.state == SETTLED and me.settled_node != me.node:
            raise ProtocolViolation("honest robot attempted to re-settle elsewhere")
        world = self._world
        me._touch_record(world)
        me.state = SETTLED
        me.settled_node = me.node
        trace = world.trace
        if trace.keep_events:
            trace.record(world.round, "settle", robot=me.true_id, node=me.node)
        else:
            trace.bump("settle")

    # -- messaging ------------------------------------------------------- #

    def say(self, payload: Any) -> None:
        """Post a message on the current node's board for this round."""
        me = self._robot
        board = self._world.board_current
        lst = board.get(me.node)
        if lst is None:
            board[me.node] = [(me.claimed_id, payload)]
        else:
            lst.append((me.claimed_id, payload))

    def messages(self) -> List[Tuple[int, Any]]:
        """Messages posted at this node *this* round so far
        (i.e. by robots of smaller sub-round rank), as
        ``(claimed_sender_id, payload)`` pairs."""
        return list(self._world.board_current.get(self._robot.node, ()))

    def messages_prev(self) -> List[Tuple[int, Any]]:
        """The complete message board of the previous round at this node.

        Use this when a protocol step needs *everyone's* message regardless
        of ID order (costs one round of latency; see DESIGN.md §3)."""
        return list(self._world.board_previous.get(self._robot.node, ()))

    # -- misc ------------------------------------------------------------ #

    def log(self, kind: str, **data: Any) -> None:
        """Emit a trace event (observability only — no protocol effect)."""
        self._world.trace.record(self._world.round, kind, robot=self._robot.true_id, **data)


class ByzantineAPI(RobotAPI):
    """API handed to Byzantine strategy programs.

    Adds omniscient world access (worst-case adversary) and, in the strong
    model, ID faking.  Weak Byzantine robots may lie, squat, move and spam
    arbitrarily — but their claimed ID is pinned by the simulator
    (Section 1.1, following Dieudonné–Pelc–Peleg [24]).
    """

    __slots__ = ()

    @property
    def world(self) -> "World":  # noqa: F821
        """Full read access to the simulator state (adaptive adversary)."""
        return self._world

    def set_state(self, state: str) -> None:
        """Publish an arbitrary state string (lie freely)."""
        self._robot._touch_record(self._world)
        self._robot.state = state

    def set_claimed_id(self, claimed: int) -> None:
        """Fake the ID in the public record — strong Byzantine only."""
        if self._world.model != "strong":
            raise SimulationError(
                "ID faking requires the strong Byzantine model (got weak)"
            )
        if claimed != self._robot.claimed_id:
            self._robot._touch_record(self._world)
            self._robot.claimed_id = claimed
            self._world._order_dirty = True  # sub-round rank changed

    def mark_settled_record(self, node_hint: Optional[int] = None) -> None:
        """Record a *claimed* settle (no honest bookkeeping) — pure lie."""
        self._robot._touch_record(self._world)
        self._robot.state = SETTLED
