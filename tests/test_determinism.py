"""Reproducibility tests: every driver is a pure function of its seeds.

Determinism is not a convenience here — Theorem 8's proof *requires* it
(Byzantine robots replay an execution), and the paper's model is
deterministic throughout.  These tests pin the property for every
algorithm entry point.
"""

import pytest

from repro.byzantine import Adversary
from repro.baselines import solve_dfs_baseline, solve_random_baseline, solve_ring_dispersion
from repro.core import (
    solve_k_robots,
    solve_theorem1,
    solve_theorem2,
    solve_theorem3,
    solve_theorem4,
    solve_theorem5,
    solve_theorem6,
    solve_theorem7,
)
from repro.graphs import random_connected


def _twice(fn):
    a = fn()
    b = fn()
    assert a.success == b.success
    assert a.settled == b.settled
    assert a.rounds_simulated == b.rounds_simulated
    assert a.rounds_charged == b.rounds_charged
    return a


@pytest.fixture(scope="module")
def g():
    return random_connected(8, seed=5)


class TestTheoremDeterminism:
    def test_theorem1(self, g):
        _twice(lambda: solve_theorem1(g, f=4, adversary=Adversary("random_walker", seed=3), seed=9))

    def test_theorem2(self, g):
        _twice(lambda: solve_theorem2(g, f=3, adversary=Adversary("ghost_squatter", seed=3), seed=9))

    def test_theorem3(self, g):
        _twice(lambda: solve_theorem3(g, f=3, adversary=Adversary("random_walker", seed=3), seed=9))

    def test_theorem4(self, g):
        _twice(lambda: solve_theorem4(g, f=1, adversary=Adversary("stalker", seed=3), seed=9))

    def test_theorem5(self, g):
        _twice(lambda: solve_theorem5(g, f=1, adversary=Adversary("decoy_token", seed=3), seed=9))

    def test_theorem6(self, g):
        _twice(lambda: solve_theorem6(g, f=1, adversary=Adversary("id_cycler", seed=3), seed=9))

    def test_theorem7(self, g):
        _twice(lambda: solve_theorem7(g, f=1, adversary=Adversary("impersonator", seed=3), seed=9))

    def test_k_robots(self, g):
        _twice(lambda: solve_k_robots(g, k=6, f=2, adversary=Adversary("squatter", seed=3), seed=9))


class TestBaselineDeterminism:
    def test_dfs(self, g):
        _twice(lambda: solve_dfs_baseline(g, k=12, cap=2, seed=4))

    def test_ring(self):
        _twice(lambda: solve_ring_dispersion(9, f=4, adversary=Adversary("random_walker", seed=2), seed=4))

    def test_random_baseline(self, g):
        _twice(lambda: solve_random_baseline(g, f=2, adversary=Adversary("squatter", seed=2), seed=4))


class TestSeedSensitivity:
    def test_different_seeds_differ_somewhere(self, g):
        """Not a hard requirement, but placement seeds should actually
        vary placements (guards against ignored-seed plumbing bugs)."""
        reports = [
            solve_theorem1(g, f=0, seed=s, start="arbitrary") for s in range(4)
        ]
        settlements = {tuple(sorted(r.settled.items())) for r in reports}
        assert len(settlements) > 1
