"""Port-preserving isomorphism and canonical forms for robot maps.

The paper's map-majority steps (Sections 3.1–3.3) require robots to decide
whether two candidate maps "are the same map".  For *rooted* port-labeled
graphs this is easy and exact: a deterministic traversal from the root that
always explores ports in numeric order assigns every node a canonical index
(rooted port-labeled graphs are **rigid**: ports give each node at most one
image under any root-preserving isomorphism).  The resulting encoding is a
complete invariant:

    two rooted maps are port-preserving isomorphic  ⟺  equal encodings.

Unrooted isomorphism is reduced to rooted: fix any root in one graph and
try all roots of the other (``O(n · m)`` — fine at simulation scale).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from .port_labeled import PortLabeledGraph

__all__ = [
    "canonical_form",
    "canonical_forms_all_roots",
    "rooted_isomorphic",
    "are_isomorphic",
    "find_isomorphism",
]

CanonicalForm = Tuple[Tuple[int, int, int, int], ...]


def canonical_form(graph: PortLabeledGraph, root: int) -> CanonicalForm:
    """Canonical encoding of ``graph`` rooted at ``root``.

    BFS from the root, scanning ports in increasing order; nodes get
    canonical indices in discovery order.  The encoding lists, for every
    node in canonical order and every port in order, the tuple
    ``(canon(u), p, canon(v), q)``.

    Because the traversal is fully determined by the port structure, two
    rooted graphs produce equal encodings iff they are isomorphic by an
    isomorphism mapping root to root and preserving all port numbers.
    """
    canon: Dict[int, int] = {root: 0}
    order: List[int] = [root]
    queue = deque([root])
    while queue:
        u = queue.popleft()
        for v, _ in graph.port_row(u):
            if v not in canon:
                canon[v] = len(canon)
                order.append(v)
                queue.append(v)
    rows: List[Tuple[int, int, int, int]] = []
    for u in order:
        cu = canon[u]
        for p, (v, q) in enumerate(graph.port_row(u), start=1):
            rows.append((cu, p, canon[v], q))
    return tuple(rows)


def canonical_forms_all_roots(graph: PortLabeledGraph) -> List[CanonicalForm]:
    """Canonical encodings of ``graph`` for every choice of root."""
    return [canonical_form(graph, r) for r in range(graph.n)]


def rooted_isomorphic(
    g1: PortLabeledGraph, root1: int, g2: PortLabeledGraph, root2: int
) -> bool:
    """Port-preserving isomorphism test with prescribed root images."""
    if g1.n != g2.n or g1.m != g2.m:
        return False
    return canonical_form(g1, root1) == canonical_form(g2, root2)


def are_isomorphic(g1: PortLabeledGraph, g2: PortLabeledGraph) -> bool:
    """Port-preserving isomorphism test (any root mapping)."""
    if g1.n != g2.n or g1.m != g2.m:
        return False
    if g1.n == 0:
        return True
    target = canonical_form(g1, 0)
    return any(canonical_form(g2, r) == target for r in range(g2.n))


def find_isomorphism(
    g1: PortLabeledGraph, root1: int, g2: PortLabeledGraph, root2: int
) -> Optional[Dict[int, int]]:
    """Exhibit the (unique) root-preserving port isomorphism, or ``None``.

    Uniqueness: with ports fixed, the image of the root determines the
    image of every node (follow any port path).  Used by tests to verify
    that maps produced by the token protocol really match the world graph,
    node by node.
    """
    if g1.n != g2.n or g1.m != g2.m:
        return None
    mapping: Dict[int, int] = {root1: root2}
    queue = deque([root1])
    while queue:
        u = queue.popleft()
        w = mapping[u]
        if g1.degree(u) != g2.degree(w):
            return None
        # Degrees were checked equal above, so the rows zip exactly.
        for (v1, q1), (v2, q2) in zip(g1.port_row(u), g2.port_row(w)):
            if q1 != q2:
                return None
            if v1 in mapping:
                if mapping[v1] != v2:
                    return None
            else:
                mapping[v1] = v2
                queue.append(v1)
    # Surjectivity check (connected graphs: mapping covers everything).
    if len(mapping) != g1.n:
        return None
    return mapping
