#!/usr/bin/env python3
"""Theorem 8, executed: why too many Byzantine robots make dispersion
impossible when k robots share n nodes.

Walks through the paper's two-execution argument on a concrete instance
and prints the machine-checked contradiction.

Run:  python examples/impossibility_demo.py
"""

from repro.analysis import render_table
from repro.core import demonstrate_impossibility, impossibility_applies
from repro.graphs import random_connected

graph = random_connected(6, seed=2)
n = graph.n
k = 2 * n  # twice as many robots as nodes

print(f"Instance: n={n} nodes, k={k} robots.")
print(f"Modified dispersion cap: at most ceil((k-f)/n) honest robots per node.\n")

rows = []
for f in range(n - 2, n + 3):
    rep = demonstrate_impossibility(graph, k=k, f=f, seed=1)
    rows.append(
        {
            "f": f,
            "ceil(k/n)": rep.cap_all,
            "ceil((k-f)/n)": rep.cap_required,
            "theorem applies": rep.applies,
            "violation shown": rep.violated,
            "honest at hotspot": rep.honest_at_crowded,
        }
    )

print(render_table(rows, title="Sweeping f across the impossibility boundary"))

rep = demonstrate_impossibility(graph, k=k, f=n, seed=1)
print(
    f"""
The construction, spelled out for f={n}:
  execution 1: all {k} robots honest; node {rep.crowded_node} ends with
               {rep.cap_all} settlers (pigeonhole: k > n).
  execution 2: keep those {rep.cap_all} robots honest; corrupt {n} others and
               have them *behave exactly as before* (legal for weak
               Byzantine robots).  Determinism makes the executions
               indistinguishable, so the same {rep.cap_all} honest robots pile
               onto node {rep.crowded_node} — exceeding the cap of {rep.cap_required}.
  => no deterministic algorithm can satisfy the modified Definition 1
     whenever ceil(k/n) > ceil((k-f)/n).   (Theorem 8)
"""
)
assert rep.violated
