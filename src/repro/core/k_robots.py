"""Byzantine dispersion with ``k ≤ n`` robots (Section 5's setting, solvable side).

The paper's primary setting has exactly ``n`` robots; Section 5 studies
general ``k`` and proves impossibility when ``⌈k/n⌉ > ⌈(k−f)/n⌉``.  On
the *solvable* side of that line — in particular any ``k ≤ n`` — the
paper's machinery applies unchanged: Dispersion-Using-Map's pigeonhole
argument (Lemma 4) only needs the robot count to not exceed ``n``.

This driver runs the Theorem 1 pipeline with ``k`` robots: private
quotient-graph maps (so it inherits Theorem 1's graph-class restriction
and its full ``f ≤ k − 1`` tolerance).  It rounds out the library for the
``k < n`` regime most prior dispersion work ([29] and friends) studies,
and gives the impossibility experiments their solvable-side control.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..byzantine.adversary import Adversary
from ..errors import ConfigurationError
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.quotient import is_quotient_isomorphic
from ..sim.ids import assign_ids, validate_ids
from ..sim.robot import RobotAPI
from ..sim.scheduler import RunReport, finish_report
from ..sim.world import World
from ._setup import make_placement
from .dispersion_using_map import dispersion_rounds_bound, dispersion_using_map
from .find_map import find_map_rounds, private_quotient_map

__all__ = ["solve_k_robots"]


def solve_k_robots(
    graph: PortLabeledGraph,
    k: int,
    f: int = 0,
    adversary: Optional[Adversary] = None,
    start: Union[str, int, Dict[int, int]] = "arbitrary",
    seed: int = 0,
    byz_placement: str = "lowest",
    keep_trace: bool = True,
) -> RunReport:
    """Disperse ``k ≤ n`` robots, up to ``f ≤ k − 1`` of them weak Byzantine.

    Same structure and guarantees as :func:`~repro.core.solve_theorem1`;
    requires the quotient-isomorphic graph class.  For ``k > n`` see
    :func:`~repro.core.demonstrate_impossibility` (the regime is
    unsolvable once ``⌈k/n⌉ > ⌈(k−f)/n⌉``) and the capacity DFS baseline.
    """
    n = graph.n
    if not (1 <= k <= n):
        raise ConfigurationError(
            f"solve_k_robots handles 1 <= k <= n; got k={k}, n={n}"
        )
    if not (0 <= f <= k - 1):
        raise ConfigurationError(f"tolerates 0 <= f <= k-1, got f={f}")
    if not graph.is_connected():
        raise ConfigurationError("dispersion requires a connected graph")
    if not is_quotient_isomorphic(graph):
        raise ConfigurationError(
            "requires the quotient graph to be isomorphic to the graph (Theorem 1 class)"
        )
    ids = assign_ids(k, n_nodes=n)
    validate_ids(ids, n)
    adversary = adversary if adversary is not None else Adversary(seed=seed)
    byz = set(adversary.choose_ids(ids, f, placement=byz_placement))
    placement = make_placement(graph, ids, start, seed=seed)

    world = World(graph, model="weak", keep_trace=keep_trace)
    world.charge("find_map", find_map_rounds(n, graph.m))
    for rid in ids:
        node = placement[rid]
        if rid in byz:
            world.add_robot(rid, node, adversary.program_factory(rid), byzantine=True)
        else:
            map_rng = np.random.default_rng((seed, rid, 0xD15))
            map_graph, map_root = private_quotient_map(graph, node, map_rng)

            def factory(api: RobotAPI, _m=map_graph, _r=map_root):
                return dispersion_using_map(api, _m, _r)

            world.add_robot(rid, node, factory, byzantine=False)
    world.run(max_rounds=dispersion_rounds_bound(n) + 4)
    return finish_report(
        world,
        algorithm="k_robots",
        k=k,
        f=f,
        n=n,
        strategy=adversary.describe(),
        byz_ids=sorted(byz),
    )
