"""The declarative Scenario API: canonical keys, serialization, grids.

The contracts under test:

* ``Scenario.key()`` is *definitionally* the run-store cell key of the
  compiled cell — the scenario that describes a cell addresses its cache
  entry (pinned against hand-built ``SweepCell``s and against a golden
  key file, so an accidental canonicalisation change is caught even if
  both sides drift together);
* ``to_dict → from_dict → key`` is a fixed point, including through an
  actual JSON byte round-trip, for spec-built and hand-built graphs;
* ``grid(...)`` expansion is deterministic with a documented axis order
  (rows, graphs, strategies, f, seeds — rows outermost);
* the four legacy sweeps re-expressed as grid presets produce
  byte-identical records in serial, parallel, and warm-store modes, and
  default-valued scenarios hit cells a legacy sweep wrote;
* round budgets and non-default placements change behaviour AND keys,
  while default values leave keys bit-identical to the PR-3 form;
* ``repro scenario FILE.json`` hits the same store cell as the
  equivalent ``repro sweep`` invocation.
"""

import json
import pathlib

import pytest

from repro.analysis import RunStore, run_table1, scaling_sweep, strategy_matrix, tolerance_sweep
from repro.analysis.experiments import SweepCell, cell_key_of
from repro.cli import main as cli_main
from repro.core import TABLE1, get_row
from repro.errors import ConfigurationError
from repro.graphs import PortLabeledGraph, random_connected, ring, spec_of
from repro.scenarios import (
    ResultSet,
    Scenario,
    ScenarioGrid,
    grid,
    run_scenarios,
    scaling_grid,
    strategy_matrix_grid,
    table1_grid,
    tolerance_grid,
)

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "scenario_golden_keys.json"


@pytest.fixture(scope="module")
def g():
    return random_connected(8, seed=5)


@pytest.fixture()
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestNormalization:
    def test_algorithm_forms_converge(self, g):
        base = Scenario(algorithm=4, graph=g)
        assert Scenario(algorithm="4", graph=g) == base
        # Row 4 implements Theorem 3: name resolution is by *theorem*.
        assert Scenario(algorithm="theorem3", graph=g) == base
        assert Scenario(algorithm="solve_theorem3", graph=g) == base
        assert Scenario(algorithm=get_row(4), graph=g) == base
        assert base.serial == 4 and base.row is get_row(4)

    def test_unknown_algorithm_rejected(self, g):
        for bad in (0, 8, "theorem99", "nope", 2.5):
            with pytest.raises(ConfigurationError):
                Scenario(algorithm=bad, graph=g)

    def test_hand_built_row_rejected(self, g):
        """A non-registry Table1Row must not be silently swapped for the
        registry row sharing its serial (wrong solver, wrong cache key)."""
        import dataclasses

        hand_built = dataclasses.replace(
            get_row(4), solver=lambda *a, **kw: (_ for _ in ()).throw(AssertionError)
        )
        with pytest.raises(ConfigurationError, match="not the registry's"):
            Scenario(algorithm=hand_built, graph=g)

    def test_invalid_fields_rejected(self, g):
        with pytest.raises(ConfigurationError):
            Scenario(algorithm=5, graph=g, kind="nope")
        with pytest.raises(ConfigurationError):
            Scenario(algorithm=5, graph=g, strategy="teleporter")
        with pytest.raises(ConfigurationError):
            Scenario(algorithm=5, graph=g, placement="middle")
        with pytest.raises(ConfigurationError):
            Scenario(algorithm=5, graph=g, f="half")
        with pytest.raises(ConfigurationError):
            Scenario(algorithm=5, graph=g, rounds=-1)
        with pytest.raises(ConfigurationError):
            Scenario(algorithm=5, graph="not a graph")

    def test_f_none_normalises_to_max(self, g):
        assert Scenario(algorithm=5, graph=g, f=None).f == "max"

    def test_resolved_f_per_kind(self, g):
        bound = get_row(5).f_max(g)
        assert Scenario(algorithm=5, graph=g, f="max").resolved_f() is None
        assert Scenario(algorithm=5, graph=g, f="max",
                        kind="tolerance").resolved_f() == bound
        assert Scenario(algorithm=5, graph=g, f=2, kind="scaling").resolved_f() == 2


class TestKeyIsTheStoreKey:
    def test_definitional_equality(self, g):
        s = Scenario(algorithm=5, graph=g, strategy="idle", seed=1)
        assert s.key() == cell_key_of(SweepCell("table1", 5, g, "idle", 1, None))

    def test_spec_and_graph_payloads_key_identically(self, g):
        spec = spec_of(g)
        assert Scenario(algorithm=5, graph=spec).key() == \
            Scenario(algorithm=5, graph=g).key()
        # ... and the two payload forms compare equal (same work).
        assert Scenario(algorithm=5, graph=spec) == Scenario(algorithm=5, graph=g)

    def test_default_extras_leave_key_bit_identical(self, g):
        """placement='lowest' and rounds=None canonicalise out of the
        hash: a default scenario addresses the cell a PR-3 sweep wrote."""
        legacy = cell_key_of(SweepCell("table1", 5, g, "squatter", 0, None))
        assert Scenario(algorithm=5, graph=g, strategy="squatter").key() == legacy

    def test_non_default_extras_change_key(self, g):
        base = Scenario(algorithm=5, graph=g)
        assert Scenario(algorithm=5, graph=g, placement="highest").key() != base.key()
        assert Scenario(algorithm=5, graph=g, rounds=50).key() != base.key()
        assert Scenario(algorithm=5, graph=g, placement="random").key() != \
            Scenario(algorithm=5, graph=g, placement="highest").key()

    def test_every_field_is_load_bearing(self, g):
        base = Scenario(algorithm=5, graph=g)
        variants = [
            Scenario(algorithm=4, graph=g),
            Scenario(algorithm=5, graph=random_connected(8, seed=6)),
            Scenario(algorithm=5, graph=g, strategy="idle"),
            Scenario(algorithm=5, graph=g, f=1, kind="tolerance"),
            Scenario(algorithm=5, graph=g, seed=1),
            Scenario(algorithm=5, graph=g, f=2),
        ]
        keys = {s.key() for s in variants}
        assert base.key() not in keys
        assert len(keys) == len(variants)

    def test_golden_keys_stable(self):
        """Key canonicalisation must not drift across refactors: every
        golden scenario deserializes to its recorded key."""
        golden = json.loads(GOLDEN_PATH.read_text())
        assert golden, "golden file is empty"
        for name, entry in golden.items():
            scenario = Scenario.from_dict(entry["scenario"])
            assert scenario.key() == entry["key"], f"key drifted for {name}"


class TestSerialization:
    @pytest.mark.parametrize("scenario_kwargs", [
        dict(algorithm=5, strategy="idle"),
        dict(algorithm=4, strategy="squatter", f=1, kind="tolerance", seed=2),
        dict(algorithm=5, strategy="crash", f=1, kind="scaling"),
        dict(algorithm=5, placement="highest", rounds=64),
    ])
    def test_round_trip_is_key_fixed_point(self, g, scenario_kwargs):
        s = Scenario(graph=g, **scenario_kwargs)
        through_json = Scenario.from_dict(json.loads(json.dumps(s.to_dict())))
        assert through_json == s
        assert through_json.key() == s.key()

    def test_hand_built_graph_round_trips(self):
        hand_built = PortLabeledGraph.from_edges(
            6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 3)]
        )
        assert spec_of(hand_built) is None
        s = Scenario(algorithm=5, graph=hand_built, strategy="idle")
        back = Scenario.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back.resolved_graph() == hand_built
        assert back.key() == s.key()

    def test_to_json_is_canonical(self, g):
        a = Scenario(algorithm=5, graph=g, strategy="idle")
        b = Scenario(algorithm="theorem4", graph=spec_of(g), strategy="idle")
        assert a.to_json() == b.to_json()

    def test_user_built_spec_is_canonicalized(self, g):
        """A hand-written GraphSpec omitting generator defaults must key
        identically to the generator-tagged spec — otherwise one cell
        splits across two store keys and the round trip is not a fixed
        point."""
        from repro.graphs import GraphSpec

        partial = Scenario(
            algorithm=4,
            graph=GraphSpec("random_connected", (("n", 8), ("seed", 5))),
        )
        assert partial.graph == spec_of(g)  # defaults bound, order fixed
        assert partial.key() == Scenario(algorithm=4, graph=g).key()
        assert Scenario.from_dict(partial.to_dict()).key() == partial.key()

    def test_unknown_or_unbindable_spec_rejected(self):
        from repro.graphs import GraphSpec

        with pytest.raises(ConfigurationError, match="unknown graph family"):
            Scenario(algorithm=4, graph=GraphSpec("nope", ()))
        with pytest.raises(ConfigurationError, match="cannot build graph"):
            Scenario(algorithm=4, graph=GraphSpec("ring", (("bogus", 9),)))

    def test_iterator_arguments_accepted(self, g):
        """The legacy sweeps accepted one-shot iterators; the grid
        presets must not consume them twice."""
        recs = tolerance_sweep(get_row(5), g, iter([0, 1]), "idle")
        assert len(recs) == 2
        recs = strategy_matrix(iter([get_row(4), get_row(5)]), g, iter(["idle"]))
        assert len(recs) == 2

    def test_partial_spec_args_pick_up_defaults(self, g):
        """A hand-written file may omit generator defaults; resolution
        re-binds them, so the key matches the fully-spelled spec."""
        s = Scenario.from_dict({
            "algorithm": 5,
            "graph": {"family": "random_connected", "args": {"n": 8, "seed": 5}},
        })
        assert s.resolved_graph() == g
        assert s.key() == Scenario(algorithm=5, graph=g).key()

    def test_bad_payloads_rejected(self, g):
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"algorithm": 5})  # no graph
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"algorithm": 5, "graph": {"weird": 1}})
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"algorithm": 5, "graph": {"family": "ring", "args": {"n": 6}},
                                "surprise": True})
        with pytest.raises(ConfigurationError):
            Scenario.from_dict({"algorithm": 5, "version": 99,
                                "graph": {"family": "ring", "args": {"n": 6}}})
        with pytest.raises(ConfigurationError):
            Scenario.from_dict("not an object")
        with pytest.raises(ConfigurationError, match="port_table"):
            Scenario.from_dict({"algorithm": 1,
                                "graph": {"port_table": {"0": {"0": 5}}}})
        # Bad generator args are a configuration problem, not a TypeError.
        with pytest.raises(ConfigurationError, match="cannot build graph"):
            Scenario.from_dict({"algorithm": 5,
                                "graph": {"family": "ring", "args": {"bogus": 9}}})


class TestGridExpansion:
    def test_expansion_is_deterministic(self, g):
        make = lambda: grid(rows=[4, 5], graphs=g,
                            strategies=["squatter", "idle"], seeds=[0, 1])
        one, two = make(), make()
        assert one.scenarios == two.scenarios
        assert one.keys() == two.keys()

    def test_documented_axis_order(self, g):
        """rows outermost, then graphs, strategies, f, seeds innermost."""
        out = grid(rows=[4, 5], graphs=g, strategies=["squatter", "idle"],
                   seeds=[0, 1])
        combos = [(s.serial, s.strategy, s.seed) for s in out]
        assert combos == [
            (4, "squatter", 0), (4, "squatter", 1), (4, "idle", 0), (4, "idle", 1),
            (5, "squatter", 0), (5, "squatter", 1), (5, "idle", 0), (5, "idle", 1),
        ]

    def test_scalar_axes_wrap(self, g):
        assert len(grid(rows=5, graphs=g, strategies="idle")) == 1

    def test_rows_default_to_whole_table(self, g):
        out = grid(graphs=g, strategies="idle", applicable_only=False)
        assert [s.serial for s in out] == [row.serial for row in TABLE1]

    def test_applicable_only_filters(self):
        # Row 1 needs a view-distinguishable graph; a ring is maximally
        # symmetric, so the row drops out of the grid.
        out = grid(rows=[1, 5], graphs=ring(8), strategies="idle")
        assert [s.serial for s in out] == [5]

    def test_grid_needs_a_graph(self):
        with pytest.raises(ConfigurationError):
            grid(rows=[5], strategies="idle")

    def test_empty_axes_raise_uniformly(self, g):
        """An explicitly empty axis is an error, not a vacuous zero-cell
        grid whose all-success check would silently pass."""
        for kwargs in (
            dict(rows=[], graphs=g, strategies="idle"),
            dict(rows=[5], graphs=g, strategies=[]),
            dict(rows=[5], graphs=g, strategies="idle", f=[]),
            dict(rows=[5], graphs=g, strategies="idle", seeds=[]),
        ):
            with pytest.raises(ConfigurationError, match="empty"):
                grid(**kwargs)

    def test_grid_slicing_and_filter(self, g):
        out = grid(rows=[4, 5], graphs=g, strategies=["squatter", "idle"])
        assert isinstance(out[0], Scenario)
        assert isinstance(out[:2], ScenarioGrid) and len(out[:2]) == 2
        only5 = out.filter(lambda s: s.serial == 5)
        assert all(s.serial == 5 for s in only5) and len(only5) == 2

    def test_grid_dicts_round_trip(self, g):
        out = grid(rows=[4, 5], graphs=g, strategies="idle")
        back = ScenarioGrid.from_dicts(json.loads(json.dumps(out.to_dicts())))
        assert back.keys() == out.keys()

    def test_grid_rejects_non_scenarios(self):
        with pytest.raises(ConfigurationError):
            ScenarioGrid(["not a scenario"])


class TestPresetsByteIdentical:
    """Acceptance: the four legacy sweeps, re-expressed as grid presets,
    replay their record streams exactly — serial, parallel, warm-store."""

    def test_table1_serial(self, g):
        legacy = run_table1(g, strategies=["squatter", "idle"], serials=[4, 5])
        preset = table1_grid(g, ["squatter", "idle"], serials=[4, 5]).run()
        assert preset == legacy

    def test_table1_parallel(self, g):
        legacy = run_table1(g, strategies=["squatter", "idle"], serials=[4, 5])
        preset = table1_grid(g, ["squatter", "idle"], serials=[4, 5]).run(workers=2)
        assert preset == legacy

    def test_table1_warm_store(self, g, store):
        legacy = run_table1(g, strategies=["squatter", "idle"], serials=[4, 5],
                            store=store)
        assert store.puts == 4
        preset = table1_grid(g, ["squatter", "idle"], serials=[4, 5]).run(store=store)
        assert preset == legacy
        assert store.hits == 4 and store.puts == 4  # zero recomputes

    def test_tolerance(self, g, store):
        row = get_row(5)
        legacy = tolerance_sweep(row, g, [0, 1, 2], "squatter", store=store)
        preset = tolerance_grid(5, g, [0, 1, 2], "squatter").run(store=store)
        parallel = tolerance_grid(5, g, [0, 1, 2], "squatter").run(workers=3)
        assert preset == legacy and parallel == legacy
        assert store.puts == 3 and store.hits == 3

    def test_scaling(self, store):
        row = get_row(5)
        graphs = [random_connected(n, seed=1) for n in (6, 8)]
        legacy = scaling_sweep(row, graphs, "idle", store=store)
        preset = scaling_grid(5, graphs, "idle").run(store=store)
        parallel = scaling_grid(5, graphs, "idle").run(workers=2)
        assert preset == legacy and parallel == legacy
        assert store.puts == 2 and store.hits == 2

    def test_strategy_matrix(self, g, store):
        rows = [get_row(4), get_row(5)]
        legacy = strategy_matrix(rows, g, ["squatter", "idle"], store=store)
        preset = strategy_matrix_grid([4, 5], g, ["squatter", "idle"]).run(store=store)
        assert preset == legacy
        assert store.puts == 4 and store.hits == 4

    def test_sweeps_return_result_sets(self, g):
        out = run_table1(g, strategies=["idle"], serials=[5])
        assert isinstance(out, ResultSet)
        assert out.success_rate() == 1.0


class TestRoundBudgetAndPlacement:
    def test_round_budget_caps_simulation(self, g):
        full = Scenario(algorithm=5, graph=g, strategy="idle").run()[0]
        capped = Scenario(algorithm=5, graph=g, strategy="idle", rounds=3).run()[0]
        assert full["success"] and full["rounds_simulated"] > 3
        assert not capped["success"]
        assert capped["rounds_simulated"] <= 3

    def test_budget_at_bound_changes_nothing_but_key(self, g):
        full = Scenario(algorithm=5, graph=g, strategy="idle")
        roomy = Scenario(algorithm=5, graph=g, strategy="idle", rounds=10**9)
        assert roomy.run() == full.run()
        assert roomy.key() != full.key()

    def test_placement_changes_outcome_population(self, g):
        lowest = Scenario(algorithm=4, graph=g, strategy="crash", f=2)
        highest = Scenario(algorithm=4, graph=g, strategy="crash", f=2,
                           placement="highest")
        assert lowest.run()[0]["success"] and highest.run()[0]["success"]
        assert lowest.key() != highest.key()

    def test_budgeted_cells_cache_under_their_own_key(self, g, store):
        capped = Scenario(algorithm=5, graph=g, strategy="idle", rounds=3)
        first = capped.run(store=store)
        again = capped.run(store=store)
        assert again == first
        assert store.puts == 1 and store.hits == 1
        # ... and the unbudgeted cell is a different entry entirely.
        assert Scenario(algorithm=5, graph=g, strategy="idle").key() not in store


class TestResultSet:
    def _records(self):
        return ResultSet([
            {"serial": 4, "strategy": "squatter", "success": True,
             "rounds_simulated": 10, "rounds_total": 10},
            {"serial": 5, "strategy": "squatter", "success": False,
             "rounds_simulated": 20, "rounds_total": 20},
            {"serial": 5, "strategy": "idle", "success": True,
             "rounds_simulated": 30, "rounds_total": 30},
        ])

    def test_is_a_list(self):
        rs = self._records()
        assert rs == list(rs) and len(rs) == 3 and rs[0]["serial"] == 4

    def test_filter_kwargs_and_pred(self):
        rs = self._records()
        assert len(rs.filter(strategy="squatter")) == 2
        assert len(rs.filter(strategy="squatter", success=True)) == 1
        assert len(rs.filter(lambda r: r["rounds_total"] > 15)) == 2
        assert isinstance(rs.filter(success=True), ResultSet)

    def test_group_by(self):
        groups = rs = self._records().group_by("serial")
        assert set(groups) == {4, 5}
        assert len(groups[5]) == 2 and isinstance(groups[5], ResultSet)
        by_fn = self._records().group_by(lambda r: r["success"])
        assert len(by_fn[True]) == 2

    def test_summarize_and_success_rate(self):
        rs = self._records()
        assert rs.success_rate() == pytest.approx(2 / 3)
        summary = rs.summarize("strategy")
        assert {row["strategy"] for row in summary} == {"squatter", "idle"}

    def test_columns_and_table(self):
        rs = self._records()
        assert rs.columns()[:2] == ["serial", "strategy"]
        rendered = rs.table(columns=["serial", "success"], title="T")
        assert rendered.startswith("T\n") and "serial" in rendered

    def test_json_round_trip(self, tmp_path):
        rs = self._records()
        path = tmp_path / "records.json"
        text = rs.to_json(path=str(path))
        assert ResultSet.from_json(text) == rs
        assert ResultSet.from_json(path.read_text()) == rs
        with pytest.raises(ConfigurationError):
            ResultSet.from_json('{"not": "an array"}')


class TestScenarioCLI:
    def test_scenario_file_hits_the_sweep_cell(self, tmp_path, capsys):
        """Acceptance: a JSON scenario run via `repro scenario` lands on
        the same store key as the equivalent `repro sweep` cell."""
        from repro.cli import _sample_graph

        store_dir = tmp_path / "runs"
        assert cli_main([
            "sweep", "--n", "8", "--strategies", "squatter", "--serials", "5",
            "--store", str(store_dir),
        ]) == 0
        assert "0 cell(s) answered from cache, 1 computed" in capsys.readouterr().out

        graph = _sample_graph(8, require_view_distinct=True, seed=0)
        spec = spec_of(graph)
        scenario_path = tmp_path / "scenario.json"
        scenario_path.write_text(json.dumps({
            "algorithm": 5,
            "graph": {"family": spec.family, "args": dict(spec.args)},
            "strategy": "squatter",
            "f": "max",
            "seed": 0,
        }))
        assert cli_main([
            "scenario", str(scenario_path), "--store", str(store_dir),
        ]) == 0
        out = capsys.readouterr().out
        assert "1 cell(s) answered from cache, 0 computed" in out

    def test_scenario_list_and_key_mode(self, tmp_path, capsys):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps([
            {"algorithm": 5, "graph": {"family": "random_connected",
                                       "args": {"n": 8, "seed": 5}},
             "strategy": "idle"},
            {"algorithm": 4, "graph": {"family": "random_connected",
                                       "args": {"n": 8, "seed": 5}},
             "strategy": "idle"},
        ]))
        assert cli_main(["scenario", str(path), "--key"]) == 0
        out = capsys.readouterr().out
        assert out.count("key:") == 2
        assert "Scenario records" not in out  # --key does not run

        assert cli_main(["scenario", str(path)]) == 0
        assert "Scenario records (2)" in capsys.readouterr().out

    def test_scenario_bad_file_fails_cleanly(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"algorithm": 5}')
        with pytest.raises(SystemExit):
            cli_main(["scenario", str(path)])
        with pytest.raises(SystemExit):
            cli_main(["scenario", str(tmp_path / "missing.json")])
        empty = tmp_path / "empty.json"
        empty.write_text("[]")
        with pytest.raises(SystemExit):
            cli_main(["scenario", str(empty)])

    def test_store_stats_cli(self, tmp_path, capsys):
        store_dir = tmp_path / "runs"
        assert cli_main([
            "sweep", "--n", "8", "--strategies", "idle", "--serials", "5",
            "--store", str(store_dir),
        ]) == 0
        capsys.readouterr()
        assert cli_main(["store", "stats", str(store_dir)]) == 0
        out = capsys.readouterr().out
        assert "cells            : 1" in out
        assert "shards           : 1" in out
        assert cli_main(["store", "stats", str(store_dir), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["cells"] == 1 and stats["schema_version"] == 1
        assert stats["bytes"] >= stats["indexed_bytes"] > 0

    def test_run_detail_prints_phases(self, capsys):
        # Row 2 carries a charged gathering phase, so --detail has a
        # per-phase breakdown to show (the flat record path cannot).
        rc = cli_main(["run", "--row", "2", "--n", "8", "--strategy",
                       "squatter", "--detail"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "success          : True" in out
        assert "    - gathering" in out  # per-phase breakdown restored

    def test_scenario_runtime_rejection_exits_cleanly(self, tmp_path, capsys):
        """An in-bounds file whose scenario the driver rejects (f beyond
        the row's bound) must exit with a message, not a traceback."""
        path = tmp_path / "beyond.json"
        path.write_text(json.dumps({
            "algorithm": 4,
            "graph": {"family": "random_connected", "args": {"n": 9, "seed": 0}},
            "strategy": "squatter", "f": 8,
        }))
        with pytest.raises(SystemExit, match="scenario rejected"):
            cli_main(["scenario", str(path)])

    def test_store_stats_refuses_to_create(self, tmp_path):
        """Inspection is read-only: a mistyped path must error, not leave
        an empty decoy store behind."""
        missing = tmp_path / "typo"
        with pytest.raises(SystemExit, match="not a run store"):
            cli_main(["store", "stats", str(missing)])
        assert not missing.exists()

    def test_run_cli_warm_store(self, tmp_path, capsys):
        """`repro run` goes through the executor: a second invocation
        answers from the store without recomputing."""
        store_dir = tmp_path / "runs"
        argv = ["run", "--row", "5", "--n", "8", "--strategy", "squatter",
                "--store", str(store_dir)]
        assert cli_main(argv) == 0
        assert "0 cell(s) answered from cache, 1 computed" in capsys.readouterr().out
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "1 cell(s) answered from cache, 0 computed" in out
        assert "success          : True" in out

    def test_tolerance_cli_warm_store(self, tmp_path, capsys):
        store_dir = tmp_path / "runs"
        argv = ["tolerance", "--row", "5", "--n", "8", "--strategy", "idle",
                "--store", str(store_dir)]
        assert cli_main(argv) == 0
        cold = capsys.readouterr().out
        assert "computed" in cold
        assert cli_main(argv) == 0
        warm = capsys.readouterr().out
        assert ", 0 computed" in warm
