"""Engine microbenchmark: k robots × R rounds, optimized vs reference.

The scenarios exercise exactly the hot paths the optimized engine
touches — movement + node index, observation + snapshot views, message
boards, and sleep fast-forwarding — on ring and random graphs.  Each
scenario is run through both :class:`~repro.sim.world.World` (optimized)
and :class:`~repro.sim.reference.ReferenceWorld` (straight-line seed
engine) with identical seeds; besides wall-clock times the harness
compares a behavioural *fingerprint* (round counter, positions, trace
counters, move totals) so a speedup obtained by computing the wrong
thing is flagged immediately.

``repro bench`` (see :mod:`repro.cli`) and ``benchmarks/bench_engine.py``
both drive :func:`run_benchmark` and emit the machine-readable
``BENCH_engine.json`` that ``benchmarks/check_regression.py`` guards.
"""

from __future__ import annotations

import json
import platform
import time
from typing import Callable, Dict, List, Optional

from ..graphs.generators import random_connected, ring
from ..sim.reference import ReferenceWorld
from ..sim.robot import Move, Sleep, Stay
from ..sim.world import World
from .store import SCHEMA_VERSION as STORE_SCHEMA_VERSION
from .tables import render_table

__all__ = [
    "SCENARIOS",
    "run_benchmark",
    "write_bench_json",
    "fingerprint",
    "format_report",
]


# --------------------------------------------------------------------- #
# Robot programs (deterministic in the scenario seed)
# --------------------------------------------------------------------- #

def _marcher(api):
    """March through port 1 forever — pure movement/index load."""
    move = Move(1)
    while True:
        yield move


def _random_walker(rng_seed):
    """Deterministic pseudo-random walk (LCG: no random-module overhead —
    the benchmark measures the engine, not the program)."""

    def program(api):
        h = (api.id * 1103515245 + rng_seed + 12345) & 0x7FFFFFFF
        stay = Stay()
        while True:
            h = (h * 1103515245 + 12345) & 0x7FFFFFFF
            deg = api.degree()
            if deg and h % 10 < 7:
                yield Move((h >> 4) % deg + 1)
            else:
                yield stay

    return program


def _observer(api):
    """Flip flags every round, observe live + round-start views at
    protocol-realistic decision points (every 4th round)."""
    rid = api.id
    flag = rid & 1
    move, stay = Move(1), Stay()
    rnd = 0
    while True:
        api.set_flag(flag)
        flag ^= 1
        if (rnd + rid) & 3 == 0:
            start = api.colocated_at_round_start()
            live = api.colocated()
            if len(live) < len(start) - 1:  # pragma: no cover - sanity anchor
                raise AssertionError("view cardinality mismatch")
        rnd += 1
        yield move if (rnd + rid) % 3 == 0 else stay


def _talker(api):
    """Post every round, read boards at pickup points — board load."""
    rid = api.id
    move, stay = Move(1), Stay()
    rnd = 0
    while True:
        api.say((rid, rnd))
        if (rnd + rid) % 3 == 0:
            api.messages()
            api.messages_prev()
        rnd += 1
        yield move if (rnd + rid) % 5 == 0 else stay


def _napper(api):
    """Alternate short naps with single moves — fast-forward load."""
    nap, move = Sleep(3), Move(1)
    while True:
        yield nap
        yield move


# --------------------------------------------------------------------- #
# Scenario registry
# --------------------------------------------------------------------- #

def _build(world_cls, graph, k: int, program_for: Callable[[int], Callable]):
    world = world_cls(graph, keep_trace=False)
    spread = max(1, graph.n // k) if k else 1
    for rid in range(1, k + 1):
        world.add_robot(rid, ((rid - 1) * spread) % graph.n, program_for(rid))
    return world


def _scenario_ring_march(world_cls, n, k, seed):
    return _build(world_cls, ring(n), k, lambda rid: _marcher)


def _scenario_ring_observe(world_cls, n, k, seed):
    return _build(world_cls, ring(n), k, lambda rid: _observer)


def _scenario_random_walk(world_cls, n, k, seed):
    graph = random_connected(n, seed=seed)
    return _build(world_cls, graph, k, lambda rid: _random_walker(seed))


def _scenario_messages(world_cls, n, k, seed):
    return _build(world_cls, ring(n), k, lambda rid: _talker)


def _scenario_sleepers(world_cls, n, k, seed):
    return _build(world_cls, ring(n), k, lambda rid: _napper)


#: name -> builder(world_cls, n, k, seed) -> World
SCENARIOS: Dict[str, Callable] = {
    "ring_march": _scenario_ring_march,
    "ring_observe": _scenario_ring_observe,
    "random_walk": _scenario_random_walk,
    "messages": _scenario_messages,
    "sleepers": _scenario_sleepers,
}


# --------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------- #

def fingerprint(world) -> Dict:
    """Behavioural digest compared between engines (must be identical)."""
    return {
        "round": world.round,
        "positions": sorted(world.positions().items()),
        "counters": sorted(world.trace.counters.items()),
        "moves": sum(r.moves_made for r in world.robots.values()),
    }


def _time_run(build: Callable[[], object], rounds: int, repeats: int):
    """Best-of-``repeats`` wall time of stepping a fresh world ``rounds``
    times (fresh world per repeat: generators are single-use)."""
    best = None
    final = None
    for _ in range(max(1, repeats)):
        world = build()
        step = world.step
        t0 = time.perf_counter()
        for _ in range(rounds):
            step()
        elapsed = time.perf_counter() - t0
        if best is None or elapsed < best:
            best = elapsed
        final = world
    return best, final


def run_benchmark(
    n: int = 96,
    k: int = 64,
    rounds: int = 500,
    seed: int = 0,
    repeats: int = 3,
    scenarios: Optional[List[str]] = None,
) -> Dict:
    """Run the engine microbenchmark; returns the BENCH_engine payload."""
    names = list(SCENARIOS) if scenarios is None else list(scenarios)
    results = []
    for name in names:
        builder = SCENARIOS[name]
        opt_s, opt_world = _time_run(
            lambda: builder(World, n, k, seed), rounds, repeats
        )
        ref_s, ref_world = _time_run(
            lambda: builder(ReferenceWorld, n, k, seed), rounds, repeats
        )
        fp_opt, fp_ref = fingerprint(opt_world), fingerprint(ref_world)
        results.append(
            {
                "scenario": name,
                "n": n,
                "k": k,
                "rounds": rounds,
                "seed": seed,
                "optimized_s": round(opt_s, 6),
                "reference_s": round(ref_s, 6),
                "speedup": round(ref_s / opt_s, 3) if opt_s > 0 else float("inf"),
                "identical": fp_opt == fp_ref,
            }
        )
    total_opt = sum(r["optimized_s"] for r in results)
    total_ref = sum(r["reference_s"] for r in results)
    return {
        "benchmark": "engine",
        "store_schema_version": STORE_SCHEMA_VERSION,
        "params": {"n": n, "k": k, "rounds": rounds, "seed": seed, "repeats": repeats},
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": results,
        "total_optimized_s": round(total_opt, 6),
        "total_reference_s": round(total_ref, 6),
        "overall_speedup": round(total_ref / total_opt, 3) if total_opt else 0.0,
        "all_identical": all(r["identical"] for r in results),
    }


def format_report(payload: Dict) -> str:
    """Human-readable report for a :func:`run_benchmark` payload (shared
    by ``repro bench`` and ``benchmarks/bench_engine.py``)."""
    table = render_table(
        payload["scenarios"],
        columns=[
            "scenario", "n", "k", "rounds",
            "optimized_s", "reference_s", "speedup", "identical",
        ],
        title="Engine microbenchmark (optimized World vs ReferenceWorld)",
    )
    return (
        f"{table}\n"
        f"overall speedup   : {payload['overall_speedup']}x\n"
        f"behaviour matched : {payload['all_identical']}"
    )


def write_bench_json(payload: Dict, path: str) -> None:
    """Write the benchmark payload as pretty-printed JSON."""
    with open(path, "w") as fh:
        # Baselines keep the payload's deliberate section order
        # (params, scenarios, verdict); construction order is fixed in
        # code, and check_regression.py gates the files themselves.
        # repro: allow-unsorted-json — checked-in baseline section order
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
