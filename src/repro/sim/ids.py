"""Robot ID assignment.

The model (Section 1.1): every robot carries a unique ID from ``[1, n^c]``
for a constant ``c > 1``.  The paper's round bounds depend on ID *lengths*
(``|Λgood|``, ``|Λall|`` — bit lengths of the largest IDs), so experiments
need control over how large IDs are, not just that they are distinct.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError

__all__ = ["assign_ids", "validate_ids", "id_space_upper_bound"]


def id_space_upper_bound(n: int, c: float = 2.0) -> int:
    """The paper's ID space cap ``n^c`` (``c > 1``)."""
    if c <= 1:
        raise ConfigurationError("the model requires c > 1")
    return max(int(n**c), n)


def assign_ids(
    n_robots: int,
    n_nodes: Optional[int] = None,
    c: float = 2.0,
    seed: Optional[int] = None,
) -> List[int]:
    """Draw ``n_robots`` distinct IDs from ``[1, n_nodes^c]``.

    ``seed=None`` gives the deterministic compact assignment ``1..n_robots``
    (smallest legal IDs — minimises ``|Λ|`` and thus charged costs);
    a seed samples IDs uniformly without replacement from the full space,
    which exercises long-ID cost paths.
    """
    if n_robots < 1:
        raise ConfigurationError("need at least one robot")
    n_nodes = n_nodes if n_nodes is not None else n_robots
    cap = id_space_upper_bound(n_nodes, c)
    if n_robots > cap:
        raise ConfigurationError(f"cannot fit {n_robots} distinct IDs in [1, {cap}]")
    if seed is None:
        return list(range(1, n_robots + 1))
    rng = np.random.default_rng(seed)
    ids = rng.choice(cap, size=n_robots, replace=False) + 1
    return sorted(int(i) for i in ids)


def validate_ids(ids: Sequence[int], n_nodes: int, c: float = 2.0) -> None:
    """Raise :class:`ConfigurationError` unless IDs satisfy the model."""
    if len(set(ids)) != len(ids):
        raise ConfigurationError("robot IDs must be distinct")
    cap = id_space_upper_bound(n_nodes, c)
    for i in ids:
        if not (1 <= i <= cap):
            raise ConfigurationError(f"ID {i} outside the model's range [1, {cap}]")
