"""Table 1 row 3 (Theorem 5): arbitrary start, f = O(sqrt n) weak, Õ(n⁵·√n).

Hirose-charged gathering + one two-group mapping run.  The benchmark
checks the headline separation of the row: restricting f makes the
arbitrary-start charge collapse from row 2's Õ(n⁹) to Õ(n⁵·√n).
"""

import pytest

from conftest import attach
from repro.byzantine import Adversary
from repro.core import get_row

ROW2 = get_row(2)
ROW3 = get_row(3)


@pytest.mark.parametrize("strategy", ["squatter", "random_walker"])
def bench_row3_at_tolerance(benchmark, bench_graph, strategy):
    f = ROW3.f_max(bench_graph)

    def run():
        return ROW3.solver(bench_graph, f=f, adversary=Adversary(strategy, seed=9), seed=9)

    report = benchmark.pedantic(run, rounds=3, iterations=1)
    assert report.success, report.violations
    attach(
        benchmark, report, f=f, strategy=strategy,
        paper_bound=ROW3.paper_bound(bench_graph, f),
    )


def bench_row3_cheaper_than_row2(benchmark, bench_graph):
    """Rows 2 vs 3: the restricted-f gathering is orders cheaper."""
    f = ROW3.f_max(bench_graph)

    def run():
        return ROW3.solver(bench_graph, f=f, adversary=Adversary("idle"), seed=10)

    report3 = benchmark.pedantic(run, rounds=2, iterations=1)
    report2 = ROW2.solver(bench_graph, f=f, adversary=Adversary("idle"), seed=10)
    assert report3.success and report2.success
    assert report3.rounds_charged < report2.rounds_charged
    attach(
        benchmark, report3, f=f,
        row2_charge=report2.rounds_charged,
        charge_ratio=report2.rounds_charged // max(report3.rounds_charged, 1),
    )
