"""Fixture: a Scenario whose axes break the store-key contract."""
from dataclasses import dataclass


@dataclass(frozen=True)
class Scenario:
    algorithm: str
    graph: str
    humidity: int            # axis without a default: cannot drop-at-default
    strategy: str = "squatter"
    f: str = "max"
    kind: str = "table1"
    seed: int = 0
    rounds: object = None    # cell_key accepts it but never writes it
    scheduler: str = "synchronous"  # written unconditionally in cell_key
    weather: str = "sunny"   # never reaches cell_key at all
