"""The adversary strategy zoo.

A *strategy* is a generator factory ``(api, rng) -> Iterator[Action]``
run by a Byzantine robot.  Strategies receive a
:class:`~repro.sim.robot.ByzantineAPI` — full world read access (worst-case
adaptive adversary) plus, in the strong model, ID faking — and may do
anything a robot physically can: lie in the public record, squat, desert,
spam flags and messages, chase honest robots.  They may **not** teleport
(robots move one edge per round) or, in the weak model, fake IDs
(Section 1.1's weak Byzantine definition, after [24]).

The zoo is organised around the attack surfaces of the paper's algorithms:

==================  =====================================================
strategy            attack surface
==================  =====================================================
crash / idle        liveness: do robots wait forever for a peer?
squatter            Dispersion-Using-Map Step 3 (deny nodes by claiming
                    ``Settled``)
ghost_squatter      Step 4 blacklisting (settle claims at many nodes)
flag_spammer        Step 2b/3b flag dance (force the observe branch)
random_walker       generic noise; corrupts mapping runs it takes part in
stalker             follows the smallest honest robot to contaminate its
                    every negotiation
false_commander     token-mapping: forged ``cmd`` quorums (Sections 3–4)
decoy_token         token-mapping: fake token presence at a decoy node
sleeper(...)        composition: behave dead, then switch to any attack
impersonator        strong model: claim an honest robot's ID and squat
id_cycler           strong model: new fake ID every round
==================  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional

import numpy as np

from ..errors import ConfigurationError
from ..sim.robot import SETTLED, TOBESETTLED, Action, ByzantineAPI, Move, Stay

__all__ = [
    "Strategy",
    "STRATEGIES",
    "get_strategy",
    "crash",
    "idle",
    "squatter",
    "ghost_squatter",
    "flag_spammer",
    "random_walker",
    "stalker",
    "false_commander",
    "decoy_token",
    "sleeper",
    "impersonator",
    "id_cycler",
]

Strategy = Callable[[ByzantineAPI, np.random.Generator], Iterator[Action]]


def crash(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Die instantly (Byzantine subsumes crash faults)."""
    return
    yield  # pragma: no cover - makes this a generator


def idle(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Sit still forever claiming ``tobeSettled`` and never settle.

    With a small ID this blocks honest robots' Step 1 minimality at every
    shared node, forcing them through the flag dance each time.
    """
    while True:
        yield Stay()


def squatter(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Claim ``Settled`` at the start node and stay forever.

    Steals one node from the honest robots (legal: Definition 1 bounds
    honest settlers only), exercising Step 3c recording.
    """
    api.set_state(SETTLED)
    while True:
        yield Stay()


def ghost_squatter(api: ByzantineAPI, rng, period: int = 3) -> Iterator[Action]:
    """Claim ``Settled``, but relocate every ``period`` rounds.

    The canonical Step 4 trigger: the same ID observed settled at two
    different nodes proves it Byzantine, and honest robots blacklist it.
    """
    api.set_state(SETTLED)
    r = 0
    while True:
        r += 1
        if r % period == 0 and api.degree() > 0:
            port = int(rng.integers(1, api.degree() + 1))
            api.set_state(SETTLED)
            yield Move(port)
        else:
            yield Stay()


def flag_spammer(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Permanently raise the intent flag while never settling.

    Forces every honest co-located robot into the Step 2b observe branch;
    the procedure must still settle them (tests assert it does).
    """
    while True:
        api.set_flag(1)
        yield Stay()


def random_walker(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Move uniformly at random every round with random flags.

    Also the default saboteur inside mapping runs: a random-walking token
    partner makes the agent's candidate checks incoherent.
    """
    while True:
        api.set_flag(int(rng.integers(0, 2)))
        deg = api.degree()
        if deg > 0 and rng.random() < 0.8:
            yield Move(int(rng.integers(1, deg + 1)))
        else:
            yield Stay()


def stalker(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Chase the smallest-ID honest robot and contaminate its nodes.

    Uses world omniscience to aim, but moves one edge per round like any
    robot.  Claims ``tobeSettled`` with flag 1 at all times, keeping the
    target in perpetual flag dances.
    """
    world = api.world
    honest = world.honest_ids
    target = honest[0] if honest else None
    from ..graphs.traversal import navigate  # local import: avoid cycle at module load

    while True:
        api.set_flag(1)
        if target is None:
            yield Stay()
            continue
        target_node = world.robots[target].node
        me = world.robots[api.id].node
        if me == target_node:
            yield Stay()
        else:
            ports = navigate(world.graph, me, target_node)
            yield Move(ports[0])


def false_commander(api: ByzantineAPI, rng, port: int = 1) -> Iterator[Action]:
    """Forge token-mapping commands ordering "move through port 1".

    Mirrors any genuine command visible in its sub-round (copying the run
    tag and tick — the strongest forgery available without breaking
    synchrony) and falls back to blind spam otherwise.  If false
    commanders reach a token group's believe-threshold (only possible
    when a group's Byzantine count exceeds the paper's bound), they
    hijack the token and corrupt that run's map — the exact failure mode
    Section 3.2's majority-of-three argument tolerates.
    """
    while True:
        mirrored = False
        for _sender, payload in api.messages():
            if (
                isinstance(payload, tuple)
                and len(payload) == 4
                and payload[0] == "cmd"
            ):
                api.say(("cmd", payload[1], payload[2], port))
                mirrored = True
                break
        if not mirrored:
            api.say(("cmd", None, api.round // 2, port))
        yield Stay()


def decoy_token(api: ByzantineAPI, rng, walk_rounds: int = 3) -> Iterator[Action]:
    """Walk a few steps away, then sit pretending to be the token.

    Against group mapping the agent requires a *quorum* of distinct
    token-group IDs, which at most ``f < threshold`` decoys can never
    assemble; tests assert presence checks are not fooled.
    """
    for _ in range(walk_rounds):
        deg = api.degree()
        if deg > 0:
            yield Move(int(rng.integers(1, deg + 1)))
        else:
            yield Stay()
    api.set_state(SETTLED)
    while True:
        yield Stay()


def sleeper(delay: int, inner: Strategy) -> Strategy:
    """Combinator: behave dead for ``delay`` rounds, then run ``inner``.

    Models adversaries that cooperate through early phases and defect
    later (e.g. behave until maps are built, then squat during dispersion).
    """
    if delay < 0:
        raise ConfigurationError("delay must be >= 0")

    def program(api: ByzantineAPI, rng) -> Iterator[Action]:
        for _ in range(delay):
            yield Stay()
        yield from inner(api, rng)

    program.__name__ = f"sleeper({delay},{getattr(inner, '__name__', 'inner')})"
    return program


def impersonator(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Strong model: steal the smallest honest ID and squat with it.

    Attacks ID-based trust: under Dispersion-Using-Map this would get an
    honest ID blacklisted (which is why the paper's Section 4 switches to
    rank-based dispersion with quorum checks — our tests show both sides).
    """
    honest = api.world.honest_ids
    if honest:
        api.set_claimed_id(honest[0])
    api.set_state(SETTLED)
    while True:
        yield Stay()


def id_cycler(api: ByzantineAPI, rng) -> Iterator[Action]:
    """Strong model: present a different fake ID every round."""
    world = api.world
    all_ids = sorted(world.robots.keys())
    i = 0
    while True:
        api.set_claimed_id(all_ids[i % len(all_ids)])
        api.set_state(SETTLED if i % 2 == 0 else TOBESETTLED)
        api.set_flag(i % 2)
        i += 1
        yield Stay()


#: Name -> strategy registry used by experiment configs and benchmarks.
STRATEGIES: Dict[str, Strategy] = {
    "crash": crash,
    "idle": idle,
    "squatter": squatter,
    "ghost_squatter": ghost_squatter,
    "flag_spammer": flag_spammer,
    "random_walker": random_walker,
    "stalker": stalker,
    "false_commander": false_commander,
    "decoy_token": decoy_token,
    "impersonator": impersonator,
    "id_cycler": id_cycler,
}

#: Strategies legal in the weak model (no ID faking).
WEAK_STRATEGIES = [
    "crash",
    "idle",
    "squatter",
    "ghost_squatter",
    "flag_spammer",
    "random_walker",
    "stalker",
    "false_commander",
    "decoy_token",
]

#: Additional strong-model strategies.
STRONG_STRATEGIES = WEAK_STRATEGIES + ["impersonator", "id_cycler"]


def get_strategy(name: str) -> Strategy:
    """Look up a strategy by registry name."""
    try:
        return STRATEGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown strategy {name!r}; known: {sorted(STRATEGIES)}"
        ) from None
