"""Checker framework for the determinism linter (``repro lint``).

The byte-identity invariant every layer of this repo rests on — records,
store keys, and stored bytes identical across serial / parallel /
batched / resumed / warm execution — is checked *dynamically* by the
determinism and chaos suites, but those sample a handful of scenarios.
This package checks the same invariant *statically*: a shared AST walker
parses every file once, a registry of :class:`Checker` passes inspects
the trees for this codebase's known nondeterminism vectors (unseeded
RNG, wall clocks, unordered set iteration, unsorted JSON, axes missing
from the store-key canonicalisation, overly broad exception handlers),
and structured :class:`Finding` values come back with ``file:line``
anchors and fix hints.

Pragmas
-------
A finding is suppressed by a ``# repro:`` pragma comment naming the
checker's allow token (each checker documents its own, e.g.
``allow-wallclock``):

* ``# repro: allow-wallclock`` on the reported line silences that line.
  On a standalone comment line, it silences the *next* line instead —
  useful when the offending line has no room left.
* ``# repro: allow-wallclock file`` anywhere in the file silences the
  checker for the whole module (the per-file allowlist mechanism; bench
  modules use it).

A pragma should always carry a justification after the token — pragmas
without a *why* defeat the review-time purpose of the linter.

Scoping
-------
Checkers can restrict themselves by path: ``only_suffixes`` limits a
checker to the named modules (the canonical-JSON pass only polices the
store/baseline writers) and ``exempt_suffixes`` carves out modules
where the rule does not apply by design (bench modules may read the
clock).  Suffixes match against the POSIX form of the file's absolute
path, so they work from any scan root.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Checker",
    "Finding",
    "Module",
    "ProjectChecker",
    "load_module",
    "run_lint",
]

#: ``# repro: <tokens>`` — tokens are comma/space separated allow names,
#: optionally followed by ``file`` (module scope) and a justification.
_PRAGMA_RE = re.compile(r"#\s*repro:\s*(?P<body>[A-Za-z0-9_,\- ]+)")
_ALLOW_TOKEN_RE = re.compile(r"^allow-[a-z0-9-]+$")


@dataclass(frozen=True)
class Finding:
    """One linter finding, anchored to ``path:line:col``."""

    checker: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.checker, self.message)

    def to_dict(self) -> Dict:
        """JSON-safe form (the ``--format json`` payload element)."""
        out = {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out

    def format(self) -> str:
        """Human one-liner: ``path:line:col: [checker] message``."""
        text = f"{self.path}:{self.line}:{self.col}: [{self.checker}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


@dataclass
class Module:
    """One parsed source file plus its pragma tables."""

    path: Path
    #: Display path (relative to the scan root when walked from a dir).
    relpath: str
    tree: ast.Module
    source: str
    #: line number -> allow tokens active on that line.
    line_pragmas: Dict[int, Set[str]] = field(default_factory=dict)
    #: allow tokens active for the whole file.
    file_pragmas: Set[str] = field(default_factory=set)

    @property
    def posix(self) -> str:
        """POSIX form of the absolute path (what suffix scoping matches)."""
        return self.path.as_posix()

    def allowed(self, pragma: str, line: int) -> bool:
        """Is ``pragma`` active on ``line`` (or file-wide)?"""
        return pragma in self.file_pragmas or pragma in self.line_pragmas.get(line, ())


def _extract_pragmas(source: str) -> Tuple[Dict[int, Set[str]], Set[str]]:
    """Collect pragma comments via the tokenizer (immune to ``#`` inside
    string literals).  Returns ``(line pragmas, file pragmas)``."""
    line_pragmas: Dict[int, Set[str]] = {}
    file_pragmas: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if not match:
                continue
            words = re.split(r"[,\s]+", match.group("body").strip())
            allows = {w for w in words if _ALLOW_TOKEN_RE.match(w)}
            if not allows:
                continue
            if "file" in words:
                file_pragmas |= allows
                continue
            line = tok.start[0]
            line_pragmas.setdefault(line, set()).update(allows)
            # A standalone comment annotates the statement below it.
            before = tok.line[: tok.start[1]]
            if not before.strip():
                line_pragmas.setdefault(line + 1, set()).update(allows)
    except tokenize.TokenError:
        pass  # the ast.parse in load_module reports the real error
    return line_pragmas, file_pragmas


def load_module(path: Path, relpath: Optional[str] = None) -> Module:
    """Parse one file into a :class:`Module` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    line_pragmas, file_pragmas = _extract_pragmas(source)
    return Module(
        path=path,
        relpath=relpath if relpath is not None else str(path),
        tree=tree,
        source=source,
        line_pragmas=line_pragmas,
        file_pragmas=file_pragmas,
    )


class Checker:
    """One static-analysis pass over a single module.

    Subclasses set the identity fields and implement :meth:`check`,
    yielding findings through :meth:`emit` (which applies the pragma
    filter).  ``only_suffixes``/``exempt_suffixes`` scope the pass by
    path suffix.
    """

    #: Registry name (``repro lint --select`` and finding labels).
    name: str = ""
    #: Allow token that suppresses this checker's findings.
    pragma: str = ""
    #: One-line description (``repro lint --help`` and the registry table).
    description: str = ""
    #: Default fix hint attached to findings.
    hint: str = ""
    #: If non-empty, only modules matching one of these path suffixes.
    only_suffixes: Tuple[str, ...] = ()
    #: Modules matching one of these path suffixes are skipped.
    exempt_suffixes: Tuple[str, ...] = ()

    def applies_to(self, module: Module) -> bool:
        posix = module.posix
        if self.only_suffixes and not any(posix.endswith(s) for s in self.only_suffixes):
            return False
        return not any(posix.endswith(s) for s in self.exempt_suffixes)

    def emit(
        self,
        module: Module,
        node: ast.AST,
        message: str,
        hint: Optional[str] = None,
    ) -> Optional[Finding]:
        """Build a finding for ``node`` unless a pragma suppresses it."""
        line = getattr(node, "lineno", 1)
        if module.allowed(self.pragma, line):
            return None
        return Finding(
            checker=self.name,
            path=module.relpath,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint if hint is None else hint,
        )

    def check(self, module: Module) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectChecker(Checker):
    """A cross-module pass that sees every scanned module at once
    (the scenario-axis canonicalisation contract spans two files)."""

    def check(self, module: Module) -> Iterator[Finding]:
        return iter(())

    def check_project(self, modules: Sequence[Module]) -> Iterator[Finding]:
        raise NotImplementedError


# --------------------------------------------------------------------- #
# Import resolution (shared by the RNG and wall-clock checkers)
# --------------------------------------------------------------------- #

class ImportMap(ast.NodeVisitor):
    """Local name -> dotted origin, from every import in a module.

    ``import numpy as np`` maps ``np -> numpy``; ``from random import
    shuffle as sh`` maps ``sh -> random.shuffle``; ``from datetime
    import datetime`` maps ``datetime -> datetime.datetime``.  Good
    enough to resolve attribute chains like ``np.random.default_rng``
    to ``numpy.random.default_rng`` without executing anything.
    """

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".", 1)[0]
            # `import a.b` binds `a`; `import a.b as c` binds c -> a.b.
            self.names[local] = alias.name if alias.asname else alias.name.split(".", 1)[0]

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never shadow stdlib rng/clock names
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.names[local] = f"{node.module}.{alias.name}"

    @classmethod
    def of(cls, tree: ast.AST) -> "ImportMap":
        mapper = cls()
        mapper.visit(tree)
        return mapper

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted origin of a Name/Attribute chain, or ``None``."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self.names.get(node.id)
        if origin is None:
            return None
        return ".".join([origin] + list(reversed(parts)))


# --------------------------------------------------------------------- #
# Walking and running
# --------------------------------------------------------------------- #

def iter_python_files(root: Path) -> List[Path]:
    """Every ``*.py`` under ``root``, sorted (deterministic scan order)."""
    return sorted(p for p in root.rglob("*.py") if p.is_file())


def collect_modules(paths: Sequence[Path]) -> Tuple[List[Module], List[Finding]]:
    """Parse every target once; syntax errors become findings, not
    crashes (a linter that dies on the file it should report is
    useless in CI)."""
    modules: List[Module] = []
    errors: List[Finding] = []
    for target in paths:
        target = Path(target)
        if target.is_dir():
            files = [(f, f.relative_to(target).as_posix()) for f in iter_python_files(target)]
        else:
            files = [(target, target.name)]
        for path, relpath in files:
            try:
                modules.append(load_module(path, relpath))
            except SyntaxError as exc:
                errors.append(Finding(
                    checker="syntax",
                    path=relpath,
                    line=exc.lineno or 1,
                    col=exc.offset or 0,
                    message=f"file does not parse: {exc.msg}",
                ))
    return modules, errors


def run_lint(
    paths: Sequence[Path],
    checkers: Sequence[Checker],
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run ``checkers`` over every Python file reachable from ``paths``.

    ``select`` restricts to the named checkers.  Findings come back
    sorted by ``(path, line, col, checker)`` — a deterministic report
    from the determinism linter is table stakes.
    """
    if select is not None:
        wanted = set(select)
        known = {c.name for c in checkers}
        unknown = sorted(wanted - known)
        if unknown:
            raise ValueError(f"unknown checker(s): {', '.join(unknown)}")
        checkers = [c for c in checkers if c.name in wanted]
    modules, findings = collect_modules(paths)
    for checker in checkers:
        if isinstance(checker, ProjectChecker):
            findings.extend(checker.check_project(
                [m for m in modules if checker.applies_to(m)]
            ))
        else:
            for module in modules:
                if checker.applies_to(module):
                    findings.extend(checker.check(module))
    return sorted(findings, key=Finding.sort_key)
