"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``table1``       regenerate the paper's Table 1 on a random graph
``run``          run one Table 1 row with explicit parameters
``tolerance``    sweep f for one row
``sweep``        resumable Table 1 grid backed by an on-disk run store
``scenario``     run scenario(s) from a JSON file (the declarative API)
``store``        inspect or maintain an on-disk run store
                 (``store stats|verify|compact DIR``)
``impossible``   run the Theorem 8 construction
``strategies``   list the adversary zoo and the activation schedulers
``lint``         determinism linter: static AST checks proving the
                 byte-identity rules (seeded RNG only, no wall clocks,
                 sorted iteration, canonical JSON, scenario-axis
                 canonicalisation, exception hygiene); nonzero exit on
                 findings, ``--format json`` for tooling
``serve``        dispersion-as-a-service: asyncio HTTP server over a
                 run store (warm cells answered with zero solver calls,
                 single-flight dedup, bounded-queue backpressure, live
                 SSE run streaming — see ``repro.serve``)
``bench``        microbenchmarks: engine, graph substrate, the batched
                 sweep engine, and/or the serve subsystem
                 (``--suite engine|graphs|batch|serve|all``;
                 ``--profile`` runs the suite under cProfile)

Every solver-running command (``table1``, ``run``, ``tolerance``,
``sweep``, ``scenario``) goes through the same plan executor and accepts
the same plan flags: ``--workers N`` fans independent cells out over
``N`` processes (records identical to, and ordered like, a serial run);
``--store DIR`` caches completed cells in a content-addressed run store;
``--resume/--no-resume`` and ``--chunk`` control replay and dispatch;
``--batch/--no-batch`` toggles the struct-of-arrays batched engine for
compatible cells (on by default; records are byte-identical either
way).  A re-run of any of them against a warm store answers entirely
from disk with zero solver calls.

``scenario`` takes a JSON file holding one scenario object or a list —
the serialized form of :class:`repro.scenarios.Scenario` — and hits
exactly the same store cells as the equivalent sweep.

``run`` and ``sweep`` take ``--scheduler`` activation-model specs
(:mod:`repro.sim.schedulers`): ``sweep`` accepts a comma-separated list
and crosses it into the grid, printing a per-scheduler summary; the
``synchronous`` default is byte-identical — records and store cells —
to the historical sweep.

Examples::

    python -m repro table1 --n 10 --strategy ghost_squatter --workers 4
    python -m repro run --row 4 --n 9 --f 3 --strategy squatter --store runs/
    python -m repro tolerance --row 5 --n 9 --store runs/ --workers 2
    python -m repro sweep --n 9 --strategies squatter,idle --store runs/ --workers 4
    python -m repro sweep --n 9 --scheduler 'synchronous,adversarial(window=4)'
    python -m repro run --row 4 --n 9 --scheduler 'semi_synchronous(p=0.5)' --detail
    python -m repro scenario experiment.json --store runs/
    python -m repro scenario experiment.json --key   # print cell keys only
    python -m repro store stats runs/
    python -m repro store verify runs/ --repair
    python -m repro store compact runs/
    python -m repro impossible --n 6 --k 12 --f 6
    python -m repro serve --store runs/ --workers 4 --port 8008
    python -m repro lint
    python -m repro lint src/repro --format json --select exception-hygiene
    python -m repro bench --out benchmarks/BENCH_engine.json
    python -m repro bench --suite graphs
    python -m repro bench --suite batch --batch-cells 64
    python -m repro bench --suite engine --profile
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import (
    ExecutionPolicy,
    render_table,
    run_benchmark,
    run_graph_benchmark,
    run_table1,
    tolerance_sweep,
)
from .analysis.store import RunStore
from .analysis.batchbench import format_batch_report, run_batch_benchmark
from .analysis.benchmark import format_report, write_bench_json
from .analysis.graphbench import format_graph_report
from .analysis.servebench import format_serve_report, run_serve_benchmark
from .byzantine import STRATEGIES, STRONG_STRATEGIES, WEAK_STRATEGIES, Adversary
from .core import TABLE1, demonstrate_impossibility, get_row
from .errors import ReproError
from .graphs import is_quotient_isomorphic, random_connected
from .scenarios import ResultSet, Scenario, ScenarioGrid, grid, run_scenarios
from .sim.schedulers import SCHEDULERS, parse_scheduler

__all__ = ["main"]


#: The repo's checked-in benchmark baselines (what
#: ``benchmarks/check_regression.py`` gates).  ``repro bench`` defaults
#: its outputs here so a bare run from any CWD refreshes the guarded
#: files instead of silently dropping JSON next to wherever you stood.
_BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _default_bench_path(name: str) -> str:
    """Default output path for a benchmark artifact: the checked-in
    baseline when this is a repo checkout, the bare name otherwise
    (installed package with no benchmarks/ directory)."""
    return str(_BENCH_DIR / name) if _BENCH_DIR.is_dir() else name


def _sample_graph(n: int, require_view_distinct: bool, seed: int):
    for s in range(seed, seed + 100):
        g = random_connected(n, seed=s)
        if not require_view_distinct or is_quotient_isomorphic(g):
            return g
    raise SystemExit(f"could not sample a suitable graph with n={n}")


def _store_of(args) -> Optional[RunStore]:
    """The run store a plan-flagged command should use (or ``None``)."""
    return RunStore(args.store) if getattr(args, "store", None) else None


def _policy_of(args) -> ExecutionPolicy:
    """The :class:`ExecutionPolicy` a plan-flagged command requested."""
    return ExecutionPolicy(
        timeout=getattr(args, "timeout", None),
        max_retries=getattr(args, "retries", 2),
        strict=getattr(args, "strict", False),
    )


def _print_failures(records) -> int:
    """Print the quarantine summary table for a record list; returns the
    failure count (0 on a healthy sweep, which prints nothing)."""
    failed = [r for r in records if r.get("failed")]
    if failed:
        print()
        print(
            render_table(
                failed,
                columns=["serial", "strategy", "seed", "reason",
                         "error", "attempts", "key"],
                title=f"Quarantined cells ({len(failed)}) — "
                      f"retry budget exhausted; re-run to retry, "
                      f"--strict to fail hard",
            )
        )
    return len(failed)


def _print_store_traffic(store: Optional[RunStore]) -> None:
    if store is not None:
        print(
            f"store {store.path}: {store.hits} cell(s) answered from cache, "
            f"{store.puts} computed, {len(store)} total entries"
        )


def _cmd_table1(args) -> int:
    graph = _sample_graph(args.n, require_view_distinct=True, seed=args.seed)
    store = _store_of(args)
    records = run_table1(
        graph, strategies=[args.strategy], seed=args.seed, workers=args.workers,
        store=store, resume=args.resume, chunk=args.chunk,
        policy=_policy_of(args), batch=args.batch,
    )
    print(
        render_table(
            records,
            columns=[
                "serial", "theorem", "running_time", "start", "strong", "f",
                "success", "rounds_simulated", "rounds_charged", "paper_bound",
            ],
            title=f"Table 1 reproduction (n={graph.n}, m={graph.m}, strategy={args.strategy})",
        )
    )
    _print_failures(records)
    _print_store_traffic(store)
    return 0 if all(r["success"] for r in records) else 1


def _cmd_run(args) -> int:
    row = get_row(args.row)
    try:
        scheduler = parse_scheduler(args.scheduler).canonical()
    except ReproError as exc:
        raise SystemExit(f"bad --scheduler value: {exc}")
    graph = _sample_graph(args.n, require_view_distinct=(args.row == 1), seed=args.seed)
    if args.detail:
        # Direct solver call: full RunReport diagnostics (per-phase round
        # breakdown, violation messages) that the flat record pipeline
        # cannot carry.  Uncached and serial by design.
        f = row.f_max(graph) if args.f is None else args.f
        extras = {}
        if scheduler != "synchronous":
            extras["scheduler"] = scheduler
        report = row.solver(
            graph, f=f, adversary=Adversary(args.strategy, seed=args.seed),
            seed=args.seed, **extras,
        )
        print(f"row {row.serial} (Theorem {row.theorem}), n={graph.n}, f={f}, "
              f"strategy={args.strategy}")
        print(f"  success          : {report.success}")
        print(f"  simulated rounds : {report.rounds_simulated:,}")
        print(f"  charged rounds   : {report.rounds_charged:,}")
        for label, rounds in report.phases:
            print(f"    - {label}: {rounds:,}")
        for v in report.violations:
            print(f"  violation        : {v}")
        return 0 if report.success else 1
    scenario = Scenario(
        algorithm=args.row, graph=graph, strategy=args.strategy,
        f="max" if args.f is None else args.f, seed=args.seed,
        scheduler=scheduler,
    )
    store = _store_of(args)
    records = scenario.run(
        workers=args.workers, store=store, resume=args.resume, chunk=args.chunk,
        policy=_policy_of(args), batch=args.batch,
    )
    rec = records[0]
    if rec.get("failed"):
        print(f"row {row.serial} (Theorem {row.theorem}), n={graph.n}, "
              f"strategy={args.strategy}")
        print(f"  quarantined      : {rec['reason']}: {rec['error']}")
        print(f"  attempts         : {rec['attempts']}")
        print(f"  cell key         : {rec['key']}")
        _print_store_traffic(store)
        return 1
    print(f"row {row.serial} (Theorem {row.theorem}), n={graph.n}, f={rec['f']}, "
          f"strategy={args.strategy}")
    print(f"  success          : {rec['success']}")
    print(f"  simulated rounds : {rec['rounds_simulated']:,}")
    print(f"  charged rounds   : {rec['rounds_charged']:,}")
    print(f"  violations       : {rec['n_violations']}")
    if not rec["success"]:
        print("  (re-run with --detail for the per-phase breakdown and "
              "violation messages)")
    _print_store_traffic(store)
    return 0 if rec["success"] else 1


def _cmd_tolerance(args) -> int:
    row = get_row(args.row)
    graph = _sample_graph(args.n, require_view_distinct=(args.row == 1), seed=args.seed)
    f_max = row.f_max(graph)
    fs = list(range(0, min(f_max + 3, graph.n)))
    store = _store_of(args)
    records = tolerance_sweep(
        row, graph, fs, args.strategy, seed=args.seed, workers=args.workers,
        store=store, resume=args.resume, chunk=args.chunk,
        policy=_policy_of(args), batch=args.batch,
    )
    print(
        render_table(
            records,
            columns=["f", "rejected", "success", "rounds_simulated", "rounds_total"],
            title=f"Tolerance sweep, row {row.serial} (bound f<={f_max}), n={graph.n}",
        )
    )
    failed = _print_failures(records)
    _print_store_traffic(store)
    return 0 if not failed else 1


def _parse_schedulers(text: str) -> List[str]:
    """Canonicalise a comma-separated ``--scheduler`` value (parens keep
    their commas: ``crash_recovery(down=2,up=6),synchronous`` is two)."""
    specs, depth, token = [], 0, []
    for ch in text:
        if ch == "," and depth == 0:
            specs.append("".join(token))
            token = []
            continue
        depth += ch == "("
        depth -= ch == ")"
        token.append(ch)
    specs.append("".join(token))
    specs = [s.strip() for s in specs if s.strip()]
    if not specs:
        raise SystemExit("--scheduler needs at least one spec")
    try:
        return [parse_scheduler(s).canonical() for s in specs]
    except ReproError as exc:
        raise SystemExit(f"bad --scheduler value: {exc}")


def _cmd_sweep(args) -> int:
    strategies = [s for s in (p.strip() for p in args.strategies.split(",")) if s]
    unknown = sorted(set(strategies) - set(STRATEGIES))
    if not strategies or unknown:
        raise SystemExit(
            f"unknown strategies: {', '.join(unknown) or '(none given)'} "
            f"(choose from: {', '.join(sorted(STRATEGIES))})"
        )
    schedulers = _parse_schedulers(args.scheduler)
    serials = (
        [int(s) for s in args.serials.split(",") if s.strip()]
        if args.serials else None
    )
    graph = _sample_graph(args.n, require_view_distinct=True, seed=args.seed)
    store = _store_of(args)
    if schedulers == ["synchronous"]:
        # The legacy sweep verbatim: identical cells, identical store keys.
        records = run_table1(
            graph,
            strategies=strategies,
            seed=args.seed,
            serials=serials,
            workers=args.workers,
            store=store,
            resume=args.resume,
            chunk=args.chunk,
            policy=_policy_of(args),
            batch=args.batch,
        )
    else:
        # Same (row, strategy) plan with the scheduler axis crossed in;
        # the rows keep TABLE1 order exactly like the legacy preset.
        rows = [
            row.serial for row in TABLE1
            if serials is None or row.serial in serials
        ]
        records = (
            grid(rows=rows, graphs=graph, strategies=strategies,
                 f="max", schedulers=schedulers, seeds=args.seed).run(
                workers=args.workers, store=store, resume=args.resume,
                chunk=args.chunk, policy=_policy_of(args), batch=args.batch,
            )
            if rows
            else ResultSet()
        )
    if not records:
        print(
            f"no applicable (row x strategy) cells for n={graph.n}, "
            f"serials={args.serials or 'all'} — nothing ran"
        )
        return 1
    columns = [
        "serial", "theorem", "strategy", "f", "success",
        "rounds_simulated", "rounds_charged", "paper_bound",
    ]
    if schedulers != ["synchronous"]:
        # Non-default runs tag their records; synchronous cells omit the
        # key for cache compatibility and group under the default label.
        columns[3:3] = ["scheduler", "activations"]
    print(
        render_table(
            records,
            columns=columns,
            title=f"Sweep (n={graph.n}, m={graph.m}, "
                  f"strategies={','.join(strategies)})",
        )
    )
    if len(schedulers) > 1:
        print()
        print(
            render_table(
                records.summarize("scheduler", missing="synchronous"),
                title="By scheduler",
            )
        )
    _print_failures(records)
    _print_store_traffic(store)
    return 0 if all(r["success"] for r in records) else 1


def _cmd_scenario(args) -> int:
    try:
        with open(args.file, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read scenario file {args.file!r}: {exc}")
    try:
        if isinstance(payload, list):
            scenario_grid = ScenarioGrid.from_dicts(payload)
        else:
            scenario_grid = ScenarioGrid([Scenario.from_dict(payload)])
    except ReproError as exc:
        raise SystemExit(f"invalid scenario file {args.file!r}: {exc}")
    if not len(scenario_grid):
        raise SystemExit(f"scenario file {args.file!r} holds no scenarios")
    for scenario in scenario_grid:
        print(f"scenario: {scenario.describe()}")
        print(f"  key: {scenario.key()}")
    if args.key:
        return 0
    store = _store_of(args)
    try:
        records = scenario_grid.run(
            workers=args.workers, store=store, resume=args.resume,
            chunk=args.chunk, policy=_policy_of(args), batch=args.batch,
        )
    except ReproError as exc:
        # Predictable run-time rejections (f beyond the row's bound, a
        # graph outside the row's class) get the same clean exit as a
        # malformed file, not a traceback.  (Tolerance-kind scenarios
        # *record* driver rejections instead of raising.)
        raise SystemExit(f"scenario rejected: {type(exc).__name__}: {exc}")
    if args.json:
        print(records.to_json(indent=2))
    else:
        print(records.table(title=f"Scenario records ({len(records)})"))
        _print_failures(records)
    _print_store_traffic(store)
    return 0 if all(r.get("success") or r.get("rejected") for r in records) else 1


def _existing_store(path: str) -> RunStore:
    """Open ``path`` as a store that must already exist.

    Inspection and maintenance must not mutate absent paths: opening a
    RunStore on a missing or empty directory would *create* a store
    (makedirs + meta.json) at a typo.
    """
    if not Path(path).is_dir() or not (Path(path) / "meta.json").is_file():
        raise SystemExit(f"{path!r} is not a run store (no meta.json)")
    return RunStore(path)


def _cmd_store(args) -> int:
    stats = _existing_store(args.path).stats()
    if args.json:
        print(json.dumps(stats, indent=2))
        return 0
    print(f"run store {stats['path']}")
    print(f"  schema version   : {stats['schema_version']} "
          f"(created under {stats['created_schema_version']})")
    print(f"  shards           : {stats['shards']}")
    print(f"  cells            : {stats['cells']}")
    print(f"  bytes on disk    : {stats['bytes']:,} "
          f"({stats['indexed_bytes']:,} indexed)")
    if stats["torn_shards"]:
        print(f"  torn shards      : {stats['torn_shards']} "
              f"(trailing crash debris; repaired on next append)")
    return 0


def _cmd_store_verify(args) -> int:
    """Digest-check every entry; optionally repair in place.

    Exits 0 when every live entry verifies, 1 otherwise — after
    ``--repair``, that means 1 only if the rewrite itself failed to
    produce a clean store.
    """
    store = _existing_store(args.path)
    report = store.verify()
    if args.repair and (not report["ok"] or report["torn_lines"]):
        repair = store.repair()
        report = store.verify()
        report["repaired_shards"] = repair["repaired_shards"]
        report["dropped_lines"] = repair["dropped_lines"]
    if args.json:
        print(json.dumps(report, indent=2))
        return 0 if report["ok"] else 1
    print(f"run store {args.path}")
    print(f"  cells verified   : {report['verified']}/{report['cells']}")
    if report["corrupt"]:
        print(f"  corrupt entries  : {report['corrupt']}")
        for key in report["corrupt_keys"]:
            print(f"    - {key}")
    if report["torn_lines"]:
        print(f"  torn lines       : {report['torn_lines']} (crash debris)")
    if report["stale_lines"]:
        print(f"  stale lines      : {report['stale_lines']} "
              f"(superseded; 'store compact' reclaims them)")
    if "repaired_shards" in report:
        print(f"  repaired         : {report['repaired_shards']} shard(s) "
              f"rewritten, {report['dropped_lines']} bad line(s) dropped")
    elif not report["ok"]:
        print("  (re-run with --repair to drop the corrupt entries; the "
              "executor recomputes them on the next resumed sweep)")
    print(f"  status           : {'ok' if report['ok'] else 'CORRUPT'}")
    return 0 if report["ok"] else 1


def _cmd_store_compact(args) -> int:
    """Rewrite shards keeping only the winning line per cell key."""
    store = _existing_store(args.path)
    report = store.compact()
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    print(f"run store {args.path}")
    print(f"  cells            : {report['cells']}")
    print(f"  lines dropped    : {report['dropped_lines']}")
    print(f"  bytes reclaimed  : {report['reclaimed_bytes']:,}")
    return 0


def _cmd_impossible(args) -> int:
    graph = _sample_graph(args.n, require_view_distinct=False, seed=args.seed)
    rep = demonstrate_impossibility(graph, k=args.k, f=args.f, seed=args.seed)
    print(f"n={rep.n} k={rep.k} f={rep.f}")
    print(f"  ceil(k/n)={rep.cap_all}  ceil((k-f)/n)={rep.cap_required}")
    print(f"  Theorem 8 applies : {rep.applies}")
    print(f"  violation shown   : {rep.violated}"
          f"  ({rep.honest_at_crowded} honest robots on node {rep.crowded_node})")
    return 0


def _cmd_lint(args) -> int:
    from .lint import CHECKERS, lint_paths

    select = None
    if args.select:
        select = [token.strip() for token in args.select.split(",") if token.strip()]
    try:
        findings = lint_paths(args.paths or None, select=select)
    except ValueError as exc:  # unknown checker name(s)
        known = ", ".join(c.name for c in CHECKERS)
        print(f"error: {exc} (known: {known})", file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps([f.to_dict() for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(f"\n{len(findings)} finding(s)")
        else:
            print("determinism lint ok: no findings")
    return 1 if findings else 0


def _lint_epilog() -> str:
    from .lint import CHECKERS

    lines = ["checkers (pragma escape in parentheses):"]
    for checker in CHECKERS:
        lines.append(f"  {checker.name} (# repro: {checker.pragma})")
        lines.append(f"      {checker.description}")
    lines.append("example: python -m repro lint --format json")
    return "\n".join(lines)


def _cmd_strategies(args) -> int:
    print("weak-model strategies  :", ", ".join(WEAK_STRATEGIES))
    print("strong-model additions :",
          ", ".join(s for s in STRONG_STRATEGIES if s not in WEAK_STRATEGIES))
    specs = [
        name if not sig else f"{name}({', '.join(param for param, _ in sig)})"
        for name, (sig, _) in sorted(SCHEDULERS.items())
    ]
    print("activation schedulers  :", ", ".join(specs))
    return 0


def _warn_if_baseline_params_drift(path: str, payload: dict) -> None:
    """Flag an overwrite of an existing bench file whose recorded params
    differ: the regression gate re-runs with the *baseline's* params, so
    clobbering it with an exploratory run corrupts the gate.  Guarded
    refreshes belong to ``benchmarks/check_regression.py --update``."""
    try:
        with open(path) as fh:
            existing = json.load(fh)
    except (OSError, ValueError):
        return
    if existing.get("params") not in (None, payload["params"]):
        print(
            f"warning: {path} was recorded with params {existing['params']}; "
            f"overwriting with params {payload['params']} changes what the "
            f"regression gate measures (use benchmarks/check_regression.py "
            f"--update for guarded refreshes, or pass --out elsewhere)"
        )


#: Bench suite registry: name -> (runner(args) -> payload, formatter,
#: the args attribute naming that suite's JSON output path).  ``--suite``
#: choices, ``all`` expansion, and ``--profile`` all derive from this
#: table, so a new suite plugs in with one entry.
_BENCH_SUITES = {
    "engine": (
        lambda args: run_benchmark(
            n=args.n, k=args.k, rounds=args.rounds, seed=args.seed,
            repeats=args.repeats,
        ),
        format_report,
        "out",
    ),
    "graphs": (
        lambda args: run_graph_benchmark(
            seed=args.seed, repeats=args.repeats, cells=args.cells
        ),
        format_graph_report,
        "graphs_out",
    ),
    "batch": (
        lambda args: run_batch_benchmark(
            seed=args.seed, repeats=args.repeats, cells=args.batch_cells
        ),
        format_batch_report,
        "batch_out",
    ),
    "serve": (
        lambda args: run_serve_benchmark(
            seed=args.seed, repeats=args.repeats, cells=args.serve_cells,
            clients=args.serve_clients, dedup_clients=args.serve_dedup,
            workers=args.serve_workers,
        ),
        format_serve_report,
        "serve_out",
    ),
}


def _cmd_bench(args) -> int:
    names = list(_BENCH_SUITES) if args.suite == "all" else [args.suite]
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
    ok = True
    for name in names:
        runner, formatter, out_attr = _BENCH_SUITES[name]
        if profiler is not None:
            profiler.enable()
        payload = runner(args)
        if profiler is not None:
            profiler.disable()
        print(formatter(payload))
        out = getattr(args, out_attr)
        if out and profiler is None:
            # Profiled runs never refresh baselines: instrumentation
            # inflates every timing, which would poison the gate.
            _warn_if_baseline_params_drift(out, payload)
            write_bench_json(payload, out)
            print(f"wrote {out}")
        if args.json:
            print(json.dumps(payload, indent=2))
        ok = ok and payload["all_identical"]
    if profiler is not None:
        import pstats

        print()
        print(f"cProfile — top 20 by tottime ({', '.join(names)}):")
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.strip_dirs().sort_stats("tottime").print_stats(20)
        print("(baseline files not written under --profile)")
    return 0 if ok else 1


def _cmd_serve(args) -> int:
    from .serve import run_server  # deferred: pulls in the asyncio stack

    return run_server(
        host=args.host,
        port=args.port,
        store=_store_of(args),
        workers=args.workers,
        queue_size=args.queue_size,
        policy=_policy_of(args),
        round_every=args.round_every,
    )


def _eval_epilog() -> str:
    from .evals import SUITES

    lines = ["suites:"]
    for suite in SUITES.values():
        lines.append(f"  {suite.name} — {suite.title}")
        lines.append(f"      {suite.regime}")
    lines.append("example: python -m repro eval ring_weak_byz --store runs/ --json")
    return "\n".join(lines)


def _cmd_eval(args) -> int:
    from .evals import expected_filename, run_suite, write_expected

    if args.update_expected and args.solvers:
        print(
            "error: --update-expected with --solvers would pin a partial "
            "suite; refresh the expected file from a full run",
            file=sys.stderr,
        )
        return 2
    solvers = None
    if args.solvers:
        solvers = [tok.strip() for tok in args.solvers.split(",") if tok.strip()]
    store = _store_of(args)
    try:
        report = run_suite(
            args.suite, store=store, workers=args.workers, solvers=solvers,
            resume=args.resume, chunk=args.chunk, policy=_policy_of(args),
            batch=args.batch,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    n_failed = len(report.quarantined())
    if args.json:
        # Canonical bytes: the golden-fixture and determinism tests pin
        # this output, so it must be identical across execution modes.
        print(json.dumps(report.json_payload(), indent=2, sort_keys=True))
    else:
        print(report.table())
        _print_failures(report.results)
        _print_store_traffic(store)
    if args.update_expected:
        if n_failed:
            print(
                f"error: {n_failed} cell(s) quarantined; refusing to pin "
                f"expected results from a degraded run",
                file=sys.stderr,
            )
            return 1
        path = args.expected or _default_bench_path(expected_filename(args.suite))
        write_expected(report.expected_payload(), path)
        print(f"wrote {path}")
    return 1 if n_failed else 0


def _add_plan_args(parser: argparse.ArgumentParser) -> None:
    """The plan-executor flags every solver-running subcommand shares."""
    parser.add_argument("--workers", type=int, default=None,
                        help="processes for the plan (default: serial)")
    parser.add_argument("--store", default=None,
                        help="run-store directory (created if missing; "
                             "omit to disable caching)")
    parser.add_argument("--resume", action="store_true", default=True,
                        help="answer cells already in the store from disk (default)")
    parser.add_argument("--no-resume", dest="resume", action="store_false",
                        help="recompute every cell (results still appended to the store)")
    parser.add_argument("--chunk", type=int, default=1,
                        help="cells per worker dispatch chunk (default: 1)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-cell wall-clock budget in seconds "
                             "(parallel runs only; default: none)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries before a failing cell is quarantined "
                             "(default: 2)")
    parser.add_argument("--strict", action="store_true",
                        help="raise on a quarantined cell instead of "
                             "recording a structured failure")
    parser.add_argument("--batch", dest="batch", action="store_true",
                        default=True,
                        help="group compatible cells through the batched "
                             "struct-of-arrays engine (default; records "
                             "byte-identical to per-cell execution)")
    parser.add_argument("--no-batch", dest="batch", action="store_false",
                        help="force per-cell execution for every cell")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    p = argparse.ArgumentParser(
        prog="repro",
        description="Byzantine Dispersion on Graphs (IPDPS 2021) — reproduction CLI",
    )
    sub = p.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser(
        "table1", help="regenerate the paper's Table 1",
        epilog="example: python -m repro table1 --n 10 --strategy ghost_squatter --workers 4",
    )
    t1.add_argument("--n", type=int, default=9)
    t1.add_argument("--strategy", default="ghost_squatter", choices=sorted(STRATEGIES))
    t1.add_argument("--seed", type=int, default=0)
    _add_plan_args(t1)
    t1.set_defaults(func=_cmd_table1)

    run = sub.add_parser(
        "run", help="run one Table 1 row",
        epilog="example: python -m repro run --row 4 --n 9 --f 2 "
               "--scheduler 'semi_synchronous(p=0.5)' --detail",
    )
    run.add_argument("--row", type=int, required=True, choices=range(1, 8))
    run.add_argument("--n", type=int, default=9)
    run.add_argument("--f", type=int, default=None, help="defaults to the row's bound")
    run.add_argument("--strategy", default="squatter", choices=sorted(STRATEGIES))
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--scheduler", default="synchronous",
                     help="activation-scheduler spec (default: synchronous; "
                          "see 'repro strategies' for the zoo)")
    run.add_argument("--detail", action="store_true",
                     help="call the solver directly for full diagnostics "
                          "(per-phase rounds, violation messages); "
                          "bypasses the store/executor")
    _add_plan_args(run)
    run.set_defaults(func=_cmd_run)

    tol = sub.add_parser(
        "tolerance", help="sweep f for one row",
        epilog="example: python -m repro tolerance --row 5 --n 9 --store runs/ --workers 2",
    )
    tol.add_argument("--row", type=int, required=True, choices=range(1, 8))
    tol.add_argument("--n", type=int, default=9)
    tol.add_argument("--strategy", default="ghost_squatter", choices=sorted(STRATEGIES))
    tol.add_argument("--seed", type=int, default=0)
    _add_plan_args(tol)
    tol.set_defaults(func=_cmd_tolerance)

    sw = sub.add_parser(
        "sweep", help="resumable Table 1 grid backed by an on-disk run store",
        epilog="example: python -m repro sweep --n 9 --strategies squatter,idle "
               "--scheduler 'synchronous,semi_synchronous(p=0.5)' --store runs/",
    )
    sw.add_argument("--n", type=int, default=9)
    sw.add_argument("--strategies", default="ghost_squatter",
                    help="comma-separated adversary strategies")
    sw.add_argument("--serials", default=None,
                    help="comma-separated Table 1 serials (default: all applicable)")
    sw.add_argument("--scheduler", default="synchronous",
                    help="comma-separated activation-scheduler specs, e.g. "
                         "'synchronous,adversarial(window=4)' (default: "
                         "synchronous — identical cells and store keys to "
                         "the historical sweep)")
    sw.add_argument("--seed", type=int, default=0)
    _add_plan_args(sw)
    sw.set_defaults(func=_cmd_sweep)

    sc = sub.add_parser(
        "scenario",
        help="run scenario(s) from a JSON file (see repro.scenarios)",
        epilog="example: python -m repro scenario experiment.json --store runs/ --json",
    )
    sc.add_argument("file", help="JSON file: one scenario object or a list")
    sc.add_argument("--key", action="store_true",
                    help="print the store cell key(s) and exit without running")
    sc.add_argument("--json", action="store_true",
                    help="print records as JSON instead of a table")
    _add_plan_args(sc)
    sc.set_defaults(func=_cmd_scenario)

    st = sub.add_parser(
        "store", help="inspect or maintain an on-disk run store",
        epilog="example: python -m repro store stats runs/",
    )
    st_sub = st.add_subparsers(dest="store_command", required=True)
    st_stats = st_sub.add_parser(
        "stats", help="shard count, cells, bytes, schema version",
        epilog="example: python -m repro store stats runs/ --json",
    )
    st_stats.add_argument("path", help="run-store directory")
    st_stats.add_argument("--json", action="store_true",
                          help="print the stats as JSON")
    st_stats.set_defaults(func=_cmd_store)
    st_verify = st_sub.add_parser(
        "verify", help="digest-check every cached cell; exit 1 on corruption",
        epilog="example: python -m repro store verify runs/ --repair",
    )
    st_verify.add_argument("path", help="run-store directory")
    st_verify.add_argument("--repair", action="store_true",
                           help="rewrite damaged shards, dropping corrupt "
                                "lines (atomic per shard)")
    st_verify.add_argument("--json", action="store_true",
                           help="print the report as JSON")
    st_verify.set_defaults(func=_cmd_store_verify)
    st_compact = st_sub.add_parser(
        "compact", help="reclaim superseded/corrupt lines from the shards",
        epilog="example: python -m repro store compact runs/",
    )
    st_compact.add_argument("path", help="run-store directory")
    st_compact.add_argument("--json", action="store_true",
                            help="print the report as JSON")
    st_compact.set_defaults(func=_cmd_store_compact)

    imp = sub.add_parser(
        "impossible", help="run the Theorem 8 construction",
        epilog="example: python -m repro impossible --n 6 --k 12 --f 6",
    )
    imp.add_argument("--n", type=int, default=6)
    imp.add_argument("--k", type=int, default=12)
    imp.add_argument("--f", type=int, default=6)
    imp.add_argument("--seed", type=int, default=0)
    imp.set_defaults(func=_cmd_impossible)

    ls = sub.add_parser(
        "strategies", help="list the adversary zoo and activation schedulers",
        epilog="example: python -m repro strategies",
    )
    ls.set_defaults(func=_cmd_strategies)

    sv = sub.add_parser(
        "serve",
        help="HTTP scenario server over a run store "
             "(dispersion-as-a-service; see repro.serve)",
        epilog="example: python -m repro serve --store runs/ --workers 4 --port 8008",
    )
    sv.add_argument("--host", default="127.0.0.1",
                    help="bind address (default: 127.0.0.1)")
    sv.add_argument("--port", type=int, default=8008,
                    help="bind port, 0 for ephemeral (default: 8008)")
    sv.add_argument("--store", default=None,
                    help="run-store directory shared with the CLI (created "
                         "if missing; omit to recompute every request)")
    sv.add_argument("--workers", type=int, default=2,
                    help="compute threads for cold cells (default: 2)")
    sv.add_argument("--queue-size", dest="queue_size", type=int, default=64,
                    help="bounded submission queue; a full queue answers "
                         "429 + Retry-After (default: 64)")
    sv.add_argument("--round-every", dest="round_every", type=int, default=100,
                    help="SSE round-progress sampling stride (default: "
                         "every 100 rounds)")
    sv.add_argument("--timeout", type=float, default=None,
                    help="per-cell wall-clock budget in seconds "
                         "(default: none)")
    sv.add_argument("--retries", type=int, default=2,
                    help="retries before a failing cell is quarantined "
                         "(default: 2)")
    sv.set_defaults(func=_cmd_serve)

    li = sub.add_parser(
        "lint",
        help="determinism linter: static proofs of the byte-identity rules",
        epilog=_lint_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    li.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: the installed "
                         "repro package)")
    li.add_argument("--format", choices=("human", "json"), default="human",
                    help="output format (default: human)")
    li.add_argument("--select",
                    help="comma-separated checker names to run (default: all)")
    li.set_defaults(func=_cmd_lint)

    suite_names = (*_BENCH_SUITES, "all")
    be = sub.add_parser(
        "bench",
        help="microbenchmarks: engine, graph substrate, batched sweeps",
        epilog="example: python -m repro bench --suite batch --repeats 3",
    )
    be.add_argument("--suite", choices=suite_names, default="engine",
                    help=f"which microbenchmark(s) to run — one of "
                         f"{', '.join(suite_names)} (default: engine)")
    be.add_argument("--n", type=int, default=96, help="graph size (engine suite)")
    be.add_argument("--k", type=int, default=64, help="robot count (engine suite)")
    be.add_argument("--rounds", type=int, default=500,
                    help="rounds per scenario (engine suite)")
    be.add_argument("--seed", type=int, default=0)
    be.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    be.add_argument("--cells", type=int, default=24,
                    help="sweep cells in the dispatch scenario (graphs suite)")
    be.add_argument("--batch-cells", type=int, default=64,
                    help="simulations per scenario (batch suite; default: 64)")
    be.add_argument("--serve-cells", type=int, default=6,
                    help="distinct cells in the cold/warm workloads "
                         "(serve suite; default: 6)")
    be.add_argument("--serve-clients", type=int, default=4,
                    help="concurrent HTTP clients (serve suite; default: 4)")
    be.add_argument("--serve-dedup", type=int, default=8,
                    help="concurrent identical requests in the dedup "
                         "workload (serve suite; default: 8)")
    be.add_argument("--serve-workers", type=int, default=4,
                    help="server compute threads (serve suite; default: 4)")
    be.add_argument("--out", default=_default_bench_path("BENCH_engine.json"),
                    help="engine JSON output path ('' to skip writing; "
                         "default: the checked-in benchmarks/ baseline)")
    be.add_argument("--graphs-out", default=_default_bench_path("BENCH_graphs.json"),
                    help="graphs JSON output path ('' to skip writing; "
                         "default: the checked-in benchmarks/ baseline)")
    be.add_argument("--batch-out", default=_default_bench_path("BENCH_batch.json"),
                    help="batch JSON output path ('' to skip writing; "
                         "default: the checked-in benchmarks/ baseline)")
    be.add_argument("--serve-out", default=_default_bench_path("BENCH_serve.json"),
                    help="serve JSON output path ('' to skip writing; "
                         "default: the checked-in benchmarks/ baseline)")
    be.add_argument("--profile", action="store_true",
                    help="run the selected suite(s) under cProfile and print "
                         "the top-20 functions by tottime (baseline files "
                         "are not written)")
    be.add_argument("--json", action="store_true", help="also print the JSON payload")
    be.set_defaults(func=_cmd_bench)

    from .evals import suite_names as _eval_suite_names

    ev = sub.add_parser(
        "eval",
        help="run a named solver eval suite: leaderboard + pinned expected results",
        epilog=_eval_epilog(),
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    ev.add_argument("suite", choices=_eval_suite_names(), metavar="SUITE",
                    help=f"which suite to run — one of "
                         f"{', '.join(_eval_suite_names())}")
    ev.add_argument("--solvers",
                    help="comma-separated solver subset (serials, names, or "
                         "theoremN; default: every solver the suite exercises)")
    view = ev.add_mutually_exclusive_group()
    view.add_argument("--json", action="store_true",
                      help="print the leaderboard + expected payload as "
                           "canonical JSON (wall-time-free, byte-stable)")
    view.add_argument("--table", action="store_true",
                      help="print the human leaderboard table (default)")
    ev.add_argument("--update-expected", action="store_true",
                    help="rewrite the suite's expected-results file from "
                         "this run (full suite only)")
    ev.add_argument("--expected", default=None,
                    help="expected-results path for --update-expected "
                         "(default: the checked-in benchmarks/EVAL_<suite>.json)")
    _add_plan_args(ev)
    ev.set_defaults(func=_cmd_eval)
    return p


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
