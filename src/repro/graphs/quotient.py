"""Quotient graphs of anonymous port-labeled graphs (paper Section 2.1).

Adapted from Czyzowicz, Kosowski, Pelc [16] and Yamashita–Kameda [47]:
the quotient graph ``Q_G`` has one node per view-equivalence class of
``G``; there is an edge between classes ``X`` and ``Y`` with labels ``p``
at ``X`` and ``q`` at ``Y`` whenever some edge ``(x, y)`` of ``G`` with
``x ∈ X, y ∈ Y`` has ports ``p`` at ``x`` and ``q`` at ``y``.  The
quotient graph is in general *not simple* (self-loops and parallel edges
appear whenever symmetry collapses classes), so it gets its own
representation here instead of reusing :class:`PortLabeledGraph`.

The paper's Theorem 1 requires graphs where ``Q_G ≅ G``; since ``Q_G``
always has at most ``n`` nodes and exactly ``n`` only when every class is
a singleton, that condition is equivalent to *all views distinct* — which
:func:`is_quotient_isomorphic` tests directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import GraphStructureError
from .port_labeled import PortLabeledGraph
from .views import view_partition

__all__ = ["QuotientGraph", "quotient_graph", "is_quotient_isomorphic"]


@dataclass(frozen=True)
class QuotientGraph:
    """The quotient graph of a port-labeled graph.

    Attributes
    ----------
    num_classes:
        Number of view-equivalence classes (== number of quotient nodes).
    class_of:
        ``class_of[u]`` is the class of node ``u`` in the original graph.
    port_map:
        ``port_map[X][p] == (Y, q)``: from any node of class ``X``, leaving
        through port ``p`` lands on a node of class ``Y``, entering through
        port ``q``.  Well defined because view-equivalent nodes have
        identical port behaviour (refinement fixpoint).  Self-loops
        (``Y == X``) and parallel class edges are legal here.
    """

    num_classes: int
    class_of: Tuple[int, ...]
    port_map: Tuple[Tuple[Tuple[int, int], ...], ...]

    def degree(self, cls: int) -> int:
        """Degree (number of ports) of quotient node ``cls``."""
        return len(self.port_map[cls])

    def traverse(self, cls: int, port: int) -> Tuple[int, int]:
        """Port traversal in the quotient graph (mirrors the base graph)."""
        row = self.port_map[cls]
        if port < 1 or port > len(row):
            raise GraphStructureError(f"class {cls} has ports 1..{len(row)}, not {port}")
        return row[port - 1]

    def class_sizes(self) -> List[int]:
        """Number of original nodes per class."""
        sizes = [0] * self.num_classes
        for c in self.class_of:
            sizes[c] += 1
        return sizes

    def to_port_labeled(self) -> PortLabeledGraph:
        """Reconstruct a :class:`PortLabeledGraph` when the quotient is simple.

        Only valid when every class is a singleton (``Q_G ≅ G``); raises
        :class:`GraphStructureError` otherwise.  This is exactly the object
        Find-Map hands to robots under Theorem 1's pre-condition.
        """
        if self.num_classes != len(self.class_of):
            raise GraphStructureError(
                "quotient graph has merged classes; it is not isomorphic to the base graph"
            )
        table: Dict[int, Dict[int, Tuple[int, int]]] = {
            c: {p0 + 1: vq for p0, vq in enumerate(row)}
            for c, row in enumerate(self.port_map)
        }
        return PortLabeledGraph(table)


def quotient_graph(graph: PortLabeledGraph) -> QuotientGraph:
    """Compute the quotient graph of ``graph``.

    This is the *output* of the Czyzowicz et al. [16] single-robot map
    construction protocol (our Find-Map substitution — see DESIGN.md §5.1);
    the round cost of actually running that protocol is charged separately
    by :func:`repro.core.find_map.find_map_rounds`.
    """
    class_of = view_partition(graph)
    num_classes = max(class_of) + 1 if class_of else 0
    representative: List[int] = [-1] * num_classes
    for u, c in enumerate(class_of):
        if representative[c] == -1:
            representative[c] = u
    port_map: List[Tuple[Tuple[int, int], ...]] = []
    for c in range(num_classes):
        u = representative[c]
        row: List[Tuple[int, int]] = [
            (class_of[v], q) for v, q in graph.port_row(u)
        ]
        port_map.append(tuple(row))
    return QuotientGraph(
        num_classes=num_classes,
        class_of=tuple(class_of),
        port_map=tuple(port_map),
    )


def is_quotient_isomorphic(graph: PortLabeledGraph) -> bool:
    """True iff ``Q_G ≅ G`` — the precise class of graphs Theorem 1 covers.

    Equivalent to "all nodes have pairwise distinct views".
    """
    part = view_partition(graph)
    return len(set(part)) == graph.n
