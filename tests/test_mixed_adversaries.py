"""Integration tests with heterogeneous and phase-aware adversaries.

Real adversaries do not all run the same playbook.  These tests mix
strategies within one run and include defect-late robots (cooperative
silence through the mapping phase, sabotage during dispersion — the
``sleeper`` combinator), plus larger instances than the unit tests use.
"""

import pytest

from repro.byzantine import Adversary, get_strategy, sleeper
from repro.core import (
    solve_theorem1,
    solve_theorem3,
    solve_theorem4,
    solve_theorem6,
)
from repro.graphs import random_connected


@pytest.fixture(scope="module")
def g12():
    g = random_connected(12, seed=7)
    from repro.graphs import is_quotient_isomorphic

    assert is_quotient_isomorphic(g)
    return g


class TestHeterogeneousMixes:
    def test_theorem1_mixed_zoo(self, g12):
        adv = Adversary(
            {
                1: "squatter",
                2: "ghost_squatter",
                3: "flag_spammer",
                4: "stalker",
                5: "random_walker",
                6: "crash",
            },
            seed=3,
        )
        rep = solve_theorem1(g12, f=6, adversary=adv, seed=5)
        assert rep.success, rep.violations

    def test_theorem3_mixed_zoo(self, g12):
        adv = Adversary(
            {1: "false_commander", 2: "decoy_token", 3: "random_walker",
             4: "squatter", 5: "idle"},
            seed=3,
        )
        rep = solve_theorem3(g12, f=5, adversary=adv, seed=5)
        assert rep.success, rep.violations

    def test_theorem4_mixed(self, g12):
        adv = Adversary({1: "false_commander", 2: "ghost_squatter", 3: "stalker"}, seed=3)
        rep = solve_theorem4(g12, f=3, adversary=adv, seed=5)
        assert rep.success, rep.violations

    def test_theorem6_mixed_strong(self, g12):
        adv = Adversary({1: "impersonator", 2: "id_cycler"}, seed=3)
        rep = solve_theorem6(g12, f=2, adversary=adv, seed=5)
        assert rep.success, rep.violations


class TestDefectLate:
    def test_sleeper_defects_during_dispersion(self, g12):
        """Byzantine robots that stay dead through the mapping phase and
        wake as fake settlers exactly when dispersion starts."""
        rep_probe = solve_theorem4(g12, f=0, seed=5)
        # Mapping phase length ~= total honest rounds minus the O(n) tail.
        wake = max(rep_probe.rounds_simulated - 3 * g12.n, 1)
        defector = sleeper(wake, get_strategy("ghost_squatter"))
        rep = solve_theorem4(g12, f=3, adversary=Adversary(defector, seed=4), seed=5)
        assert rep.success, rep.violations

    def test_sleeper_defects_mid_mapping(self, g12):
        probe = solve_theorem3(g12, f=0, seed=5)
        wake = probe.rounds_simulated // 2
        defector = sleeper(wake, get_strategy("random_walker"))
        rep = solve_theorem3(g12, f=5, adversary=Adversary(defector, seed=4), seed=5)
        assert rep.success, rep.violations


class TestLargerInstances:
    def test_theorem1_n16(self):
        g = random_connected(16, seed=3)
        from repro.graphs import is_quotient_isomorphic

        if not is_quotient_isomorphic(g):
            pytest.skip("sampled graph not view-distinct")
        rep = solve_theorem1(g, f=15, adversary=Adversary("ghost_squatter"), seed=2)
        assert rep.success

    def test_theorem4_n15(self):
        g = random_connected(15, seed=9)
        rep = solve_theorem4(g, f=4, adversary=Adversary("squatter"), seed=2)
        assert rep.success, rep.violations

    def test_theorem6_n16(self):
        g = random_connected(16, seed=9)
        rep = solve_theorem6(g, f=3, adversary=Adversary("impersonator"), seed=2)
        assert rep.success, rep.violations

    def test_theorem3_n12_full_tolerance(self, g12):
        rep = solve_theorem3(g12, f=5, adversary=Adversary("ghost_squatter"), seed=2)
        assert rep.success, rep.violations
