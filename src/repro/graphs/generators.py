"""Graph families used throughout the paper's setting and our benchmarks.

Every generator returns a connected :class:`~repro.graphs.port_labeled.
PortLabeledGraph`.  Families were chosen to cover the regimes the paper
cares about:

* **ring** — the setting of the prior work [34, 36] this paper extends;
  also the worst case for view-distinguishability (a ring's quotient graph
  has a single node for the canonical port labeling).
* **clique / hypercube / torus** — vertex-transitive families: quotient
  graphs collapse, so Theorem 1 does *not* apply; exercised by tests of
  :func:`repro.graphs.quotient.is_quotient_isomorphic`.
* **random regular / Erdős–Rényi / random tree / lollipop** — asymmetric
  families: almost surely all views are distinct, so Theorem 1 *does*
  apply; these are the Table-1 row-1 workloads.
* **path, star, complete bipartite** — edge cases for traversal code
  (degree-1 nodes, hub nodes).
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..errors import ConfigurationError
from .port_labeled import PortLabeledGraph

__all__ = [
    "ring",
    "path",
    "clique",
    "star",
    "hypercube",
    "torus",
    "random_regular",
    "erdos_renyi",
    "random_tree",
    "lollipop",
    "complete_bipartite",
    "random_connected",
    "FAMILIES",
]


def _rng(seed: Optional[int]):
    return None if seed is None else np.random.default_rng(seed)


def ring(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Cycle on ``n >= 3`` nodes.

    With ``seed=None`` the port labeling is the canonical symmetric one
    (port 1 = clockwise, port 2 = counter-clockwise at every node), making
    the ring vertex-transitive as a port-labeled graph — its quotient graph
    collapses to a single node, the worst case for Theorem 1.  A seeded
    labeling scrambles ports per node, usually breaking the symmetry.
    """
    if n < 3:
        raise ConfigurationError("ring needs n >= 3")
    if seed is not None:
        return PortLabeledGraph.from_networkx(nx.cycle_graph(n), rng=_rng(seed))
    table = {
        u: {1: ((u + 1) % n, 2), 2: ((u - 1) % n, 1)}
        for u in range(n)
    }
    return PortLabeledGraph(table)


def path(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Path on ``n >= 2`` nodes (degree-1 endpoints)."""
    if n < 2:
        raise ConfigurationError("path needs n >= 2")
    return PortLabeledGraph.from_networkx(nx.path_graph(n), rng=_rng(seed))


def clique(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Complete graph on ``n >= 2`` nodes.

    With ``seed=None`` the labeling is circulant: at node ``u``, port ``p``
    leads to ``(u + p) mod n`` (arriving through port ``n − p``), which is
    vertex-transitive — all views coincide, quotient collapses to one node.
    """
    if n < 2:
        raise ConfigurationError("clique needs n >= 2")
    if seed is not None:
        return PortLabeledGraph.from_networkx(nx.complete_graph(n), rng=_rng(seed))
    table = {
        u: {p: ((u + p) % n, n - p) for p in range(1, n)}
        for u in range(n)
    }
    return PortLabeledGraph(table)


def star(n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Star: one hub, ``n - 1`` leaves."""
    if n < 2:
        raise ConfigurationError("star needs n >= 2")
    return PortLabeledGraph.from_networkx(nx.star_graph(n - 1), rng=_rng(seed))


def hypercube(dim: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Hypercube of dimension ``dim`` (``2**dim`` nodes).

    With ``seed=None``, port ``p`` flips bit ``p − 1`` (dimension-labeled,
    same port on both endpoints) — vertex-transitive, quotient collapses.
    """
    if dim < 1:
        raise ConfigurationError("hypercube needs dim >= 1")
    if seed is not None:
        g = nx.convert_node_labels_to_integers(nx.hypercube_graph(dim), ordering="sorted")
        return PortLabeledGraph.from_networkx(g, rng=_rng(seed))
    n = 1 << dim
    table = {
        u: {p: (u ^ (1 << (p - 1)), p) for p in range(1, dim + 1)}
        for u in range(n)
    }
    return PortLabeledGraph(table)


def torus(rows: int, cols: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """2-D torus grid ``rows x cols`` (``rows, cols >= 3``).

    With ``seed=None``, ports are direction-labeled (1=+row, 2=−row,
    3=+col, 4=−col at every node) — vertex-transitive, quotient collapses.
    """
    if rows < 3 or cols < 3:
        raise ConfigurationError("torus needs rows, cols >= 3")
    if seed is not None:
        g = nx.convert_node_labels_to_integers(
            nx.grid_2d_graph(rows, cols, periodic=True), ordering="sorted"
        )
        return PortLabeledGraph.from_networkx(g, rng=_rng(seed))

    def idx(r: int, c: int) -> int:
        return (r % rows) * cols + (c % cols)

    table = {}
    for r in range(rows):
        for c in range(cols):
            table[idx(r, c)] = {
                1: (idx(r + 1, c), 2),
                2: (idx(r - 1, c), 1),
                3: (idx(r, c + 1), 4),
                4: (idx(r, c - 1), 3),
            }
    return PortLabeledGraph(table)


def random_regular(n: int, d: int, seed: int = 0) -> PortLabeledGraph:
    """Connected random ``d``-regular graph (retries until connected)."""
    if n * d % 2 != 0 or d >= n:
        raise ConfigurationError(f"no {d}-regular graph on {n} nodes")
    for attempt in range(64):
        g = nx.random_regular_graph(d, n, seed=seed + attempt)
        if nx.is_connected(g):
            return PortLabeledGraph.from_networkx(g, rng=_rng(seed))
    raise ConfigurationError(f"could not sample connected {d}-regular graph on {n} nodes")


def erdos_renyi(n: int, p: float, seed: int = 0) -> PortLabeledGraph:
    """Connected G(n, p) (resampled until connected; p is bumped on failure)."""
    prob = p
    for attempt in range(64):
        g = nx.gnp_random_graph(n, prob, seed=seed + attempt)
        if nx.is_connected(g):
            return PortLabeledGraph.from_networkx(g, rng=_rng(seed))
        prob = min(1.0, prob * 1.25)
    raise ConfigurationError(f"could not sample connected G({n},{p})")


def random_tree(n: int, seed: int = 0) -> PortLabeledGraph:
    """Uniform random labeled tree on ``n`` nodes (Prüfer sampling)."""
    if n < 2:
        raise ConfigurationError("random_tree needs n >= 2")
    rng = np.random.default_rng(seed)
    if n == 2:
        return PortLabeledGraph.from_edges(2, [(0, 1)])
    prufer = [int(rng.integers(0, n)) for _ in range(n - 2)]
    g = nx.from_prufer_sequence(prufer)
    return PortLabeledGraph.from_networkx(g, rng=rng)


def lollipop(clique_n: int, path_n: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Lollipop graph: a clique glued to a path (classic cover-time worst case)."""
    if clique_n < 3 or path_n < 1:
        raise ConfigurationError("lollipop needs clique_n >= 3, path_n >= 1")
    g = nx.lollipop_graph(clique_n, path_n)
    return PortLabeledGraph.from_networkx(g, rng=_rng(seed))


def complete_bipartite(a: int, b: int, seed: Optional[int] = None) -> PortLabeledGraph:
    """Complete bipartite graph K(a, b)."""
    if a < 1 or b < 1:
        raise ConfigurationError("complete_bipartite needs a, b >= 1")
    g = nx.complete_bipartite_graph(a, b)
    return PortLabeledGraph.from_networkx(g, rng=_rng(seed))


def random_connected(n: int, seed: int = 0, avg_degree: float = 3.0) -> PortLabeledGraph:
    """A generic connected random graph with roughly ``avg_degree`` mean degree.

    The workhorse for property-based tests: take a random tree (guarantees
    connectivity) and sprinkle extra random edges on top.
    """
    rng = np.random.default_rng(seed)
    tree = nx.from_prufer_sequence([int(rng.integers(0, n)) for _ in range(n - 2)]) if n > 2 else nx.path_graph(n)
    g = nx.Graph(tree)
    extra = max(0, int(n * avg_degree / 2) - (n - 1))
    tries = 0
    while extra > 0 and tries < 50 * n:
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        tries += 1
        if u != v and not g.has_edge(u, v):
            g.add_edge(u, v)
            extra -= 1
    return PortLabeledGraph.from_networkx(g, rng=rng)


#: Registry used by the experiment sweeps: name -> callable(n, seed) -> graph.
FAMILIES = {
    "ring": lambda n, seed=0: ring(n, seed),
    "clique": lambda n, seed=0: clique(n, seed),
    "random_regular_3": lambda n, seed=0: random_regular(n if (n * 3) % 2 == 0 else n + 1, 3, seed),
    "erdos_renyi": lambda n, seed=0: erdos_renyi(n, min(1.0, 2.5 * np.log(max(n, 2)) / max(n, 2)), seed),
    "random_tree": lambda n, seed=0: random_tree(n, seed),
    "random_connected": lambda n, seed=0: random_connected(n, seed),
}
