"""Failure injection: what actually breaks beyond the theorems' bounds.

The drivers enforce each theorem's pre-conditions, so to show the bounds
are *load-bearing* (not bureaucratic) these tests bypass the drivers and
assemble the raw machinery in out-of-contract regimes:

* strong Byzantine robots against the weak-model procedure
  Dispersion-Using-Map — Lemma 2 collapses (an honest ID gets
  blacklisted), which is the paper's stated reason for Section 4's
  redesign;
* a Byzantine majority in map voting — the majority rule elects garbage;
* believe-thresholds with a forged quorum — the token is hijacked.

Each test documents the exact invariant that dies.
"""

import numpy as np
import pytest

from repro.byzantine import Adversary
from repro.core.dispersion_using_map import (
    DispersionMemory,
    dispersion_rounds_bound,
    dispersion_using_map,
)
from repro.graphs import canonical_form, random_connected, ring
from repro.mapping import RunSpec, agent_program, majority_map, plan_honest_run, token_program
from repro.sim import SETTLED, Move, Stay, World, finish_report


class TestStrongByzantineBreaksWeakProcedure:
    def test_impersonator_gets_honest_id_blacklisted(self):
        """Lemma 2 holds only for weak Byzantine robots.  A strong robot
        that claims honest robot H's ID and 'settles' somewhere H is not
        makes other honest robots blacklist H's ID — after which they may
        settle on top of H (Lemma 3's proof needs Lemma 2)."""
        g = random_connected(7, seed=3)
        w = World(g, model="strong")
        mems = {}
        victim = 5
        # The honest victim settles at node 0 in round 0 (it is the
        # smallest honest robot at the gather node); the walker records it
        # there.  The impersonator sits on the walker's first tour stop
        # claiming ("id 5", Settled): Step 4 sees ID 5 'settled earlier at
        # node 0' now present elsewhere — and blacklists the honest ID.
        first_stop, _ = g.traverse(0, 1)

        def impostor(api, rng=None):
            api.set_claimed_id(victim)
            api.set_state(SETTLED)
            while True:
                yield Stay()

        w.add_robot(9, first_stop, impostor, byzantine=True)
        for rid in (victim, 6):
            mem = DispersionMemory()
            mems[rid] = mem

            def factory(api, _mem=mem):
                return dispersion_using_map(api, g, 0, memory=_mem)

            w.add_robot(rid, 0, factory)
        w.run(max_rounds=dispersion_rounds_bound(7) + 4)
        # The weak-model invariant is violated: the walker blacklisted the
        # honest victim's ID.
        assert victim in mems[6].blacklist, (
            "strong Byzantine ID faking must poison the blacklist"
        )

    def test_weak_model_cannot_do_this(self):
        """Same scenario, weak model: the simulator pins claimed IDs, the
        blacklist stays clean, dispersion succeeds (Lemma 2)."""
        g = random_connected(7, seed=3)
        w = World(g, model="weak")
        mems = {}
        adv = Adversary("ghost_squatter", seed=1)
        w.add_robot(9, 1, adv.program_factory(9), byzantine=True)
        for rid in (5, 6):
            mem = DispersionMemory()
            mems[rid] = mem

            def factory(api, _mem=mem):
                return dispersion_using_map(api, g, 0, memory=_mem)

            w.add_robot(rid, 0, factory)
        w.run(max_rounds=dispersion_rounds_bound(7) + 4)
        for mem in mems.values():
            assert {5, 6}.isdisjoint(mem.blacklist)
        rep = finish_report(w)
        assert rep.success


class TestMajorityCollapsesBeyondHalf:
    def test_garbage_majority_elects_garbage(self):
        """Theorem 3's counting argument needs good pairings to outnumber
        bad ones; past f = n/2 the vote elects the adversary's map."""
        n = 8
        good = random_connected(n, seed=1)
        garbage = ring(n, seed=2)
        f = n // 2 + 1  # beyond ⌊n/2⌋−1
        candidates = [good] * (n - f - 1) + [garbage] * f
        winner = majority_map(candidates)
        assert canonical_form(winner, 0) == canonical_form(garbage, 0)

    def test_at_the_bound_good_still_wins(self):
        n = 8
        good = random_connected(n, seed=1)
        garbage = ring(n, seed=2)
        f = n // 2 - 1
        candidates = [good] * (n - f - 1) + [garbage] * f
        winner = majority_map(candidates)
        assert canonical_form(winner, 0) == canonical_form(good, 0)


class TestForgedQuorumHijacksToken:
    def test_token_follows_forged_commands_when_threshold_met(self):
        """With cmd_threshold=2 and two Byzantine 'agents', the token is
        marched through port 1 forever — the in-tolerance thresholds of
        Sections 3.2/4 exist precisely to make this quorum unreachable."""
        g = ring(8)
        run = RunSpec(
            tag=("hijack",), start_round=0, tick_budget=6,
            agent_ids=frozenset({1, 2}), token_ids=frozenset({3}),
            cmd_threshold=2, presence_threshold=1,
        )
        w = World(g)

        def forger(api, _run=run):
            # Forge a full quorum AND escort the token (commands are read
            # off the token's node board, so hijackers must travel along —
            # just like genuine agents).
            while True:
                api.say(("cmd", _run.tag, api.round // 2, 1))
                yield Stay()  # command round
                yield Move(1)  # move round: march with the token

        w.add_robot(1, 0, forger, byzantine=True)
        w.add_robot(2, 0, forger, byzantine=True)
        w.add_robot(3, 0, lambda api: token_program(api, run, {}))
        w.run(max_rounds=run.active_rounds)
        # Hijacked: the honest token left home under forged commands...
        assert w.robots[3].moves_made >= 2
        # ...but footnote-11 discipline still brings it home by slot end.
        w.run(max_rounds=run.end_round - w.round + 2)
        assert w.robots[3].node == 0

    def test_below_threshold_token_never_moves(self):
        g = ring(8)
        run = RunSpec(
            tag=("safe",), start_round=0, tick_budget=6,
            agent_ids=frozenset({1, 2, 5}), token_ids=frozenset({3}),
            cmd_threshold=2, presence_threshold=1,
        )
        w = World(g)
        adv = Adversary("false_commander", seed=0)
        w.add_robot(1, 0, adv.program_factory(1), byzantine=True)  # lone forger
        w.add_robot(3, 0, lambda api: token_program(api, run, {}))
        w.run(max_rounds=run.end_round + 2)
        assert w.robots[3].moves_made == 0


class TestOverfullWorld:
    def test_more_robots_than_nodes_cannot_disperse(self):
        """k > n with cap 1: Dispersion-Using-Map's pigeonhole breaks and
        some honest robot must end unsettled (pre-Theorem-8 intuition)."""
        g = random_connected(6, seed=5)
        w = World(g)
        k = 8
        for rid in range(1, k + 1):
            def factory(api):
                return dispersion_using_map(api, g, 0)

            w.add_robot(rid, 0, factory)
        w.run(max_rounds=dispersion_rounds_bound(6) + 8)
        rep = finish_report(w)
        assert not rep.success
        unsettled = [rid for rid, node in rep.settled.items() if node is None]
        assert len(unsettled) == k - g.n
