"""Real (fully simulated) gathering on view-distinguishable graphs.

On graphs where all views are distinct (the Theorem 1 class), gathering
needs no prior-work machinery at all: every robot can privately map the
graph (Find-Map), identify the node with the lexicographically smallest
rooted canonical form — a *view-invariant* property, so all robots pick
the same real node — and simply walk there.  Byzantine robots cannot
interfere (no communication is consumed).

This substrate is a bonus beyond the paper: it upgrades the Theorem 1
algorithm into a *gathering* algorithm on its graph class and lets the
examples demonstrate an arbitrary-start, fully simulated pipeline with
zero oracle charges.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from ..graphs.isomorphism import canonical_form
from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.traversal import navigate
from ..sim.robot import Action, Move, RobotAPI

__all__ = ["canonical_node_on_map", "rendezvous_walk"]


def canonical_node_on_map(map_graph: PortLabeledGraph) -> int:
    """The map node with lexicographically smallest rooted canonical form.

    Because the canonical form is invariant under port-preserving
    isomorphism, robots holding isomorphic private maps select the *same
    real node* even though their private labels differ.  On
    view-distinguishable graphs the minimum is unique (all forms differ).
    """
    best_node = 0
    best_form = None
    for v in range(map_graph.n):
        form = canonical_form(map_graph, v)
        if best_form is None or form < best_form:
            best_form = form
            best_node = v
    return best_node


def rendezvous_walk(
    api: RobotAPI,
    map_graph: PortLabeledGraph,
    map_pos: int,
) -> Iterator[Action]:
    """Walk from ``map_pos`` to the canonical node; yields one move/round.

    Returns (via StopIteration) after arriving; at most ``n − 1`` rounds.
    Generator-composable into larger programs with ``yield from``.
    """
    target = canonical_node_on_map(map_graph)
    for port in navigate(map_graph, map_pos, target):
        yield Move(port)
