"""Tests for the adversary strategy zoo and the Adversary controller."""

import numpy as np
import pytest

from repro.byzantine import (
    STRATEGIES,
    STRONG_STRATEGIES,
    WEAK_STRATEGIES,
    Adversary,
    get_strategy,
    sleeper,
)
from repro.byzantine.adversary import choose_byzantine_ids
from repro.errors import ConfigurationError, SimulationError
from repro.graphs import random_connected, ring
from repro.sim import SETTLED, Stay, World


def drive(strategy_name, model="weak", rounds=12, with_honest=True):
    g = random_connected(7, seed=2)
    w = World(g, model=model)
    adv = Adversary(strategy_name, seed=5)
    w.add_robot(1, 0, adv.program_factory(1), byzantine=True)
    if with_honest:
        def idle_honest(api):
            while True:
                yield Stay()

        w.add_robot(5, 0, idle_honest)
    w.run(max_rounds=rounds)
    return w


class TestStrategyZoo:
    @pytest.mark.parametrize("name", WEAK_STRATEGIES)
    def test_weak_strategies_run_in_weak_model(self, name):
        w = drive(name, model="weak")
        assert w.round > 0  # no crash

    @pytest.mark.parametrize("name", STRONG_STRATEGIES)
    def test_strong_strategies_run_in_strong_model(self, name):
        w = drive(name, model="strong")
        assert w.round > 0

    def test_weak_model_blocks_id_faking(self):
        with pytest.raises(SimulationError, match="strong"):
            drive("impersonator", model="weak")

    def test_squatter_claims_settled_and_stays(self):
        w = drive("squatter")
        r = w.robots[1]
        assert r.state == SETTLED
        assert r.node == 0
        assert r.moves_made == 0

    def test_ghost_squatter_moves_while_claiming_settled(self):
        w = drive("ghost_squatter", rounds=10)
        r = w.robots[1]
        assert r.state == SETTLED
        assert r.moves_made >= 1

    def test_flag_spammer_raises_flag(self):
        w = drive("flag_spammer", rounds=3)
        assert w.robots[1].flag == 1

    def test_crash_terminates_immediately(self):
        w = drive("crash", rounds=3)
        assert w.robots[1].terminated

    def test_random_walker_moves(self):
        w = drive("random_walker", rounds=15)
        assert w.robots[1].moves_made >= 1

    def test_stalker_reaches_target(self):
        g = ring(8)
        w = World(g)
        adv = Adversary("stalker", seed=1)
        w.add_robot(9, 4, adv.program_factory(9), byzantine=True)

        def idle_honest(api):
            while True:
                yield Stay()

        w.add_robot(1, 0, idle_honest)  # smallest honest: the target
        w.run(max_rounds=10)
        assert w.robots[9].node == 0  # caught up with the target

    def test_impersonator_steals_honest_id(self):
        w = drive("impersonator", model="strong", rounds=3)
        assert w.robots[1].claimed_id == 5  # the smallest honest ID

    def test_id_cycler_changes_claims(self):
        g = random_connected(7, seed=2)
        w = World(g, model="strong")
        adv = Adversary("id_cycler", seed=5)
        w.add_robot(1, 0, adv.program_factory(1), byzantine=True)
        for rid in (4, 5, 6):  # material for the cycle

            def idle_honest(api):
                while True:
                    yield Stay()

            w.add_robot(rid, 1, idle_honest)
        claims = set()
        for _ in range(6):
            w.step()
            claims.add(w.robots[1].claimed_id)
        assert len(claims) >= 3

    def test_false_commander_posts_commands(self):
        g = random_connected(7, seed=2)
        w = World(g)
        adv = Adversary("false_commander", seed=5)
        w.add_robot(1, 0, adv.program_factory(1), byzantine=True)
        w.step()
        assert any(
            p[0] == "cmd" for _, p in w.board_previous.get(0, [])
        )

    def test_sleeper_combinator(self):
        inner = get_strategy("squatter")
        s = sleeper(3, inner)
        g = ring(5)
        w = World(g)
        w.add_robot(1, 0, lambda api: s(api, np.random.default_rng(0)), byzantine=True)
        w.step()
        assert w.robots[1].state != SETTLED  # still dormant
        for _ in range(4):
            w.step()
        assert w.robots[1].state == SETTLED

    def test_sleeper_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            sleeper(-1, get_strategy("idle"))

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            get_strategy("teleporter")

    def test_registry_covers_lists(self):
        for name in WEAK_STRATEGIES + STRONG_STRATEGIES:
            assert name in STRATEGIES


class TestAdversaryController:
    def test_choose_lowest(self):
        assert choose_byzantine_ids([5, 1, 9, 3], 2, "lowest") == [1, 3]

    def test_choose_highest(self):
        assert choose_byzantine_ids([5, 1, 9, 3], 2, "highest") == [5, 9]

    def test_choose_random_deterministic(self):
        a = choose_byzantine_ids(range(10), 4, "random", seed=3)
        b = choose_byzantine_ids(range(10), 4, "random", seed=3)
        assert a == b and len(a) == 4

    def test_choose_random_default_is_deterministic(self):
        """Regression: the old `seed=None` default drew from OS entropy,
        so "random placement" sweeps were unreproducible (and could
        never be cached content-addressed).  An unseeded call is pinned
        to seed 0."""
        a = choose_byzantine_ids(range(20), 5, "random")
        assert a == choose_byzantine_ids(range(20), 5, "random")
        assert a == choose_byzantine_ids(range(20), 5, "random", seed=None)
        assert a == choose_byzantine_ids(range(20), 5, "random", seed=0)

    def test_adversary_threads_seed_into_placement(self):
        """Regression: Adversary(seed=...) never reached the placement
        RNG; choose_ids must derive placement from the adversary seed."""
        adv3 = Adversary("squatter", seed=3)
        assert adv3.seed == 3
        picked = adv3.choose_ids(range(10), 4, placement="random")
        assert picked == choose_byzantine_ids(range(10), 4, "random", seed=3)
        assert picked != Adversary("squatter", seed=4).choose_ids(
            range(10), 4, placement="random"
        )
        # deterministic placements are seed-independent
        assert adv3.choose_ids([5, 1, 9, 3], 2) == [1, 3]

    def test_build_population_uses_adversary_seed_for_placement(self):
        """End-to-end: two runs with the same adversary seed corrupt the
        same IDs under random placement, regardless of the run seed."""
        from repro.core._setup import build_population

        g = ring(9)
        pops = [
            build_population(
                g, f=3, start="gathered", byz_placement="random",
                adversary=Adversary("squatter", seed=7), seed=run_seed,
            )
            for run_seed in (0, 1)
        ]
        assert pops[0].byz_ids == pops[1].byz_ids
        different = build_population(
            g, f=3, start="gathered", byz_placement="random",
            adversary=Adversary("squatter", seed=8), seed=0,
        )
        assert different.byz_ids != pops[0].byz_ids

    def test_theorem2_charge_preview_matches_actual_placement(self):
        """Regression: the charge-preview population must resolve the
        same adversary as the solver's, or the charged |Λgood| is
        computed over IDs that are not the ones actually honest."""
        from repro.core._setup import build_population
        from repro.core.general_graphs import solve_theorem2
        from repro.gathering.oracle import weak_gathering_rounds

        g = random_connected(8, seed=5)
        # adversary seed 1 != run seed 0 picks a different corruption set
        # than run-seed placement would (checked below), so a preview
        # that ignores the adversary charges the wrong |Λgood|.
        adv = Adversary("idle", seed=1)
        pop = build_population(
            g, f=3, start=0, adversary=adv, byz_placement="random", seed=0
        )
        run_seed_pop = build_population(g, f=3, start=0, byz_placement="random", seed=0)
        expected = weak_gathering_rounds(g, pop.honest_ids)
        assert expected != weak_gathering_rounds(g, run_seed_pop.honest_ids)
        report = solve_theorem2(
            g, f=3, adversary=adv, seed=0, byz_placement="random"
        )
        assert dict(report.phases)["gathering_dpp_weak"] == expected

    def test_adversary_descriptor(self):
        assert Adversary("squatter", seed=3).descriptor() == \
            ["adversary", "squatter", 3]
        assert Adversary({3: "idle", 1: "squatter"}, seed=0).descriptor() == \
            ["adversary", [[1, "squatter"], [3, "idle"]], 0]

    def test_choose_zero(self):
        assert choose_byzantine_ids([1, 2], 0, "highest") == []

    def test_choose_out_of_range(self):
        with pytest.raises(ConfigurationError):
            choose_byzantine_ids([1, 2], 3, "lowest")

    def test_heterogeneous_assignment(self):
        adv = Adversary({1: "squatter", 2: "crash"}, seed=0)
        g = ring(5)
        w = World(g)
        w.add_robot(1, 0, adv.program_factory(1), byzantine=True)
        w.add_robot(2, 1, adv.program_factory(2), byzantine=True)
        for _ in range(3):  # run() exits instantly with no honest robots
            w.step()
        assert w.robots[1].state == SETTLED
        assert w.robots[2].terminated

    def test_describe(self):
        assert Adversary("squatter").describe() == "squatter"
        assert "1:squatter" in Adversary({1: "squatter"}).describe()

    def test_callable_strategy(self):
        def custom(api, rng):
            while True:
                yield Stay()

        adv = Adversary(custom)
        assert adv.describe() == "custom"
        g = ring(4)
        w = World(g)
        w.add_robot(1, 0, adv.program_factory(1), byzantine=True)
        w.run(max_rounds=2)
        assert w.robots[1].moves_made == 0
