"""Unit tests for the anonymous port-labeled graph substrate."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import GraphStructureError, PortError
from repro.graphs import PortLabeledGraph, ring


def triangle():
    return PortLabeledGraph.from_edges(3, [(0, 1), (1, 2), (0, 2)])


class TestConstruction:
    def test_from_edges_basic(self):
        g = triangle()
        assert g.n == 3
        assert g.m == 3

    def test_nodes_must_be_contiguous(self):
        with pytest.raises(GraphStructureError, match="nodes must be exactly"):
            PortLabeledGraph({0: {}, 2: {}})

    def test_ports_must_be_contiguous(self):
        with pytest.raises(GraphStructureError, match="ports must be exactly"):
            PortLabeledGraph({0: {2: (1, 1)}, 1: {1: (0, 2)}})

    def test_self_loops_rejected(self):
        with pytest.raises(GraphStructureError, match="self-loops"):
            PortLabeledGraph({0: {1: (0, 2), 2: (0, 1)}})

    def test_parallel_edges_rejected(self):
        with pytest.raises(GraphStructureError, match="parallel edge"):
            PortLabeledGraph(
                {0: {1: (1, 1), 2: (1, 2)}, 1: {1: (0, 1), 2: (0, 2)}}
            )

    def test_asymmetric_ports_rejected(self):
        with pytest.raises(GraphStructureError, match="asymmetric"):
            PortLabeledGraph(
                {
                    0: {1: (1, 1)},
                    1: {1: (2, 1)},
                    2: {1: (0, 1)},
                }
            )

    def test_remote_port_out_of_range_rejected(self):
        with pytest.raises(GraphStructureError):
            PortLabeledGraph({0: {1: (1, 5)}, 1: {1: (0, 1)}})

    def test_endpoint_out_of_range_rejected(self):
        with pytest.raises(GraphStructureError, match="out of range"):
            PortLabeledGraph({0: {1: (7, 1)}, 1: {1: (0, 1)}})

    def test_empty_graph(self):
        g = PortLabeledGraph({})
        assert g.n == 0 and g.m == 0

    def test_single_node(self):
        g = PortLabeledGraph({0: {}})
        assert g.n == 1 and g.m == 0 and g.degree(0) == 0

    def test_directed_networkx_rejected(self):
        with pytest.raises(GraphStructureError):
            PortLabeledGraph.from_networkx(nx.DiGraph([(0, 1)]))

    def test_multigraph_rejected(self):
        with pytest.raises(GraphStructureError):
            PortLabeledGraph.from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))


class TestQueries:
    def test_traverse_round_trip(self, zoo_graph):
        g = zoo_graph
        for u in range(g.n):
            for p in g.ports(u):
                v, q = g.traverse(u, p)
                back, back_port = g.traverse(v, q)
                assert (back, back_port) == (u, p)

    def test_traverse_bad_port(self):
        g = triangle()
        with pytest.raises(PortError):
            g.traverse(0, 3)
        with pytest.raises(PortError):
            g.traverse(0, 0)

    def test_degree_matches_ports(self, zoo_graph):
        g = zoo_graph
        for u in range(g.n):
            assert g.degree(u) == len(list(g.ports(u)))

    def test_edge_count_consistent(self, zoo_graph):
        g = zoo_graph
        assert sum(g.degree(u) for u in range(g.n)) == 2 * g.m
        assert len(list(g.edges())) == g.m

    def test_neighbours_and_port_to(self):
        g = triangle()
        for u in range(3):
            for v in g.neighbours(u):
                p = g.port_to(u, v)
                assert g.traverse(u, p)[0] == v

    def test_port_to_missing_edge(self):
        g = PortLabeledGraph.from_edges(3, [(0, 1), (1, 2)])
        with pytest.raises(PortError):
            g.port_to(0, 2)

    def test_max_degree(self):
        g = PortLabeledGraph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3

    def test_is_connected(self):
        assert triangle().is_connected()
        g = PortLabeledGraph.from_edges(4, [(0, 1), (2, 3)])
        assert not g.is_connected()

    def test_is_regular(self):
        assert ring(5).is_regular()
        assert not PortLabeledGraph.from_edges(3, [(0, 1), (1, 2)]).is_regular()


class TestRelabel:
    def test_relabel_preserves_structure(self, zoo_graph):
        g = zoo_graph
        perm = list(reversed(range(g.n)))
        h = g.relabel(perm)
        assert h.n == g.n and h.m == g.m
        for u in range(g.n):
            assert h.degree(perm[u]) == g.degree(u)
            for p in g.ports(u):
                v, q = g.traverse(u, p)
                assert h.traverse(perm[u], p) == (perm[v], q)

    def test_relabel_identity(self):
        g = triangle()
        assert g.relabel([0, 1, 2]) == g

    def test_relabel_bad_perm(self):
        with pytest.raises(GraphStructureError):
            triangle().relabel([0, 0, 1])

    def test_eq_and_hash(self):
        g1 = triangle()
        g2 = triangle()
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != ring(4)


class TestCSRSubstrate:
    """The flat-array layout, its fast paths, and the trusted constructor."""

    def test_traverse_fast_matches_traverse(self, zoo_graph):
        g = zoo_graph
        for u in range(g.n):
            for p in g.ports(u):
                assert g.traverse_fast(u, p) == g.traverse(u, p)

    def test_port_row_matches_traverse(self, zoo_graph):
        g = zoo_graph
        for u in range(g.n):
            row = g.port_row(u)
            assert len(row) == g.degree(u)
            for p in g.ports(u):
                assert row[p - 1] == g.traverse(u, p)

    def test_csr_layout_consistent(self, zoo_graph):
        g = zoo_graph
        offsets, dest, in_port = g.csr()
        assert len(offsets) == g.n + 1
        assert offsets[0] == 0 and offsets[g.n] == 2 * g.m
        assert len(dest) == len(in_port) == 2 * g.m
        for u in range(g.n):
            base = offsets[u]
            assert offsets[u + 1] - base == g.degree(u)
            for p in g.ports(u):
                assert (dest[base + p - 1], in_port[base + p - 1]) == g.traverse(u, p)

    def test_port_to_all_pairs_and_missing(self, zoo_graph):
        g = zoo_graph
        for u in range(g.n):
            nbrs = set(g.neighbours(u))
            for v in nbrs:
                assert g.traverse(u, g.port_to(u, v))[0] == v
            for v in range(g.n):
                if v not in nbrs:
                    with pytest.raises(PortError):
                        g.port_to(u, v)

    def test_pickle_round_trip(self, zoo_graph):
        import pickle

        g = zoo_graph
        h = pickle.loads(pickle.dumps(g))
        assert h == g and hash(h) == hash(g)
        assert h.csr() == g.csr()
        # Derived caches work on the unpickled copy too.
        assert h.is_connected() == g.is_connected()
        for u in range(h.n):
            assert h.neighbours(u) == g.neighbours(u)

    def test_pickle_preserves_spec(self):
        import pickle

        from repro.graphs import spec_of

        g = ring(7, seed=2)
        h = pickle.loads(pickle.dumps(g))
        assert spec_of(h) == spec_of(g) is not None

    def test_from_validated_equals_validating_constructor(self, zoo_graph):
        g = zoo_graph
        rows = tuple(g.port_row(u) for u in range(g.n))
        assert PortLabeledGraph._from_validated(rows) == g

    def test_relabel_skips_revalidation_but_stays_legal(self, zoo_graph):
        g = zoo_graph
        perm = list(reversed(range(g.n)))
        h = g.relabel(perm)
        # Re-validating the relabeled structure from scratch must succeed.
        assert PortLabeledGraph(h.port_table()) == h


class TestNetworkxRoundTrip:
    def test_to_networkx_same_edges(self, zoo_graph):
        g = zoo_graph
        h = g.to_networkx()
        assert h.number_of_nodes() == g.n
        assert h.number_of_edges() == g.m
        for u, p, v, q in g.edges():
            assert h.has_edge(u, v)

    def test_random_port_assignment_valid(self):
        base = nx.cycle_graph(7)
        g = PortLabeledGraph.from_networkx(base, rng=np.random.default_rng(3))
        # Validation happens in the constructor; reaching here means valid.
        assert g.n == 7 and g.m == 7

    def test_port_table_round_trip(self, zoo_graph):
        g = zoo_graph
        assert PortLabeledGraph(g.port_table()) == g
