# repro: allow-wallclock file — this module exists to measure request latency; its output is a perf baseline, never solver records or store cells
"""Serve-subsystem benchmark: cold/warm/deduped request throughput.

Boots the real serve stack (:class:`repro.serve.ServerThread` on an
ephemeral port, fresh temporary store) and drives it with a threaded
``http.client`` load generator — the first user-facing throughput
number on the ROADMAP's millions-of-users axis.  Three workloads:

* **cold** — every request computes (store empty, distinct cells).
  The reference is the same cells run directly through
  ``execute_plan`` serially: speedup ≈ worker parallelism minus HTTP
  overhead.
* **warm** — the same requests again: answered from the store with
  zero solver calls.  Reference: what recomputing would cost.
* **dedup** — N concurrent identical requests for one fresh cell:
  single-flight collapses them onto one computation.  Reference: the
  N solver runs a dedup-free server would do.

``identical`` per workload asserts the served records equal the
direct-execution records (and, for dedup, that exactly one computation
happened), so the gate catches behavioural drift, not just slowdowns.
The payload shape matches every other ``BENCH_*.json`` and is gated by
``benchmarks/check_regression.py``.
"""

from __future__ import annotations

import http.client
import json
import platform
import shutil
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from ..scenarios import Scenario, run_scenarios
from .store import RunStore
from .store import SCHEMA_VERSION as STORE_SCHEMA_VERSION

__all__ = ["format_serve_report", "run_serve_benchmark"]

#: Benchmark cells: Table 1 row 4 on a small random connected graph,
#: the seed axis fanning out distinct store cells.
_ROW = 4
_GRAPH_N = 7


def _scenario_dict(n: int, graph_seed: int, run_seed: int) -> Dict:
    return {
        "algorithm": _ROW,
        "graph": {"family": "random_connected",
                  "args": {"n": n, "seed": graph_seed}},
        "strategy": "squatter",
        "f": "max",
        "seed": run_seed,
    }


def _post_run(host: str, port: int, payload: Dict,
              timeout: float = 120.0) -> Tuple[int, Dict, float]:
    """One ``POST /run``; returns (status, body, latency seconds)."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        body = json.dumps(payload)
        t0 = time.perf_counter()
        conn.request("POST", "/run", body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        data = json.loads(response.read())
        elapsed = time.perf_counter() - t0
        return response.status, data, elapsed
    finally:
        conn.close()


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[index]


def _drive(server, payloads: List[Dict], clients: int):
    """Fire all payloads with ``clients`` concurrent connections."""
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        results = list(pool.map(
            lambda p: _post_run(server.host, server.port, p), payloads
        ))
    wall = time.perf_counter() - t0
    latencies = sorted(r[2] for r in results)
    return results, wall, latencies


def _workload_entry(name: str, requests: int, wall: float, ref: float,
                    latencies: List[float], identical: bool) -> Dict:
    return {
        "scenario": name,
        "requests": requests,
        "optimized_s": round(wall, 6),
        "reference_s": round(ref, 6),
        "speedup": round(ref / wall, 3) if wall > 0 else float("inf"),
        "identical": identical,
        "rps": round(requests / wall, 2) if wall > 0 else float("inf"),
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 3),
    }


def run_serve_benchmark(
    seed: int = 0,
    repeats: int = 1,
    cells: int = 6,
    clients: int = 4,
    dedup_clients: int = 8,
    workers: int = 4,
    n: int = _GRAPH_N,
) -> Dict:
    """Run the serve benchmark; returns the BENCH_serve payload.

    ``repeats`` re-runs the full cycle (fresh store + server each time)
    and keeps the best wall time per workload — same best-of convention
    as the other suites.
    """
    from ..serve import ServerThread  # deferred: serve pulls in asyncio machinery

    cold_payloads = [_scenario_dict(n, seed, seed + i) for i in range(cells)]
    dedup_payload = _scenario_dict(n, seed, seed + cells)

    # Direct references (once; deterministic, so repeats can't differ
    # behaviourally — only their timings, and best-of covers that).
    direct: List[List[Dict]] = []
    t0 = time.perf_counter()
    for payload in cold_payloads:
        direct.append(list(run_scenarios([Scenario.from_dict(payload)],
                                         store=None, batch=False)))
    direct_cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    dedup_direct = list(run_scenarios([Scenario.from_dict(dedup_payload)],
                                      store=None, batch=False))
    dedup_single_s = time.perf_counter() - t0

    best: Dict[str, Dict] = {}
    for _ in range(max(1, repeats)):
        tmp = tempfile.mkdtemp(prefix="repro-servebench-")
        try:
            with ServerThread(store=RunStore(tmp), workers=workers) as server:
                # cold: distinct cells, empty store
                results, wall, lat = _drive(server, cold_payloads, clients)
                identical = all(
                    status == 200 and body["records"] == ref
                    for (status, body, _), ref in zip(results, direct)
                )
                entry = _workload_entry("cold", cells, wall, direct_cold_s,
                                        lat, identical)
                if "cold" not in best or entry["optimized_s"] < best["cold"]["optimized_s"]:
                    best["cold"] = entry

                # warm: the same requests answered from the store
                results, wall, lat = _drive(server, cold_payloads, clients)
                identical = all(
                    status == 200 and body["status"] == "warm"
                    and body["records"] == ref
                    for (status, body, _), ref in zip(results, direct)
                )
                entry = _workload_entry("warm", cells, wall, direct_cold_s,
                                        lat, identical)
                if "warm" not in best or entry["optimized_s"] < best["warm"]["optimized_s"]:
                    best["warm"] = entry

                # dedup: N concurrent identical requests, one fresh cell
                computed_before = server.service.counters["computed"]
                results, wall, lat = _drive(
                    server, [dedup_payload] * dedup_clients, dedup_clients
                )
                computed = server.service.counters["computed"] - computed_before
                identical = computed == 1 and all(
                    status == 200 and body["records"] == dedup_direct
                    for status, body, _ in results
                )
                entry = _workload_entry(
                    "dedup", dedup_clients, wall,
                    dedup_single_s * dedup_clients, lat, identical,
                )
                if "dedup" not in best or entry["optimized_s"] < best["dedup"]["optimized_s"]:
                    best["dedup"] = entry
        finally:
            shutil.rmtree(tmp, ignore_errors=True)

    results = [best["cold"], best["warm"], best["dedup"]]
    total_opt = sum(r["optimized_s"] for r in results)
    total_ref = sum(r["reference_s"] for r in results)
    return {
        "benchmark": "serve",
        "store_schema_version": STORE_SCHEMA_VERSION,
        "params": {
            "seed": seed, "repeats": repeats, "cells": cells,
            "clients": clients, "dedup_clients": dedup_clients,
            "workers": workers, "n": n,
        },
        "env": {
            "python": platform.python_version(),
            "machine": platform.machine(),
        },
        "scenarios": results,
        "overall_speedup": (
            round(total_ref / total_opt, 3) if total_opt > 0 else float("inf")
        ),
        "all_identical": all(r["identical"] for r in results),
    }


def format_serve_report(payload: Dict) -> str:
    """Human-readable report for a :func:`run_serve_benchmark` payload."""
    from .tables import render_table

    table = render_table(
        payload["scenarios"],
        columns=["scenario", "requests", "optimized_s", "reference_s",
                 "speedup", "rps", "p50_ms", "p99_ms", "identical"],
        title="Serve subsystem (HTTP server vs direct execution)",
    )
    return (
        f"{table}\n"
        f"overall speedup   : {payload['overall_speedup']}x\n"
        f"behaviour matched : {payload['all_identical']}"
    )
