"""Tests for the shared program phases (roster, pairing timing, rank walk)."""

import pytest

from repro.core.phases import (
    SCHEDULES,
    pairing_phase_rounds,
    rank_dispersion_phase,
    roster_phase,
)
from repro.errors import ConfigurationError
from repro.graphs import bfs_order, random_connected, ring
from repro.sim import SETTLED, Stay, World


def run_roster(world, ids, node=0):
    outs = {}
    for rid in ids:
        out = {}
        outs[rid] = out

        def factory(api, _out=out):
            def program(api=api, out=_out):
                yield from roster_phase(api, out)
                while True:
                    yield Stay()

            return program()

        world.add_robot(rid, node, factory)
    for _ in range(3):
        world.step()
    return outs


class TestRosterPhase:
    def test_all_honest_same_roster(self):
        w = World(ring(5))
        outs = run_roster(w, [3, 7, 11])
        for out in outs.values():
            assert out["roster"] == [3, 7, 11]

    def test_byzantine_counted_by_physical_presence(self):
        w = World(ring(5))

        def byz(api):
            while True:
                yield Stay()

        w.add_robot(2, 0, byz, byzantine=True)
        outs = run_roster(w, [3, 7])
        for out in outs.values():
            assert out["roster"] == [2, 3, 7]

    def test_absent_robots_excluded(self):
        w = World(ring(5))

        def byz(api):
            while True:
                yield Stay()

        w.add_robot(2, 3, byz, byzantine=True)  # elsewhere
        outs = run_roster(w, [3, 7], node=0)
        for out in outs.values():
            assert out["roster"] == [3, 7]

    def test_strong_faker_cannot_mint_extra_entries(self):
        """One body = one roster entry: a strong Byzantine robot can rename
        itself but never inflate k (the Section 4 phantom-ID concern)."""
        w = World(ring(5), model="strong")

        def faker(api):
            api.set_claimed_id(99)
            api.say(("hello", 98))  # message spam must be ignored
            api.say(("hello", 97))
            while True:
                yield Stay()

        w.add_robot(1, 0, faker, byzantine=True)
        outs = run_roster(w, [3, 7])
        for out in outs.values():
            assert out["roster"] == [3, 7, 99]  # one entry, renamed

    def test_strong_faker_hiding_behind_honest_id(self):
        w = World(ring(5), model="strong")

        def shadow(api):
            api.set_claimed_id(3)  # claim an honest robot's ID
            while True:
                yield Stay()

        w.add_robot(1, 0, shadow, byzantine=True)
        outs = run_roster(w, [3, 7])
        for out in outs.values():
            assert out["roster"] == [3, 7]  # dedup: honest IDs survive


class TestPairingTiming:
    def test_phase_rounds_formula(self):
        from repro.mapping import paper_pairing_schedule, run_slot_rounds

        n, tb = 8, 20
        expected = len(paper_pairing_schedule(range(1, 9))) * 2 * run_slot_rounds(tb)
        assert pairing_phase_rounds(n, tb) == expected

    def test_round_robin_fewer_or_equal_rounds(self):
        for n in (6, 8, 9, 12):
            assert pairing_phase_rounds(n, 10, "round_robin") <= pairing_phase_rounds(
                n, 10, "paper"
            )

    def test_unknown_schedule(self):
        with pytest.raises(ConfigurationError):
            pairing_phase_rounds(8, 10, "zigzag")

    def test_schedules_registry(self):
        assert set(SCHEDULES) == {"paper", "round_robin"}


class TestRankDispersion:
    def test_each_rank_gets_distinct_node(self):
        g = random_connected(7, seed=2)
        w = World(g)
        roster = [2, 5, 9]
        for rid in roster:

            def factory(api, _rid=rid):
                return rank_dispersion_phase(api, g, 0, roster)

            w.add_robot(rid, 0, factory)
        w.run(max_rounds=2 * g.n)
        order = bfs_order(g, 0)
        for i, rid in enumerate(sorted(roster)):
            assert w.robots[rid].settled_node == order[i]

    def test_rank_overflow_fails_visibly(self):
        g = ring(4)
        w = World(g)
        roster = [1, 2, 3, 4, 5]  # five ranks, four nodes

        def factory(api):
            return rank_dispersion_phase(api, g, 0, roster)

        w.add_robot(5, 0, factory)  # the overflowing rank
        w.run(max_rounds=10)
        assert w.robots[5].settled_node is None
        assert w.trace.count("rank_overflow") == 1
