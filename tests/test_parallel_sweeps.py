"""Parallel sweep execution: identical records, deterministic order.

The experiments layer fans sweep cells out over processes when
``workers > 1``; the contract is that the returned record list is
*exactly* the serial one (same order, same values).  Also covers the
tolerance sweep's narrowed exception handling: only the repro error
hierarchy is a legitimate "rejected" outcome — anything else is an
engine bug and must propagate.

Graph dispatch has two wire formats: generator-built graphs ship as
their :class:`GraphSpec` (resolved through a per-worker memo cache);
spec-less graphs fall back to being pickled whole (the PR-1 path).
Both must return records identical to serial — and to each other.
"""

import pytest

from repro.analysis import (
    run_table1,
    scaling_sweep,
    strategy_matrix,
    tolerance_sweep,
)
from repro.analysis import experiments
from repro.analysis.experiments import _graph_payload
from repro.core import TABLE1, get_row
from repro.core.runner import Table1Row
from repro.errors import ConfigurationError
from repro.graphs import GraphSpec, PortLabeledGraph, random_connected, spec_of


@pytest.fixture(scope="module")
def g():
    return random_connected(8, seed=5)


class TestParallelMatchesSerial:
    def test_run_table1(self, g):
        serial = run_table1(g, strategies=["squatter", "idle"], serials=[4, 5])
        parallel = run_table1(
            g, strategies=["squatter", "idle"], serials=[4, 5], workers=2
        )
        assert parallel == serial

    def test_tolerance_sweep(self, g):
        row = get_row(5)
        serial = tolerance_sweep(row, g, [0, 1, 2], "squatter")
        parallel = tolerance_sweep(row, g, [0, 1, 2], "squatter", workers=3)
        assert parallel == serial

    def test_scaling_sweep(self):
        row = get_row(5)
        graphs = [random_connected(n, seed=1) for n in (6, 8)]
        serial = scaling_sweep(row, graphs, "idle")
        parallel = scaling_sweep(row, graphs, "idle", workers=2)
        assert parallel == serial

    def test_strategy_matrix(self, g):
        rows = [get_row(4), get_row(5)]
        serial = strategy_matrix(rows, g, ["squatter", "idle"])
        parallel = strategy_matrix(rows, g, ["squatter", "idle"], workers=2)
        assert parallel == serial

    def test_workers_one_is_serial(self, g):
        assert run_table1(g, strategies=["idle"], serials=[5], workers=1) == \
            run_table1(g, strategies=["idle"], serials=[5])


class TestSpecDispatch:
    """Spec-shipped parallel runs must equal serial runs AND the PR-1
    graph-pickling runs, for every sweep entry point."""

    def test_generator_graph_ships_as_spec(self, g):
        payload = _graph_payload(g)
        assert isinstance(payload, GraphSpec)
        assert payload == spec_of(g)

    def test_hand_built_graph_ships_whole(self):
        hand_built = PortLabeledGraph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert spec_of(hand_built) is None
        assert _graph_payload(hand_built) is hand_built

    def test_ship_specs_flag_selects_the_pickling_path(self, g, monkeypatch):
        monkeypatch.setattr(experiments, "SHIP_GRAPH_SPECS", False)
        assert _graph_payload(g) is g

    def test_run_table1_spec_vs_pickled_vs_serial(self, g, monkeypatch):
        serial = run_table1(g, strategies=["squatter"], serials=[4, 5])
        spec_shipped = run_table1(
            g, strategies=["squatter"], serials=[4, 5], workers=2
        )
        monkeypatch.setattr(experiments, "SHIP_GRAPH_SPECS", False)
        graph_shipped = run_table1(
            g, strategies=["squatter"], serials=[4, 5], workers=2
        )
        assert spec_shipped == serial
        assert graph_shipped == serial

    def test_tolerance_sweep_spec_vs_pickled_vs_serial(self, g, monkeypatch):
        row = get_row(5)
        serial = tolerance_sweep(row, g, [0, 1, 2], "squatter")
        spec_shipped = tolerance_sweep(row, g, [0, 1, 2], "squatter", workers=3)
        monkeypatch.setattr(experiments, "SHIP_GRAPH_SPECS", False)
        graph_shipped = tolerance_sweep(row, g, [0, 1, 2], "squatter", workers=3)
        assert spec_shipped == serial
        assert graph_shipped == serial

    def test_scaling_sweep_mixed_payloads(self, monkeypatch):
        """A sweep mixing generator graphs (spec) and hand-built graphs
        (pickled) must still match serial exactly."""
        row = get_row(5)
        graphs = [
            random_connected(6, seed=1),
            PortLabeledGraph.from_edges(
                8, [(i, (i + 1) % 8) for i in range(8)] + [(0, 4)]
            ),
        ]
        assert spec_of(graphs[0]) is not None and spec_of(graphs[1]) is None
        serial = scaling_sweep(row, graphs, "idle")
        parallel = scaling_sweep(row, graphs, "idle", workers=2)
        assert parallel == serial

    def test_strategy_matrix_spec_vs_serial(self, g):
        rows = [get_row(4), get_row(5)]
        serial = strategy_matrix(rows, g, ["squatter", "idle"])
        parallel = strategy_matrix(rows, g, ["squatter", "idle"], workers=2)
        assert parallel == serial


def _fake_row(solver):
    return Table1Row(
        serial=1,  # a registry serial, but NOT the registry object
        theorem=1,
        running_time="test",
        start="Gathered",
        tolerance="0",
        strong=False,
        solver=solver,
        f_max=lambda graph: 1,
        paper_bound=lambda graph, f: 1,
    )


class TestToleranceExceptionNarrowing:
    def test_repro_errors_recorded_as_rejected(self, g):
        def rejecting_solver(graph, f, adversary, seed):
            raise ConfigurationError("f out of range")

        recs = tolerance_sweep(_fake_row(rejecting_solver), g, [0, 1], "idle")
        assert [r["rejected"] for r in recs] == [True, True]
        assert all(r["reason"] == "ConfigurationError" for r in recs)

    def test_engine_bugs_propagate(self, g):
        """A TypeError from a solver is a bug, not an out-of-bound f; the
        old bare `except Exception` silently recorded it as rejected."""

        def buggy_solver(graph, f, adversary, seed):
            raise TypeError("engine bug")

        with pytest.raises(TypeError, match="engine bug"):
            tolerance_sweep(_fake_row(buggy_solver), g, [0], "idle")

    def test_non_registry_row_falls_back_to_serial(self, g):
        """A hand-built row (unpicklable lambdas) still works with
        workers>1 by silently running serially."""

        def rejecting_solver(graph, f, adversary, seed):
            raise ConfigurationError("nope")

        recs = tolerance_sweep(
            _fake_row(rejecting_solver), g, [0, 1], "idle", workers=4
        )
        assert [r["rejected"] for r in recs] == [True, True]


class TestRegistryIntrospection:
    def test_all_registry_rows_resolve(self):
        from repro.analysis.experiments import _registry_serial

        for row in TABLE1:
            assert _registry_serial(row) == row.serial

    def test_foreign_row_does_not_resolve(self):
        from repro.analysis.experiments import _registry_serial

        assert _registry_serial(_fake_row(lambda *a, **kw: None)) is None
