"""repro — Byzantine Dispersion on Graphs (Molla, Mondal & Moses Jr., IPDPS 2021).

A full reproduction of the paper's system: an anonymous port-labeled
graph substrate, a synchronous mobile-robot simulator with sub-round
semantics, the complete adversary zoo (weak and strong Byzantine), all
seven Table 1 algorithms, the Theorem 8 impossibility construction,
prior-work baselines, and the benchmark harness that regenerates the
paper's results table.

Quick start — one run::

    from repro import solve_theorem1, Adversary
    from repro.graphs import random_connected

    g = random_connected(12, seed=1)          # view-distinguishable w.h.p.
    report = solve_theorem1(g, f=11, adversary=Adversary("squatter"))
    assert report.success                     # dispersed despite n-1 liars

Quick start — declarative scenarios (the experiment API)::

    from repro import Scenario, grid
    from repro.graphs import random_connected

    g = random_connected(9, seed=0)
    # One cell: row 5 at its tolerance bound under a hostile strategy.
    records = Scenario(algorithm=5, graph=g, strategy="squatter").run()
    # A whole sweep: rows x strategies, resumable via store=RunStore(...).
    results = grid(rows=[4, 5], graphs=g,
                   strategies=["squatter", "idle"]).run()
    print(results.summarize("strategy"))

A :class:`~repro.scenarios.Scenario` is serializable (``to_dict`` /
``from_dict``; ``repro scenario file.json`` on the CLI) and its
``key()`` is the run-store cache key of the work it describes.

Quick start — the activation-scheduler axis (who acts each round)::

    records = Scenario(algorithm=5, graph=g, strategy="squatter",
                       scheduler="semi_synchronous(p=0.9)").run()

Sweeps are fault-tolerant: the executor retries failing cells with
backoff, respawns crashed worker pools, and quarantines cells that keep
failing as structured failure records (``results.failures()``) instead
of crashing the sweep — tune via
:class:`~repro.analysis.experiments.ExecutionPolicy` (``strict=True``
restores raising).  See EXPERIMENTS.md "Failure semantics".

Quick start — named eval suites (solver leaderboards)::

    from repro.evals import run_suite
    print(run_suite("torus_strong").table())   # repro eval on the CLI

Suite behaviour is pinned under ``benchmarks/EVAL_<suite>.json`` and
gated by ``benchmarks/check_evals.py``; see EXPERIMENTS.md "Eval
suites".

See README.md for the architecture tour and EXPERIMENTS.md for the full
scenario-axis reference (including the cache-compatibility rule).
"""

from .analysis import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    FaultPlan,
    FaultSpec,
    RunStore,
)

from .byzantine import (
    STRATEGIES,
    STRONG_STRATEGIES,
    WEAK_STRATEGIES,
    Adversary,
    get_strategy,
)
from .core import (
    TABLE1,
    Table1Row,
    demonstrate_impossibility,
    dispersion_using_map,
    get_row,
    impossibility_applies,
    solve_theorem1,
    solve_theorem2,
    solve_theorem3,
    solve_theorem4,
    solve_theorem5,
    solve_theorem6,
    solve_theorem7,
)
from .errors import (
    ConfigurationError,
    GraphStructureError,
    MapError,
    ReproError,
    SimulationError,
    SweepFaultError,
    ValidationError,
)
from .scenarios import (
    ResultSet,
    Scenario,
    ScenarioGrid,
    grid,
    run_scenarios,
    scheduler_matrix_grid,
)
from .sim import (
    SCHEDULERS,
    RunReport,
    SchedulerSpec,
    World,
    build_scheduler,
    canonical_scheduler,
    parse_scheduler,
)

__version__ = "1.7.0"

__all__ = [
    "__version__",
    "World",
    "RunReport",
    "Scenario",
    "ScenarioGrid",
    "ResultSet",
    "grid",
    "run_scenarios",
    "scheduler_matrix_grid",
    "RunStore",
    "ExecutionPolicy",
    "DEFAULT_POLICY",
    "FaultPlan",
    "FaultSpec",
    "SCHEDULERS",
    "SchedulerSpec",
    "build_scheduler",
    "canonical_scheduler",
    "parse_scheduler",
    "Adversary",
    "STRATEGIES",
    "WEAK_STRATEGIES",
    "STRONG_STRATEGIES",
    "get_strategy",
    "solve_theorem1",
    "solve_theorem2",
    "solve_theorem3",
    "solve_theorem4",
    "solve_theorem5",
    "solve_theorem6",
    "solve_theorem7",
    "dispersion_using_map",
    "demonstrate_impossibility",
    "impossibility_applies",
    "TABLE1",
    "Table1Row",
    "get_row",
    "ReproError",
    "GraphStructureError",
    "MapError",
    "SimulationError",
    "SweepFaultError",
    "ConfigurationError",
    "ValidationError",
]
