"""Tests for driver plumbing (placements, populations) and the trace."""

import pytest

from repro.byzantine import Adversary
from repro.core._setup import Population, build_population, make_placement
from repro.errors import ConfigurationError
from repro.graphs import ring
from repro.sim import Trace, World, Stay


class TestMakePlacement:
    def test_gathered_default_node(self):
        g = ring(5)
        p = make_placement(g, [1, 2, 3], "gathered")
        assert p == {1: 0, 2: 0, 3: 0}

    def test_int_means_gather_node(self):
        g = ring(5)
        p = make_placement(g, [1, 2], 3)
        assert p == {1: 3, 2: 3}

    def test_int_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_placement(ring(5), [1], 9)

    def test_arbitrary_seeded(self):
        g = ring(5)
        a = make_placement(g, [1, 2, 3], "arbitrary", seed=4)
        b = make_placement(g, [1, 2, 3], "arbitrary", seed=4)
        assert a == b
        assert all(0 <= v < 5 for v in a.values())

    def test_spread_distinct(self):
        g = ring(5)
        p = make_placement(g, [7, 3, 9], "spread")
        assert sorted(p.values()) == [0, 1, 2]
        assert p[3] == 0  # sorted IDs get nodes in order

    def test_spread_too_many(self):
        with pytest.raises(ConfigurationError):
            make_placement(ring(3), [1, 2, 3, 4], "spread")

    def test_explicit_dict_validated(self):
        g = ring(5)
        p = make_placement(g, [1, 2], {1: 4, 2: 2})
        assert p == {1: 4, 2: 2}
        with pytest.raises(ConfigurationError, match="out of range"):
            make_placement(g, [1], {1: 7})
        with pytest.raises(ConfigurationError, match="missing"):
            make_placement(g, [1, 2], {1: 0})

    def test_unknown_spec(self):
        with pytest.raises(ConfigurationError):
            make_placement(ring(5), [1], "everywhere")


class TestBuildPopulation:
    def test_default_n_robots_is_n(self):
        g = ring(6)
        pop = build_population(g, f=2)
        assert pop.ids == [1, 2, 3, 4, 5, 6]
        assert pop.byz_ids == [1, 2]
        assert pop.honest_ids == [3, 4, 5, 6]
        assert pop.f == 2

    def test_explicit_k(self):
        g = ring(6)
        pop = build_population(g, f=1, n_robots=4)
        assert len(pop.ids) == 4

    def test_byz_placement_highest(self):
        g = ring(6)
        pop = build_population(g, f=2, byz_placement="highest")
        assert pop.byz_ids == [5, 6]

    def test_adversary_default(self):
        pop = build_population(ring(5), f=1)
        assert isinstance(pop.adversary, Adversary)

    def test_id_seed_randomises_ids(self):
        g = ring(6)
        a = build_population(g, f=0, id_seed=1)
        b = build_population(g, f=0, id_seed=2)
        assert a.ids != b.ids
        assert all(1 <= i <= 36 for i in a.ids)


class TestTrace:
    def test_counters_without_events(self):
        t = Trace(keep_events=False)
        t.record(1, "move", robot=1)
        t.record(2, "move", robot=2)
        assert t.count("move") == 2
        assert len(t) == 0
        assert list(t.of_kind("move")) == []

    def test_events_kept(self):
        t = Trace(keep_events=True)
        t.record(1, "settle", robot=3, node=0)
        t.record(5, "settle", robot=4, node=1)
        t.record(2, "move", robot=3)
        assert t.count("settle") == 2
        settles = list(t.of_kind("settle"))
        assert [e.round for e in settles] == [1, 5]
        assert t.last("settle").data["robot"] == 4
        assert t.last("nothing") is None

    def test_world_trace_records_moves_and_settles(self):
        from repro.sim import Move

        g = ring(4)
        w = World(g)

        def program(api):
            yield Move(1)
            api.settle()
            return
            yield  # pragma: no cover

        w.add_robot(1, 0, program)
        w.run(max_rounds=4)
        assert w.trace.count("move") == 1
        assert w.trace.count("settle") == 1
        move = w.trace.last("move")
        assert move.data["src"] == 0 and move.data["dst"] == 1
