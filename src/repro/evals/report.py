"""EvalReport: one suite run aggregated into a deterministic leaderboard.

The report splits its outputs by volatility:

* :meth:`leaderboard` / :meth:`json_payload` — the deterministic view.
  Per-solver success rate, round statistics, and activation totals, in a
  fixed sort order (success rate desc, mean simulated rounds asc, serial
  asc).  Byte-identical across serial, parallel, and warm-store runs.
* :meth:`expected_payload` — the *pinnable* subset, per solver × cell
  class, written to ``benchmarks/EVAL_<suite>.json`` and diffed by
  ``benchmarks/check_evals.py``.  Refuses to exist for a degraded run
  (quarantined cells): a pin computed from a partially-failed suite
  would silently bless the failure.
* :meth:`table` — the human view, the only place wall time appears.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..analysis.metrics import success_rate
from ..analysis.store import SCHEMA_VERSION
from ..analysis.tables import render_table
from ..core.runner import get_row
from ..errors import ConfigurationError
from ..scenarios import ResultSet
from .registry import EvalSuite

__all__ = ["EvalReport", "EXPECTED_FORMAT"]

#: Format version of the expected-results payload.  Bump only when the
#: pinned shape changes incompatibly; ``check_evals.py`` refuses to
#: compare across versions.
EXPECTED_FORMAT = 1


def _finite(value: float) -> float:
    """Sort key helper: ``nan`` orders *after* every finite value."""
    return math.inf if isinstance(value, float) and math.isnan(value) else value


class EvalReport:
    """Aggregation of one eval-suite run.

    ``results`` holds every record the executor produced, in plan order —
    including quarantine failure records, which the leaderboard excludes
    from rates (see :func:`~repro.analysis.metrics.success_rate`) and
    surfaces as a ``quarantined`` count instead.  ``wall_s`` maps each
    serial to its sub-plan wall time; it is display-only and never enters
    a comparable payload.
    """

    def __init__(self, suite: EvalSuite, results: ResultSet,
                 wall_s: Optional[Dict[int, float]] = None):
        self.suite = suite
        self.results = ResultSet(results)
        self.wall_s = dict(wall_s or {})

    @property
    def name(self) -> str:
        return self.suite.name

    def ran(self) -> ResultSet:
        """The records that actually executed (quarantines excluded)."""
        return self.results.filter(lambda r: not r.get("failed"))

    def quarantined(self) -> ResultSet:
        """The quarantine failure records (infrastructure casualties)."""
        return self.results.filter(lambda r: bool(r.get("failed")))

    def solvers(self) -> List[int]:
        """Every serial present in the results, ascending."""
        return sorted({r["serial"] for r in self.results})

    # -- leaderboard ---------------------------------------------------- #

    def leaderboard(self, wall: bool = False) -> List[Dict]:
        """Per-solver rows, best first.

        Ordering is total and deterministic: success rate descending
        (``nan`` — a solver whose every cell quarantined — last), then
        mean simulated rounds ascending (cheaper wins ties), then serial
        ascending (a stable final tiebreak).  ``wall=True`` appends the
        measured ``wall_s`` column for human display; comparable payloads
        always pass ``wall=False``.
        """
        any_quarantined = bool(self.quarantined())
        rows = []
        for serial in self.solvers():
            recs = [r for r in self.results if r["serial"] == serial]
            ran = [r for r in recs if not r.get("failed")]
            rate = success_rate(recs)
            sims = [r["rounds_simulated"] for r in ran]
            mean = sum(sims) / len(sims) if sims else float("nan")
            row = {
                "serial": serial,
                "solver": f"theorem{get_row(serial).theorem}",
                "cells": len(recs),
                "success_rate": round(rate, 6) if not math.isnan(rate) else rate,
                "rounds_simulated_mean": round(mean, 3) if not math.isnan(mean) else mean,
                "rounds_simulated_max": max(sims) if sims else float("nan"),
                "activations": sum(r.get("activations", 0) for r in ran),
            }
            if any_quarantined:
                row["quarantined"] = len(recs) - len(ran)
            if wall:
                row["wall_s"] = round(self.wall_s.get(serial, 0.0), 3)
            rows.append(row)
        rows.sort(key=lambda r: (
            _finite(-r["success_rate"]),
            _finite(r["rounds_simulated_mean"]),
            r["serial"],
        ))
        return rows

    # -- pinnable payloads ---------------------------------------------- #

    def expected_payload(self) -> Dict:
        """The checked-in shape: success/rounds per solver × cell class.

        Wall time is excluded by construction (it is the one
        non-deterministic measurement), so the payload is byte-identical
        across serial, parallel, and warm-store executions.  Raises
        :class:`ConfigurationError` if any cell quarantined — expected
        results may only be computed from a clean run.
        """
        bad = self.quarantined()
        if bad:
            raise ConfigurationError(
                f"suite {self.name!r}: {len(bad)} cell(s) quarantined; "
                f"expected results require a clean run (inspect "
                f".failures() or rerun without fault injection)"
            )
        solvers: Dict[str, Dict] = {}
        for serial in self.solvers():
            classes: Dict[str, Dict] = {}
            for rec in self.ran():
                if rec["serial"] != serial:
                    continue
                cls = self.suite.classify(rec)
                bucket = classes.setdefault(cls, {
                    "cells": 0,
                    "successes": 0,
                    "rounds_simulated_total": 0,
                    "rounds_simulated_max": 0,
                })
                bucket["cells"] += 1
                bucket["successes"] += 1 if rec.get("success") else 0
                bucket["rounds_simulated_total"] += rec["rounds_simulated"]
                bucket["rounds_simulated_max"] = max(
                    bucket["rounds_simulated_max"], rec["rounds_simulated"]
                )
            solvers[str(serial)] = {"classes": classes}
        return {
            "format": EXPECTED_FORMAT,
            "suite": self.name,
            "store_schema_version": SCHEMA_VERSION,
            "cells": len(self.results),
            "solvers": solvers,
        }

    def json_payload(self) -> Dict:
        """The ``repro eval --json`` document: leaderboard + expected pin.

        Deliberately wall-time-free so the bytes are identical across
        execution modes; a degraded run (quarantines) keeps the
        leaderboard, drops the pin, and reports the quarantine count.
        """
        doc = {
            "suite": self.name,
            "title": self.suite.title,
            "cells": len(self.results),
            "leaderboard": self.leaderboard(wall=False),
        }
        bad = self.quarantined()
        if bad:
            doc["quarantined"] = len(bad)
        else:
            doc["expected"] = self.expected_payload()
        return doc

    # -- human view ----------------------------------------------------- #

    def table(self) -> str:
        """Aligned leaderboard with wall time, titled by the suite."""
        rows = self.leaderboard(wall=True)
        columns = list(rows[0]) if rows else None
        return render_table(
            rows, columns=columns,
            title=f"eval {self.name} — {self.suite.title} ({len(self.results)} cells)",
        )
