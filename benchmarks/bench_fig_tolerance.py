"""Derived Figure B: success vs f at and beyond each row's bound.

For every Table 1 row: all f values up to the row's tolerance succeed
under the nastiest applicable strategy; values beyond the bound are
rejected by the driver (the theorems' pre-conditions).  The Theorem 1 row
additionally demonstrates *graceful degradation is not needed*: it
tolerates literally n−1.
"""

import pytest

from conftest import attach
from repro.analysis import success_rate, tolerance_sweep
from repro.core import get_row

WEAK_STRATEGY = "ghost_squatter"
STRONG_STRATEGY = "impersonator"


@pytest.mark.parametrize("serial", [1, 4, 5])
def bench_tolerance_weak_rows(benchmark, bench_graph, serial):
    row = get_row(serial)
    f_max = row.f_max(bench_graph)
    fs = sorted({0, 1, f_max // 2, f_max, f_max + 1, bench_graph.n - 1})

    def sweep():
        return tolerance_sweep(row, bench_graph, fs, WEAK_STRATEGY, seed=1)

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ran = [r for r in records if not r.get("rejected")]
    rejected = [r for r in records if r.get("rejected")]
    assert success_rate(ran) == 1.0
    assert all(r["f"] > f_max for r in rejected)
    benchmark.extra_info.update(
        serial=serial,
        f_max=f_max,
        accepted=str(sorted(r["f"] for r in ran)),
        rejected=str(sorted(r["f"] for r in rejected)),
    )


def bench_tolerance_strong_row(benchmark, bench_graph):
    row = get_row(7)
    f_max = row.f_max(bench_graph)
    fs = list(range(0, f_max + 2))

    def sweep():
        return tolerance_sweep(row, bench_graph, fs, STRONG_STRATEGY, seed=2)

    records = benchmark.pedantic(sweep, rounds=1, iterations=1)
    ran = [r for r in records if not r.get("rejected")]
    assert success_rate(ran) == 1.0
    assert any(r.get("rejected") for r in records)
    benchmark.extra_info.update(f_max=f_max)
