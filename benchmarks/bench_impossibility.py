"""Theorem 8 benchmark: the impossibility boundary, executed.

Sweeps (k, f) across the ⌈k/n⌉ > ⌈(k−f)/n⌉ line and verifies the
two-execution construction produces a violation exactly when the theorem
says it must.
"""

import pytest

from conftest import attach
from repro.core import demonstrate_impossibility, impossibility_applies


def bench_impossibility_construction(benchmark, bench_graph):
    n = bench_graph.n
    k = 2 * n - 2

    def run():
        return demonstrate_impossibility(bench_graph, k=k, f=n, seed=1)

    rep = benchmark.pedantic(run, rounds=2, iterations=1)
    assert rep.applies and rep.violated
    benchmark.extra_info.update(
        n=n, k=k, f=n, cap_all=rep.cap_all, cap_required=rep.cap_required,
        honest_at_crowded=rep.honest_at_crowded,
    )


def bench_impossibility_boundary_sweep(benchmark, bench_graph):
    n = bench_graph.n
    k = 2 * n

    def sweep():
        out = []
        for f in range(0, n + 3):
            applies = impossibility_applies(n, k, f)
            rep = demonstrate_impossibility(bench_graph, k=k, f=f, seed=2)
            out.append((f, applies, rep.violated))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Below the line: construction cannot violate; above: always violates.
    for f, applies, violated in out:
        assert applies == (f >= n), f
        assert violated == applies, (f, applies, violated)
    benchmark.extra_info.update(boundary_f=n, sweep=str(out))
