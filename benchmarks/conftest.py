"""Shared fixtures for the benchmark harness.

Every benchmark measures wall time via pytest-benchmark AND attaches the
simulation's round counts (the paper's actual metric) to
``benchmark.extra_info``; run with ``-s`` to also see the printed
reproduction tables that mirror the paper's Table 1.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.graphs import random_connected  # noqa: E402


#: Benchmark instance sizes — small enough for CI, large enough for shape.
BENCH_N = int(os.environ.get("REPRO_BENCH_N", "9"))
SCALING_NS = tuple(
    int(x) for x in os.environ.get("REPRO_BENCH_SCALING", "6,8,10,12").split(",")
)


@pytest.fixture(scope="session")
def bench_graph():
    """The standard benchmark graph (view-distinguishable, connected)."""
    from repro.graphs import is_quotient_isomorphic

    for seed in range(50):
        g = random_connected(BENCH_N, seed=seed)
        if is_quotient_isomorphic(g):
            return g
    raise RuntimeError("no view-distinguishable benchmark graph found")


def attach(benchmark, report, **extra):
    """Record the paper-relevant metrics alongside the timing."""
    benchmark.extra_info.update(
        success=report.success,
        rounds_simulated=report.rounds_simulated,
        rounds_charged=str(report.rounds_charged),  # may exceed JSON int range
        **{k: str(v) for k, v in extra.items()},
    )
