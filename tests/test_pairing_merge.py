"""Tests for pairing schedules and map-majority voting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.graphs import canonical_form, random_connected, ring
from repro.mapping import (
    decode_canonical,
    majority_encoding,
    majority_map,
    paper_pairing_schedule,
    pairs_covered,
    round_robin_schedule,
)


class TestPaperSchedule:
    @given(k=st.integers(2, 24))
    @settings(max_examples=23)
    def test_all_pairs_covered(self, k):
        ids = list(range(1, k + 1))
        schedule = paper_pairing_schedule(ids)
        expected = {(a, b) for a in ids for b in ids if a < b}
        assert pairs_covered(schedule) == expected

    @given(k=st.integers(2, 24))
    @settings(max_examples=23)
    def test_slots_linear(self, k):
        """O(n) slots — the source of the O(n^4) bound in Theorem 3."""
        slots = len(paper_pairing_schedule(range(k)))
        assert slots <= 2 * k + 2 * max(k.bit_length(), 1)

    def test_each_robot_once_per_slot(self):
        schedule = paper_pairing_schedule(range(10))
        for slot in schedule:
            used = [x for pair in slot for x in pair]
            assert len(used) == len(set(used))

    def test_deterministic_in_roster(self):
        assert paper_pairing_schedule([3, 1, 2]) == paper_pairing_schedule([1, 2, 3])

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            paper_pairing_schedule([1, 1, 2])

    def test_trivial_rosters(self):
        assert paper_pairing_schedule([1]) == []
        assert paper_pairing_schedule([1, 2]) == [[(1, 2)]]


class TestRoundRobin:
    @given(k=st.integers(2, 20))
    @settings(max_examples=19)
    def test_all_pairs_covered(self, k):
        ids = list(range(1, k + 1))
        expected = {(a, b) for a in ids for b in ids if a < b}
        assert pairs_covered(round_robin_schedule(ids)) == expected

    @given(k=st.integers(2, 20))
    @settings(max_examples=19)
    def test_optimal_slot_count(self, k):
        slots = len(round_robin_schedule(range(k)))
        assert slots == (k - 1 if k % 2 == 0 else k)

    def test_fewer_slots_than_paper(self):
        # The ablation claim: the circle method needs no more slots.
        for k in (6, 10, 16):
            assert len(round_robin_schedule(range(k))) <= len(
                paper_pairing_schedule(range(k))
            )


class TestMajority:
    def test_majority_encoding_picks_most_common(self):
        a, b = ("A",), ("B",)
        assert majority_encoding([a, a, b, None]) == a

    def test_all_none(self):
        assert majority_encoding([None, None]) is None

    def test_decode_round_trip(self, zoo_graph):
        enc = canonical_form(zoo_graph, 0)
        g2 = decode_canonical(enc)
        assert canonical_form(g2, 0) == enc
        assert g2.n == zoo_graph.n and g2.m == zoo_graph.m

    def test_majority_map_object_level(self):
        g = random_connected(7, seed=2)
        good = g.relabel(list(range(7)))
        garbage = ring(7)
        winner = majority_map([good, good, garbage, None])
        assert winner is not None
        assert canonical_form(winner, 0) == canonical_form(g, 0)

    def test_majority_map_correct_under_f_bound(self):
        """n-f-1 good candidates vs f bad ones: good always wins when
        f <= n/2 - 1 (the Theorem 3 counting argument)."""
        n = 9
        g = random_connected(n, seed=4)
        f = n // 2 - 1
        candidates = [g] * (n - f - 1) + [ring(n)] * f
        winner = majority_map(candidates)
        assert canonical_form(winner, 0) == canonical_form(g, 0)
