"""Parallel sweep execution: identical records, deterministic order.

The experiments layer fans sweep cells out over processes when
``workers > 1``; the contract is that the returned record list is
*exactly* the serial one (same order, same values).  Also covers the
tolerance sweep's narrowed exception handling: only the repro error
hierarchy is a legitimate "rejected" outcome — anything else is an
engine bug and must propagate.
"""

import pytest

from repro.analysis import (
    run_table1,
    scaling_sweep,
    strategy_matrix,
    tolerance_sweep,
)
from repro.core import TABLE1, get_row
from repro.core.runner import Table1Row
from repro.errors import ConfigurationError
from repro.graphs import random_connected


@pytest.fixture(scope="module")
def g():
    return random_connected(8, seed=5)


class TestParallelMatchesSerial:
    def test_run_table1(self, g):
        serial = run_table1(g, strategies=["squatter", "idle"], serials=[4, 5])
        parallel = run_table1(
            g, strategies=["squatter", "idle"], serials=[4, 5], workers=2
        )
        assert parallel == serial

    def test_tolerance_sweep(self, g):
        row = get_row(5)
        serial = tolerance_sweep(row, g, [0, 1, 2], "squatter")
        parallel = tolerance_sweep(row, g, [0, 1, 2], "squatter", workers=3)
        assert parallel == serial

    def test_scaling_sweep(self):
        row = get_row(5)
        graphs = [random_connected(n, seed=1) for n in (6, 8)]
        serial = scaling_sweep(row, graphs, "idle")
        parallel = scaling_sweep(row, graphs, "idle", workers=2)
        assert parallel == serial

    def test_strategy_matrix(self, g):
        rows = [get_row(4), get_row(5)]
        serial = strategy_matrix(rows, g, ["squatter", "idle"])
        parallel = strategy_matrix(rows, g, ["squatter", "idle"], workers=2)
        assert parallel == serial

    def test_workers_one_is_serial(self, g):
        assert run_table1(g, strategies=["idle"], serials=[5], workers=1) == \
            run_table1(g, strategies=["idle"], serials=[5])


def _fake_row(solver):
    return Table1Row(
        serial=1,  # a registry serial, but NOT the registry object
        theorem=1,
        running_time="test",
        start="Gathered",
        tolerance="0",
        strong=False,
        solver=solver,
        f_max=lambda graph: 1,
        paper_bound=lambda graph, f: 1,
    )


class TestToleranceExceptionNarrowing:
    def test_repro_errors_recorded_as_rejected(self, g):
        def rejecting_solver(graph, f, adversary, seed):
            raise ConfigurationError("f out of range")

        recs = tolerance_sweep(_fake_row(rejecting_solver), g, [0, 1], "idle")
        assert [r["rejected"] for r in recs] == [True, True]
        assert all(r["reason"] == "ConfigurationError" for r in recs)

    def test_engine_bugs_propagate(self, g):
        """A TypeError from a solver is a bug, not an out-of-bound f; the
        old bare `except Exception` silently recorded it as rejected."""

        def buggy_solver(graph, f, adversary, seed):
            raise TypeError("engine bug")

        with pytest.raises(TypeError, match="engine bug"):
            tolerance_sweep(_fake_row(buggy_solver), g, [0], "idle")

    def test_non_registry_row_falls_back_to_serial(self, g):
        """A hand-built row (unpicklable lambdas) still works with
        workers>1 by silently running serially."""

        def rejecting_solver(graph, f, adversary, seed):
            raise ConfigurationError("nope")

        recs = tolerance_sweep(
            _fake_row(rejecting_solver), g, [0, 1], "idle", workers=4
        )
        assert [r["rejected"] for r in recs] == [True, True]


class TestRegistryIntrospection:
    def test_all_registry_rows_resolve(self):
        from repro.analysis.experiments import _registry_serial

        for row in TABLE1:
            assert _registry_serial(row) == row.serial

    def test_foreign_row_does_not_resolve(self):
        from repro.analysis.experiments import _registry_serial

        assert _registry_serial(_fake_row(lambda *a, **kw: None)) is None
