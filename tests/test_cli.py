"""Tests for the command-line interface (and its benchmark tooling)."""

import importlib.util
import json
import pathlib

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_row_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--row", "8"])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--row", "1", "--strategy", "teleporter"])


class TestCommands:
    def test_strategies_lists_zoo(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "squatter" in out and "impersonator" in out

    def test_run_row5(self, capsys):
        rc = main(["run", "--row", "5", "--n", "8", "--strategy", "squatter"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "success          : True" in out

    def test_run_explicit_f(self, capsys):
        rc = main(["run", "--row", "7", "--n", "8", "--f", "1", "--strategy", "id_cycler"])
        assert rc == 0

    def test_impossible_applies(self, capsys):
        rc = main(["impossible", "--n", "6", "--k", "12", "--f", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "violation shown   : True" in out

    def test_impossible_not_applies(self, capsys):
        rc = main(["impossible", "--n", "6", "--k", "12", "--f", "2"])
        out = capsys.readouterr().out
        assert "Theorem 8 applies : False" in out

    def test_tolerance_sweep(self, capsys):
        rc = main(["tolerance", "--row", "5", "--n", "8", "--strategy", "idle"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Tolerance sweep" in out

    def test_table1_small(self, capsys):
        rc = main(["table1", "--n", "8", "--strategy", "squatter"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1 reproduction" in out
        # All seven rows present (row 1 applicable on the sampled graph).
        assert out.count("\n") >= 9

    def test_table1_parallel_workers(self, capsys):
        rc = main(["table1", "--n", "8", "--strategy", "squatter", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1 reproduction" in out


class TestSweep:
    def test_sweep_end_to_end_in_tmpdir(self, capsys, tmp_path):
        """`repro sweep` cold then warm: second run answers every cell
        from the store and recomputes nothing."""
        store = tmp_path / "runs"
        argv = [
            "sweep", "--n", "8", "--strategies", "squatter,idle",
            "--serials", "4,5", "--store", str(store),
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert "Sweep (n=8" in cold
        assert "0 cell(s) answered from cache, 4 computed" in cold
        assert (store / "meta.json").exists()
        assert any(p.name.startswith("shard-") for p in store.iterdir())

        assert main(argv + ["--workers", "2", "--chunk", "2"]) == 0
        warm = capsys.readouterr().out
        assert "4 cell(s) answered from cache, 0 computed" in warm
        # identical table rows either way
        assert [l for l in cold.splitlines() if l.startswith(" ")] == \
            [l for l in warm.splitlines() if l.startswith(" ")]

    def test_sweep_without_store(self, capsys):
        assert main(["sweep", "--n", "8", "--strategies", "squatter",
                     "--serials", "5"]) == 0
        assert "answered from cache" not in capsys.readouterr().out

    def test_sweep_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--n", "8", "--strategies", "teleporter"])

    def test_sweep_with_no_applicable_cells_fails(self, capsys):
        """A sweep in which nothing ran must not exit 0 with an empty
        success-looking table (the vacuous-success bug class)."""
        rc = main(["sweep", "--n", "8", "--strategies", "squatter",
                   "--serials", "99"])
        assert rc == 1
        assert "nothing ran" in capsys.readouterr().out


class TestBench:
    def test_bench_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_engine.json"
        rc = main([
            "bench", "--n", "12", "--k", "6", "--rounds", "20",
            "--repeats", "1", "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "Engine microbenchmark" in printed
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "engine"
        assert payload["all_identical"] is True
        assert {s["scenario"] for s in payload["scenarios"]} == {
            "ring_march", "ring_observe", "random_walk", "messages", "sleepers",
        }
        for s in payload["scenarios"]:
            assert s["optimized_s"] >= 0 and s["reference_s"] >= 0

    def test_bench_no_out_file(self, capsys):
        rc = main([
            "bench", "--n", "12", "--k", "6", "--rounds", "10",
            "--repeats", "1", "--out", "",
        ])
        assert rc == 0
        assert "overall speedup" in capsys.readouterr().out

    def test_bench_graphs_suite_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_graphs.json"
        rc = main([
            "bench", "--suite", "graphs", "--repeats", "1", "--cells", "4",
            "--graphs-out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "Graph substrate microbenchmark" in printed
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "graphs"
        assert payload["all_identical"] is True
        assert {s["scenario"] for s in payload["scenarios"]} == {
            "construct_closed_form", "construct_seeded", "traverse",
            "port_lookup", "sweep_dispatch",
        }

    def test_bench_warns_on_baseline_params_drift(self, capsys, tmp_path):
        """Overwriting an existing bench file with different params must
        be flagged: the regression gate re-runs the baseline's params."""
        out_path = tmp_path / "BENCH_engine.json"
        base_args = ["bench", "--k", "6", "--rounds", "10", "--repeats", "1",
                     "--out", str(out_path)]
        assert main(base_args + ["--n", "12"]) == 0
        assert "warning:" not in capsys.readouterr().out
        assert main(base_args + ["--n", "14"]) == 0
        assert "changes what the regression gate measures" in capsys.readouterr().out

    def test_bench_defaults_to_checked_in_baselines(self):
        """A bare `repro bench` from any CWD must target the files
        `benchmarks/check_regression.py` gates, not CWD-relative names
        that silently leave the guarded baselines stale."""
        args = build_parser().parse_args(["bench"])
        repo_bench = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
        assert pathlib.Path(args.out) == repo_bench / "BENCH_engine.json"
        assert pathlib.Path(args.graphs_out) == repo_bench / "BENCH_graphs.json"
        assert args.out == str(pathlib.Path(args.out).absolute())


def _load_regression_gate():
    path = (
        pathlib.Path(__file__).resolve().parents[1]
        / "benchmarks" / "check_regression.py"
    )
    spec = importlib.util.spec_from_file_location("check_regression", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


class TestRegressionGateSchemaGuard:
    """`check_regression.py --update` must not cross a run-store schema
    bump silently: the baseline would claim continuity with records whose
    meaning changed."""

    def _fabricate(self, tmp_path, baseline_version):
        baseline = {
            "benchmark": "engine",
            "store_schema_version": baseline_version,
            "params": {},
            "scenarios": [],
        }
        path = tmp_path / "base.json"
        path.write_text(json.dumps(baseline))
        fresh = {
            "benchmark": "engine",
            "store_schema_version": baseline_version + 1,
            "params": {},
            "scenarios": [],
            "overall_speedup": 1.0,
            "all_identical": True,
        }
        return path, fresh

    def test_update_refuses_on_mismatch(self, tmp_path, capsys):
        gate = _load_regression_gate()
        path, fresh = self._fabricate(tmp_path, baseline_version=1)
        failures = gate.check_suite(
            "engine", str(path), lambda params: fresh, 2.0, update=True
        )
        assert failures == 1
        assert "REFUSING --update" in capsys.readouterr().out
        assert json.loads(path.read_text())["store_schema_version"] == 1  # untouched

    def test_update_allows_with_explicit_flag(self, tmp_path):
        gate = _load_regression_gate()
        path, fresh = self._fabricate(tmp_path, baseline_version=1)
        failures = gate.check_suite(
            "engine", str(path), lambda params: fresh, 2.0, update=True,
            allow_schema_change=True,
        )
        assert failures == 0
        assert json.loads(path.read_text())["store_schema_version"] == 2

    def test_update_matching_schema_proceeds(self, tmp_path):
        gate = _load_regression_gate()
        path, fresh = self._fabricate(tmp_path, baseline_version=1)
        fresh["store_schema_version"] = 1
        failures = gate.check_suite(
            "engine", str(path), lambda params: fresh, 2.0, update=True
        )
        assert failures == 0

    def test_checked_in_baselines_carry_current_version(self):
        from repro.analysis.store import SCHEMA_VERSION

        bench_dir = pathlib.Path(__file__).resolve().parents[1] / "benchmarks"
        for name in ("BENCH_engine.json", "BENCH_graphs.json"):
            payload = json.loads((bench_dir / name).read_text())
            assert payload["store_schema_version"] == SCHEMA_VERSION
