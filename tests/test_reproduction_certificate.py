"""The reproduction certificate: the complete Table 1 claim, exhaustively.

Every Table 1 row × every applicable adversary strategy × Byzantine
placement (lowest/highest IDs), each at the row's **exact** tolerance
bound, on a shared view-distinguishable graph.  One passing run of this
module is the codebase's end-to-end witness that the paper's results
table holds in simulation.

(The benchmarks measure the same grid's costs; this module pins its
correctness into the fast test suite.)
"""

import pytest

from repro.byzantine import STRONG_STRATEGIES, WEAK_STRATEGIES, Adversary
from repro.core import TABLE1, get_row, row_applicable
from repro.graphs import is_quotient_isomorphic, random_connected


@pytest.fixture(scope="module")
def certificate_graph():
    for seed in range(50):
        g = random_connected(8, seed=seed)
        if is_quotient_isomorphic(g):
            return g
    raise RuntimeError("no view-distinguishable graph found")


def _cases():
    for row in TABLE1:
        strategies = STRONG_STRATEGIES if row.strong else WEAK_STRATEGIES
        for strategy in strategies:
            for placement in ("lowest", "highest"):
                yield pytest.param(
                    row.serial, strategy, placement,
                    id=f"row{row.serial}-{strategy}-{placement}",
                )


@pytest.mark.parametrize("serial,strategy,placement", list(_cases()))
def test_table1_certificate(certificate_graph, serial, strategy, placement):
    row = get_row(serial)
    assert row_applicable(row, certificate_graph)
    f = row.f_max(certificate_graph)
    report = row.solver(
        certificate_graph,
        f=f,
        adversary=Adversary(strategy, seed=1),
        seed=1,
        byz_placement=placement,
    )
    assert report.success, (
        f"Table 1 row {serial} (Theorem {row.theorem}) failed at its bound "
        f"f={f} vs {strategy}/{placement}: {report.violations}"
    )
    # The run must also respect the row's total-cost shape: charged rounds
    # exactly equal the cited formulas for the oracle rows.  Row 2's
    # formula depends on which IDs are honest (|Λgood|); the registry uses
    # the lowest-IDs-corrupted convention, so only compare under it.
    if serial in (3, 6) or (serial == 2 and placement == "lowest"):
        assert report.rounds_charged == row.paper_bound(certificate_graph, f)
