"""Exploration round-cost models ``X(n)`` and runnable exploration.

Table 1 of the paper prices several phases in units of ``X(n)`` — "the
number of rounds required to explore any graph of ``n`` nodes" — citing
Aleliunas et al. [2] (random walks / universal traversal sequences) and
Ta-Shma & Zwick [45] (universal exploration sequences):

* general graphs:              ``X(n) = Õ(n⁵)``
* known max degree ``d``:      ``X(n) = Õ(d²·n³)``
* simple ``d``-regular graphs: ``X(n) = Õ(d·n³)``   (paper footnote 5)

These enter the theorems only as multiplicative *charged* round costs, so
we model them as explicit integer formulas (the ``Õ`` log factor spelled
out as ``⌈log₂ n⌉``), used by the oracle-gathering substrate and the
benchmark harness.  For runnable demos and baselines we also provide an
actual random-walk exploration with measured cover time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from .port_labeled import PortLabeledGraph

__all__ = [
    "ExplorationCostModel",
    "DEFAULT_COST_MODEL",
    "exploration_rounds",
    "random_walk_cover",
    "id_length_bits",
]


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(max(n, 2))))


@dataclass(frozen=True)
class ExplorationCostModel:
    """Integer formulas for ``X(n)`` with configurable leading constant.

    The paper's bounds are asymptotic; the constant ``c`` rescales every
    formula uniformly so experiments can sanity-check that *shape*
    conclusions (who dominates whom, crossover locations) are constant-
    independent.
    """

    c: int = 1

    def general(self, n: int) -> int:
        """``X(n)`` with no structural knowledge: ``c·n⁵·⌈log₂n⌉`` ([2,45])."""
        self._check(n)
        return self.c * n**5 * _log2_ceil(n)

    def max_degree(self, n: int, d: int) -> int:
        """``X(n)`` when the maximum degree ``d`` is known: ``c·d²·n³·⌈log₂n⌉``."""
        self._check(n)
        if d < 1:
            raise ConfigurationError("max degree must be >= 1")
        return self.c * d * d * n**3 * _log2_ceil(n)

    def regular(self, n: int, d: int) -> int:
        """``X(n)`` for simple ``d``-regular graphs: ``c·d·n³·⌈log₂n⌉``."""
        self._check(n)
        if d < 1:
            raise ConfigurationError("degree must be >= 1")
        return self.c * d * n**3 * _log2_ceil(n)

    def best_available(self, graph: PortLabeledGraph) -> int:
        """The tightest formula the paper licenses for this graph.

        Mirrors footnote 5: regular graphs get ``Õ(d·n³)``, otherwise the
        max-degree bound ``Õ(d²·n³)`` (robots can learn ``Δ`` from their
        maps in all our uses), falling back to ``Õ(n⁵)`` for empty graphs.
        """
        n = graph.n
        d = graph.max_degree()
        if d == 0:
            return self.general(n)
        if graph.is_regular():
            return self.regular(n, d)
        return self.max_degree(n, d)

    @staticmethod
    def _check(n: int) -> None:
        if n < 1:
            raise ConfigurationError("n must be >= 1")


#: Shared default instance (constant 1 — pure paper formulas).
DEFAULT_COST_MODEL = ExplorationCostModel()


def exploration_rounds(
    n: int,
    max_degree: Optional[int] = None,
    regular_degree: Optional[int] = None,
    model: ExplorationCostModel = DEFAULT_COST_MODEL,
) -> int:
    """Functional façade over :class:`ExplorationCostModel`.

    Precedence follows the paper: regular bound if ``regular_degree`` is
    given, else max-degree bound if ``max_degree`` is given, else the
    general ``Õ(n⁵)`` bound.
    """
    if regular_degree is not None:
        return model.regular(n, regular_degree)
    if max_degree is not None:
        return model.max_degree(n, max_degree)
    return model.general(n)


def random_walk_cover(
    graph: PortLabeledGraph,
    start: int,
    rng,
    max_steps: Optional[int] = None,
) -> Tuple[int, List[int]]:
    """Run a simple random walk until all nodes are visited.

    Returns ``(steps_taken, visit_order)``.  This is the constructive
    counterpart of the Aleliunas et al. bound (expected cover time
    ``O(n·m) ≤ O(n³)``); used by examples and by tests that check the cost
    model upper-bounds measured behaviour on benchmark families.

    Raises :class:`ConfigurationError` if ``max_steps`` is exhausted first
    (the default budget ``8·n·m·⌈log₂n⌉`` makes that astronomically
    unlikely for connected graphs).
    """
    n = graph.n
    if not graph.is_connected():
        raise ConfigurationError("random_walk_cover requires a connected graph")
    if max_steps is None:
        max_steps = 8 * n * max(graph.m, 1) * _log2_ceil(n) + 64
    visited = {start}
    order = [start]
    cur = start
    steps = 0
    while len(visited) < n:
        if steps >= max_steps:
            raise ConfigurationError(
                f"random walk failed to cover the graph within {max_steps} steps"
            )
        port = int(rng.integers(1, graph.degree(cur) + 1))
        cur, _ = graph.traverse_fast(cur, port)
        steps += 1
        if cur not in visited:
            visited.add(cur)
            order.append(cur)
    return steps, order


def id_length_bits(ids) -> int:
    """``|Λ|`` — the bit length of the largest ID in ``ids``.

    The paper charges gathering in units of ``|Λgood|`` (honest IDs only)
    or ``|Λall|`` (all IDs); callers select the population.
    """
    ids = list(ids)
    if not ids or min(ids) < 1:
        raise ConfigurationError("robot IDs must be positive")
    return max(1, max(ids).bit_length())
