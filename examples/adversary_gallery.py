#!/usr/bin/env python3
"""Adversary gallery: every attack in the zoo vs the paper's algorithms.

For each Byzantine strategy, run the strongest applicable algorithm at
its full tolerance and report what the attack achieved: nothing fatal
(the theorems are worst-case), but measurably different round costs and
blacklist activity.

Run:  python examples/adversary_gallery.py
"""

from repro import Adversary, STRONG_STRATEGIES, WEAK_STRATEGIES
from repro.analysis import render_table
from repro.core import solve_theorem1, solve_theorem6
from repro.graphs import random_connected

graph = random_connected(10, seed=3)

rows = []

# Weak attacks vs Theorem 1 at f = n-1 (the most tolerant algorithm).
for strategy in WEAK_STRATEGIES:
    report = solve_theorem1(
        graph, f=9, adversary=Adversary(strategy, seed=5), seed=5, start="gathered"
    )
    rows.append(
        {
            "model": "weak",
            "attack": strategy,
            "algorithm": "Thm 1 (f=9)",
            "dispersed": report.success,
            "rounds": report.rounds_simulated,
            "blacklists": report.meta.get("blacklists", "-"),
        }
    )

# Strong attacks (ID faking) vs Theorem 6 at f = n/4-1.
for strategy in STRONG_STRATEGIES:
    report = solve_theorem6(graph, f=1, adversary=Adversary(strategy, seed=5), seed=5)
    rows.append(
        {
            "model": "strong",
            "attack": strategy,
            "algorithm": "Thm 6 (f=1)",
            "dispersed": report.success,
            "rounds": report.rounds_simulated,
            "blacklists": "-",
        }
    )

print(render_table(rows, title="Adversary gallery (10-node random graph)"))
assert all(r["dispersed"] for r in rows)
print("\nNo attack in the zoo defeats an in-tolerance configuration — as proved.")
