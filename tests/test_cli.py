"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_row_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--row", "8"])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--row", "1", "--strategy", "teleporter"])


class TestCommands:
    def test_strategies_lists_zoo(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        assert "squatter" in out and "impersonator" in out

    def test_run_row5(self, capsys):
        rc = main(["run", "--row", "5", "--n", "8", "--strategy", "squatter"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "success          : True" in out

    def test_run_explicit_f(self, capsys):
        rc = main(["run", "--row", "7", "--n", "8", "--f", "1", "--strategy", "id_cycler"])
        assert rc == 0

    def test_impossible_applies(self, capsys):
        rc = main(["impossible", "--n", "6", "--k", "12", "--f", "6"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "violation shown   : True" in out

    def test_impossible_not_applies(self, capsys):
        rc = main(["impossible", "--n", "6", "--k", "12", "--f", "2"])
        out = capsys.readouterr().out
        assert "Theorem 8 applies : False" in out

    def test_tolerance_sweep(self, capsys):
        rc = main(["tolerance", "--row", "5", "--n", "8", "--strategy", "idle"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Tolerance sweep" in out

    def test_table1_small(self, capsys):
        rc = main(["table1", "--n", "8", "--strategy", "squatter"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1 reproduction" in out
        # All seven rows present (row 1 applicable on the sampled graph).
        assert out.count("\n") >= 9

    def test_table1_parallel_workers(self, capsys):
        rc = main(["table1", "--n", "8", "--strategy", "squatter", "--workers", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1 reproduction" in out


class TestBench:
    def test_bench_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_engine.json"
        rc = main([
            "bench", "--n", "12", "--k", "6", "--rounds", "20",
            "--repeats", "1", "--out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "Engine microbenchmark" in printed
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "engine"
        assert payload["all_identical"] is True
        assert {s["scenario"] for s in payload["scenarios"]} == {
            "ring_march", "ring_observe", "random_walk", "messages", "sleepers",
        }
        for s in payload["scenarios"]:
            assert s["optimized_s"] >= 0 and s["reference_s"] >= 0

    def test_bench_no_out_file(self, capsys):
        rc = main([
            "bench", "--n", "12", "--k", "6", "--rounds", "10",
            "--repeats", "1", "--out", "",
        ])
        assert rc == 0
        assert "overall speedup" in capsys.readouterr().out

    def test_bench_graphs_suite_writes_json(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "BENCH_graphs.json"
        rc = main([
            "bench", "--suite", "graphs", "--repeats", "1", "--cells", "4",
            "--graphs-out", str(out_path),
        ])
        printed = capsys.readouterr().out
        assert rc == 0
        assert "Graph substrate microbenchmark" in printed
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "graphs"
        assert payload["all_identical"] is True
        assert {s["scenario"] for s in payload["scenarios"]} == {
            "construct_closed_form", "construct_seeded", "traverse",
            "port_lookup", "sweep_dispatch",
        }
