"""Tests for the serve subsystem (dispersion-as-a-service).

Pins the tentpole guarantees end to end against a real server on an
ephemeral port:

* warm requests perform **zero solver calls** (spy on the service's
  ``execute_plan``);
* N concurrent identical cold requests compute the cell **exactly
  once** (single-flight dedup);
* SSE event framing is byte-pinned against a golden transcript;
* a full submission queue answers **429 + Retry-After**;
* an injected worker crash surfaces as a **structured 500** while the
  server keeps serving;
* records written through the server are **byte-identical** — same
  shard files, same bytes — to a CLI run of the same scenarios;
* untrusted payloads come back as 400s naming the offending field
  (the hardened ``Scenario.from_dict``).
"""

from __future__ import annotations

import http.client
import json
import threading
from pathlib import Path

import pytest

import repro.serve.service as service_module
from repro.analysis.faults import FaultPlan, FaultSpec
from repro.analysis.store import RunStore
from repro.errors import ConfigurationError, ReproError, ValidationError
from repro.scenarios import Scenario, ScenarioGrid
from repro.serve import ServerThread

DATA = Path(__file__).parent / "data"

#: The scenario every serve test speaks (tiny but a real solver run).
SCENARIO = {
    "algorithm": 4,
    "graph": {"family": "random_connected", "args": {"n": 7, "seed": 0}},
    "strategy": "squatter",
    "f": "max",
    "seed": 0,
}


def _scenario(seed: int = 0) -> dict:
    return dict(SCENARIO, seed=seed)


def _request(server, method, path, payload=None):
    """One request; returns (status, parsed body, response headers)."""
    conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        body = None if payload is None else json.dumps(payload)
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read()), dict(response.getheaders())
    finally:
        conn.close()


def _sse_bytes(server, key: str) -> bytes:
    conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
    try:
        conn.request("GET", f"/events/{key}")
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "text/event-stream"
        return response.read()
    finally:
        conn.close()


class TestWarmServing:
    def test_warm_request_zero_solver_calls(self, tmp_path, monkeypatch):
        """A store warmed by the CLI path answers with zero solver calls."""
        store_dir = str(tmp_path / "store")
        scenario = Scenario.from_dict(SCENARIO)
        cli_records = list(scenario.run(store=RunStore(store_dir)))

        calls = []
        real = service_module.execute_plan

        def spy(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(service_module, "execute_plan", spy)
        with ServerThread(store=RunStore(store_dir)) as server:
            status, body, _ = _request(server, "POST", "/run", SCENARIO)
        assert status == 200
        assert body["status"] == "warm"
        assert body["key"] == scenario.key()
        assert body["records"] == cli_records
        assert calls == [], "warm request must not invoke the executor"

    def test_cli_warms_server_and_server_warms_cli(self, tmp_path):
        """One store, two front-ends: each sees the other's cells."""
        store_dir = str(tmp_path / "store")
        with ServerThread(store=RunStore(store_dir)) as server:
            status, cold, _ = _request(server, "POST", "/run", SCENARIO)
            assert status == 200 and cold["status"] == "ok"
        # Server wrote the cell; the CLI path must replay it from disk.
        store = RunStore(store_dir)
        records = store.get(Scenario.from_dict(SCENARIO).key())
        assert records == cold["records"]
        assert store.hits == 1


class TestSingleFlight:
    def test_concurrent_identical_requests_compute_once(self, tmp_path, monkeypatch):
        clients = 6
        calls = []
        release = threading.Event()
        real = service_module.execute_plan

        def gated(*args, **kwargs):
            calls.append(1)
            assert release.wait(30), "test gate never released"
            return real(*args, **kwargs)

        monkeypatch.setattr(service_module, "execute_plan", gated)
        with ServerThread(store=RunStore(str(tmp_path / "store"))) as server:
            results = []

            def post():
                results.append(_request(server, "POST", "/run", SCENARIO))

            threads = [threading.Thread(target=post) for _ in range(clients)]
            for thread in threads:
                thread.start()
            # Wait until every request has been routed (joined or queued),
            # then let the single computation proceed.
            service = server.service
            for _ in range(3000):
                if service.counters["requests"] >= clients:
                    break
                threading.Event().wait(0.01)
            assert service.counters["requests"] >= clients
            release.set()
            for thread in threads:
                thread.join(timeout=60)

            assert len(calls) == 1, "single-flight must compute the cell once"
            assert len(results) == clients
            reference = results[0][1]["records"]
            for status, body, _ in results:
                assert status == 200
                assert body["records"] == reference
            assert service.counters["dedup_joined"] == clients - 1
            assert service.counters["computed"] == 1


class TestSSE:
    def test_event_stream_matches_golden_transcript(self, tmp_path):
        """The full SSE transcript is byte-identical run to run."""
        with ServerThread(store=RunStore(str(tmp_path / "store")),
                          workers=1, round_every=500) as server:
            status, body, _ = _request(server, "POST", "/run", SCENARIO)
            assert status == 200
            stream = _sse_bytes(server, body["key"])
        golden = (DATA / "serve_sse_golden.txt").read_bytes()
        assert stream == golden

    def test_warm_key_synthesizes_terminal_stream(self, tmp_path):
        """A key warmed before this server existed still streams."""
        store_dir = str(tmp_path / "store")
        scenario = Scenario.from_dict(SCENARIO)
        records = list(scenario.run(store=RunStore(store_dir)))
        with ServerThread(store=RunStore(store_dir)) as server:
            stream = _sse_bytes(server, scenario.key()).decode()
        events = [line.split(": ", 1)[1] for line in stream.splitlines()
                  if line.startswith("event: ")]
        assert events == ["result", "done"]
        payload = json.loads(
            [line for line in stream.splitlines()
             if line.startswith("data: ") and '"records"' in line][0][len("data: "):]
        )
        assert payload["records"] == records

    def test_unknown_key_is_404(self, tmp_path):
        with ServerThread(store=RunStore(str(tmp_path / "store"))) as server:
            conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
            try:
                conn.request("GET", "/events/deadbeef")
                assert conn.getresponse().status == 404
            finally:
                conn.close()


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, tmp_path, monkeypatch):
        started = threading.Event()
        release = threading.Event()
        real = service_module.execute_plan

        def gated(*args, **kwargs):
            started.set()
            assert release.wait(30), "test gate never released"
            return real(*args, **kwargs)

        monkeypatch.setattr(service_module, "execute_plan", gated)
        with ServerThread(store=RunStore(str(tmp_path / "store")),
                          workers=1, queue_size=1) as server:
            # Cell A occupies the single worker...
            status, _, _ = _request(server, "POST", "/run?wait=0", _scenario(1))
            assert status == 202
            assert started.wait(30)
            # ...cell B fills the queue...
            status, _, _ = _request(server, "POST", "/run?wait=0", _scenario(2))
            assert status == 202
            # ...cell C is explicit backpressure.
            status, body, headers = _request(
                server, "POST", "/run?wait=0", _scenario(3))
            assert status == 429
            assert "Retry-After" in headers
            assert int(headers["Retry-After"]) >= 1
            assert "queue is full" in body["error"]
            assert server.service.counters["busy_429"] == 1
            release.set()
            # The rejected client retries after the drain and succeeds.
            status = 429
            for _ in range(3000):
                status, body, _ = _request(server, "POST", "/run", _scenario(3))
                if status != 429:
                    break
                threading.Event().wait(0.01)
            assert status == 200 and body["status"] in ("ok", "warm")


class TestFailureResponses:
    def test_killed_worker_is_structured_500_and_server_survives(self, tmp_path):
        """A crash-faulted cell quarantines into a 5xx body, not a dead server."""
        poisoned = Scenario.from_dict(_scenario(7))
        faults = FaultPlan(
            {poisoned.key(): FaultSpec(mode="crash", attempts=None)}
        )
        with ServerThread(store=RunStore(str(tmp_path / "store")),
                          faults=faults) as server:
            status, body, _ = _request(server, "POST", "/run", _scenario(7))
            assert status == 500
            assert body["status"] == "failed"
            [record] = body["records"]
            assert record["failed"] is True and record["success"] is False
            assert record["key"] == poisoned.key()
            assert record["attempts"] >= 1
            # The event stream carries the quarantine.
            stream = _sse_bytes(server, poisoned.key()).decode()
            assert "event: quarantined" in stream
            assert '"status":"failed"' in stream
            # The server is alive and healthy requests still compute.
            status, body, _ = _request(server, "GET", "/healthz")
            assert status == 200 and body["ok"] is True
            status, body, _ = _request(server, "POST", "/run", SCENARIO)
            assert status == 200 and body["status"] == "ok"
            # Quarantined cells are never persisted as warm results.
            status, body, _ = _request(server, "POST", "/run?wait=0", _scenario(7))
            assert status == 202

    def test_rejection_is_422(self, tmp_path):
        # f beyond the row's bound on this graph: a deterministic
        # ReproError rejection, distinct from a quarantined crash.
        payload = dict(SCENARIO, f=99, kind="table1")
        with ServerThread(store=RunStore(str(tmp_path / "store"))) as server:
            status, body, _ = _request(server, "POST", "/run", payload)
        assert status in (422, 500)  # rejection path; never a crash
        assert body["status"] in ("rejected", "failed")


class TestByteIdentity:
    def test_server_store_is_byte_identical_to_cli_store(self, tmp_path):
        """Same scenarios, two stores — CLI-written and server-written —
        must match shard for shard, byte for byte."""
        scenarios = [_scenario(s) for s in range(3)]
        cli_dir, serve_dir = tmp_path / "cli", tmp_path / "serve"

        grid = ScenarioGrid.from_dicts(scenarios)
        cli_records = list(grid.run(store=RunStore(str(cli_dir))))

        with ServerThread(store=RunStore(str(serve_dir)), workers=1) as server:
            status, body, _ = _request(
                server, "POST", "/sweep", {"scenarios": scenarios})
        assert status == 200 and body["ok"] is True
        served = [record for entry in body["results"]
                  for record in entry["records"]]
        assert served == cli_records

        cli_files = sorted(p.name for p in cli_dir.iterdir())
        serve_files = sorted(p.name for p in serve_dir.iterdir())
        assert cli_files == serve_files
        for name in cli_files:
            assert (cli_dir / name).read_bytes() == (serve_dir / name).read_bytes(), (
                f"shard {name} differs between CLI and server stores"
            )


class TestSweepEndpoint:
    def test_sweep_mixes_warm_and_cold(self, tmp_path):
        store_dir = str(tmp_path / "store")
        warm = Scenario.from_dict(_scenario(0))
        warm_records = list(warm.run(store=RunStore(store_dir)))
        with ServerThread(store=RunStore(store_dir)) as server:
            status, body, _ = _request(
                server, "POST", "/sweep",
                {"scenarios": [_scenario(0), _scenario(1)]})
        assert status == 200
        first, second = body["results"]
        assert first["status"] == "warm" and first["records"] == warm_records
        assert second["status"] == "ok"

    def test_sweep_duplicate_cells_coalesce(self, tmp_path):
        with ServerThread(store=RunStore(str(tmp_path / "store"))) as server:
            status, body, _ = _request(
                server, "POST", "/sweep", [_scenario(0), _scenario(0)])
            assert status == 200
            assert server.service.counters["computed"] == 1
            assert server.service.counters["dedup_joined"] == 1
        assert body["results"][0]["records"] == body["results"][1]["records"]

    def test_sweep_validation_names_the_entry(self, tmp_path):
        with ServerThread(store=RunStore(str(tmp_path / "store"))) as server:
            status, body, _ = _request(
                server, "POST", "/sweep",
                [_scenario(0), dict(SCENARIO, f="lots")])
        assert status == 400
        assert body["field"] == "scenarios[1].f"


class TestHttpSurface:
    def test_stats_reuses_store_stats_json(self, tmp_path, capsys):
        """/stats embeds exactly the dict `repro store stats --json` prints."""
        from repro.cli import main

        store_dir = str(tmp_path / "store")
        Scenario.from_dict(SCENARIO).run(store=RunStore(store_dir))
        assert main(["store", "stats", store_dir, "--json"]) == 0
        cli_stats = json.loads(capsys.readouterr().out)
        with ServerThread(store=RunStore(store_dir)) as server:
            status, body, _ = _request(server, "GET", "/stats")
        assert status == 200
        for key, value in cli_stats.items():
            assert body["store"][key] == value
        assert body["queue"]["capacity"] == 64
        assert set(body["counters"]) >= {
            "requests", "warm_hits", "dedup_joined", "computed", "busy_429",
        }

    def test_result_endpoint(self, tmp_path):
        store_dir = str(tmp_path / "store")
        scenario = Scenario.from_dict(SCENARIO)
        records = list(scenario.run(store=RunStore(store_dir)))
        with ServerThread(store=RunStore(store_dir)) as server:
            status, body, _ = _request(server, "GET", f"/result/{scenario.key()}")
            assert status == 200 and body["records"] == records
            status, body, _ = _request(server, "GET", "/result/0000")
            assert status == 404

    def test_validation_maps_to_400_with_field(self, tmp_path):
        cases = [
            (dict(SCENARIO, bogus=1), "bogus"),
            (dict(SCENARIO, f="lots"), "f"),
            (dict(SCENARIO, seed="zero"), "seed"),
            (dict(SCENARIO, rounds=-1), "rounds"),
            (dict(SCENARIO, strategy="nope"), "strategy"),
            ({"algorithm": 4}, "graph"),
            (dict(SCENARIO, graph={"family": "hyperwhat", "args": {}}), "graph"),
        ]
        with ServerThread(store=RunStore(str(tmp_path / "store"))) as server:
            for payload, field in cases:
                status, body, _ = _request(server, "POST", "/run", payload)
                assert status == 400, payload
                assert body["field"] == field, payload
            # Non-JSON body and wrong method/route.
            conn = http.client.HTTPConnection(server.host, server.port, timeout=60)
            try:
                for method, path, body, expected in [
                    ("POST", "/run", b"not json", 400),
                    ("GET", "/run", None, 405),
                    ("GET", "/nope", None, 404),
                ]:
                    conn.request(method, path, body=body)
                    response = conn.getresponse()
                    response.read()
                    assert response.status == expected, (method, path)
            finally:
                conn.close()


class TestScenarioValidation:
    """Satellite: hardened `from_dict` negative-input coverage (no server)."""

    def test_validation_error_is_a_repro_error(self):
        assert issubclass(ValidationError, ConfigurationError)
        assert issubclass(ValidationError, ReproError)

    @pytest.mark.parametrize("payload, field", [
        ("not an object", "scenario"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "version": 99}, "version"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "shenanigans": 1}, "shenanigans"),
        ({"graph": {"family": "ring", "args": {"n": 6}}}, "algorithm"),
        ({"algorithm": 4}, "graph"),
        ({"algorithm": 4, "graph": []}, "graph"),
        ({"algorithm": 4, "graph": {"weird": 1}}, "graph"),
        ({"algorithm": 99, "graph": {"family": "ring", "args": {"n": 6}}},
         "algorithm"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "strategy": 7}, "strategy"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "strategy": "nope"}, "strategy"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "f": 1.5}, "f"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "f": True}, "f"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "f": "half"}, "f"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "kind": "table9"}, "kind"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "placement": "middle"}, "placement"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "seed": "zero"}, "seed"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "seed": True}, "seed"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "rounds": -3}, "rounds"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "rounds": 2.5}, "rounds"),
        ({"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}},
          "scheduler": "warp(speed=9)"}, "scheduler"),
    ])
    def test_bad_input_names_the_field(self, payload, field):
        with pytest.raises(ValidationError) as excinfo:
            Scenario.from_dict(payload)
        assert excinfo.value.field == field
        assert str(excinfo.value).startswith(f"{field}: ")

    def test_valid_payload_still_parses(self):
        scenario = Scenario.from_dict(SCENARIO)
        assert scenario.serial == 4 and scenario.f == "max"

    def test_grid_prefixes_the_entry_index(self):
        good = {"algorithm": 4, "graph": {"family": "ring", "args": {"n": 6}}}
        with pytest.raises(ValidationError) as excinfo:
            ScenarioGrid.from_dicts([good, dict(good, f="lots")])
        assert excinfo.value.field == "scenarios[1].f"
        with pytest.raises(ValidationError) as excinfo:
            ScenarioGrid.from_dicts([good, "nope"])
        assert excinfo.value.field == "scenarios[1]"
        with pytest.raises(ValidationError) as excinfo:
            ScenarioGrid.from_dicts({"not": "a list"})
        assert excinfo.value.field == "scenarios"

    def test_round_trip_unchanged_by_hardening(self):
        scenario = Scenario.from_dict(SCENARIO)
        again = Scenario.from_dict(json.loads(json.dumps(scenario.to_dict())))
        assert again == scenario and again.key() == scenario.key()
