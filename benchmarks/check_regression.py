#!/usr/bin/env python
"""Perf-regression gate: fresh microbenchmarks vs checked-in baselines.

Guards **every** ``benchmarks/BENCH_*.json`` file it discovers — the
suite name is the filename between ``BENCH_`` and ``.json`` (engine,
graphs, batch, …), so a new baseline is gated the day it lands without
editing this script.  Suites with a registered runner (:data:`RUNNERS`)
support the timing gate and ``--update``; a discovered baseline without
one is still fully covered by ``--check-files``.
Each suite is re-run with its baseline's own parameters and fails
(exit 1) when a scenario regresses or when the optimized and reference
paths stop agreeing behaviourally.  A scenario counts as regressed only
when **both** signals agree, so a slow CI runner cannot trip the gate on
its own:

* wall-clock: fresh ``optimized_s`` exceeds ``--tolerance`` × the
  recorded baseline (machine-dependent, the generous 2× of the issue
  spec), **and**
* speedup: the fresh same-machine ``speedup`` (reference_s/optimized_s,
  measured in the same run, machine-independent) has dropped below the
  baseline's speedup / ``--tolerance``.

A real hot-path regression (losing the lazy snapshot, re-validating in a
generator, pickling graphs per sweep cell, …) trips both comfortably;
hardware variance trips at most the first.

Usage::

    python benchmarks/check_regression.py                 # guard every baseline
    python benchmarks/check_regression.py --suite engine  # just the engine
    python benchmarks/check_regression.py --suite batch   # just the batched engine
    python benchmarks/check_regression.py --tolerance 1.5
    python benchmarks/check_regression.py --update        # refresh baselines
    python benchmarks/check_regression.py --check-files   # schema/consistency only

``--check-files`` validates the *checked-in* baseline JSON without
re-running any benchmark: required keys present, suite names matching,
scenarios non-empty and behaviourally identical, and the recorded
``store_schema_version`` equal to the current
:data:`repro.analysis.store.SCHEMA_VERSION`.  It is deterministic and
hardware-independent, so CI can gate on it without timing flakiness.

Intended both for CI and for local runs before committing engine or
graph-layer changes.
"""

import argparse
import glob
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.batchbench import run_batch_benchmark  # noqa: E402
from repro.analysis.benchmark import run_benchmark, write_bench_json  # noqa: E402
from repro.analysis.graphbench import run_graph_benchmark  # noqa: E402
from repro.analysis.servebench import run_serve_benchmark  # noqa: E402

_HERE = os.path.dirname(__file__)

#: suite name -> rerun-with-baseline-params callable (for the timing
#: gate and --update).  Baseline *files* are discovered, not listed: a
#: new BENCH_<suite>.json is schema-gated immediately, and only needs an
#: entry here once it wants wall-clock gating too.
RUNNERS = {
    "engine": lambda params: run_benchmark(**params),
    "graphs": lambda params: run_graph_benchmark(**params),
    "batch": lambda params: run_batch_benchmark(**params),
    "serve": lambda params: run_serve_benchmark(**params),
}


def discover_suites():
    """Every checked-in baseline: suite name -> baseline path.

    Globs ``benchmarks/BENCH_*.json`` (the suite name is the stem
    between the prefix and ``.json``) and unions in any registered
    runner whose baseline is missing — so a deleted baseline fails
    loudly instead of silently dropping out of the gate.
    """
    suites = {}
    for path in sorted(glob.glob(os.path.join(_HERE, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        if name:
            suites[name] = path
    for name in RUNNERS:
        suites.setdefault(name, os.path.join(_HERE, f"BENCH_{name}.json"))
    return suites


#: Top-level keys every bench payload must carry, and the per-scenario
#: keys the wall-clock gate relies on.
REQUIRED_KEYS = (
    "benchmark", "params", "scenarios", "overall_speedup", "all_identical",
    "store_schema_version",
)
REQUIRED_SCENARIO_KEYS = ("scenario", "optimized_s", "reference_s", "speedup",
                          "identical")


def check_file(name: str, baseline_path: str) -> int:
    """Schema/consistency validation of one checked-in baseline.

    No benchmark re-run: this asserts the *file* is a baseline the wall
    clock gate could use — shape complete, suite name right, scenarios
    behaviourally identical, schema version current.  Returns the number
    of failures (0 = pass).
    """
    from repro.analysis.store import SCHEMA_VERSION

    problems = []
    try:
        with open(baseline_path) as fh:
            payload = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"[{name}] FAIL: cannot read {baseline_path}: {exc}")
        return 1
    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if payload.get("benchmark") not in (None, name):
        problems.append(
            f"benchmark name {payload.get('benchmark')!r} does not match "
            f"suite {name!r}"
        )
    if payload.get("store_schema_version") not in (None, SCHEMA_VERSION):
        problems.append(
            f"store_schema_version {payload.get('store_schema_version')!r} is "
            f"stale (current: {SCHEMA_VERSION}); refresh with --update "
            f"--allow-schema-change"
        )
    scenarios = payload.get("scenarios", [])
    if not scenarios:
        problems.append("no scenarios recorded")
    if not payload.get("all_identical", False):
        problems.append("all_identical is not true (behaviour mismatch baked in)")
    for s in scenarios:
        sname = s.get("scenario", "<unnamed>")
        for key in REQUIRED_SCENARIO_KEYS:
            if key not in s:
                problems.append(f"scenario {sname}: missing key {key!r}")
        if not s.get("identical", False):
            problems.append(f"scenario {sname}: identical is not true")
        for key in ("optimized_s", "reference_s"):
            if not isinstance(s.get(key), (int, float)) or s.get(key, -1) < 0:
                problems.append(f"scenario {sname}: bad {key!r}")
    if problems:
        print(f"[{name}] FAIL: {baseline_path}")
        for problem in problems:
            print(f"  - {problem}")
    else:
        print(f"[{name}] PASS: {baseline_path} is a consistent baseline "
              f"({len(scenarios)} scenarios, schema {SCHEMA_VERSION})")
    return len(problems)


def check_suite(name: str, baseline_path: str, runner, tolerance: float,
                update: bool, allow_schema_change: bool = False) -> int:
    """Run one suite against its baseline; returns the number of failures."""
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    fresh = runner(baseline["params"])

    if update:
        base_schema = baseline.get("store_schema_version")
        fresh_schema = fresh.get("store_schema_version")
        if (
            base_schema is not None
            and fresh_schema != base_schema
            and not allow_schema_change
        ):
            # A baseline refresh must not silently paper over a record-
            # schema bump: the run-store cache keys (and hence every
            # cached sweep) changed meaning.  Make the operator say so.
            print(
                f"[{name}] REFUSING --update: fresh payload has "
                f"store_schema_version={fresh_schema} but the baseline was "
                f"recorded under {base_schema}; re-run with "
                f"--allow-schema-change if the bump is intentional"
            )
            return 1
        write_bench_json(fresh, baseline_path)
        print(f"[{name}] baseline refreshed: {baseline_path}")
        return 0

    base_by_name = {s["scenario"]: s for s in baseline["scenarios"]}
    failures = []
    print(f"[{name}]")
    print(f"{'scenario':<22} {'base_s':>10} {'fresh_s':>10} {'ratio':>7} "
          f"{'speedup':>8}  verdict")
    for s in fresh["scenarios"]:
        sname = s["scenario"]
        base = base_by_name.get(sname)
        if base is None:
            print(f"{sname:<22} {'-':>10} {s['optimized_s']:>10.4f} {'-':>7} "
                  f"{s['speedup']:>7.2f}x  new (no baseline)")
            continue
        ratio = (
            s["optimized_s"] / base["optimized_s"]
            if base["optimized_s"] > 0 else float("inf")
        )
        wall_clock_bad = ratio > tolerance
        speedup_bad = s["speedup"] < base["speedup"] / tolerance
        ok = s["identical"] and not (wall_clock_bad and speedup_bad)
        verdict = "ok" if ok else "REGRESSION"
        if not s["identical"]:
            verdict = "BEHAVIOUR MISMATCH"
        elif ok and wall_clock_bad:
            verdict = "ok (slow machine: speedup held)"
        print(f"{sname:<22} {base['optimized_s']:>10.4f} {s['optimized_s']:>10.4f} "
              f"{ratio:>6.2f}x {s['speedup']:>7.2f}x  {verdict}")
        if not ok:
            failures.append(sname)
    if failures:
        print(f"[{name}] FAIL: {len(failures)} scenario(s) regressed: "
              f"{', '.join(failures)}")
    else:
        print(f"[{name}] PASS: all scenarios within {tolerance}x of baseline "
              f"(fresh overall speedup {fresh['overall_speedup']}x vs reference)")
    return len(failures)


def main(argv=None) -> int:
    suites = discover_suites()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--suite", choices=(*suites, "all"), default="all",
                    help="which baseline(s) to guard (default: all discovered)")
    ap.add_argument("--baseline", default=None,
                    help="override the baseline path (single suite only)")
    ap.add_argument("--tolerance", type=float, default=2.0,
                    help="max slowdown factor vs baseline (default 2x)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline(s) with this run instead of checking")
    ap.add_argument("--allow-schema-change", action="store_true",
                    help="let --update cross a run-store schema-version bump "
                         "(refused by default)")
    ap.add_argument("--check-files", action="store_true",
                    help="validate the checked-in baseline JSON only "
                         "(schema/consistency; no benchmark re-run)")
    args = ap.parse_args(argv)

    names = list(suites) if args.suite == "all" else [args.suite]
    if args.baseline is not None and len(names) != 1:
        ap.error(f"--baseline requires naming one suite via --suite "
                 f"({', '.join(suites)})")
    if args.check_files and args.update:
        ap.error("--check-files and --update are mutually exclusive")

    failures = 0
    for name in names:
        baseline_path = args.baseline if args.baseline is not None else suites[name]
        if args.check_files:
            failures += check_file(name, baseline_path)
            continue
        runner = RUNNERS.get(name)
        if runner is None:
            print(f"[{name}] FAIL: no registered runner for this baseline — "
                  f"timing gate and --update need an entry in "
                  f"check_regression.RUNNERS (--check-files still covers it)")
            failures += 1
            continue
        failures += check_suite(
            name, baseline_path, runner, args.tolerance, args.update,
            allow_schema_change=args.allow_schema_change,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
