"""Aggregation of run results into experiment records.

A *record* is a flat dict (easy to tabulate / serialise) describing one
run: configuration keys plus outcome metrics.  Sweeps in
:mod:`repro.analysis.experiments` produce lists of records; the tables
module renders them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..sim.scheduler import RunReport

__all__ = ["record_from_report", "success_rate", "summarize"]


def record_from_report(report: RunReport, **config) -> Dict:
    """Flatten a :class:`RunReport` plus its configuration into a record.

    A run under a non-default activation scheduler (its canonical spec
    sits in ``report.meta["scheduler"]``) additionally records the
    ``scheduler`` spec and the ``activations`` tally.  Synchronous-
    default records deliberately carry **neither** key: their byte shape
    — and therefore every cached store cell a legacy sweep wrote — must
    stay exactly the historical one.
    """
    rec = dict(config)
    rec.update(
        success=report.success,
        rounds_simulated=report.rounds_simulated,
        rounds_charged=report.rounds_charged,
        rounds_total=report.rounds_total,
        n_violations=len(report.violations),
    )
    for key in ("theorem", "f", "n", "strategy"):
        if key in report.meta and key not in rec:
            rec[key] = report.meta[key]
    if "scheduler" in report.meta:
        rec.setdefault("scheduler", report.meta["scheduler"])
        rec.setdefault("activations", report.activations)
    return rec


def success_rate(records: Iterable[Dict]) -> float:
    """Fraction of records *that ran* with ``success=True``.

    Empty input returns ``nan``, not 1.0: a sweep in which **no row was
    applicable** has no evidence of success, and reporting it as perfect
    silently masked filtered-out-everything bugs in aggregation.
    Callers that want "vacuously fine" must say so explicitly.

    Quarantined failure records (``failed=True``, from the executor's
    retry-exhaustion path) are **excluded from both numerator and
    denominator**: they are infrastructure casualties (a crashed or hung
    worker), not protocol outcomes, and letting them dilute the rate
    made the same record set disagree with
    :meth:`~repro.scenarios.ResultSet.failures` about what "failed"
    means.  They surface separately — ``failures()`` on a result set,
    the ``failed`` count column in :func:`summarize` — and a set of
    *only* quarantine records reports ``nan`` (no run ever executed, so
    there is no rate).  Runs that executed and merely did not disperse
    (``success=False`` without ``failed``) count against the rate as
    always.
    """
    ran = [r for r in records if not r.get("failed")]
    if not ran:
        return float("nan")
    return sum(1 for r in ran if r.get("success")) / len(ran)


def summarize(records: List[Dict], group_by: str, missing=None) -> List[Dict]:
    """Group records by a key; report success rate and round statistics.

    An empty record list summarises to an empty list (explicitly —
    never a vacuous all-success row; see :func:`success_rate`).  Groups
    are always non-empty by construction, so per-group rates are never
    ``nan``.

    ``missing`` labels records that lack the key entirely.  Default-
    valued axes omit their key from records for cache compatibility, so
    e.g. a scheduler matrix groups cleanly with
    ``summarize(records, "scheduler", missing="synchronous")``.

    Quarantined failure records (``failed=True``) have no round metrics
    and no protocol outcome; they count toward ``runs`` but are excluded
    from ``success_rate`` exactly as :func:`success_rate` excludes them
    — numerator *and* denominator — so the round statistics and the rate
    agree on which records "ran".  A group that contains any failure
    gains a ``failed`` count column; clean summaries are byte-identical
    to the pre-fault-tolerance shape.  A group of *only* failures
    reports ``nan`` for the rate and the round statistics alike (nothing
    ran, so there is nothing to average).
    """
    if not records:
        return []
    groups: Dict = {}
    for r in records:
        groups.setdefault(r.get(group_by, missing), []).append(r)
    out = []
    any_failed = any(r.get("failed") for r in records)
    for key in sorted(groups, key=lambda k: (str(type(k)), k)):
        rs = groups[key]
        ran = [r for r in rs if not r.get("failed")]
        sims = [r["rounds_simulated"] for r in ran]
        totals = [r["rounds_total"] for r in ran]
        row = {
            group_by: key,
            "runs": len(rs),
            "success_rate": success_rate(rs),
            "rounds_simulated_mean": sum(sims) / len(sims) if sims else float("nan"),
            "rounds_simulated_max": max(sims) if sims else float("nan"),
            "rounds_total_mean": sum(totals) / len(totals) if totals else float("nan"),
        }
        if any_failed:
            row["failed"] = len(rs) - len(ran)
        out.append(row)
    return out
