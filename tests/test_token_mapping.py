"""Tests for the exploration-with-movable-token map construction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.byzantine.strategies import random_walker, squatter
from repro.graphs import (
    clique,
    find_isomorphism,
    lollipop,
    random_connected,
    ring,
    rooted_isomorphic,
    star,
)
from repro.mapping import (
    RunSpec,
    agent_program,
    plan_honest_run,
    run_slot_rounds,
    token_program,
)
from repro.sim import World


class TestPlanHonestRun:
    def test_map_isomorphic(self, zoo_graph):
        ticks, m = plan_honest_run(zoo_graph, 0)
        assert m.n == zoo_graph.n and m.m == zoo_graph.m
        assert rooted_isomorphic(zoo_graph, 0, m, 0)

    @given(seed=st.integers(0, 60), n=st.integers(4, 11), root=st.integers(0, 10))
    @settings(max_examples=30)
    def test_map_exact_identification(self, seed, n, root):
        """The produced map matches the real graph node-for-node via the
        unique root-preserving isomorphism."""
        g = random_connected(n, seed=seed)
        root = root % n
        ticks, m = plan_honest_run(g, root)
        mapping = find_isomorphism(m, 0, g, root)
        assert mapping is not None

    def test_tick_counts_deterministic(self):
        g = random_connected(9, seed=1)
        assert plan_honest_run(g, 0)[0] == plan_honest_run(g, 0)[0]

    def test_tick_counts_scale_with_size(self):
        t_small = plan_honest_run(random_connected(6, seed=3), 0)[0]
        t_big = plan_honest_run(random_connected(12, seed=3), 0)[0]
        assert t_big > t_small

    @pytest.mark.parametrize("factory", [lambda: ring(8), lambda: clique(5),
                                         lambda: star(6), lambda: lollipop(4, 3)])
    def test_structured_families(self, factory):
        g = factory()
        _, m = plan_honest_run(g, 0)
        assert rooted_isomorphic(g, 0, m, 0)


def run_pair(graph, agent_id, token_id, byz_token_strategy=None, budget_margin=2):
    """Drive one agent/token pair in a real world; return (map, world, run)."""
    ticks, _ = plan_honest_run(graph, 0)
    run = RunSpec(
        tag=("t", 0),
        start_round=0,
        tick_budget=ticks + budget_margin,
        agent_ids=frozenset({agent_id}),
        token_ids=frozenset({token_id}),
    )
    w = World(graph)
    out = {}
    w.add_robot(agent_id, 0, lambda api: agent_program(api, run, out))
    if byz_token_strategy is None:
        w.add_robot(token_id, 0, lambda api: token_program(api, run, {}))
    else:
        rng = np.random.default_rng(7)
        w.add_robot(
            token_id, 0, lambda api: byz_token_strategy(api, rng), byzantine=True
        )
    w.run(max_rounds=run.end_round + 5)
    return out.get(run.tag), w, run


class TestSimulatedPair:
    def test_honest_pair_builds_correct_map(self, rc8):
        m, w, run = run_pair(rc8, 1, 2)
        assert m is not None
        assert rooted_isomorphic(rc8, 0, m, 0)

    def test_both_return_home(self, rc8):
        m, w, run = run_pair(rc8, 1, 2)
        assert w.robots[1].node == 0
        assert w.robots[2].node == 0

    def test_role_order_independent_of_ids(self, rc8):
        # Agent may have the larger ID: commands still reach the token
        # (one-round message latency is ID-order agnostic).
        m, w, run = run_pair(rc8, 5, 2)
        assert m is not None and rooted_isomorphic(rc8, 0, m, 0)

    def test_byz_token_squatter_yields_no_map(self, rc8):
        # A token that never moves: the agent's frontier tests misidentify
        # nodes or overflow; either way no *correct* map may be reported
        # as correct — the run aborts (None) or returns garbage that the
        # overflow guard caught.
        m, w, run = run_pair(rc8, 1, 2, byz_token_strategy=squatter)
        if m is not None:
            assert not rooted_isomorphic(rc8, 0, m, 0) or m.n <= rc8.n

    def test_byz_token_random_walker_agent_survives(self, rc8):
        m, w, run = run_pair(rc8, 1, 2, byz_token_strategy=random_walker)
        # Agent must terminate the run and be back home by slot end.
        assert w.robots[1].node == 0

    def test_agent_aborts_on_tiny_budget(self, rc8):
        ticks, _ = plan_honest_run(rc8, 0)
        run = RunSpec(
            tag=("t", 1),
            start_round=0,
            tick_budget=max(2, ticks // 4),
            agent_ids=frozenset({1}),
            token_ids=frozenset({2}),
        )
        w = World(rc8)
        out = {}
        w.add_robot(1, 0, lambda api: agent_program(api, run, out))
        w.add_robot(2, 0, lambda api: token_program(api, run, {}))
        w.run(max_rounds=run.end_round + 5)
        assert out[run.tag] is None  # budget abort
        assert w.robots[1].node == 0  # but still home (footnote 11)
        assert w.robots[2].node == 0


class TestRunSpecArithmetic:
    def test_slot_rounds(self):
        assert run_slot_rounds(10) == 20 + 12
        assert run_slot_rounds(10, exchange=True) == 20 + 12 + 2

    def test_end_round_consistency(self):
        run = RunSpec(
            tag=("x",), start_round=100, tick_budget=10,
            agent_ids=frozenset({1}), token_ids=frozenset({2}), exchange=True,
        )
        assert run.end_round == 100 + run_slot_rounds(10, exchange=True)
        assert run.exchange_round == run.end_round - 2
