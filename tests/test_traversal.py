"""Tests for map traversal: Euler tours, navigation, BFS orders."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import MapError
from repro.graphs import (
    PortLabeledGraph,
    bfs_order,
    euler_tour,
    navigate,
    path_nodes,
    random_connected,
    ring,
)


class TestEulerTour:
    def test_length_is_2n_minus_2(self, zoo_graph):
        g = zoo_graph
        tour = euler_tour(g, 0)
        assert len(tour) == 2 * (g.n - 1)

    def test_visits_every_node(self, zoo_graph):
        g = zoo_graph
        tour = euler_tour(g, 0)
        visited = {0} | {s.node for s in tour}
        assert visited == set(range(g.n))

    def test_returns_to_root(self, zoo_graph):
        tour = euler_tour(zoo_graph, 0)
        if tour:
            assert tour[-1].node == 0

    def test_ports_are_walkable(self, zoo_graph):
        g = zoo_graph
        pos = 0
        for step in euler_tour(g, 0):
            pos, _ = g.traverse(pos, step.port)
            assert pos == step.node

    def test_first_visit_flags(self, zoo_graph):
        g = zoo_graph
        firsts = [s.node for s in euler_tour(g, 0) if s.first_visit]
        assert sorted(firsts) == sorted(set(range(g.n)) - {0})
        assert len(firsts) == g.n - 1  # each node discovered exactly once

    def test_each_tree_edge_twice(self, zoo_graph):
        g = zoo_graph
        tour = euler_tour(g, 0)
        # n-1 first visits + n-1 backtracks.
        assert sum(1 for s in tour if not s.first_visit) == g.n - 1

    @given(root=st.integers(0, 8), seed=st.integers(0, 15))
    def test_any_root(self, root, seed):
        g = random_connected(9, seed=seed)
        tour = euler_tour(g, root)
        visited = {root} | {s.node for s in tour}
        assert visited == set(range(9))
        if tour:
            assert tour[-1].node == root

    def test_disconnected_rejected(self):
        g = PortLabeledGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(MapError):
            euler_tour(g, 0)

    def test_single_node(self):
        assert euler_tour(PortLabeledGraph({0: {}}), 0) == []

    def test_deterministic(self, zoo_graph):
        assert euler_tour(zoo_graph, 0) == euler_tour(zoo_graph, 0)


class TestNavigate:
    def test_path_reaches_destination(self, zoo_graph):
        g = zoo_graph
        for dst in range(g.n):
            ports = navigate(g, 0, dst)
            assert path_nodes(g, 0, ports)[-1] == dst

    def test_shortest_on_ring(self):
        g = ring(8)
        assert len(navigate(g, 0, 4)) == 4
        assert len(navigate(g, 0, 1)) == 1
        assert navigate(g, 3, 3) == []

    def test_deterministic(self, zoo_graph):
        assert navigate(zoo_graph, 0, zoo_graph.n - 1) == navigate(
            zoo_graph, 0, zoo_graph.n - 1
        )

    def test_disconnected_raises(self):
        g = PortLabeledGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(MapError):
            navigate(g, 0, 3)

    @given(seed=st.integers(0, 15), a=st.integers(0, 7), b=st.integers(0, 7))
    def test_symmetric_lengths(self, seed, a, b):
        g = random_connected(8, seed=seed)
        assert len(navigate(g, a, b)) == len(navigate(g, b, a))


class TestBfsOrder:
    def test_covers_all_once(self, zoo_graph):
        order = bfs_order(zoo_graph, 0)
        assert sorted(order) == list(range(zoo_graph.n))

    def test_starts_at_root(self, zoo_graph):
        assert bfs_order(zoo_graph, 0)[0] == 0

    def test_commutes_with_isomorphism(self):
        """The rank-dispersion soundness property (Section 4 Phase 2):
        isomorphic maps with corresponding roots order the *same real
        nodes* identically."""
        import numpy as np

        g = random_connected(9, seed=3)
        rng = np.random.default_rng(7)
        perm = [int(x) for x in rng.permutation(9)]
        h = g.relabel(perm)
        og = bfs_order(g, 2)
        oh = bfs_order(h, perm[2])
        assert [perm[u] for u in og] == oh

    def test_monotone_distance(self):
        g = ring(7)
        order = bfs_order(g, 0)
        dist = {0: 0}
        for u in order[1:]:
            # ring distances from 0
            dist[u] = min(u, 7 - u)
        ds = [dist[u] for u in order]
        assert ds == sorted(ds)

    def test_disconnected_raises(self):
        g = PortLabeledGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(MapError):
            bfs_order(g, 0)
