"""Dispersion-as-a-service: the asyncio HTTP front-end over the run store.

Stdlib-only (asyncio + hand-rolled HTTP over ``asyncio.start_server``;
no new runtime deps).  ``repro serve --store DIR --workers N --port P``
turns the content-addressed run store into a network service:

* **Warm cells** are answered straight from the store — zero solver
  calls, same bytes the CLI wrote.
* **Cold cells** are computed through the same fault-tolerant
  :func:`~repro.analysis.experiments.execute_plan` path as the CLI, so
  a sweep started on the CLI warms the server and vice versa.
* **Identical concurrent requests** coalesce (single-flight): one
  computation fans out to every waiter.
* **A full queue is explicit backpressure**: 429 + ``Retry-After``.
* **Progress streams live** over Server-Sent Events on
  ``GET /events/{key}``.

See :mod:`repro.serve.service` for the core semantics,
:mod:`repro.serve.server` for the HTTP API, and the README's
"Dispersion-as-a-service" tour for a walkthrough.
"""

from .events import EventBroker
from .http import HttpError, Request
from .server import ServeApp, ServerThread, run_server
from .service import Busy, DispersionService, RunOutcome

__all__ = [
    "Busy",
    "DispersionService",
    "EventBroker",
    "HttpError",
    "Request",
    "RunOutcome",
    "ServeApp",
    "ServerThread",
    "run_server",
]
