"""Unit tests for the Dispersion-Using-Map procedure (Section 2.2).

These drive the procedure in hand-built mini-worlds where every honest
robot receives the *true graph* as its map (legitimate: any port-preserving
isomorphic map works), so each negotiation rule can be probed in
isolation.  End-to-end and adversarial coverage lives in test_lemmas.py
and the theorem tests.
"""

import pytest

from repro.byzantine.strategies import flag_spammer, ghost_squatter, idle, squatter
from repro.core.dispersion_using_map import (
    DispersionMemory,
    dispersion_rounds_bound,
    dispersion_using_map,
)
from repro.graphs import PortLabeledGraph, path, random_connected, ring
from repro.sim import World, finish_report
import numpy as np


def make_world(graph, honest_at, byz=()):
    """Build a world where honest robots run the procedure with the true
    graph as their map; ``byz`` is (id, node, strategy) triples."""
    w = World(graph)
    memories = {}
    for rid, node in honest_at:
        mem = DispersionMemory()
        memories[rid] = mem

        def factory(api, _node=node, _mem=mem):
            return dispersion_using_map(api, graph, _node, memory=_mem)

        w.add_robot(rid, node, factory)
    for rid, node, strategy in byz:
        rng = np.random.default_rng(rid)

        def bfactory(api, _s=strategy, _r=rng):
            return _s(api, _r)

        w.add_robot(rid, node, bfactory, byzantine=True)
    return w, memories


class TestObservation1:
    def test_lone_robot_settles_immediately(self):
        g = ring(5)
        w, _ = make_world(g, [(1, 2)])
        w.run(max_rounds=3)
        assert w.robots[1].settled_node == 2
        assert w.round <= 2

    def test_spread_robots_settle_in_place(self):
        g = ring(5)
        w, _ = make_world(g, [(i + 1, i) for i in range(5)])
        w.run(max_rounds=3)
        for i in range(5):
            assert w.robots[i + 1].settled_node == i


class TestStep1Minimum:
    def test_minimum_settles_first(self):
        g = ring(5)
        w, _ = make_world(g, [(1, 0), (2, 0), (3, 0)])
        w.step()
        assert w.robots[1].settled_node == 0
        assert w.robots[2].settled_node is None
        assert w.robots[3].settled_node is None

    def test_losers_move_on_and_settle_elsewhere(self):
        g = ring(5)
        w, _ = make_world(g, [(1, 0), (2, 0), (3, 0)])
        w.run(max_rounds=dispersion_rounds_bound(5))
        nodes = {w.robots[i].settled_node for i in (1, 2, 3)}
        assert None not in nodes and len(nodes) == 3

    def test_settlement_is_recorded_by_losers(self):
        g = ring(5)
        w, mems = make_world(g, [(1, 0), (2, 0)])
        w.step()
        # Robot 2 recorded robot 1 settling at map node 0.
        assert 1 in mems[2].recorded.get(0, set())


class TestStep3SettledPresent:
    def test_arrival_at_settled_node_moves_on(self):
        g = ring(5)
        w, mems = make_world(g, [(1, 0), (2, 4)])
        # Robot 2's tour from node 4 will pass node 0 where robot 1 sits.
        w.run(max_rounds=dispersion_rounds_bound(5))
        assert w.robots[1].settled_node == 0
        assert w.robots[2].settled_node not in (None, 0)

    def test_byz_squatter_denies_node(self):
        g = ring(5)
        # Byz 9 claims Settled at node 1; honest tours must skip node 1.
        w, mems = make_world(g, [(1, 0), (2, 0)], byz=[(9, 1, squatter)])
        w.run(max_rounds=dispersion_rounds_bound(5))
        assert w.robots[1].settled_node is not None
        assert w.robots[2].settled_node is not None
        assert w.robots[1].settled_node != 1 or w.robots[1].settled_node == 0
        # The squatted node hosts no honest settler unless it was the
        # round-0 settle (node 0 here), so neither honest sits at node 1.
        assert 1 not in {w.robots[1].settled_node, w.robots[2].settled_node}


class TestStep4Blacklist:
    def test_scripted_ghost_gets_blacklisted(self):
        """A Byzantine robot claiming Settled at node 1, then reappearing
        'settled' at node 2 right when the honest tour arrives, must be
        blacklisted (Step 4) — and the node it vacated becomes usable."""
        g = ring(6)

        def scripted_ghost(api, rng):
            from repro.sim.robot import Move as M, Stay as S

            api.set_state("Settled")  # squat node 1 (honest 3 records this)
            yield S()  # round 0
            # Shadow honest 3's tour: move to node 2 as it does.
            yield M(1)  # round 1: arrive node 2 simultaneously with honest 3
            while True:
                yield S()

        w, mems = make_world(g, [(2, 0), (3, 0)], byz=[(9, 1, scripted_ghost)])
        w.run(max_rounds=dispersion_rounds_bound(6) + 4)
        assert 9 in mems[3].blacklist
        # Everyone still disperses despite the ghost.
        assert w.robots[2].settled_node is not None
        assert w.robots[3].settled_node is not None
        assert w.robots[2].settled_node != w.robots[3].settled_node

    def test_honest_never_blacklists_honest(self):
        g = random_connected(7, seed=3)
        w, mems = make_world(g, [(i + 1, 0) for i in range(7)])
        w.run(max_rounds=dispersion_rounds_bound(7))
        honest = set(range(1, 8))
        for mem in mems.values():
            assert mem.blacklist.isdisjoint(honest)


class TestFlagDance:
    def test_small_idle_byz_forces_flag_dance_but_honest_settles(self):
        g = ring(5)
        w, _ = make_world(g, [(5, 0), (6, 0)], byz=[(1, 0, idle)])
        w.step()
        # Byz 1 (smallest) never settles; honest 5 must settle via the
        # observe branch ("no smaller robot settled => settle").
        assert w.robots[5].settled_node == 0
        assert w.robots[6].settled_node is None

    def test_flag_spammer_cannot_livelock(self):
        g = ring(5)
        w, _ = make_world(g, [(5, 0), (6, 0), (7, 0)], byz=[(1, 0, flag_spammer)])
        w.run(max_rounds=dispersion_rounds_bound(5))
        settled = {w.robots[i].settled_node for i in (5, 6, 7)}
        assert None not in settled and len(settled) == 3

    def test_at_most_one_settles_per_node_per_round(self):
        g = ring(6)
        w, _ = make_world(g, [(i + 1, 0) for i in range(6)])
        prev_counts = {}
        for _ in range(dispersion_rounds_bound(6)):
            w.step()
            counts = {}
            for r in w.robots.values():
                if r.settled_node is not None:
                    counts[r.settled_node] = counts.get(r.settled_node, 0) + 1
            for node, c in counts.items():
                assert c - prev_counts.get(node, 0) <= 1
            prev_counts = counts
            if all(r.settled_node is not None for r in w.robots.values()):
                break


class TestGarbageMap:
    def test_wrong_map_terminates_unsettled(self):
        """A robot holding a map inconsistent with the world (possible only
        beyond the tolerance bounds) must fail visibly, not crash.

        Setup forcing the mismatch: the true graph is a path (endpoint 0
        has degree 1) but the map is a star rooted at the hub (degree 3).
        A Byzantine squatter denies node 1, so the honest walker is pushed
        back to node 0, where the star tour's next step uses port 2 —
        which does not exist on the true node.
        """
        from repro.graphs import star

        g = path(4)
        wrong_map = star(4)
        w = World(g)

        def factory(api):
            return dispersion_using_map(api, wrong_map, 0)

        w.add_robot(1, 0, factory)
        w.add_robot(2, 0, factory)
        import numpy as np

        w.add_robot(
            9, 1,
            lambda api: squatter(api, np.random.default_rng(0)),
            byzantine=True,
        )
        w.run(max_rounds=dispersion_rounds_bound(4) + 4)
        rep = finish_report(w)
        # Robot 1 settles at node 0; robot 2 walks into the port mismatch.
        assert not rep.success
        assert w.trace.count("map_mismatch") >= 1
        assert w.robots[2].settled_node is None


class TestRoundBound:
    @pytest.mark.parametrize("n", [4, 6, 9])
    def test_all_honest_within_bound(self, n):
        g = random_connected(n, seed=n)
        w, _ = make_world(g, [(i + 1, 0) for i in range(n)])
        assert w.run(max_rounds=dispersion_rounds_bound(n))
        assert w.round <= dispersion_rounds_bound(n)
