"""The optimized engine must be indistinguishable from the reference.

``World.step`` took four optimizations (lazy snapshot, cached sub-round
order, incremental node index, recycled boards); ``ReferenceWorld`` keeps
the original straight-line implementation as executable specification.
These tests run rich mixed scenarios through both and require identical
traces, positions, and round accounting — plus pin the individual
fast-path behaviours (sleep fast-forwarding, board decay, tuple index
views) the optimizations lean on.
"""

import pytest

from repro.graphs import random_connected, ring
from repro.sim import (
    Move,
    ReferenceWorld,
    Sleep,
    Stay,
    World,
    finish_report,
)


def fingerprint(w):
    return {
        "round": w.round,
        "positions": w.positions(),
        "settled": w.honest_settled_positions(),
        "counters": dict(w.trace.counters),
        "moves": {rid: r.moves_made for rid, r in w.robots.items()},
        "terminated": {rid: r.terminated for rid, r in w.robots.items()},
    }


def full_trace(w):
    return [(e.round, e.kind, e.data) for e in w.trace.events]


# --------------------------------------------------------------------- #
# Mixed-behaviour programs whose *decisions* depend on observations, so
# any snapshot/order/index divergence changes the trace and is caught.
# --------------------------------------------------------------------- #

def _observer_mover(api):
    while True:
        start = api.colocated_at_round_start()
        live = api.colocated()
        api.set_flag(len(live) & 1)
        settled_now = sum(v.state == "Settled" for v in live) - sum(
            v.state == "Settled" for v in start
        )
        if settled_now > 0 or (api.round + api.id) % 3 == 0:
            yield Move((api.round + api.id) % api.degree() + 1)
        else:
            yield Stay()


def _settler(target_rounds):
    def program(api):
        for _ in range(target_rounds):
            yield Move(1)
        api.settle()
        yield Stay()

    return program


def _gossip(api):
    while True:
        api.say(("seen", api.id, len(api.colocated())))
        inbox = api.messages() + api.messages_prev()
        if len(inbox) > 2:
            yield Move(1)
        else:
            yield Stay()


def _napper(api):
    while True:
        yield Sleep(2 + api.id % 3)
        yield Move(api.id % api.degree() + 1)


def _short_lived(api):
    yield Move(1)
    yield Stay()  # then StopIteration -> termination mid-run


def _byz_id_faker(api, victim):
    i = 0
    while True:
        api.set_claimed_id(victim if i % 2 == 0 else api.id)
        api.set_state("Settled" if i % 3 == 0 else "tobeSettled")
        api.set_flag(i & 1)
        i += 1
        yield Move(1) if i % 4 == 0 else Stay()


def _populate(w, model):
    w.add_robot(3, 0, _observer_mover)
    w.add_robot(5, 1, _observer_mover)
    w.add_robot(7, 2, _settler(3))
    w.add_robot(11, 2, _gossip)
    w.add_robot(13, 3, _gossip)
    w.add_robot(17, 4, _napper)
    w.add_robot(19, 0, _short_lived)
    if model == "strong":
        w.add_robot(23, 1, lambda api: _byz_id_faker(api, victim=3), byzantine=True)
    return w


@pytest.mark.parametrize("model", ["weak", "strong"])
@pytest.mark.parametrize("graph_seed", [1, 4])
def test_optimized_trace_equals_reference(model, graph_seed):
    """Bit-identical traces on a mixed scenario (observation-dependent
    moves, messages, sleeps, terminations, strong-Byzantine ID faking)."""
    g = random_connected(9, seed=graph_seed)
    w_opt = _populate(World(g, model=model), model)
    w_ref = _populate(ReferenceWorld(g, model=model), model)
    for _ in range(40):
        w_opt.step()
        w_ref.step()
        assert w_opt.round == w_ref.round
    assert fingerprint(w_opt) == fingerprint(w_ref)
    assert full_trace(w_opt) == full_trace(w_ref)


def test_benchmark_scenarios_match_reference():
    """Every checked-in benchmark scenario agrees across engines."""
    from repro.analysis.benchmark import SCENARIOS, fingerprint as bench_fp

    for name, builder in SCENARIOS.items():
        w_opt = builder(World, 24, 16, 0)
        w_ref = builder(ReferenceWorld, 24, 16, 0)
        for _ in range(60):
            w_opt.step()
            w_ref.step()
        assert bench_fp(w_opt) == bench_fp(w_ref), name


def test_teleport_and_midrun_add_robot_match_reference():
    """Simulator-side mutations (teleport, late add) keep engines aligned."""
    g = ring(8)
    w_opt, w_ref = World(g), ReferenceWorld(g)
    for w in (w_opt, w_ref):
        w.add_robot(1, 0, _observer_mover)
        w.add_robot(2, 3, _gossip)
        for _ in range(5):
            w.step()
        w.teleport(1, 6)
        w.charge("oracle", 12)
        w.add_robot(9, 2, _settler(2))
        for _ in range(10):
            w.step()
    assert fingerprint(w_opt) == fingerprint(w_ref)
    assert full_trace(w_opt) == full_trace(w_ref)
    assert w_opt.total_rounds == w_ref.total_rounds


class TestSleepFastForward:
    def test_all_asleep_jumps_in_one_step(self):
        """All robots Sleep(r): a single step() lands on the wake round
        with an empty previous board."""
        g = ring(4)
        w = World(g)

        def sleeper(api):
            api.say("pre-sleep")  # populates round-0 board
            yield Sleep(7)
            api.settle()
            yield Stay()

        w.add_robot(1, 0, sleeper)
        w.add_robot(2, 1, sleeper)
        w.step()  # one step: both sleep, world fast-forwards
        assert w.round == 7
        assert w.board_previous == {}  # boards decayed during the jump
        assert w.board_current == {}

    def test_accounting_identical_to_stepping_one_by_one(self):
        """Sleep(r) must be indistinguishable from yielding Stay r times
        (the Sleep docstring's contract), including round accounting,
        settles, and reports."""
        r = 9

        def sleeping(api):
            yield Sleep(r)
            api.settle()
            return
            yield  # pragma: no cover

        def staying(api):
            for _ in range(r):
                yield Stay()
            api.settle()
            return
            yield  # pragma: no cover

        g = ring(5)
        w_sleep, w_stay = World(g), World(g)
        for w, prog in ((w_sleep, sleeping), (w_stay, staying)):
            w.add_robot(1, 0, prog)
            w.add_robot(2, 2, prog)
            w.run(max_rounds=r + 3)
        assert w_sleep.round == w_stay.round
        assert w_sleep.board_previous == w_stay.board_previous == {}
        rep_sleep, rep_stay = finish_report(w_sleep), finish_report(w_stay)
        assert rep_sleep.success and rep_stay.success
        assert rep_sleep.rounds_simulated == rep_stay.rounds_simulated
        assert rep_sleep.settled == rep_stay.settled
        assert w_sleep.trace.count("settle") == w_stay.trace.count("settle")
        assert w_sleep.trace.count("move") == w_stay.trace.count("move") == 0

    def test_fast_forward_matches_reference_engine(self):
        g = ring(4)

        def cycle(api):
            while True:
                yield Sleep(5)
                yield Move(1)

        w_opt, w_ref = World(g), ReferenceWorld(g)
        for w in (w_opt, w_ref):
            w.add_robot(1, 0, cycle)
            w.add_robot(2, 2, cycle)
            for _ in range(12):
                w.step()
        assert fingerprint(w_opt) == fingerprint(w_ref)
        assert full_trace(w_opt) == full_trace(w_ref)


class TestIndexSafety:
    def test_robots_at_returns_tuple(self):
        w = World(ring(4))
        w.add_robot(1, 0, lambda api: iter([Stay()]))
        got = w.robots_at(0)
        assert isinstance(got, tuple)
        assert [r.true_id for r in got] == [1]
        assert w.robots_at(3) == ()

    def test_caller_mutation_cannot_corrupt_index(self):
        """The returned tuple is a copy: no caller can break the index
        (the old list return let `.clear()` desync robot positions)."""
        w = World(ring(4))
        w.add_robot(1, 0, lambda api: iter([Move(1), Stay()]))
        got = w.robots_at(0)
        with pytest.raises((AttributeError, TypeError)):
            got.clear()  # tuples have no clear / item assignment
        w.step()
        assert [r.true_id for r in w.robots_at(1)] == [1]

    def test_sleep_exported(self):
        """Sleep is a public action: importable from the package roots."""
        import repro.sim.robot as robot_mod

        assert "Sleep" in robot_mod.__all__
        from repro.sim import Sleep as s1
        from repro.sim.robot import Sleep as s2

        assert s1 is s2


class TestLazySnapshotProperty:
    def test_round_start_snapshot_equivalent_to_eager(self):
        """The lazy round_start_snapshot property serves the same data the
        reference engine captures eagerly (checked mid-run via the API)."""
        g = random_connected(7, seed=2)
        seen_opt, seen_ref = [], []

        def recorder(api, sink):
            while True:
                sink.append(
                    tuple((v.claimed_id, v.state, v.flag)
                          for v in api.colocated_at_round_start())
                )
                api.set_flag((api.round + api.id) & 1)
                yield Move(1) if (api.round + api.id) % 2 else Stay()

        w_opt, w_ref = World(g), ReferenceWorld(g)
        for w, sink in ((w_opt, seen_opt), (w_ref, seen_ref)):
            w.add_robot(1, 0, lambda api: recorder(api, sink))
            w.add_robot(2, 0, lambda api: recorder(api, sink))
            w.add_robot(3, 1, lambda api: recorder(api, sink))
            for _ in range(15):
                w.step()
        assert seen_opt == seen_ref
