"""Per-key event logs with live fan-out (the SSE backbone).

Every cell key the service touches gets an ordered event log —
``queued``, ``started``, sampled ``round`` progress, ``result`` /
``quarantined`` / ``rejected``, and a terminal ``done``.  A subscriber
arriving at any point receives the full history first (replay) and then
live events in publication order, so an SSE client that connects after
the run finished still sees the complete, deterministic transcript.

Single-threaded by construction: every method runs on the server's
event loop (worker threads publish via ``call_soon_threadsafe``), so no
locks are needed.  Completed logs are retained in insertion order and
the oldest are evicted beyond ``retain_done`` — the broker's memory is
bounded no matter how many cells a long-lived server computes.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["EventBroker"]

#: An event as the broker stores it: ``(id, name, data)``.
Event = Tuple[int, str, dict]


@dataclass
class _KeyLog:
    events: List[Event] = field(default_factory=list)
    done: bool = False
    subscribers: List[asyncio.Queue] = field(default_factory=list)


class EventBroker:
    """Ordered event history + live subscriptions, per cell key."""

    def __init__(self, retain_done: int = 64, max_events: int = 4096):
        self._logs: "OrderedDict[str, _KeyLog]" = OrderedDict()
        self._retain_done = retain_done
        #: Per-key history cap: beyond it, *round* events stop being
        #: retained (and streamed) — terminal events always land.
        self._max_events = max_events

    def known(self, key: str) -> bool:
        return key in self._logs

    def is_done(self, key: str) -> bool:
        log = self._logs.get(key)
        return log is not None and log.done

    def publish(self, key: str, event: str, data: dict, done: bool = False) -> None:
        """Append an event to ``key``'s log and wake its subscribers.

        ``done=True`` marks the log terminal: subscriber queues get a
        ``None`` sentinel, and the completed log becomes subject to
        retention eviction.
        """
        log = self._logs.setdefault(key, _KeyLog())
        if log.done:
            return  # a terminal log is immutable
        if len(log.events) >= self._max_events and not done and event == "round":
            return  # progress overflow: drop samples, never terminals
        item: Event = (len(log.events), event, data)
        log.events.append(item)
        for queue in log.subscribers:
            queue.put_nowait(item)
        if done:
            log.done = True
            for queue in log.subscribers:
                queue.put_nowait(None)
            log.subscribers.clear()
            self._evict()

    def subscribe(self, key: str) -> Tuple[List[Event], Optional[asyncio.Queue]]:
        """History snapshot plus a live queue (``None`` if already done).

        The queue yields ``(id, event, data)`` tuples and a final
        ``None`` sentinel; it is unbounded because the publisher is the
        event loop itself (a slow SSE client backs up its own socket
        buffer, not the broker).
        """
        log = self._logs.setdefault(key, _KeyLog())
        history = list(log.events)
        if log.done:
            return history, None
        queue: asyncio.Queue = asyncio.Queue()
        log.subscribers.append(queue)
        return history, queue

    def unsubscribe(self, key: str, queue: asyncio.Queue) -> None:
        log = self._logs.get(key)
        if log is not None and queue in log.subscribers:
            log.subscribers.remove(queue)

    def _evict(self) -> None:
        done_keys = [k for k, log in self._logs.items() if log.done]
        excess = len(done_keys) - self._retain_done
        for key in done_keys[:max(0, excess)]:
            del self._logs[key]

    def stats(self) -> Dict[str, int]:
        return {
            "keys": len(self._logs),
            "done": sum(1 for log in self._logs.values() if log.done),
            "subscribers": sum(len(log.subscribers) for log in self._logs.values()),
        }
