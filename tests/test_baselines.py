"""Tests for the baseline algorithms (DFS, ring prior work, random)."""

import pytest

from repro.baselines import (
    dfs_rounds_bound,
    solve_dfs_baseline,
    solve_random_baseline,
    solve_ring_dispersion,
)
from repro.byzantine import Adversary
from repro.errors import ConfigurationError, GraphStructureError
from repro.graphs import clique, random_connected, ring, torus


class TestDfsBaselineHonest:
    @pytest.mark.parametrize("seed", [1, 2, 5])
    def test_disperses_n_robots(self, seed):
        g = random_connected(8, seed=seed)
        rep = solve_dfs_baseline(g)
        assert rep.success, rep.violations
        assert sorted(rep.settled.values()) == list(range(8))

    def test_k_less_than_n(self, rc8):
        rep = solve_dfs_baseline(rc8, k=5)
        assert rep.success
        assert len(set(rep.settled.values())) == 5

    def test_capacity_k_over_n(self, rc8):
        rep = solve_dfs_baseline(rc8, k=20, cap=3)
        assert rep.success, rep.violations
        from repro.analysis import settlement_histogram

        hist = settlement_histogram(rep.settled)
        assert max(len(v) for v in hist.values()) <= 3

    def test_round_bound(self, rc8):
        rep = solve_dfs_baseline(rc8)
        assert rep.rounds_simulated <= dfs_rounds_bound(rc8.n, rc8.m)

    def test_works_on_symmetric_graphs(self):
        rep = solve_dfs_baseline(torus(3, 3))
        assert rep.success

    def test_disconnected_rejected(self):
        from repro.graphs import PortLabeledGraph

        g = PortLabeledGraph.from_edges(4, [(0, 1), (2, 3)])
        with pytest.raises(ConfigurationError):
            solve_dfs_baseline(g)


class TestDfsBaselineFragility:
    """The motivation benchmark: classic dispersion has zero Byzantine
    tolerance — single adversaries break it."""

    def test_squatter_breaks_it(self, rc8):
        rep = solve_dfs_baseline(rc8, f=2, adversary=Adversary("squatter"))
        assert not rep.success

    def test_lying_landmark_breaks_it(self, rc8):
        """A Byzantine robot that poses as a settled landmark and answers
        with a non-existent port strands every visitor — the classic
        algorithm trusts guidance blindly.  (Amusingly, a liar answering a
        *valid* wrong port merely rewires the DFS and the group still
        disperses; the trust failure needs only one unanswerable reply.)"""

        def lying_landmark(api, rng):
            from repro.sim.robot import Stay

            api.set_state("Settled")
            while True:
                api.say(("dfs", 99))
                yield Stay()

        rep = solve_dfs_baseline(rc8, f=1, adversary=Adversary(lying_landmark))
        assert not rep.success
        assert any("never settled" in v for v in rep.violations)

    def test_paper_algorithm_survives_same_adversary(self, rc8):
        """Same graph, same f, same strategy: Theorem 3 succeeds where
        the baseline fails — the headline comparison."""
        from repro.core import solve_theorem3

        base = solve_dfs_baseline(rc8, f=2, adversary=Adversary("squatter"))
        ours = solve_theorem3(rc8, f=2, adversary=Adversary("squatter"))
        assert not base.success and ours.success


class TestRingPriorWork:
    def test_all_honest(self):
        rep = solve_ring_dispersion(7, f=0)
        assert rep.success

    def test_max_tolerance(self):
        rep = solve_ring_dispersion(7, f=6, adversary=Adversary("ghost_squatter"))
        assert rep.success

    @pytest.mark.parametrize("strategy", ["squatter", "flag_spammer", "idle", "random_walker"])
    def test_strategies_at_half(self, strategy):
        rep = solve_ring_dispersion(9, f=4, adversary=Adversary(strategy, seed=3))
        assert rep.success, rep.violations

    def test_linear_rounds(self):
        """Time-optimal shape of the prior work: O(n) simulated rounds."""
        r9 = solve_ring_dispersion(9, f=4, adversary=Adversary("idle"))
        r18 = solve_ring_dispersion(18, f=9, adversary=Adversary("idle"))
        assert r18.rounds_simulated <= 2 * 18 + 2
        assert r9.rounds_simulated <= 2 * 9 + 2

    def test_gathered_start(self):
        rep = solve_ring_dispersion(8, f=3, adversary=Adversary("squatter"), start="gathered")
        assert rep.success

    def test_invalid_sizes(self):
        with pytest.raises(ConfigurationError):
            solve_ring_dispersion(2)
        with pytest.raises(ConfigurationError):
            solve_ring_dispersion(5, f=5)


class TestRandomBaseline:
    def test_honest_only_succeeds_eventually(self, rc8):
        rep = solve_random_baseline(rc8, f=0, seed=1)
        assert rep.success

    def test_clique_easy_case(self):
        rep = solve_random_baseline(clique(6), f=0, seed=2)
        assert rep.success

    def test_squatters_permanently_deny_their_nodes(self, rc8):
        """Without the paper's blacklist there is no recourse against a
        fake settler: the squatted node is lost to honest robots forever.
        (An honest finding: since n−f robots always fit in the n−f
        remaining nodes, denial alone costs nodes and time, not
        completion — the paper's machinery is about *guarantees*.)"""
        rep = solve_random_baseline(
            rc8, f=3, adversary=Adversary("squatter"), start="gathered", seed=1
        )
        # All three squatters sit on the gather node 0: no honest settles there.
        assert 0 not in set(rep.settled.values())
        clean = solve_random_baseline(rc8, f=0, start="gathered", seed=1)
        assert 0 in set(clean.settled.values())
