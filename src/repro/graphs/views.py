"""Views and view-equivalence on anonymous port-labeled graphs.

The *view* of a node ``u`` (Yamashita–Kameda [47]) is the infinite rooted
tree a robot would record by exploring from ``u`` and writing down port
numbers.  Two nodes with equal views are indistinguishable to any
deterministic robot.  The paper's Theorem 1 applies exactly to graphs
where **all views are distinct** (then the quotient graph is isomorphic to
the graph itself).

Computing view equality does not require building infinite trees: the
classes of view-equivalence are the fixpoint of *partition refinement*
(port-labeled 1-WL): start with all nodes in one class and repeatedly
split classes by the multiset of ``(out_port, in_port, neighbour_class)``
triples.  The fixpoint is reached within ``n - 1`` refinement steps
(Norris' bound: views truncated to depth ``n - 1`` decide equality).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from .port_labeled import PortLabeledGraph

__all__ = ["view_partition", "view_signature", "truncated_view"]


def view_partition(graph: PortLabeledGraph) -> List[int]:
    """Return ``class_of`` such that ``class_of[u] == class_of[v]`` iff the
    views of ``u`` and ``v`` are equal.

    Classes are numbered ``0..c-1`` in order of their smallest member, so
    the output is deterministic and stable across runs.
    """
    n = graph.n
    if n == 0:
        return []
    # Start from the degree partition (refinement of the trivial one; saves rounds).
    class_of = _canonical([graph.degree(u) for u in range(n)])
    while True:
        signatures: List[Tuple] = []
        for u in range(n):
            sig = [class_of[u]]
            for p, (v, q) in enumerate(graph.port_row(u), start=1):
                sig.append((p, q, class_of[v]))
            signatures.append(tuple(sig))
        new_class = _canonical(signatures)
        if new_class == class_of:
            return class_of
        class_of = new_class


def _canonical(keys: List) -> List[int]:
    """Map arbitrary hashable keys to class ids numbered by first occurrence."""
    ids: Dict = {}
    out: List[int] = []
    for k in keys:
        if k not in ids:
            ids[k] = len(ids)
        out.append(ids[k])
    return out


def view_signature(graph: PortLabeledGraph, u: int) -> Tuple:
    """A hashable signature deciding the view-equivalence class of ``u``.

    Equal signatures (for nodes of the *same* graph) iff equal views.
    Implemented as ``(class id, class census)`` from the stable partition,
    wrapped with the graph size so signatures from different graphs are
    never accidentally equal.
    """
    part = view_partition(graph)
    census = tuple(sorted(part))
    return (graph.n, census, part[u])


def truncated_view(graph: PortLabeledGraph, u: int, depth: int) -> Tuple:
    """The depth-``depth`` view of ``u`` as a nested tuple.

    Exponential in ``depth`` — intended for tests on small graphs, where it
    cross-validates :func:`view_partition` (nodes are view-equivalent iff
    their depth ``n-1`` truncated views coincide, Norris 1995).

    Tree encoding: ``(degree, ((p, q, subview), ...))`` where ``p`` is the
    outgoing port at the current node and ``q`` the incoming port at the
    child.
    """
    if depth == 0:
        return (graph.degree(u), ())
    children = []
    for p, (v, q) in enumerate(graph.port_row(u), start=1):
        children.append((p, q, truncated_view(graph, v, depth - 1)))
    return (graph.degree(u), tuple(children))
