#!/usr/bin/env python3
"""Docs gate: execute the README quickstart and validate Markdown links.

Two checks, both deterministic and network-free:

1. **Quickstart execution** — every ```python code block in README.md is
   executed, in order, in one shared namespace.  The quickstart is the
   first code a newcomer runs; it must work verbatim, so CI runs it
   verbatim.
2. **Relative-link validation** — every relative link target in the
   repo's Markdown docs must exist on disk.  Docs rot by renames; this
   catches the rename that forgot its references.
3. **Lint-registry sync** — the "Determinism rules" table in
   EXPERIMENTS.md must name exactly the checkers (and pragmas) that
   ``repro lint`` actually registers.  A checker added without a
   documented rule, or a documented rule whose checker was renamed
   away, fails the gate.
4. **Eval-registry sync** — the "Eval suites" table in EXPERIMENTS.md
   must name exactly the suites ``repro.evals.SUITES`` registers, so
   ``repro eval`` and the docs cannot drift apart.

Run:  python tools/check_docs.py   (exit 0 = docs healthy)
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Root-level docs whose links are validated (directories like
#: tests/related fixture READMEs are third-party and exempt).
DOC_GLOBS = ("*.md", ".github/**/*.md", "benchmarks/*.md", "examples/*.md")

_FENCE_RE = re.compile(r"^```(\w*)\s*$")
#: Inline Markdown links; deliberately simple — our docs use plain
#: ``[text](target)`` forms.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def extract_code_blocks(markdown: str, language: str = "python") -> List[str]:
    """The contents of every fenced code block tagged ``language``."""
    blocks: List[str] = []
    current: List[str] = []
    in_block = False
    for line in markdown.splitlines():
        fence = _FENCE_RE.match(line)
        if fence and not in_block:
            in_block = fence.group(1) == language
            current = []
            continue
        if line.strip() == "```" and in_block is not False:
            if in_block:
                blocks.append("\n".join(current) + "\n")
            in_block = False
            continue
        if in_block:
            current.append(line)
    return blocks


def run_readme_quickstart(readme: Path) -> List[str]:
    """Execute README python blocks in one namespace; returns errors."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    blocks = extract_code_blocks(readme.read_text(encoding="utf-8"))
    if not blocks:
        return [f"{readme.name}: no ```python quickstart block found"]
    namespace: dict = {"__name__": "__readme__"}
    errors = []
    for i, block in enumerate(blocks, 1):
        try:
            exec(compile(block, f"<{readme.name} python block {i}>", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
            errors.append(f"{readme.name} python block {i} failed: {exc!r}")
    return errors


def _is_relative(target: str) -> bool:
    return not (
        target.startswith(("http://", "https://", "mailto:", "#"))
        or "://" in target
    )


def iter_relative_links(path: Path) -> List[Tuple[str, str]]:
    """All ``(raw target, resolved-relative target)`` links in one file."""
    text = path.read_text(encoding="utf-8")
    # Strip fenced code blocks: shell heredocs etc. are not links.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    out = []
    for match in _LINK_RE.finditer(text):
        target = match.group(1)
        if _is_relative(target):
            out.append((target, target.split("#", 1)[0]))
    return out


def check_relative_links() -> List[str]:
    """Dangling relative links across the repo's Markdown docs."""
    errors = []
    seen = set()
    for pattern in DOC_GLOBS:
        for path in sorted(REPO_ROOT.glob(pattern)):
            if path in seen or not path.is_file():
                continue
            seen.add(path)
            for raw, stripped in iter_relative_links(path):
                if not stripped:  # pure-anchor link into the same file
                    continue
                resolved = (path.parent / stripped).resolve()
                if not resolved.exists():
                    errors.append(
                        f"{path.relative_to(REPO_ROOT)}: broken link ({raw})"
                    )
    return errors


def check_lint_registry() -> List[str]:
    """EXPERIMENTS.md's Determinism-rules table ↔ the lint registry."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.lint import CHECKERS  # noqa: PLC0415 - after sys.path setup

    doc = REPO_ROOT / "EXPERIMENTS.md"
    if not doc.is_file():
        return ["EXPERIMENTS.md is missing"]
    text = doc.read_text(encoding="utf-8")
    match = re.search(
        r"^## Determinism rules$(.*?)(?=^## |\Z)", text,
        flags=re.MULTILINE | re.DOTALL,
    )
    if match is None:
        return ['EXPERIMENTS.md: no "## Determinism rules" section']
    section = match.group(1)

    # Checker names / pragmas live in the table's last two columns as
    # backticked tokens; collect every backticked token in table rows.
    documented = set()
    for line in section.splitlines():
        if line.lstrip().startswith("|"):
            documented.update(re.findall(r"`([A-Za-z0-9#:\s\-]+)`", line))

    errors = []
    registry_names = {checker.name for checker in CHECKERS}
    for checker in CHECKERS:
        if checker.name not in documented:
            errors.append(
                f"EXPERIMENTS.md: checker {checker.name!r} is registered "
                f"but missing from the Determinism rules table"
            )
        pragma = f"# repro: {checker.pragma}"
        if pragma not in documented:
            errors.append(
                f"EXPERIMENTS.md: pragma {pragma!r} ({checker.name}) is "
                f"missing from the Determinism rules table"
            )
    for token in sorted(documented):
        looks_like_checker = re.fullmatch(r"[a-z][a-z0-9-]+", token)
        if looks_like_checker and "-" in token and token not in registry_names:
            errors.append(
                f"EXPERIMENTS.md: Determinism rules table names {token!r}, "
                f"which is not a registered checker"
            )
    return errors


def check_eval_registry() -> List[str]:
    """EXPERIMENTS.md's Eval-suites table ↔ the ``repro.evals`` registry."""
    src = REPO_ROOT / "src"
    if str(src) not in sys.path:
        sys.path.insert(0, str(src))
    from repro.evals import SUITES  # noqa: PLC0415 - after sys.path setup

    doc = REPO_ROOT / "EXPERIMENTS.md"
    if not doc.is_file():
        return ["EXPERIMENTS.md is missing"]
    text = doc.read_text(encoding="utf-8")
    match = re.search(
        r"^## Eval suites$(.*?)(?=^## |\Z)", text,
        flags=re.MULTILINE | re.DOTALL,
    )
    if match is None:
        return ['EXPERIMENTS.md: no "## Eval suites" section']
    section = match.group(1)

    # Suite names live in the table's *first* column as backticked
    # tokens (later columns may backtick parameters like `f_max`).
    documented = set()
    for line in section.splitlines():
        if not line.lstrip().startswith("|"):
            continue
        first_cell = line.split("|")[1]
        documented.update(re.findall(r"`([A-Za-z0-9_\-]+)`", first_cell))

    errors = []
    for name in SUITES:
        if name not in documented:
            errors.append(
                f"EXPERIMENTS.md: eval suite {name!r} is registered but "
                f"missing from the Eval suites table"
            )
    for token in sorted(documented):
        looks_like_suite = re.fullmatch(r"[a-z][a-z0-9]*(_[a-z0-9]+)+", token)
        if looks_like_suite and token not in SUITES:
            errors.append(
                f"EXPERIMENTS.md: Eval suites table names {token!r}, which "
                f"is not a registered suite"
            )
    return errors


def main() -> int:
    errors = check_relative_links()
    errors.extend(check_lint_registry())
    errors.extend(check_eval_registry())
    readme = REPO_ROOT / "README.md"
    if not readme.is_file():
        errors.append("README.md is missing")
    else:
        errors.extend(run_readme_quickstart(readme))
    for err in errors:
        print(f"DOCS: {err}", file=sys.stderr)
    if not errors:
        print("docs ok: README quickstart ran, all relative links resolve")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
