"""Straight-line reference engine for differential testing and benchmarks.

:class:`ReferenceWorld` re-implements :meth:`World.step` exactly the way
the original (pre-optimization) engine did:

* the round-start snapshot is captured **eagerly** for every robot at the
  top of every round,
* the sub-round order is **re-sorted** from scratch every round,
* the node index is **fully rebuilt** after any movement,
* board dictionaries are **reallocated** every round.

The optimized :class:`~repro.sim.world.World` must be observably
indistinguishable from this class — same traces, same round counters,
same positions — for any program and any seed.  Tests in
``tests/test_engine_fastpath.py`` assert that equivalence, and
``benchmarks/bench_engine.py`` uses this class as the wall-clock baseline
the ≥3× speedup target is measured against.

Keep this file boring: it is the executable specification of one round.
"""

from __future__ import annotations

from typing import List

from ..errors import ProtocolViolation, SimulationError
from .robot import ByzantineAPI, Move, PublicView, RobotAPI, Sleep, Stay
from .world import World

__all__ = ["ReferenceWorld", "ReferenceRobotAPI", "ReferenceByzantineAPI"]


class _SeedReadPaths:
    """Seed-faithful observation methods (mixed into the reference APIs).

    The original engine rebuilt a ``PublicView`` per co-located robot on
    every :meth:`colocated` call and resolved
    :meth:`colocated_at_round_start` by scanning the eager snapshot of the
    *entire* population.  The optimized engine replaced both; these
    variants keep the old cost model so benchmark comparisons are honest
    and behaviour stays pinned to the original read semantics.
    """

    def colocated(self) -> List[PublicView]:
        me = self._robot
        views = [
            PublicView(claimed_id=r.claimed_id, state=r.state, flag=r.flag)
            for r in self._world._by_node.get(me.node, ())
            if r is not me
        ]
        views.sort(key=lambda v: v.claimed_id)
        return views

    def colocated_at_round_start(self) -> List[PublicView]:
        me = self._robot
        snap = self._world._eager_snapshot
        return sorted(
            (
                view
                for rid, (node, view) in snap.items()
                if node == me.node and rid != me.true_id
            ),
            key=lambda v: v.claimed_id,
        )


class ReferenceRobotAPI(_SeedReadPaths, RobotAPI):
    """Honest-robot API with the seed engine's observation cost model."""


class ReferenceByzantineAPI(_SeedReadPaths, ByzantineAPI):
    """Byzantine API with the seed engine's observation cost model."""


class ReferenceWorld(World):
    """A :class:`World` whose ``step`` is the unoptimized original.

    Synchronous only: the seed engine predates activation schedulers, so
    its ``step`` has no scheduler branch — accepting one here would
    silently run fully synchronously.  The synchronous spec is fine (it
    is the scheduler-free behaviour by definition); anything else raises.
    """

    _api_cls = ReferenceRobotAPI
    _byzantine_api_cls = ReferenceByzantineAPI

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        if self._scheduler is not None:
            raise SimulationError(
                "ReferenceWorld is the synchronous seed engine; activation "
                "schedulers are only implemented by the optimized World"
            )

    #: Eager round-start snapshot (``true_id -> (node, PublicView)``),
    #: rebuilt at the top of every round like the seed engine did.
    _eager_snapshot: dict = {}

    @property
    def round_start_snapshot(self) -> dict:
        """The eager snapshot dict — exactly the seed engine's attribute
        (empty before the first step, stale positions after a step)."""
        return self._eager_snapshot

    def step(self) -> None:
        """Execute one synchronous round exactly like the seed engine."""
        # Freeze the round-start snapshot: the paper's "in round t" sets.
        # The seed engine had no view cache and built a fresh PublicView
        # per robot per round; invalidating the cache first reproduces
        # that cost faithfully (this class is also the benchmark
        # baseline).  Reads go through the same start_view fields the
        # optimized engine uses.
        rnd = self.round
        snapshot = {}
        for rid, r in self.robots.items():
            r._view_cache = None
            view = r.view()
            r.start_view = view
            r.start_view_round = rnd
            snapshot[rid] = (r.node, view)
        self._eager_snapshot = snapshot
        self.board_current = {}

        order = sorted(
            (r for r in self.robots.values() if not r.terminated),
            key=lambda r: (r.claimed_id, r.true_id),
        )
        self._in_step = True
        try:
            for robot in order:
                if robot.sleep_until > self.round:
                    robot.pending_action = None
                    continue
                try:
                    action = next(robot.program)
                except StopIteration:
                    robot.terminated = True
                    robot.pending_action = None
                    self._order_dirty = True
                    continue
                if isinstance(action, Sleep):
                    if action.rounds < 1:
                        raise SimulationError("Sleep must cover at least 1 round")
                    robot.sleep_until = self.round + action.rounds
                    robot.pending_action = None
                    continue
                if isinstance(action, Move):
                    if not robot.byzantine and robot.settled_node is not None:
                        raise ProtocolViolation(
                            f"settled honest robot {robot.true_id} attempted to move"
                        )
                    deg = self.graph.degree(robot.node)
                    if not (1 <= action.port <= deg):
                        raise SimulationError(
                            f"robot {robot.true_id} used invalid port {action.port} "
                            f"at a degree-{deg} node"
                        )
                    robot.pending_action = action
                elif isinstance(action, Stay):
                    robot.pending_action = None
                else:
                    raise SimulationError(
                        f"robot {robot.true_id} yielded {action!r}; expected Move or Stay"
                    )
        finally:
            self._in_step = False

        # Task (ii): simultaneous movement.
        moved = False
        for robot in order:
            act = robot.pending_action
            if act is None:
                continue
            dest, in_port = self.graph.traverse(robot.node, act.port)
            self.trace.record(
                self.round, "move", robot=robot.true_id, src=robot.node,
                dst=dest, port=act.port,
            )
            robot.node = dest
            robot.arrival_port = in_port
            robot.moves_made += 1
            robot.pending_action = None
            moved = True
        if moved:
            self._rebuild_index()

        self.board_previous = self.board_current
        self.round += 1

        # Fast-forward: if every live robot is dormant, jump to the first
        # round anyone wakes in one step.
        live = [r for r in self.robots.values() if not r.terminated]
        if live and all(r.sleep_until > self.round for r in live):
            wake = min(r.sleep_until for r in live)
            if wake > self.round + 1:
                self.round = wake
                self.board_previous = {}
