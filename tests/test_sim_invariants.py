"""Property tests of simulator-level invariants under random programs.

These harden the substrate everything else trusts: whatever robots do
(random moves, random messages, random sleeps), the world conserves
robots, keeps positions legal, reports arrival ports truthfully, and
stays bit-reproducible under a fixed seed.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import random_connected
from repro.sim import Move, Sleep, Stay, World


def chaotic_program(api, rng):
    """A random but *legal* robot: moves, talks, flags, sleeps."""
    while True:
        roll = rng.random()
        api.set_flag(int(rng.integers(0, 2)))
        if roll < 0.1:
            api.say(("noise", int(rng.integers(0, 100))))
        if roll < 0.5 and api.degree() > 0:
            yield Move(int(rng.integers(1, api.degree() + 1)))
        elif roll < 0.6:
            yield Sleep(int(rng.integers(1, 4)))
        else:
            yield Stay()


def build_chaos(n, robots, seed):
    g = random_connected(n, seed=seed)
    w = World(g, keep_trace=False)
    for rid in range(1, robots + 1):
        rng = np.random.default_rng((seed, rid))

        def factory(api, _rng=rng):
            return chaotic_program(api, _rng)

        w.add_robot(rid, rid % n, factory)
    return g, w


@given(n=st.integers(4, 10), robots=st.integers(1, 12), seed=st.integers(0, 100))
@settings(max_examples=25)
def test_robots_conserved_and_positions_legal(n, robots, seed):
    g, w = build_chaos(n, robots, seed)
    for _ in range(30):
        w.step()
        assert len(w.robots) == robots
        for r in w.robots.values():
            assert 0 <= r.node < n
        # The node index matches reality.
        indexed = sorted(
            rr.true_id for node in range(n) for rr in w.robots_at(node)
        )
        assert indexed == sorted(w.robots.keys())


@given(n=st.integers(4, 10), seed=st.integers(0, 100))
@settings(max_examples=25)
def test_arrival_ports_truthful(n, seed):
    """After every move, re-traversing the arrival port from the new node
    leads back to the old node (the model's edge-awareness guarantee)."""
    g = random_connected(n, seed=seed)
    w = World(g, keep_trace=False)
    rng = np.random.default_rng(seed)
    trail = []

    def walker(api):
        while True:
            port = int(rng.integers(1, api.degree() + 1))
            yield Move(port)

    w.add_robot(1, 0, walker)
    prev = 0
    for _ in range(20):
        w.step()
        r = w.robots[1]
        back, _ = g.traverse(r.node, r.arrival_port)
        assert back == prev
        prev = r.node


@given(n=st.integers(4, 9), robots=st.integers(2, 8), seed=st.integers(0, 50))
@settings(max_examples=20)
def test_bit_reproducibility(n, robots, seed):
    _, w1 = build_chaos(n, robots, seed)
    _, w2 = build_chaos(n, robots, seed)
    for _ in range(25):
        w1.step()
        w2.step()
    assert w1.positions() == w2.positions()
    assert w1.round == w2.round


@given(seed=st.integers(0, 60))
@settings(max_examples=20)
def test_sleep_equivalent_to_stays(seed):
    """Sleep(k) must be observationally identical to k Stays for the
    sleeping robot's own trajectory."""
    g = random_connected(6, seed=seed)

    def with_sleep(api):
        yield Move(1)
        yield Sleep(5)
        yield Move(1)
        while True:
            yield Stay()

    def with_stays(api):
        yield Move(1)
        for _ in range(5):
            yield Stay()
        yield Move(1)
        while True:
            yield Stay()

    w1 = World(g)
    w1.add_robot(1, 0, with_sleep)
    w2 = World(g)
    w2.add_robot(1, 0, with_stays)
    positions1, positions2 = [], []
    for _ in range(9):
        w1.step()
        w2.step()
        positions1.append((w1.round, w1.robots[1].node))
        positions2.append((w2.round, w2.robots[1].node))
    # The sleeping world fast-forwards its round counter (and thus races
    # ahead in wall-clock), but at every round both worlds observed, the
    # robot must be at the same node — and both trajectories end parked
    # at the same final node.
    d1, d2 = dict(positions1), dict(positions2)
    common = set(d1) & set(d2)
    assert common, "worlds never observed a common round"
    for r in common:
        assert d1[r] == d2[r], (r, d1[r], d2[r])
    assert w1.robots[1].node == w2.robots[1].node
