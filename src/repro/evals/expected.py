"""Expected-results IO: the checked-in eval pins and their structural diff.

``benchmarks/EVAL_<suite>.json`` files are canonical JSON (sorted keys,
two-space indent, trailing newline) so that regenerating an unchanged
suite is a byte-level no-op and any behavioural drift is a minimal,
reviewable diff.  :func:`compare_payloads` produces *precise* drift
messages — each names the suite, the solver, the cell class, and the
field that moved — because "expected file differs" is exactly the
unhelpful failure mode this module exists to avoid.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from ..errors import ConfigurationError
from .report import EXPECTED_FORMAT

__all__ = [
    "expected_filename",
    "expected_path",
    "dump_expected",
    "write_expected",
    "load_expected",
    "compare_payloads",
]


def expected_filename(suite: str) -> str:
    """The checked-in file name for a suite's pin."""
    return f"EVAL_{suite}.json"


def expected_path(suite: str, directory: str) -> str:
    """Where a suite's pin lives under ``directory``."""
    return os.path.join(directory, expected_filename(suite))


def dump_expected(payload: Dict) -> str:
    """Canonical text form: sorted keys, indent 2, trailing newline."""
    return json.dumps(payload, sort_keys=True, indent=2) + "\n"


def write_expected(payload: Dict, path: str) -> None:
    """Write a pin in canonical form (creating parent dirs as needed)."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dump_expected(payload))


def load_expected(path: str) -> Dict:
    """Read a pin back; malformed files raise naming the path."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"{path}: not valid JSON ({exc})")
    if not isinstance(payload, dict):
        raise ConfigurationError(f"{path}: expected a JSON object")
    return payload


def _classes_of(payload: Dict, serial: str) -> Dict:
    return payload.get("solvers", {}).get(serial, {}).get("classes", {})


def compare_payloads(expected: Dict, fresh: Dict,
                     label: Optional[str] = None) -> List[str]:
    """Structural diff of two expected payloads; empty list means clean.

    ``expected`` is the checked-in pin, ``fresh`` the just-computed one;
    ``label`` (usually the file path) prefixes every message.  Top-level
    metadata (format, suite, schema version, cell count) is checked
    first; a format mismatch short-circuits, since field-by-field
    comparison across formats is meaningless.
    """
    prefix = f"{label}: " if label else ""
    drift: List[str] = []

    fmt_expected, fmt_fresh = expected.get("format"), fresh.get("format")
    if fmt_expected != fmt_fresh:
        return [
            f"{prefix}expected-results format {fmt_expected!r} != "
            f"current {fmt_fresh!r} (regenerate with --update-expected)"
        ]
    for field in ("suite", "store_schema_version", "cells"):
        if expected.get(field) != fresh.get(field):
            drift.append(
                f"{prefix}{field}: expected {expected.get(field)!r}, "
                f"got {fresh.get(field)!r}"
            )

    serials_expected = set(expected.get("solvers", {}))
    serials_fresh = set(fresh.get("solvers", {}))
    for serial in sorted(serials_expected - serials_fresh):
        drift.append(
            f"{prefix}solver {serial} pinned but absent from the fresh "
            f"run (solver removed from the suite?)"
        )
    for serial in sorted(serials_fresh - serials_expected):
        drift.append(
            f"{prefix}solver {serial} ran but has no pinned row "
            f"(new solver? regenerate with --update-expected)"
        )

    for serial in sorted(serials_expected & serials_fresh):
        cls_expected = _classes_of(expected, serial)
        cls_fresh = _classes_of(fresh, serial)
        for cls in sorted(set(cls_expected) - set(cls_fresh)):
            drift.append(
                f"{prefix}solver {serial}: cell class {cls!r} pinned "
                f"but absent from the fresh run"
            )
        for cls in sorted(set(cls_fresh) - set(cls_expected)):
            drift.append(
                f"{prefix}solver {serial}: cell class {cls!r} ran but "
                f"is not pinned"
            )
        for cls in sorted(set(cls_expected) & set(cls_fresh)):
            want, got = cls_expected[cls], cls_fresh[cls]
            for field in sorted(set(want) | set(got)):
                if want.get(field) != got.get(field):
                    drift.append(
                        f"{prefix}solver {serial} / class {cls!r}: "
                        f"{field} expected {want.get(field)!r}, "
                        f"got {got.get(field)!r}"
                    )
    return drift


# Re-exported for symmetry: writers validate against the same constant
# the report stamps into payloads.
FORMAT = EXPECTED_FORMAT
