"""Deterministic fault injection for chaos-testing the sweep executor.

The executor in :mod:`repro.analysis.experiments` promises to survive
worker crashes, hung cells, and transient errors.  Promises about
failure paths rot unless the failures are reproducible, so this module
makes them *injectable*: a :class:`FaultPlan` maps run-store cell keys
(the same content keys :func:`~repro.analysis.experiments.cell_key_of`
assigns) to :class:`FaultSpec` values, and the executor consults the
plan before running each cell — in workers and in the serial path alike.

Three fault modes:

``"crash"``
    Kill the worker process outright (``os._exit``), producing the same
    ``BrokenProcessPool`` an OOM kill or segfault would.  In the serial
    path — where dying would take the test process with it — the crash
    is simulated by raising :class:`SimulatedCrash` instead.
``"hang"``
    Sleep for ``seconds`` before running the cell, far past any sane
    per-cell timeout; exercises the executor's deadline kill-and-retry
    path.  Only meaningful with ``workers > 1`` (the serial path has no
    preemption and will genuinely sleep).
``"error"``
    Raise :class:`TransientFault` — deliberately **not** a
    :class:`~repro.errors.ReproError`, because the executor treats the
    repro hierarchy as deterministic rejections (propagated, never
    retried) and everything else as a retryable fault.

Every spec carries an ``attempts`` budget: the fault fires on the first
``attempts`` dispatches of its cell and the cell runs clean afterwards
(``attempts=None`` makes the fault permanent — a poison cell).  Attempt
numbers count *dispatches*: a dispatch voided by a sibling chunk's crash
or timeout still advances the counter (the cell did start running).

Plans are plain picklable data (they ride to workers inside job tuples)
and :meth:`FaultPlan.sample` chooses victims with a seeded RNG, so a
chaos schedule is a value you can log, re-run, and bisect.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from ..errors import ConfigurationError

__all__ = [
    "FAULT_MODES",
    "FaultPlan",
    "FaultSpec",
    "SimulatedCrash",
    "TransientFault",
    "inject",
]

#: Fault modes a spec may request.
FAULT_MODES = ("crash", "hang", "error")


class TransientFault(RuntimeError):
    """An injected transient failure (the ``"error"`` mode).

    Subclasses ``RuntimeError``, not :class:`~repro.errors.ReproError`:
    the executor retries generic faults but propagates the repro
    hierarchy as deterministic rejections, and an injected fault must
    land on the retry side of that split.
    """


class SimulatedCrash(RuntimeError):
    """Serial-path stand-in for a worker crash.

    The serial executor runs cells in the driving process, where
    ``os._exit`` would kill the sweep *and* its caller; raising this
    instead keeps crash schedules runnable (and retryable) without
    process isolation.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One cell's injected fault: what goes wrong, and for how long.

    ``attempts`` is the number of leading dispatches the fault fires on
    (``None`` = every dispatch, i.e. a poison cell); ``seconds`` is the
    ``"hang"`` sleep; ``message`` threads into the raised error text so
    chaos-test assertions can recognise their own faults.
    """

    mode: str
    attempts: Optional[int] = 1
    seconds: float = 3600.0
    message: str = "injected fault"

    def __post_init__(self):
        if self.mode not in FAULT_MODES:
            raise ConfigurationError(
                f"unknown fault mode {self.mode!r} (choose from {FAULT_MODES})"
            )
        if self.attempts is not None and (
            isinstance(self.attempts, bool)
            or not isinstance(self.attempts, int)
            or self.attempts < 1
        ):
            raise ConfigurationError(
                f"fault attempts must be a positive int or None, got {self.attempts!r}"
            )
        if not self.seconds >= 0:
            raise ConfigurationError(
                f"fault seconds must be non-negative, got {self.seconds!r}"
            )

    def active(self, attempt: int) -> bool:
        """Whether the fault fires on dispatch number ``attempt`` (1-based)."""
        return self.attempts is None or attempt <= self.attempts


def inject(spec: Optional[FaultSpec], attempt: int, serial: bool = False) -> None:
    """Fire ``spec`` for dispatch ``attempt`` if it is active; else no-op.

    Called by the executor immediately before running a cell — in the
    worker for parallel plans, in-process for serial ones (``serial=True``
    swaps the ``"crash"`` mode's ``os._exit`` for :class:`SimulatedCrash`).
    """
    if spec is None or not spec.active(attempt):
        return
    if spec.mode == "error":
        raise TransientFault(f"{spec.message} (attempt {attempt})")
    if spec.mode == "hang":
        time.sleep(spec.seconds)
        return
    # "crash": die the way an OOM-killed worker dies — no cleanup, no
    # exception crossing the pipe, just a vanished process.
    if serial:
        raise SimulatedCrash(f"{spec.message} (attempt {attempt})")
    os._exit(86)


class FaultPlan:
    """A reproducible chaos schedule: cell key → :class:`FaultSpec`.

    Keys are the executor's content-addressed cell keys, so a plan is
    stable across serial/parallel/resumed runs of the same grid (the key
    *is* the cell's identity).  The plan itself is plain picklable data;
    ``seed`` records how a sampled plan was drawn.
    """

    def __init__(self, specs: Mapping[str, FaultSpec], seed: int = 0):
        for key, spec in specs.items():
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"FaultPlan values must be FaultSpec, got {type(spec).__name__}"
                )
            if not isinstance(key, str):
                raise ConfigurationError(
                    f"FaultPlan keys are cell-key strings, got {type(key).__name__}"
                )
        self.specs: Dict[str, FaultSpec] = dict(specs)
        self.seed = seed

    def for_key(self, key: Optional[str]) -> Optional[FaultSpec]:
        """The fault injected for cell ``key``, or ``None``."""
        if key is None:
            return None
        return self.specs.get(key)

    def __len__(self) -> int:
        return len(self.specs)

    def __contains__(self, key: str) -> bool:
        return key in self.specs

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultPlan):
            return NotImplemented
        return self.specs == other.specs and self.seed == other.seed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        modes = sorted(s.mode for s in self.specs.values())
        return f"FaultPlan({len(self.specs)} fault(s): {modes}, seed={self.seed})"

    @classmethod
    def sample(
        cls,
        keys: Sequence[str],
        seed: int = 0,
        crash: int = 0,
        hang: int = 0,
        transient: int = 0,
        attempts: Optional[int] = 1,
        hang_seconds: float = 3600.0,
    ) -> "FaultPlan":
        """Draw a plan over ``keys``: ``crash``/``hang``/``transient``
        victims chosen without replacement by a ``seed``-determined RNG.
        Same keys + same seed = same plan, so a failing chaos run can be
        replayed exactly from its logged parameters.
        """
        wanted = crash + hang + transient
        if wanted > len(keys):
            raise ConfigurationError(
                f"cannot sample {wanted} fault(s) from {len(keys)} cell key(s)"
            )
        rng = random.Random(seed)
        victims = rng.sample(list(keys), wanted)
        specs: Dict[str, FaultSpec] = {}
        cursor = 0
        for mode, count in (("crash", crash), ("hang", hang), ("error", transient)):
            for key in victims[cursor:cursor + count]:
                specs[key] = FaultSpec(
                    mode=mode, attempts=attempts, seconds=hang_seconds,
                    message=f"sampled {mode} fault",
                )
            cursor += count
        return cls(specs, seed=seed)
