"""Fixture: order-safe set consumption no-unordered-iteration allows."""


def emit(ids):
    seen = set(ids)
    out = [rid for rid in sorted(seen)]       # sorted() erases hash order
    count = len(seen)                          # order-insensitive
    biggest = max(seen) if seen else None      # order-insensitive
    rebuilt = {x for x in seen}                # set-to-set stays order-free
    total = sum(x for x in seen)               # order-insensitive consumer
    present = 3 in seen                        # membership, no iteration
    ranked = sorted(x * x for x in seen)       # sorted() wraps the genexp
    return out, count, biggest, rebuilt, total, present, ranked
