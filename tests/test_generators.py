"""Tests for the graph family generators."""

import pytest

from repro.errors import ConfigurationError
from repro.graphs import (
    FAMILIES,
    clique,
    complete_bipartite,
    erdos_renyi,
    hypercube,
    lollipop,
    path,
    quotient_graph,
    random_connected,
    random_regular,
    random_tree,
    ring,
    star,
    torus,
    view_partition,
)


class TestRing:
    def test_sizes(self):
        for n in (3, 4, 9):
            g = ring(n)
            assert g.n == n and g.m == n and g.is_regular()

    def test_canonical_labeling_symmetric(self):
        g = ring(6)
        for u in range(6):
            assert g.traverse(u, 1) == ((u + 1) % 6, 2)
            assert g.traverse(u, 2) == ((u - 1) % 6, 1)

    def test_canonical_quotient_collapses(self):
        assert quotient_graph(ring(8)).num_classes == 1

    def test_seeded_variant_valid(self):
        g = ring(7, seed=2)
        assert g.n == 7 and g.m == 7

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            ring(2)


class TestClique:
    def test_sizes(self):
        g = clique(5)
        assert g.n == 5 and g.m == 10

    def test_circulant_labeling_collapses(self):
        assert quotient_graph(clique(6)).num_classes == 1

    def test_circulant_structure(self):
        g = clique(5)
        for u in range(5):
            for p in range(1, 5):
                assert g.traverse(u, p) == ((u + p) % 5, 5 - p)

    def test_too_small(self):
        with pytest.raises(ConfigurationError):
            clique(1)


class TestHypercubeTorus:
    def test_hypercube_sizes(self):
        g = hypercube(3)
        assert g.n == 8 and g.m == 12 and g.is_regular()

    def test_hypercube_dimension_ports(self):
        g = hypercube(3)
        for u in range(8):
            for p in range(1, 4):
                v, q = g.traverse(u, p)
                assert v == u ^ (1 << (p - 1)) and q == p

    def test_hypercube_collapses(self):
        assert quotient_graph(hypercube(4)).num_classes == 1

    def test_torus_sizes(self):
        g = torus(3, 4)
        assert g.n == 12 and g.m == 24 and g.is_regular()

    def test_torus_collapses(self):
        assert quotient_graph(torus(3, 3)).num_classes == 1

    def test_torus_too_small(self):
        with pytest.raises(ConfigurationError):
            torus(2, 5)


class TestOtherFamilies:
    def test_path_endpoints(self):
        g = path(5)
        degs = sorted(g.degree(u) for u in range(5))
        assert degs == [1, 1, 2, 2, 2]

    def test_star_hub(self):
        g = star(6)
        assert g.max_degree() == 5 and g.m == 5

    def test_random_regular_connected(self):
        g = random_regular(10, 3, seed=0)
        assert g.is_connected() and g.is_regular() and g.degree(0) == 3

    def test_random_regular_impossible(self):
        with pytest.raises(ConfigurationError):
            random_regular(5, 3, seed=0)  # odd n*d

    def test_erdos_renyi_connected(self):
        g = erdos_renyi(12, 0.3, seed=1)
        assert g.is_connected() and g.n == 12

    def test_random_tree_is_tree(self):
        g = random_tree(9, seed=4)
        assert g.n == 9 and g.m == 8 and g.is_connected()

    def test_random_tree_n2(self):
        g = random_tree(2, seed=0)
        assert g.m == 1

    def test_lollipop_shape(self):
        g = lollipop(4, 3)
        assert g.n == 7 and g.is_connected()

    def test_complete_bipartite(self):
        g = complete_bipartite(3, 4)
        assert g.n == 7 and g.m == 12

    def test_random_connected_connected_and_dense_enough(self):
        for seed in range(5):
            g = random_connected(10, seed=seed)
            assert g.is_connected()
            assert g.m >= g.n - 1

    def test_random_connected_usually_view_distinct(self):
        # Asymmetric random graphs are view-distinguishable w.h.p.; check a
        # majority of seeds to avoid over-fitting a single lucky instance.
        hits = sum(
            1
            for seed in range(8)
            if len(set(view_partition(random_connected(11, seed=seed)))) == 11
        )
        assert hits >= 6


class TestFamilyRegistry:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_registry_generates_connected(self, name):
        g = FAMILIES[name](9, seed=2)
        assert g.is_connected()
        assert g.n >= 8  # registry may round n for parity constraints
