"""The paper's algorithms: Theorems 1–8 and the Table 1 registry."""

from .dispersion_using_map import (
    DispersionMemory,
    dispersion_rounds_bound,
    dispersion_using_map,
)
from .find_map import find_map_rounds, private_quotient_map
from .general_graphs import (
    solve_theorem2,
    solve_theorem3,
    solve_theorem4,
    solve_theorem5,
    tick_budget_for,
)
from .impossibility import (
    ImpossibilityReport,
    demonstrate_impossibility,
    impossibility_applies,
)
from .k_robots import solve_k_robots
from .phases import pairing_phase, rank_dispersion_phase, roster_phase
from .quotient_algorithm import solve_theorem1, theorem1_round_bound
from .runner import TABLE1, Table1Row, get_row, row_applicable
from .strong_byzantine import solve_theorem6, solve_theorem7

__all__ = [
    "dispersion_using_map",
    "DispersionMemory",
    "dispersion_rounds_bound",
    "find_map_rounds",
    "private_quotient_map",
    "solve_theorem1",
    "theorem1_round_bound",
    "solve_theorem2",
    "solve_theorem3",
    "solve_theorem4",
    "solve_theorem5",
    "solve_theorem6",
    "solve_theorem7",
    "solve_k_robots",
    "tick_budget_for",
    "roster_phase",
    "pairing_phase",
    "rank_dispersion_phase",
    "demonstrate_impossibility",
    "impossibility_applies",
    "ImpossibilityReport",
    "TABLE1",
    "Table1Row",
    "get_row",
    "row_applicable",
]
