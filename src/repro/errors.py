"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class GraphStructureError(ReproError):
    """An operation received a graph violating a structural requirement.

    Examples: non-contiguous port labels, a disconnected graph handed to an
    algorithm that requires connectivity, or a multigraph where a simple
    graph is expected.
    """


class PortError(GraphStructureError):
    """A port number is out of range or does not exist at a node."""


class MapError(ReproError):
    """A robot's private map is inconsistent with an attempted operation.

    Raised e.g. when navigating a map path through an unexplored port or
    when a map exceeds ``n`` nodes (which honest robots treat as proof of
    Byzantine interference, per the paper's round-budget argument,
    footnote 11).
    """


class SimulationError(ReproError):
    """The simulator detected an illegal action or inconsistent state."""


class ProtocolViolation(SimulationError):
    """An honest robot program attempted something the model forbids.

    Honest programs must play by the rules (only Byzantine strategies may
    deviate); tripping this exception in a test indicates a bug in an
    honest program, never legitimate adversarial behaviour.
    """


class RoundLimitExceeded(SimulationError):
    """A simulation ran past its configured safety round budget.

    Every entry point takes an explicit or derived ``max_rounds``; hitting
    it means the algorithm failed to terminate within its theoretical
    bound (times a safety factor) and is reported as a failure rather than
    hanging the test suite.
    """


class SweepFaultError(ReproError):
    """A sweep cell exhausted its retry budget under strict execution.

    Raised by the plan executor only with ``strict=True``; the default
    executor quarantines such cells as structured failure records
    (``success=False, failed=True``) and keeps the sweep alive.  Carries
    the failing cell's content key and last error in its message.
    """


class ConfigurationError(ReproError):
    """Invalid experiment configuration (e.g. f out of range, bad IDs)."""


class ValidationError(ConfigurationError):
    """Untrusted input failed validation; names the offending field.

    Raised by the scenario parsers (``Scenario.from_dict``,
    ``ScenarioGrid.from_dicts``) on unknown keys, wrong types, or
    out-of-range values.  ``field`` carries a dotted path into the
    payload (``"graph"``, ``"scenarios[3].f"``) so API layers — the
    serve subsystem maps these to 400 responses — can tell clients
    exactly which part of their JSON to fix.
    """

    def __init__(self, field: str, message: str):
        super().__init__(f"{field}: {message}")
        self.field = field
        #: The bare message without the field prefix (so wrappers can
        #: re-attribute the same reason to a longer path).
        self.reason = message


class ImpossibleInstance(ConfigurationError):
    """The requested instance is provably unsolvable (Theorem 8 regime)."""
