"""Declarative scenarios: one serializable object from "what to run" to records.

The paper's Table 1 is a grid of ``{algorithm × graph × f × adversary ×
start}`` cells.  This module makes that grid a first-class, declarative
API instead of four divergent entry layers:

* :class:`Scenario` — a frozen, canonically-serializable description of
  **one** solver invocation: algorithm (Table 1 serial or solver name),
  graph (a :class:`~repro.graphs.specs.GraphSpec` or a concrete graph),
  Byzantine budget ``f`` (an int or ``"max"`` for the row's bound),
  adversary strategy + seed, Byzantine placement, and an optional round
  budget.  ``Scenario.key()`` is *definitionally* the run-store cell key
  — the scenario that describes a cell addresses its cache entry — and
  ``to_dict()/from_dict()`` round-trip through JSON without perturbing
  the key, so a scenario in a file, a scenario in a sweep, and a cell in
  a store are the same object in three positions.

* :class:`ScenarioGrid` — an explicit scenario list with a declarative
  builder (:func:`grid`) that expands ``rows × graphs × strategies × f ×
  seeds`` deterministically and compiles straight into
  :func:`~repro.analysis.experiments.execute_plan`'s
  :class:`~repro.analysis.experiments.SweepCell` lists.  The four public
  sweeps (``run_table1``, ``tolerance_sweep``, ``scaling_sweep``,
  ``strategy_matrix``) are thin presets over this builder and produce
  records byte-identical to their historical implementations.

* :class:`ResultSet` — the record-list type every sweep returns.  It IS
  a ``list`` of flat record dicts (so every existing consumer keeps
  working) plus the combinators the loose ``List[Dict]`` contract never
  had: ``filter``, ``group_by``, ``summarize``, ``success_rate``,
  ``table`` and ``to_json``.

Compilation pipeline
--------------------
``Scenario`` → :meth:`Scenario.cell` → ``SweepCell`` → ``execute_plan``
→ records.  Everything the plan executor learned in PR 1–3 — process
fan-out with spec-shipped graphs, streaming persistence into a
:class:`~repro.analysis.store.RunStore`, crash resume, warm-store
zero-solver-call replays — applies to every scenario unchanged, because
a scenario *is* a cell with a serialization format.

Default-value canonicalisation keeps old caches warm: ``placement=
"lowest"``, ``rounds=None`` and ``scheduler="synchronous"`` (the only
values historical sweeps could express) are omitted from the hashed key
payload, so every key produced here is bit-identical to the PR-3 key
for the same work.

JSON scenario files
-------------------
``repro scenario FILE.json`` accepts one scenario object or a list::

    {"algorithm": 5, "graph": {"family": "random_connected",
                               "args": {"n": 9, "seed": 0}},
     "strategy": "squatter", "f": "max", "seed": 0}

which hits exactly the same store cell as the equivalent ``repro sweep``
invocation.  An optional ``"scheduler"`` field selects a non-default
activation model (``"semi_synchronous(p=0.5)"`` etc. — see
:mod:`repro.sim.schedulers` and EXPERIMENTS.md); like every axis, its
default canonicalises out of both the JSON form and the store key.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .analysis.experiments import (
    DEFAULT_CHUNK,
    ExecutionPolicy,
    SweepCell,
    cell_key_of,
    execute_plan,
)
from .analysis.faults import FaultPlan
from .analysis.metrics import success_rate as _success_rate
from .analysis.metrics import summarize as _summarize
from .analysis.store import RunStore
from .analysis.tables import infer_columns, render_table
from .byzantine import STRATEGIES
from .core.runner import TABLE1, Table1Row, get_row, row_applicable
from .errors import ConfigurationError, ValidationError
from .graphs.port_labeled import PortLabeledGraph
from .graphs.specs import GraphSpec, canonicalize_spec, resolve_spec, spec_of
from .sim.schedulers import canonical_scheduler

__all__ = [
    "KINDS",
    "PLACEMENTS",
    "ResultSet",
    "Scenario",
    "ScenarioGrid",
    "grid",
    "run_scenarios",
    "scaling_grid",
    "scheduler_matrix_grid",
    "strategy_matrix_grid",
    "table1_grid",
    "tolerance_grid",
]

#: Record shapes a scenario can produce (see ``SweepCell.kind``).
KINDS = ("table1", "tolerance", "scaling")

#: Byzantine placements understood by the drivers.
PLACEMENTS = ("lowest", "highest", "random")

#: ``to_dict`` format version (bumped only if the serialized shape
#: changes incompatibly; independent of the record-schema version).
FORMAT_VERSION = 1

#: Every key a serialized scenario may carry (``from_dict`` rejects the
#: rest by name — untrusted payloads must not silently drop typos).
_SCENARIO_FIELDS = frozenset({
    "version", "kind", "algorithm", "graph", "strategy", "f",
    "placement", "seed", "rounds", "scheduler",
})


# --------------------------------------------------------------------- #
# Result sets
# --------------------------------------------------------------------- #

class ResultSet(List[Dict]):
    """A list of flat record dicts with aggregation combinators.

    Subclasses ``list`` so the historical ``List[Dict]`` contract —
    iteration, indexing, ``==`` against plain lists, ``json.dumps`` —
    holds verbatim; the combinators are additive.  All derived sets
    preserve record order (the executor's submission order).
    """

    @property
    def records(self) -> List[Dict]:
        """The records as a plain list (an explicit copy)."""
        return list(self)

    def filter(self, pred: Optional[Callable[[Dict], bool]] = None, **equals) -> "ResultSet":
        """Records matching a predicate and/or keyword equality tests.

        ``rs.filter(strategy="squatter", success=True)`` keeps records
        whose fields equal the given values; a callable ``pred`` composes
        with them (both must hold).
        """
        out = ResultSet()
        for rec in self:
            if pred is not None and not pred(rec):
                continue
            if all(rec.get(k) == v for k, v in equals.items()):
                out.append(rec)
        return out

    def group_by(self, key: Union[str, Callable[[Dict], object]]) -> Dict[object, "ResultSet"]:
        """Partition into ``{key value -> ResultSet}`` (insertion order)."""
        fn = key if callable(key) else (lambda rec: rec.get(key))
        groups: Dict[object, ResultSet] = {}
        for rec in self:
            groups.setdefault(fn(rec), ResultSet()).append(rec)
        return groups

    def summarize(self, group_by: str, missing=None) -> List[Dict]:
        """Per-group success rate and round statistics
        (:func:`repro.analysis.metrics.summarize`).  ``missing`` labels
        records lacking the key — e.g. ``summarize("scheduler",
        missing="synchronous")``, since default-valued axes omit their
        key from records for cache compatibility."""
        return _summarize(list(self), group_by, missing=missing)

    def success_rate(self) -> float:
        """Fraction of successful records among those that *ran*
        (``nan`` when nothing ran — see
        :func:`repro.analysis.metrics.success_rate`).  Quarantined
        failure records (``failed=True``) are excluded from the rate
        entirely — numerator and denominator — and surface through
        :meth:`failures` instead."""
        return _success_rate(self)

    def failures(self) -> "ResultSet":
        """The quarantined failure records (``failed=True``).

        These are cells the executor gave up on after exhausting their
        retry budget — structured placeholders carrying ``reason``,
        ``error``, ``attempts``, and the cell's content ``key`` — as
        opposed to runs that executed and merely did not disperse
        (``success=False`` without ``failed``).  Empty on a healthy
        sweep."""
        return self.filter(lambda rec: bool(rec.get("failed")))

    def columns(self) -> List[str]:
        """Ordered union of record keys (first-seen order; the same
        inference :func:`render_table` applies when given no columns)."""
        return infer_columns(self)

    def table(self, columns: Optional[Sequence[str]] = None,
              title: Optional[str] = None) -> str:
        """Render as an aligned monospace table
        (:func:`repro.analysis.tables.render_table`)."""
        return render_table(self, columns=columns, title=title)

    def to_json(self, path: Optional[str] = None, indent: Optional[int] = None) -> str:
        """The records as a JSON array; optionally also written to ``path``."""
        text = json.dumps(list(self), indent=indent)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(text)
                fh.write("\n")
        return text

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        """Parse a JSON array of records back into a :class:`ResultSet`."""
        data = json.loads(text)
        if not isinstance(data, list):
            raise ConfigurationError("a ResultSet JSON payload must be an array")
        return cls(data)


# --------------------------------------------------------------------- #
# Normalisation helpers
# --------------------------------------------------------------------- #

_THEOREM_NAME = re.compile(r"(?:solve_)?theorem[_ ]?(\d+)$")


def _normalize_algorithm(algorithm: Union[int, str, Table1Row]) -> int:
    """Resolve an algorithm designator to its Table 1 serial.

    Accepts a serial (int or decimal string), a registered solver name
    (``"solve_theorem4"`` / ``"theorem4"`` — resolved by *theorem*
    number, which differs from the serial for rows 3–7), or a registry
    :class:`Table1Row`.
    """
    if isinstance(algorithm, Table1Row):
        # Only the registry's own rows resolve: a hand-built Table1Row
        # (custom solver) would otherwise be silently *replaced* by the
        # registry row sharing its serial — wrong solver, wrong cache key.
        try:
            registered = get_row(algorithm.serial)
        except KeyError:
            registered = None
        if registered is not algorithm:
            raise ConfigurationError(
                f"Table1Row with serial {algorithm.serial} is not the registry's "
                f"row; scenarios only run registered algorithms (call its "
                f"solver directly, or use run_table1_row for custom rows)"
            )
        algorithm = algorithm.serial
    if isinstance(algorithm, bool):
        raise ConfigurationError(f"algorithm must be a serial or name, not {algorithm!r}")
    if isinstance(algorithm, int):
        try:
            get_row(algorithm)
        except KeyError as exc:
            raise ConfigurationError(str(exc))
        return algorithm
    if isinstance(algorithm, str):
        token = algorithm.strip().lower()
        if token.isdigit():
            return _normalize_algorithm(int(token))
        match = _THEOREM_NAME.fullmatch(token)
        if match:
            theorem = int(match.group(1))
            for row in TABLE1:
                if row.theorem == theorem:
                    return row.serial
            raise ConfigurationError(f"no Table 1 row implements theorem {theorem}")
    raise ConfigurationError(
        f"unknown algorithm {algorithm!r} (use a Table 1 serial 1..7 or a "
        f"solver name like 'solve_theorem4')"
    )


def _hashable(value):
    """Recursively convert JSON containers to hashable tuples so a spec
    deserialized from JSON (lists for tuples) can index the per-process
    resolution memo."""
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple((k, _hashable(v)) for k, v in value.items())
    return value


def _graph_from_dict(payload: Dict) -> Union[PortLabeledGraph, GraphSpec]:
    """Deserialize the ``graph`` slot of a scenario dict.

    ``{"family": ..., "args": {...}}`` resolves through the generator
    registry (partially-given args pick up the generator's defaults and
    the result is tagged with its fully-bound spec, so the key is the
    same as for a directly generated graph).  ``{"port_table": ...}``
    rebuilds a hand-built graph through the validating constructor.
    """
    if "family" in payload:
        args = payload.get("args", {})
        if not isinstance(args, dict):
            raise ConfigurationError("graph spec 'args' must be an object")
        spec = GraphSpec(payload["family"],
                         tuple((k, _hashable(v)) for k, v in args.items()))
        # Canonicalize (bind defaults, fixed order) instead of building:
        # deserialization stays lazy, bad families/args surface as
        # ConfigurationError, and the key matches a generator-tagged spec.
        return canonicalize_spec(spec)
    if "port_table" in payload:
        table = payload["port_table"]
        try:
            port_map = {
                int(u): {int(p): (int(v), int(q)) for p, (v, q) in row.items()}
                for u, row in table.items()
            }
        except (TypeError, ValueError, AttributeError) as exc:
            raise ConfigurationError(
                f"malformed port_table (expected node -> port -> [dest, in_port]): {exc}"
            )
        return PortLabeledGraph(port_map)
    raise ConfigurationError(
        "a scenario graph must be {'family': ..., 'args': {...}} or "
        "{'port_table': {...}}"
    )


def _graph_to_dict(graph: Union[PortLabeledGraph, GraphSpec]) -> Dict:
    """Serialize a scenario's graph slot (inverse of :func:`_graph_from_dict`)."""
    spec = graph if isinstance(graph, GraphSpec) else spec_of(graph)
    if spec is not None:
        return {"family": spec.family, "args": {k: v for k, v in spec.args}}
    table = graph.port_table()
    return {
        "port_table": {
            str(u): {str(p): list(vq) for p, vq in row.items()}
            for u, row in table.items()
        }
    }


# --------------------------------------------------------------------- #
# Scenario
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class Scenario:
    """One declarative solver invocation; compiles to one sweep cell.

    Parameters
    ----------
    algorithm:
        Table 1 serial (1–7), a solver name (``"solve_theorem4"``), or a
        registry row; normalised to the serial.
    graph:
        A concrete :class:`PortLabeledGraph` or a
        :class:`~repro.graphs.specs.GraphSpec` recipe.  Generator-built
        graphs serialize as their spec; hand-built graphs as their port
        table.
    strategy:
        Adversary strategy registry name (serializable scenarios only
        speak registry names; pass callables to the solvers directly if
        you need them).
    f:
        Byzantine budget: an int, or ``"max"`` for the row's tolerance
        bound on this graph.
    kind:
        Record shape: ``"table1"`` (default), ``"tolerance"``
        (rejection-aware), or ``"scaling"`` (adds ``m``).
    placement:
        Which IDs the adversary corrupts: ``"lowest"`` (default),
        ``"highest"``, or ``"random"`` (driven by ``seed``).
    seed:
        Run seed (drives the adversary streams, random placement, and
        the scheduler's dedicated RNG stream).
    rounds:
        Optional round budget capping the *simulated* phase below the
        solver's own bound; an exhausted budget records
        ``success=False``.
    scheduler:
        Activation-scheduler spec string (``"synchronous"`` default,
        ``"semi_synchronous(p=0.5)"``, ``"adversarial(window=4)"``,
        ``"crash_recovery(down=2,up=6)"`` — see
        :mod:`repro.sim.schedulers`); canonicalised on construction.

    ``key()`` is definitionally the run-store cell key of the compiled
    cell, and defaults canonicalise out of the hash — a default-valued
    scenario addresses exactly the cache entry the legacy sweeps wrote.
    """

    algorithm: Union[int, str, Table1Row]
    graph: Union[PortLabeledGraph, GraphSpec]
    strategy: str = "squatter"
    f: Union[int, str] = "max"
    kind: str = "table1"
    placement: str = "lowest"
    seed: int = 0
    rounds: Optional[int] = None
    scheduler: str = "synchronous"

    def __post_init__(self):
        object.__setattr__(self, "algorithm", _normalize_algorithm(self.algorithm))
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown scenario kind {self.kind!r} (choose from {KINDS})"
            )
        if isinstance(self.graph, GraphSpec):
            # A hand-written spec may omit defaults or reorder args; the
            # canonical (fully-bound, signature-ordered) form keys
            # identically to the spec a generator tags its output with —
            # otherwise one cell would split across two store keys.
            object.__setattr__(self, "graph", canonicalize_spec(self.graph))
        elif not isinstance(self.graph, PortLabeledGraph):
            raise ConfigurationError(
                f"graph must be a PortLabeledGraph or GraphSpec, "
                f"not {type(self.graph).__name__}"
            )
        if not isinstance(self.strategy, str) or self.strategy not in STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {self.strategy!r} "
                f"(choose from: {', '.join(sorted(STRATEGIES))})"
            )
        f = self.f
        if f is None:
            object.__setattr__(self, "f", "max")
        elif isinstance(f, str):
            if f != "max":
                raise ConfigurationError(f"f must be an int or 'max', got {f!r}")
        elif isinstance(f, bool) or not isinstance(f, int):
            raise ConfigurationError(f"f must be an int or 'max', got {f!r}")
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r} (choose from {PLACEMENTS})"
            )
        if self.rounds is not None and (
            isinstance(self.rounds, bool) or not isinstance(self.rounds, int)
            or self.rounds < 0
        ):
            raise ConfigurationError(f"rounds must be a non-negative int, got {self.rounds!r}")
        if not isinstance(self.scheduler, str):
            # Serializable scenarios only speak registry spec strings
            # (like strategies); pass scheduler callables to the solvers
            # directly if you need them.
            raise ConfigurationError(
                f"scheduler must be a spec string, got {type(self.scheduler).__name__}"
            )
        object.__setattr__(self, "scheduler", canonical_scheduler(self.scheduler))

    # -- identity ------------------------------------------------------ #

    def _graph_identity(self):
        """The graph slot's canonical identity: its (fully-bound) spec
        when it has one, the graph itself otherwise.  A spec payload and
        the graph it resolves to describe the same work — and produce
        the same key — so they must compare equal."""
        if isinstance(self.graph, GraphSpec):
            return self.graph
        spec = spec_of(self.graph)
        return spec if spec is not None else self.graph

    def _identity(self) -> Tuple:
        return (self.kind, self.algorithm, self._graph_identity(),
                self.strategy, self.f, self.placement, self.seed, self.rounds,
                self.scheduler)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Scenario):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    # -- derived views ------------------------------------------------- #

    @property
    def serial(self) -> int:
        """The normalised Table 1 serial."""
        return self.algorithm  # type: ignore[return-value]

    @property
    def row(self) -> Table1Row:
        """The registry row this scenario runs."""
        return get_row(self.serial)

    def resolved_graph(self) -> PortLabeledGraph:
        """The concrete graph (spec payloads resolve through the
        per-process memo cache)."""
        if isinstance(self.graph, GraphSpec):
            return resolve_spec(self.graph)
        return self.graph

    def resolved_f(self) -> Optional[int]:
        """The cell-level ``f``: ``"max"`` stays ``None`` for the table1
        kind (the historical "row's bound" marker, cacheable as such) and
        resolves to the row's concrete bound for the other kinds (their
        executors need an explicit int)."""
        if self.f == "max":
            if self.kind == "table1":
                return None
            return self.row.f_max(self.resolved_graph())
        return self.f  # type: ignore[return-value]

    def applicable(self) -> bool:
        """Whether the row's graph-class restriction admits this graph."""
        return row_applicable(self.row, self.resolved_graph())

    # -- compilation --------------------------------------------------- #

    def cell(self) -> SweepCell:
        """Compile to the plan executor's cell (the scenario ↔ cell
        correspondence everything else rests on)."""
        return SweepCell(
            kind=self.kind,
            serial=self.serial,
            payload=self.graph,
            strategy=self.strategy,
            seed=self.seed,
            f=self.resolved_f(),
            placement=self.placement,
            rounds=self.rounds,
            scheduler=self.scheduler,
        )

    def key(self) -> str:
        """The content-addressed run-store key of the compiled cell.

        Definitionally :func:`~repro.analysis.experiments.cell_key_of` of
        :meth:`cell` — a scenario *names* its cache entry.
        """
        return cell_key_of(self.cell())

    def run(
        self,
        workers: Optional[int] = None,
        store: Optional[RunStore] = None,
        resume: bool = True,
        chunk: int = DEFAULT_CHUNK,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        batch: bool = True,
    ) -> ResultSet:
        """Execute this scenario through the plan executor (so stores,
        resume, workers, and fault tolerance behave exactly as in a
        sweep)."""
        return run_scenarios([self], workers=workers, store=store,
                             resume=resume, chunk=chunk,
                             policy=policy, faults=faults, batch=batch)

    # -- serialization ------------------------------------------------- #

    def to_dict(self) -> Dict:
        """Canonical JSON-safe form; ``from_dict`` inverts it and the
        round trip is a fixed point of :meth:`key`."""
        out: Dict = {
            "version": FORMAT_VERSION,
            "kind": self.kind,
            "algorithm": self.serial,
            "graph": _graph_to_dict(self.graph),
            "strategy": self.strategy,
            "f": self.f,
            "placement": self.placement,
            "seed": self.seed,
        }
        if self.rounds is not None:
            out["rounds"] = self.rounds
        if self.scheduler != "synchronous":
            out["scheduler"] = self.scheduler
        return out

    @classmethod
    def from_dict(cls, payload: Dict) -> "Scenario":
        """Build a scenario from its dict form (tolerant of omitted
        defaults, so hand-written JSON files stay short).

        Hardened for untrusted input: unknown keys, wrong types, and
        out-of-range values raise :class:`~repro.errors.ValidationError`
        naming the offending field — the serve subsystem maps these to
        400 responses with the field in the body.
        """
        if not isinstance(payload, dict):
            raise ValidationError("scenario", "must be a JSON object")
        version = payload.get("version", FORMAT_VERSION)
        if version != FORMAT_VERSION:
            raise ValidationError(
                "version", f"unsupported scenario format version {version!r}"
            )
        unknown = set(payload) - _SCENARIO_FIELDS
        if unknown:
            raise ValidationError(
                sorted(unknown)[0],
                f"unknown scenario field(s): {', '.join(sorted(unknown))}",
            )
        for required in ("algorithm", "graph"):
            if required not in payload:
                raise ValidationError(
                    required, "required field is missing "
                    "(a scenario needs 'algorithm' and 'graph')"
                )
        for name in ("kind", "strategy", "placement", "scheduler"):
            if name in payload and not isinstance(payload[name], str):
                raise ValidationError(
                    name, f"must be a string, got {type(payload[name]).__name__}"
                )
        if not isinstance(payload["graph"], dict):
            raise ValidationError(
                "graph", f"must be a JSON object, got {type(payload['graph']).__name__}"
            )
        seed = payload.get("seed", 0)
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ValidationError("seed", f"must be an integer, got {seed!r}")
        rounds = payload.get("rounds")
        if rounds is not None and (
            isinstance(rounds, bool) or not isinstance(rounds, int) or rounds < 0
        ):
            raise ValidationError(
                "rounds", f"must be a non-negative integer, got {rounds!r}"
            )
        f = payload.get("f", "max")
        if isinstance(f, bool) or not isinstance(f, (int, str)) or (
            isinstance(f, str) and f != "max"
        ):
            raise ValidationError("f", f"must be an integer or 'max', got {f!r}")
        kind = payload.get("kind", "table1")
        if kind not in KINDS:
            raise ValidationError(
                "kind", f"unknown scenario kind {kind!r} (choose from {KINDS})"
            )
        strategy = payload.get("strategy", "squatter")
        if strategy not in STRATEGIES:
            raise ValidationError(
                "strategy", f"unknown strategy {strategy!r} "
                f"(choose from: {', '.join(sorted(STRATEGIES))})"
            )
        placement = payload.get("placement", "lowest")
        if placement not in PLACEMENTS:
            raise ValidationError(
                "placement",
                f"unknown placement {placement!r} (choose from {PLACEMENTS})",
            )
        try:
            _normalize_algorithm(payload["algorithm"])
        except ConfigurationError as exc:
            raise ValidationError("algorithm", str(exc))
        try:
            canonical_scheduler(payload.get("scheduler", "synchronous"))
        except ConfigurationError as exc:
            raise ValidationError("scheduler", str(exc))
        try:
            graph = _graph_from_dict(payload["graph"])
        except ValidationError:
            raise
        except ConfigurationError as exc:
            raise ValidationError("graph", str(exc))
        return cls(
            algorithm=payload["algorithm"],
            graph=graph,
            strategy=strategy,
            f=f,
            kind=kind,
            placement=placement,
            seed=seed,
            rounds=rounds,
            scheduler=payload.get("scheduler", "synchronous"),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON text (sorted keys, so equal scenarios serialize
        byte-identically)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        """One-line human-readable summary (CLI output)."""
        f = self.f if isinstance(self.f, int) else "max"
        extras = ""
        if self.placement != "lowest":
            extras += f", placement={self.placement}"
        if self.rounds is not None:
            extras += f", rounds<={self.rounds}"
        if self.scheduler != "synchronous":
            extras += f", scheduler={self.scheduler}"
        g = self.graph if isinstance(self.graph, GraphSpec) else spec_of(self.graph)
        graph_desc = (
            f"{g.family}({', '.join(f'{k}={v}' for k, v in g.args)})"
            if g is not None else f"hand-built(n={self.resolved_graph().n})"
        )
        return (
            f"row {self.serial} on {graph_desc}, f={f}, "
            f"strategy={self.strategy}, seed={self.seed}, kind={self.kind}{extras}"
        )


# --------------------------------------------------------------------- #
# Grids
# --------------------------------------------------------------------- #

def run_scenarios(
    scenarios: Sequence[Scenario],
    workers: Optional[int] = None,
    store: Optional[RunStore] = None,
    resume: bool = True,
    chunk: int = DEFAULT_CHUNK,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    batch: bool = True,
) -> ResultSet:
    """Compile scenarios to cells, execute the plan, flatten the records.

    The shared engine behind :meth:`Scenario.run` and
    :meth:`ScenarioGrid.run`; inherits every executor guarantee (order
    determinism, streaming store writes, warm-store zero-solver-call
    replays, spec-shipped parallel dispatch, retry/quarantine fault
    tolerance under ``policy``, batched struct-of-arrays execution of
    compatible cells under ``batch`` — records byte-identical either
    way).  Quarantined cells surface in the returned set as failure
    records — :meth:`ResultSet.failures` selects them.
    """
    cells = [s.cell() for s in scenarios]
    lists = execute_plan(cells, workers=workers, store=store,
                         resume=resume, chunk=chunk,
                         policy=policy, faults=faults, batch=batch)
    return ResultSet(rec for recs in lists for rec in recs)


def _axis(value, name: str) -> Tuple:
    """Normalise one grid axis: scalars (including strings, graphs and
    specs) wrap into a 1-tuple; sequences become tuples.

    An explicitly empty axis raises: a zero-cell grid silently passes
    every ``all(r["success"] ...)`` check downstream, which is exactly
    the vacuous-success bug class the metrics layer already guards
    against.
    """
    if isinstance(value, (str, int, PortLabeledGraph, GraphSpec, Table1Row)):
        return (value,)
    try:
        out = tuple(value)
    except TypeError:
        raise ConfigurationError(f"grid axis {name!r} must be a value or sequence")
    if not out:
        raise ConfigurationError(
            f"grid axis {name!r} is empty — a grid with no cells would "
            f"vacuously succeed"
        )
    return out


@dataclass(frozen=True)
class ScenarioGrid:
    """An explicit, ordered scenario list (what a sweep *is*).

    Construct directly from any scenario sequence, or declaratively with
    :func:`grid`.  A grid is itself serializable (``to_dicts``), compiles
    to the executor's cell list (``cells``), names its store entries
    (``keys``), and runs as one plan (``run``).
    """

    scenarios: Tuple[Scenario, ...]

    def __init__(self, scenarios: Sequence[Scenario]):
        scenarios = tuple(scenarios)
        for s in scenarios:
            if not isinstance(s, Scenario):
                raise ConfigurationError(
                    f"ScenarioGrid holds Scenario values, not {type(s).__name__}"
                )
        object.__setattr__(self, "scenarios", scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __len__(self) -> int:
        return len(self.scenarios)

    def __getitem__(self, index):
        got = self.scenarios[index]
        return ScenarioGrid(got) if isinstance(index, slice) else got

    def filter(self, pred: Callable[[Scenario], bool]) -> "ScenarioGrid":
        """The sub-grid of scenarios satisfying ``pred`` (order kept)."""
        return ScenarioGrid([s for s in self.scenarios if pred(s)])

    def __add__(self, other: "ScenarioGrid") -> "ScenarioGrid":
        """Union of two grids: ``self``'s scenarios then ``other``'s new
        ones, first-appearance order, duplicates dropped by scenario
        identity (same identity ⇒ same store key, so running a duplicate
        would double-count one cell).  See :meth:`concat` for n-ary use.
        """
        if not isinstance(other, ScenarioGrid):
            return NotImplemented
        return ScenarioGrid.concat([self, other])

    @classmethod
    def concat(cls, grids: Sequence["ScenarioGrid"]) -> "ScenarioGrid":
        """Union of several grids, order-preserving and deduplicated.

        The declarative :func:`grid` builder only expresses *products* of
        axes; suites whose axes genuinely co-vary (e.g. a tolerance sweep
        whose ``f`` range depends on the row's own bound) are unions of
        per-row products.  Scenario identity — not object identity —
        drives the dedupe, so overlapping sub-grids merge cleanly.
        """
        merged = dict.fromkeys(s for g in grids for s in g)
        return cls(list(merged))

    def applicable(self) -> "ScenarioGrid":
        """Drop scenarios whose row does not admit their graph.

        Applicability is memoised per (serial, canonical graph identity):
        the row-1 quotient-isomorphism check is an O(n·m) refinement, and
        a grid crossing strategies/f/seeds repeats each (row, graph) pair
        many times.  The canonical identity (spec, or the graph itself)
        hits across the fresh spec objects each Scenario holds, where an
        ``id()`` key would not.
        """
        memo: Dict[Tuple, bool] = {}

        def ok(s: Scenario) -> bool:
            key = (s.serial, s._graph_identity())
            if key not in memo:
                memo[key] = s.applicable()
            return memo[key]

        return self.filter(ok)

    def cells(self) -> List[SweepCell]:
        """The compiled plan (one cell per scenario, same order)."""
        return [s.cell() for s in self.scenarios]

    def keys(self) -> List[str]:
        """The run-store keys this grid reads/writes, in order."""
        return [s.key() for s in self.scenarios]

    def run(
        self,
        workers: Optional[int] = None,
        store: Optional[RunStore] = None,
        resume: bool = True,
        chunk: int = DEFAULT_CHUNK,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        batch: bool = True,
    ) -> ResultSet:
        """Execute the whole grid as one plan (see :func:`run_scenarios`)."""
        return run_scenarios(self.scenarios, workers=workers, store=store,
                             resume=resume, chunk=chunk,
                             policy=policy, faults=faults, batch=batch)

    def to_dicts(self) -> List[Dict]:
        """JSON-safe form: the scenario dicts, in order."""
        return [s.to_dict() for s in self.scenarios]

    @classmethod
    def from_dicts(cls, payload: Sequence[Dict]) -> "ScenarioGrid":
        """Build a grid from scenario dicts.

        Validation failures re-raise naming the failing entry and field
        (``scenarios[3].f``) so callers of the HTTP sweep endpoint see
        exactly which element of their array is bad.
        """
        if isinstance(payload, (str, bytes)) or not isinstance(payload, Sequence):
            raise ValidationError(
                "scenarios", "must be an array of scenario objects"
            )
        scenarios = []
        for i, entry in enumerate(payload):
            try:
                scenarios.append(Scenario.from_dict(entry))
            except ValidationError as exc:
                field = (
                    f"scenarios[{i}]" if exc.field == "scenario"
                    else f"scenarios[{i}].{exc.field}"
                )
                raise ValidationError(field, exc.reason)
            except ConfigurationError as exc:
                raise ValidationError(f"scenarios[{i}]", str(exc))
        return cls(scenarios)


def grid(
    rows: Optional[Sequence[Union[int, str, Table1Row]]] = None,
    graphs: Union[PortLabeledGraph, GraphSpec, Sequence] = (),
    strategies: Union[str, Sequence[str]] = ("squatter",),
    f: Union[int, str, Sequence] = "max",
    schedulers: Union[str, Sequence[str]] = ("synchronous",),
    seeds: Union[int, Sequence[int]] = (0,),
    kind: str = "table1",
    placement: str = "lowest",
    rounds: Optional[int] = None,
    applicable_only: bool = True,
) -> ScenarioGrid:
    """Declaratively expand a scenario grid.

    Axes (``rows``, ``graphs``, ``strategies``, ``f``, ``schedulers``,
    ``seeds``) accept a scalar or a sequence; ``rows=None`` means every
    Table 1 row.  Expansion order is fixed and documented: **rows, then
    graphs, then strategies, then f, then schedulers, then seeds** (rows
    outermost, seeds innermost) — the order every legacy sweep used
    (the scheduler axis sits where its singleton default leaves legacy
    record streams untouched), so grid presets replay those streams
    exactly.  ``schedulers`` takes activation-scheduler spec strings
    (:mod:`repro.sim.schedulers`).  ``applicable_only`` (default) drops
    scenarios whose row does not admit their graph, mirroring
    ``run_table1``/``strategy_matrix``.
    """
    row_axis = tuple(r.serial for r in TABLE1) if rows is None else _axis(rows, "rows")
    graph_axis = _axis(graphs, "graphs")
    strategy_axis = _axis(strategies, "strategies")
    f_axis = _axis("max" if f is None else f, "f")
    scheduler_axis = _axis(schedulers, "schedulers")
    seed_axis = _axis(seeds, "seeds")
    scenarios = [
        Scenario(
            algorithm=row, graph=graph, strategy=strategy, f=f_value,
            kind=kind, placement=placement, seed=seed, rounds=rounds,
            scheduler=scheduler,
        )
        for row in row_axis
        for graph in graph_axis
        for strategy in strategy_axis
        for f_value in f_axis
        for scheduler in scheduler_axis
        for seed in seed_axis
    ]
    out = ScenarioGrid(scenarios)
    return out.applicable() if applicable_only else out


# --------------------------------------------------------------------- #
# Presets: the four legacy sweeps as grids
# --------------------------------------------------------------------- #

def table1_grid(
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    serials: Optional[Sequence[int]] = None,
) -> ScenarioGrid:
    """``run_table1`` as a grid: every applicable row × strategy at the
    row's tolerance bound.

    Unlike a direct :func:`grid` call (which rejects empty axes), the
    preset keeps the legacy sweep contract: a serial filter matching
    nothing yields an empty grid, and the CLI reports "nothing ran".
    """
    strategies = list(strategies)
    serials = None if serials is None else list(serials)
    rows = [
        row.serial for row in TABLE1
        if serials is None or row.serial in serials
    ]
    if not rows or not strategies:
        return ScenarioGrid([])
    return grid(rows=rows, graphs=graph, strategies=strategies,
                f="max", seeds=seed, kind="table1")


def tolerance_grid(
    row: Union[int, str, Table1Row],
    graph: PortLabeledGraph,
    f_values: Sequence[int],
    strategy: str,
    seed: int = 0,
) -> ScenarioGrid:
    """``tolerance_sweep`` as a grid: one row, one strategy, ``f``
    varying (out-of-bound values run and are *recorded* as rejected, so
    applicability is deliberately not filtered).  An empty ``f_values``
    keeps the legacy contract: empty grid, empty records."""
    f_values = list(f_values)  # may be an iterator; the guard below must not eat it
    if not f_values:
        return ScenarioGrid([])
    return grid(rows=row, graphs=graph, strategies=strategy,
                f=f_values, seeds=seed, kind="tolerance",
                applicable_only=False)


def scaling_grid(
    row: Union[int, str, Table1Row],
    graphs: Sequence[PortLabeledGraph],
    strategy: str,
    seed: int = 0,
    f_fraction_of_max: float = 1.0,
) -> ScenarioGrid:
    """``scaling_sweep`` as a grid: one scenario per applicable graph at
    a fixed fraction of the row's bound (``f`` is *zipped* with the
    graphs, not crossed — the one non-product sweep)."""
    serial = _normalize_algorithm(row)
    table_row = get_row(serial)
    applicable = [g for g in graphs if row_applicable(table_row, g)]
    return ScenarioGrid([
        Scenario(
            algorithm=serial, graph=g,
            f=int(table_row.f_max(g) * f_fraction_of_max),
            strategy=strategy, seed=seed, kind="scaling",
        )
        for g in applicable
    ])


def scheduler_matrix_grid(
    rows: Sequence[Union[int, str, Table1Row]],
    graph: PortLabeledGraph,
    schedulers: Sequence[str],
    strategy: str = "squatter",
    seed: int = 0,
    applicable_only: bool = True,
) -> ScenarioGrid:
    """The scheduler matrix as a grid: given rows × activation schedulers
    at each row's tolerance bound, one adversary strategy.

    The timing analogue of :func:`strategy_matrix_grid`: ``schedulers``
    are canonical spec strings (:mod:`repro.sim.schedulers`), and the
    ``synchronous`` column compiles to exactly the cells — same store
    keys, same records — a legacy Table 1 sweep produces.  Empty
    rows/schedulers keep the sweep-preset contract (empty grid) rather
    than raising as a direct :func:`grid` call would.
    """
    rows, schedulers = list(rows), list(schedulers)  # may be iterators
    if not rows or not schedulers:
        return ScenarioGrid([])
    return grid(rows=rows, graphs=graph, strategies=strategy,
                f="max", schedulers=schedulers, seeds=seed, kind="table1",
                applicable_only=applicable_only)


def strategy_matrix_grid(
    rows: Sequence[Union[int, str, Table1Row]],
    graph: PortLabeledGraph,
    strategies: Sequence[str],
    seed: int = 0,
    applicable_only: bool = True,
) -> ScenarioGrid:
    """``strategy_matrix`` as a grid: given rows × strategies at each
    row's bound.  Empty rows/strategies keep the legacy contract (empty
    grid) rather than raising as a direct :func:`grid` call would.
    Callers that already filtered applicability (the legacy shim) pass
    ``applicable_only=False`` to skip the second pass."""
    rows, strategies = list(rows), list(strategies)  # may be iterators
    if not rows or not strategies:
        return ScenarioGrid([])
    return grid(rows=rows, graphs=graph, strategies=strategies,
                f="max", seeds=seed, kind="table1",
                applicable_only=applicable_only)
