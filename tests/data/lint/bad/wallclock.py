"""Fixture: clock reads no-wallclock-in-records must catch."""
import time
from datetime import date, datetime


def stamp():
    t0 = time.time()
    t1 = time.perf_counter()
    t2 = time.monotonic()
    when = datetime.now()
    today = date.today()
    return t0, t1, t2, when, today
