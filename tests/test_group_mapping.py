"""Tests for group-mode map finding (Sections 3.2, 3.3, 4)."""

import pytest

from repro.byzantine import Adversary
from repro.errors import ConfigurationError
from repro.graphs import rooted_isomorphic
from repro.mapping import (
    build_group_plan,
    group_phase_program,
    group_plan_rounds,
    plan_honest_run,
    run_slot_rounds,
)
from repro.sim import World


class TestPlanConstruction:
    def test_three_groups_structure(self):
        roster = list(range(1, 10))  # k = 9
        plan = build_group_plan(roster, "three_groups", 0, 50, 9)
        assert len(plan.runs) == 3
        # Smallest IDs form group A = agents of run 0.
        assert plan.runs[0].agent_ids == frozenset({1, 2, 3})
        assert plan.runs[0].token_ids == frozenset(range(4, 10))
        assert plan.runs[1].agent_ids == frozenset({4, 5, 6})
        assert plan.runs[2].agent_ids == frozenset(range(7, 10))
        # Thresholds per the paper: ⌊k/6⌋+1 commands, ⌊k/3⌋+1 presence.
        assert plan.runs[0].cmd_threshold == 2
        assert plan.runs[0].presence_threshold == 4

    def test_three_groups_runs_are_sequential(self):
        plan = build_group_plan(range(1, 10), "three_groups", 10, 50, 9)
        slot = run_slot_rounds(50, exchange=True)
        starts = [r.start_round for r in plan.runs]
        assert starts == [10, 10 + slot, 10 + 2 * slot]
        assert plan.end_round == 10 + 3 * slot

    def test_two_groups_majority_thresholds(self):
        plan = build_group_plan(range(1, 10), "two_groups_majority", 0, 50, 9)
        (run,) = plan.runs
        assert run.agent_ids == frozenset({1, 2, 3, 4})
        assert run.token_ids == frozenset(range(5, 10))
        assert run.cmd_threshold == 3  # |A|//2+1
        assert run.presence_threshold == 3  # |B|//2+1

    def test_two_groups_strong_thresholds(self):
        plan = build_group_plan(range(1, 13), "two_groups_strong", 0, 50, 12)
        (run,) = plan.runs
        assert run.cmd_threshold == 3  # ⌊n/4⌋
        assert run.presence_threshold == 3

    def test_every_robot_has_a_role_each_run(self):
        plan = build_group_plan(range(1, 10), "three_groups", 0, 50, 9)
        for run in plan.runs:
            assert run.agent_ids | run.token_ids == set(range(1, 10))
            assert not (run.agent_ids & run.token_ids)

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            build_group_plan(range(1, 10), "five_rings", 0, 50, 9)

    def test_too_small_roster(self):
        with pytest.raises(ConfigurationError):
            build_group_plan([1, 2], "three_groups", 0, 50, 9)

    def test_group_plan_rounds(self):
        slot = run_slot_rounds(40, exchange=True)
        assert group_plan_rounds("three_groups", 40) == 3 * slot
        assert group_plan_rounds("two_groups_majority", 40) == slot


class TestGroupPhaseHonest:
    @pytest.mark.parametrize("scheme", ["three_groups", "two_groups_majority", "two_groups_strong"])
    def test_all_honest_agree_on_correct_map(self, rc8, scheme):
        n = rc8.n
        ticks, _ = plan_honest_run(rc8, 0)
        tb = ticks + 2
        w = World(rc8, model="strong" if scheme == "two_groups_strong" else "weak")
        outs = {}
        roster = list(range(1, n + 1))
        plan = build_group_plan(roster, scheme, 0, tb, n)
        for rid in roster:
            out = {}
            outs[rid] = out

            def factory(api, _out=out, _plan=plan):
                return group_phase_program(api, _plan, _out)

            w.add_robot(rid, 0, factory)
        w.run(max_rounds=plan.end_round + 5)
        for rid, out in outs.items():
            assert out["map"] is not None, f"robot {rid} got no map"
            assert rooted_isomorphic(rc8, 0, out["map"], 0)

    def test_hijacked_run_out_voted_in_three_groups(self, rc8):
        """Byzantine majority inside group A corrupts run 0; runs 1–2 stay
        clean and the majority-of-three still yields the correct map —
        the exact Section 3.2 failure-tolerance argument."""
        n = rc8.n  # 8 => groups of 2,2,4; cmd_threshold = 2
        ticks, _ = plan_honest_run(rc8, 0)
        tb = ticks + 2
        w = World(rc8)
        roster = list(range(1, n + 1))
        plan = build_group_plan(roster, "three_groups", 0, tb, n)
        # Both members of group A Byzantine: they can fake a full command
        # quorum for run 0 (>= threshold 2) and hijack the token.
        byz = set(plan.runs[0].agent_ids)
        adv = Adversary("false_commander", seed=3)
        outs = {}
        for rid in roster:
            if rid in byz:
                w.add_robot(rid, 0, adv.program_factory(rid), byzantine=True)
            else:
                out = {}
                outs[rid] = out

                def factory(api, _out=out, _plan=plan):
                    return group_phase_program(api, _plan, _out)

                w.add_robot(rid, 0, factory)
        w.run(max_rounds=plan.end_round + 5)
        for rid, out in outs.items():
            assert out["map"] is not None
            assert rooted_isomorphic(rc8, 0, out["map"], 0)
