#!/usr/bin/env python
"""Engine microbenchmark: k robots × R rounds, optimized vs seed engine.

Standalone entry point around :mod:`repro.analysis.benchmark` (the same
harness ``python -m repro bench`` drives).  Each scenario steps an
identical robot population through both the optimized
:class:`repro.sim.World` and the straight-line
:class:`repro.sim.ReferenceWorld` (the seed engine, kept as executable
specification), verifies the behavioural fingerprints match, and reports
wall-clock times plus the speedup factor.

Usage::

    python benchmarks/bench_engine.py                    # defaults
    python benchmarks/bench_engine.py --n 256 --k 192 --rounds 1000
    python benchmarks/bench_engine.py --out BENCH_engine.json

The JSON output is the repo's perf-trajectory record; the checked-in
baseline lives at ``benchmarks/BENCH_engine.json`` and is guarded by
``benchmarks/check_regression.py``.
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.benchmark import format_report, run_benchmark, write_bench_json  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--n", type=int, default=96, help="graph size")
    ap.add_argument("--k", type=int, default=64, help="robot count")
    ap.add_argument("--rounds", type=int, default=500, help="rounds per scenario")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    ap.add_argument("--out", default="", help="write BENCH_engine.json here")
    args = ap.parse_args(argv)

    payload = run_benchmark(
        n=args.n, k=args.k, rounds=args.rounds, seed=args.seed, repeats=args.repeats
    )
    print(format_report(payload))
    if args.out:
        write_bench_json(payload, args.out)
        print(f"wrote {args.out}")
    return 0 if payload["all_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
