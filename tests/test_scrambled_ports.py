"""Theorems on graphs with randomized port assignments.

Port labels are adversarially arbitrary in the model (the two endpoints
of an edge may disagree); the canonical labelings most tests use are the
tidy special case.  These tests scramble every node's port permutation
and re-run the pipeline — any hidden reliance on orderly ports would
surface here.
"""

import pytest

from repro.byzantine import Adversary
from repro.core import solve_theorem1, solve_theorem3, solve_theorem4, solve_theorem6
from repro.graphs import (
    erdos_renyi,
    is_quotient_isomorphic,
    random_regular,
    ring,
    rooted_isomorphic,
    torus,
)
from repro.mapping import plan_honest_run


class TestMappingOnScrambledPorts:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_scrambled_ring_maps_correctly(self, seed):
        g = ring(9, seed=seed)
        ticks, m = plan_honest_run(g, 0)
        assert rooted_isomorphic(g, 0, m, 0)

    @pytest.mark.parametrize("seed", [1, 2])
    def test_scrambled_regular_maps_correctly(self, seed):
        g = random_regular(8, 3, seed=seed)
        _, m = plan_honest_run(g, 2)
        assert rooted_isomorphic(g, 2, m, 0)


class TestTheoremsOnScrambledPorts:
    @pytest.mark.parametrize("seed", [1, 4])
    def test_theorem3_scrambled_ring(self, seed):
        g = ring(8, seed=seed)
        rep = solve_theorem3(g, f=3, adversary=Adversary("ghost_squatter", seed=2))
        assert rep.success, rep.violations

    @pytest.mark.parametrize("seed", [1, 4])
    def test_theorem4_scrambled_er(self, seed):
        g = erdos_renyi(9, 0.4, seed=seed)
        rep = solve_theorem4(g, f=2, adversary=Adversary("false_commander", seed=2))
        assert rep.success, rep.violations

    def test_theorem6_scrambled_torus(self):
        g = torus(3, 3, seed=5)
        rep = solve_theorem6(g, f=1, adversary=Adversary("impersonator", seed=2))
        assert rep.success, rep.violations

    def test_theorem1_if_scrambling_breaks_symmetry(self):
        """Scrambling a ring's ports usually destroys its view symmetry,
        promoting it into the Theorem 1 class — verify and use it."""
        for seed in range(1, 30):
            g = ring(9, seed=seed)
            if is_quotient_isomorphic(g):
                rep = solve_theorem1(g, f=8, adversary=Adversary("squatter", seed=1))
                assert rep.success, rep.violations
                return
        pytest.skip("no scrambling seed broke the ring's symmetry")
