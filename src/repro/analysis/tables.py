"""Plain-text table rendering (benchmark output mirrors the paper's Table 1)."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_big", "infer_columns"]


def infer_columns(rows: Sequence[Dict]) -> List[str]:
    """Ordered union of row keys (first-seen order) — the column set a
    table gets when none is specified.  Shared with
    :meth:`repro.scenarios.ResultSet.columns` so the inference rule
    cannot drift between the two."""
    columns: List[str] = []
    for r in rows:
        for k in r:
            if k not in columns:
                columns.append(k)
    return columns


def format_big(x) -> str:
    """Compact formatting for possibly astronomical round counts.

    Charged bounds like the Theorem 7 gathering are exact Python ints far
    beyond float range; render them as powers of ten instead of overflowing.
    """
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        return str(x)
    if isinstance(x, float):
        return f"{x:.3g}"
    if x == 0:
        return "0"
    digits = len(str(abs(x)))
    if digits <= 9:
        return f"{x:,}"
    lead = str(abs(x))[:4]
    mant = f"{lead[0]}.{lead[1:]}"
    sign = "-" if x < 0 else ""
    return f"{sign}{mant}e{digits - 1}"


def render_table(
    rows: Sequence[Dict],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned monospace table."""
    rows = list(rows)
    if columns is None:
        columns = infer_columns(rows)
    cells = [[format_big(r.get(c, "")) for c in columns] for r in rows]
    widths = [
        max(len(str(c)), *(len(row[i]) for row in cells)) if cells else len(str(c))
        for i, c in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
