"""Procedure **Dispersion-Using-Map** (paper Section 2.2) — the core.

Pre-condition: the robot privately holds a map (a port-labeled graph
port-isomorphic to the world graph) and knows which map node it currently
stands on.  It walks the Euler tour of a DFS tree of its map and, at every
node it enters, runs the settle-negotiation of Section 2.2:

* ``S_s`` / ``S_tbs`` — co-located robots claiming ``Settled`` /
  ``tobeSettled`` *at the start of the round* (the paper's "in round t").
* ``A_r`` — per-map-node array of recorded settled IDs.
* ``B_r`` — blacklist: IDs seen settled at one node and later present at
  another (Step 4) — only possible for Byzantine robots (Lemma 2).
* the 0/1 **flag** ("I intend to settle here") drives the within-round
  tie-break: smaller-ID robots act in earlier sub-rounds (our scheduler's
  ID-ordered resumes), larger-ID robots observe what they did.

One deliberate clarification versus the paper's prose: a robot raises its
flag *before settling on every settle path* (the paper sets it only in
Steps 2b/3b).  Without this, two honest robots arriving together can both
settle — the smaller via Step 1 with flag 0, the larger via Step 2b's
"nobody has flag 1 ⇒ settle" — contradicting Lemma 3's proof, which
explicitly routes the larger robot through Step 2b's observe branch.
Raising the flag on every settle path is what makes that proof go through,
and our property tests (`tests/test_lemmas.py`) verify Lemmas 2–4 under
the full adversary zoo.

Round accounting: the robot spends exactly one round per node it enters,
and the Euler tour has ``2(n−1)`` moves, so the procedure terminates in
``O(n)`` rounds (Lemma 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Set

from ..graphs.port_labeled import PortLabeledGraph
from ..graphs.traversal import euler_tour
from ..sim.robot import SETTLED, Action, Move, RobotAPI

__all__ = ["DispersionMemory", "dispersion_using_map", "dispersion_rounds_bound"]


def dispersion_rounds_bound(n: int) -> int:
    """Upper bound on rounds the procedure needs: one per tour node entry."""
    return 2 * n + 2


@dataclass
class DispersionMemory:
    """The per-robot state of Section 2.2, exposed for tests and metrics.

    Attributes
    ----------
    recorded:
        ``A_r`` — map node -> set of claimed IDs recorded as settled there.
    blacklist:
        ``B_r`` — claimed IDs this robot has proven Byzantine.
    recorded_at:
        claimed ID -> map node where it was *first* recorded (drives the
        Step 4 check "settled earlier at some node before v").
    settled_map_node:
        Where (in map coordinates) this robot settled, or ``None``.
    """

    recorded: Dict[int, Set[int]] = field(default_factory=dict)
    blacklist: Set[int] = field(default_factory=set)
    recorded_at: Dict[int, int] = field(default_factory=dict)
    settled_map_node: Optional[int] = None


_SETTLE = "settle"
_MOVE_ON = "move_on"


def _decide(
    api: RobotAPI,
    mem: DispersionMemory,
    map_pos: int,
) -> str:
    """Steps 1–3 of the Section 2.2 procedure, for one round at one node.

    Returns ``_SETTLE`` or ``_MOVE_ON``; records settled IDs into
    ``mem.recorded`` on the way.  Must be called after the Step 4
    blacklist update for this round.
    """
    my_id = api.id
    snapshot = api.colocated_at_round_start()
    # Byzantine robots may publish arbitrary state strings; anything that
    # is not exactly `Settled` counts as tobeSettled for set construction.
    settled_ids = {v.claimed_id for v in snapshot if v.state == SETTLED}
    tbs_ids = {v.claimed_id for v in snapshot if v.state != SETTLED}
    black = mem.blacklist

    settled_live = settled_ids - black
    if settled_live:
        # Step 3c: someone (non-blacklisted) is already settled here.
        _record(mem, map_pos, settled_live)
        return _MOVE_ON

    # From here on: every snapshot-settled robot is blacklisted (Steps 3a/3b)
    # or there were none (Steps 1/2) — the two cases share their logic.
    smaller_contenders = {i for i in tbs_ids if i < my_id and i not in black}
    if not smaller_contenders:
        # Step 1 / 2a / 3a: nothing stops us.
        return _SETTLE

    # Step 2b / 3b: the flag dance.
    api.set_flag(1)
    live = api.colocated()
    contenders = tbs_ids - black
    others_flagged = any(
        v.flag == 1 and v.claimed_id in contenders for v in live
    )
    if not others_flagged:
        return _SETTLE
    # Wait and observe the smaller-ID contenders (they acted in earlier
    # sub-rounds): did any of them settle this round?
    settled_now = {
        v.claimed_id
        for v in live
        if v.state == SETTLED and v.claimed_id in smaller_contenders
    }
    if settled_now:
        _record(mem, map_pos, settled_now)
        return _MOVE_ON
    return _SETTLE


def _record(mem: DispersionMemory, map_pos: int, ids: Set[int]) -> None:
    mem.recorded.setdefault(map_pos, set()).update(ids)
    for i in ids:
        mem.recorded_at.setdefault(i, map_pos)


def _blacklist_scan(api: RobotAPI, mem: DispersionMemory, map_pos: int) -> None:
    """Step 4: blacklist any robot recorded settled at a *different* node."""
    for view in api.colocated_at_round_start():
        cid = view.claimed_id
        first = mem.recorded_at.get(cid)
        if first is not None and first != map_pos and cid not in mem.blacklist:
            mem.blacklist.add(cid)
            api.log("blacklist", target=cid, recorded_at=first, seen_at=map_pos)


def dispersion_using_map(
    api: RobotAPI,
    map_graph: PortLabeledGraph,
    start_map_node: int,
    memory: Optional[DispersionMemory] = None,
) -> Iterator[Action]:
    """Generator implementing Dispersion-Using-Map for one honest robot.

    Yields one action per round.  Ends (``return``) once the robot has
    settled — the paper's termination — or, if the tour is exhausted
    without settling (impossible under the theorems' pre-conditions;
    reachable in beyond-tolerance experiments), terminates unsettled so
    the validator reports the failure instead of the simulation hanging.

    Parameters
    ----------
    api:
        The robot's world API.
    map_graph / start_map_node:
        The robot's private map and its position on it.  The map must be
        port-preserving isomorphic to the world graph for the port
        tracking to stay sound; a wrong map is detected lazily (invalid
        port ⇒ graceful unsettled termination).
    memory:
        Pass a :class:`DispersionMemory` to observe ``A_r``/``B_r`` from
        tests; a fresh one is created otherwise.
    """
    mem = memory if memory is not None else DispersionMemory()
    tour = euler_tour(map_graph, start_map_node)
    pos = start_map_node
    step_idx = 0

    while True:
        api.set_flag(0)
        _blacklist_scan(api, mem, pos)
        verdict = _decide(api, mem, pos)
        if verdict == _SETTLE:
            api.set_flag(1)
            api.settle()
            mem.settled_map_node = pos
            return
        if step_idx >= len(tour):
            # Tour exhausted without settling: theoretically impossible with
            # a correct map and at most n robots (Lemma 4's pigeonhole);
            # reachable only in beyond-bound experiments.  Fail visibly.
            api.log("tour_exhausted_unsettled")
            return
        step = tour[step_idx]
        step_idx += 1
        if step.port > api.degree():
            # Map disagrees with reality — garbage map (Byzantine-corrupted
            # mapping phase).  Terminate unsettled; validator flags it.
            api.log("map_mismatch", port=step.port, degree=api.degree())
            return
        pos = step.node
        yield Move(step.port)
