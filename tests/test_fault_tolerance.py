"""Chaos suite: the executor's fault paths under deterministic injection.

Every test here drives :func:`execute_plan` (or the CLI above it) through
a seeded :class:`FaultPlan` — worker crashes, hangs past the timeout,
transient errors, torn store writes — and asserts the repo's signature
invariant from the fault-tolerance side: **surviving records are
byte-identical to a clean serial run**, quarantined cells surface as
structured failure records, and a resumed sweep recomputes zero
persisted cells.

A SIGALRM hang guard (the in-container stand-in for ``pytest-timeout``,
which CI installs; see .github/workflows/ci.yml) bounds every test, so a
regression in the timeout/retry machinery fails fast instead of wedging
the suite.
"""

import json
import math
import multiprocessing
import os
import random
import signal

import pytest

from repro.analysis import experiments
from repro.analysis.experiments import (
    DEFAULT_POLICY,
    ExecutionPolicy,
    SweepCell,
    cell_key_of,
    execute_plan,
)
from repro.analysis.faults import (
    FAULT_MODES,
    FaultPlan,
    FaultSpec,
    SimulatedCrash,
    TransientFault,
    inject,
)
from repro.analysis.metrics import summarize
from repro.analysis.store import RunStore, _records_sha
from repro.cli import main
from repro.errors import ConfigurationError, SweepFaultError
from repro.graphs import random_connected
from repro.scenarios import ResultSet, grid

#: Generous per-test wall-clock bound; any legitimate test here finishes
#: in seconds, so tripping it means a hang in the machinery under test.
_GUARD_SECONDS = 120


@pytest.fixture(autouse=True)
def _hang_guard():
    """Equivalent per-test guard to pytest-timeout (not installable in
    this container): SIGALRM aborts any test that wedges."""

    def _abort(signum, frame):
        raise RuntimeError(
            f"test exceeded the {_GUARD_SECONDS}s hang guard"
        )

    old = signal.signal(signal.SIGALRM, _abort)
    signal.alarm(_GUARD_SECONDS)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, old)


@pytest.fixture(scope="module")
def g():
    return random_connected(8, seed=1)


@pytest.fixture(scope="module")
def cells(g):
    """Four fast, independent cells (two rows x two strategies)."""
    return [
        SweepCell("table1", serial, g, strategy, 0, None)
        for serial in (5, 6)
        for strategy in ("idle", "squatter")
    ]


@pytest.fixture(scope="module")
def keys(cells):
    return [cell_key_of(c) for c in cells]


@pytest.fixture(scope="module")
def clean(cells):
    """The clean serial baseline every chaos run must reproduce."""
    return execute_plan(cells)


#: No-sleep retry policy: chaos tests should not spend wall clock
#: backing off.
FAST = ExecutionPolicy(max_retries=2, backoff=0.0)


# --------------------------------------------------------------------- #
# Fault primitives
# --------------------------------------------------------------------- #

class TestFaultSpec:
    def test_modes_validated(self):
        with pytest.raises(ConfigurationError, match="unknown fault mode"):
            FaultSpec("explode")
        for mode in FAULT_MODES:
            assert FaultSpec(mode).mode == mode

    def test_attempts_validated(self):
        with pytest.raises(ConfigurationError, match="attempts"):
            FaultSpec("error", attempts=0)
        with pytest.raises(ConfigurationError, match="attempts"):
            FaultSpec("error", attempts=True)
        assert FaultSpec("error", attempts=None).attempts is None

    def test_active_window(self):
        spec = FaultSpec("error", attempts=2)
        assert [spec.active(k) for k in (1, 2, 3)] == [True, True, False]
        poison = FaultSpec("error", attempts=None)
        assert all(poison.active(k) for k in (1, 10, 1000))

    def test_inject_error_and_inactive(self):
        spec = FaultSpec("error", attempts=1, message="boom")
        with pytest.raises(TransientFault, match=r"boom \(attempt 1\)"):
            inject(spec, 1)
        inject(spec, 2)  # inactive: no-op
        inject(None, 1)  # no fault: no-op

    def test_inject_serial_crash_is_exception(self):
        with pytest.raises(SimulatedCrash):
            inject(FaultSpec("crash"), 1, serial=True)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="FaultSpec"):
            FaultPlan({"k": "crash"})
        with pytest.raises(ConfigurationError, match="cell-key"):
            FaultPlan({1: FaultSpec("crash")})

    def test_lookup(self):
        spec = FaultSpec("error")
        plan = FaultPlan({"abc": spec})
        assert plan.for_key("abc") is spec
        assert plan.for_key("zzz") is None
        assert plan.for_key(None) is None
        assert "abc" in plan and len(plan) == 1

    def test_pickle_round_trip(self):
        import pickle

        plan = FaultPlan({"abc": FaultSpec("hang", seconds=5.0)}, seed=7)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_sample_deterministic(self, keys):
        a = FaultPlan.sample(keys, seed=3, crash=1, hang=1, transient=1)
        b = FaultPlan.sample(keys, seed=3, crash=1, hang=1, transient=1)
        assert a == b and len(a) == 3
        assert sorted(s.mode for s in a.specs.values()) == [
            "crash", "error", "hang"]
        c = FaultPlan.sample(keys, seed=4, crash=1, hang=1, transient=1)
        assert set(a.specs) != set(c.specs) or a == c  # seed-dependent draw

    def test_sample_overdraw_rejected(self, keys):
        with pytest.raises(ConfigurationError, match="cannot sample"):
            FaultPlan.sample(keys, crash=len(keys) + 1)


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            ExecutionPolicy(timeout=0)
        with pytest.raises(ConfigurationError, match="max_retries"):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError, match="backoff"):
            ExecutionPolicy(backoff_factor=0.5)

    def test_backoff_schedule(self):
        p = ExecutionPolicy(backoff=0.1, backoff_factor=2.0, max_backoff=0.35)
        assert [p.delay(k) for k in (1, 2, 3, 4)] == [0.1, 0.2, 0.35, 0.35]
        assert ExecutionPolicy(backoff=0.0).delay(5) == 0.0

    def test_defaults(self):
        assert DEFAULT_POLICY == ExecutionPolicy()
        assert DEFAULT_POLICY.strict is False


# --------------------------------------------------------------------- #
# Transient faults: retry to byte-identical records
# --------------------------------------------------------------------- #

class TestTransientFaults:
    def test_serial_retry_recovers(self, cells, keys, clean):
        faults = FaultPlan({keys[0]: FaultSpec("error", attempts=2)})
        got = execute_plan(cells, policy=FAST, faults=faults)
        assert got == clean

    def test_parallel_retry_recovers(self, cells, keys, clean):
        faults = FaultPlan({k: FaultSpec("error", attempts=1) for k in keys[:2]})
        got = execute_plan(cells, workers=2, policy=FAST, faults=faults)
        assert got == clean

    def test_poison_cell_quarantined(self, cells, keys, clean):
        faults = FaultPlan({keys[1]: FaultSpec("error", attempts=None,
                                               message="wedged")})
        got = execute_plan(cells, policy=FAST, faults=faults)
        assert [got[i] for i in (0, 2, 3)] == [clean[i] for i in (0, 2, 3)]
        [rec] = got[1]
        assert rec["success"] is False
        assert rec["failed"] is True
        assert rec["reason"] == "TransientFault"
        assert "wedged" in rec["error"]
        assert rec["attempts"] == FAST.max_retries + 1
        assert rec["key"] == keys[1]
        assert rec["serial"] == cells[1].serial
        assert rec["strategy"] == cells[1].strategy

    def test_poison_cell_quarantined_parallel(self, cells, keys, clean):
        faults = FaultPlan({keys[1]: FaultSpec("error", attempts=None)})
        got = execute_plan(cells, workers=2, policy=FAST, faults=faults)
        assert [got[i] for i in (0, 2, 3)] == [clean[i] for i in (0, 2, 3)]
        assert got[1][0]["failed"] is True
        assert got[1][0]["attempts"] == FAST.max_retries + 1

    def test_strict_raises_with_key_in_message(self, cells, keys):
        faults = FaultPlan({keys[1]: FaultSpec("error", attempts=None)})
        strict = ExecutionPolicy(max_retries=1, backoff=0.0, strict=True)
        with pytest.raises(SweepFaultError, match=keys[1]):
            execute_plan(cells, policy=strict, faults=faults)

    def test_zero_retries_quarantines_first_failure(self, cells, keys):
        faults = FaultPlan({keys[0]: FaultSpec("error", attempts=1)})
        policy = ExecutionPolicy(max_retries=0, backoff=0.0)
        got = execute_plan(cells, policy=policy, faults=faults)
        assert got[0][0]["failed"] is True
        assert got[0][0]["attempts"] == 1

    def test_repro_errors_never_retried(self, g, monkeypatch):
        calls = []
        real = experiments._cell_records

        def rejecting(cell):
            calls.append(cell)
            raise ConfigurationError("deterministic rejection")

        monkeypatch.setattr(experiments, "_cell_records", rejecting)
        cell = SweepCell("table1", 5, g, "idle", 0, None)
        with pytest.raises(ConfigurationError, match="deterministic rejection"):
            execute_plan([cell], policy=FAST)
        assert len(calls) == 1  # no retry: rejection is not a fault
        monkeypatch.setattr(experiments, "_cell_records", real)


# --------------------------------------------------------------------- #
# Crashes: pool respawn, attribution, quarantine
# --------------------------------------------------------------------- #

class TestCrashes:
    def test_serial_simulated_crash_retries(self, cells, keys, clean):
        faults = FaultPlan({keys[0]: FaultSpec("crash", attempts=1)})
        got = execute_plan(cells, policy=FAST, faults=faults)
        assert got == clean

    def test_worker_crash_respawns_and_recovers(self, cells, keys, clean):
        faults = FaultPlan({keys[0]: FaultSpec("crash", attempts=1)})
        got = execute_plan(cells, workers=2, policy=FAST, faults=faults)
        assert got == clean

    def test_multiple_worker_crashes_recover(self, cells, keys, clean):
        # Two crashing cells over two workers: the executor may see the
        # break with several chunks in flight and must fall back to
        # suspect isolation instead of quarantining an innocent.
        faults = FaultPlan({k: FaultSpec("crash", attempts=1) for k in keys[:2]})
        got = execute_plan(cells, workers=2, policy=FAST, faults=faults)
        assert got == clean

    def test_poison_crash_quarantined(self, cells, keys, clean):
        faults = FaultPlan({keys[2]: FaultSpec("crash", attempts=None)})
        policy = ExecutionPolicy(max_retries=1, backoff=0.0)
        got = execute_plan(cells, workers=2, policy=policy, faults=faults)
        assert [got[i] for i in (0, 1, 3)] == [clean[i] for i in (0, 1, 3)]
        [rec] = got[2]
        assert rec["failed"] is True
        assert rec["reason"] == "WorkerCrash"
        assert rec["key"] == keys[2]

    def test_chunked_crash_spares_chunk_mates(self, cells, keys, clean):
        # chunk=2 puts an innocent cell in the crashing cell's dispatch;
        # after the break both are re-run and complete cleanly.
        faults = FaultPlan({keys[0]: FaultSpec("crash", attempts=1)})
        got = execute_plan(cells, workers=2, chunk=2, policy=FAST,
                           faults=faults)
        assert got == clean

    def test_completed_cells_survive_crash(self, cells, keys, tmp_path):
        # A poison crash must not cost the other cells their store
        # entries: everything that completed is persisted.
        store = RunStore(tmp_path / "store")
        faults = FaultPlan({keys[3]: FaultSpec("crash", attempts=None)})
        policy = ExecutionPolicy(max_retries=0, backoff=0.0)
        got = execute_plan(cells, workers=2, store=store, policy=policy,
                           faults=faults)
        assert got[3][0]["failed"] is True
        for i in (0, 1, 2):
            assert store.get(keys[i]) == got[i]


# --------------------------------------------------------------------- #
# Hangs: deadline kill and retry
# --------------------------------------------------------------------- #

class TestHangs:
    def test_hung_cell_killed_and_retried(self, cells, keys, clean):
        faults = FaultPlan(
            {keys[0]: FaultSpec("hang", attempts=1, seconds=60.0)})
        policy = ExecutionPolicy(timeout=1.0, max_retries=2, backoff=0.0)
        got = execute_plan(cells, workers=2, policy=policy, faults=faults)
        assert got == clean

    def test_permanent_hang_quarantined(self, cells, keys, clean):
        faults = FaultPlan(
            {keys[0]: FaultSpec("hang", attempts=None, seconds=60.0)})
        policy = ExecutionPolicy(timeout=0.5, max_retries=1, backoff=0.0)
        got = execute_plan(cells, workers=2, policy=policy, faults=faults)
        assert got[1:] == clean[1:]
        [rec] = got[0]
        assert rec["failed"] is True
        assert rec["reason"] == "TimeoutError"
        assert "0.5" in rec["error"]


# --------------------------------------------------------------------- #
# Store interplay: quarantine is never cached; resume recomputes nothing
# --------------------------------------------------------------------- #

class TestStoreInterplay:
    def test_failure_records_not_persisted(self, cells, keys, tmp_path):
        store = RunStore(tmp_path / "store")
        faults = FaultPlan({keys[1]: FaultSpec("error", attempts=None)})
        got = execute_plan(cells, store=store, policy=FAST, faults=faults)
        assert got[1][0]["failed"] is True
        assert keys[1] not in store
        assert all(keys[i] in store for i in (0, 2, 3))

    def test_quarantined_cell_recomputes_next_run(self, cells, keys, clean,
                                                  tmp_path, monkeypatch):
        store = RunStore(tmp_path / "store")
        faults = FaultPlan({keys[1]: FaultSpec("error", attempts=None)})
        execute_plan(cells, store=store, policy=FAST, faults=faults)
        # Second run, faults cleared: only the quarantined cell computes.
        calls = []
        real = experiments._cell_records

        def counting(cell):
            calls.append(cell)
            return real(cell)

        monkeypatch.setattr(experiments, "_cell_records", counting)
        warm = RunStore(tmp_path / "store")
        got = execute_plan(cells, store=warm, policy=FAST)
        assert got == clean
        assert len(calls) == 1  # zero recompute of persisted cells

    def test_chaos_run_store_matches_clean_store_bytes(self, cells, keys,
                                                       clean, tmp_path):
        """The signature invariant end to end: a store filled under a
        mixed fault schedule is *byte-identical* (per cell) to one
        filled by a clean serial run."""
        clean_store = RunStore(tmp_path / "clean")
        execute_plan(cells, store=clean_store)
        chaos_store = RunStore(tmp_path / "chaos")
        faults = FaultPlan({
            keys[0]: FaultSpec("crash", attempts=1),
            keys[2]: FaultSpec("error", attempts=2),
        })
        got = execute_plan(cells, workers=2, store=chaos_store,
                           policy=FAST, faults=faults)
        assert got == clean
        for key in keys:
            a, b = clean_store.get(key), chaos_store.get(key)
            assert a == b
            assert _records_sha(a) == _records_sha(b)

    def test_keys_computed_without_store(self, cells, keys):
        """Quarantine records name their cell by content key even in
        store-less runs (the key is computed unconditionally)."""
        faults = FaultPlan({keys[0]: FaultSpec("error", attempts=None)})
        got = execute_plan(cells, policy=FAST, faults=faults)
        assert got[0][0]["key"] == keys[0]


# --------------------------------------------------------------------- #
# Ctrl-C: finished work is flushed before the interrupt propagates
# --------------------------------------------------------------------- #

class TestKeyboardInterrupt:
    def test_parallel_interrupt_flushes_completed_chunks(
            self, cells, keys, clean, tmp_path, monkeypatch):
        store = RunStore(tmp_path / "store")
        real_wait = experiments.wait
        fired = []

        def interrupting_wait(*args, **kwargs):
            # Let the first wait complete normally (harvesting at least
            # one finished future into `done`), then simulate Ctrl-C
            # arriving before those results are applied.
            done, not_done = real_wait(*args, **kwargs)
            if done and not fired:
                fired.append(True)
                raise KeyboardInterrupt
            return done, not_done

        monkeypatch.setattr(experiments, "wait", interrupting_wait)
        with pytest.raises(KeyboardInterrupt):
            execute_plan(cells, workers=2, store=store, policy=FAST)
        monkeypatch.setattr(experiments, "wait", real_wait)
        # The completed-but-unapplied chunks were flushed: at least one
        # cell reached the store, and whatever did is byte-faithful.
        persisted = [i for i, k in enumerate(keys) if k in store]
        assert persisted
        for i in persisted:
            assert store.get(keys[i]) == clean[i]
        # Resume finishes the plan without touching persisted cells.
        warm = RunStore(tmp_path / "store")
        assert execute_plan(cells, store=warm) == clean
        assert warm.hits == len(persisted)

    def test_serial_interrupt_propagates(self, cells, monkeypatch):
        def boom(cell):
            raise KeyboardInterrupt

        monkeypatch.setattr(experiments, "_cell_records", boom)
        with pytest.raises(KeyboardInterrupt):
            execute_plan(cells, policy=FAST)


# --------------------------------------------------------------------- #
# Aggregation: failure records in ResultSet / summarize / success_rate
# --------------------------------------------------------------------- #

class TestFailureAggregation:
    @pytest.fixture()
    def mixed(self, g, cells, keys):
        faults = FaultPlan({keys[1]: FaultSpec("error", attempts=None)})
        lists = execute_plan(cells, policy=FAST, faults=faults)
        return ResultSet(rec for recs in lists for rec in recs)

    def test_failures_accessor(self, mixed):
        failures = mixed.failures()
        assert len(failures) == 1
        assert failures[0]["failed"] is True
        # A non-dispersed-but-executed run is not a "failure" record.
        assert all(r.get("failed") for r in failures)

    def test_success_rate_excludes_quarantines(self, mixed):
        """Quarantine records leave the numerator AND the denominator:
        the rate is the rate of the records that actually ran, so the
        rate, the round statistics, and ``failures()`` agree on what
        "failed" means."""
        ran = mixed.filter(lambda r: not r.get("failed"))
        assert mixed.success_rate() == ran.success_rate()
        assert mixed.success_rate() == pytest.approx(
            sum(1 for r in ran if r["success"]) / len(ran)
        )

    def test_success_rate_only_quarantines_is_nan(self, mixed):
        """A set of records in which nothing ran has no rate — not a
        vacuous 1.0, not a damning 0.0."""
        assert math.isnan(mixed.failures().success_rate())

    def test_summarize_rate_matches_success_rate(self, mixed):
        """Per-group summarize rates equal success_rate() on the same
        group — one semantics, two entry points."""
        for row in summarize(list(mixed), "strategy"):
            group = mixed.filter(strategy=row["strategy"])
            rate = group.success_rate()
            if math.isnan(rate):
                assert math.isnan(row["success_rate"])
            else:
                assert row["success_rate"] == rate

    def test_summarize_tolerates_failures(self, mixed):
        rows = summarize(list(mixed), "strategy")
        by_strategy = {r["strategy"]: r for r in rows}
        assert by_strategy["squatter"]["failed"] == 1
        assert by_strategy["idle"]["failed"] == 0
        # Round stats aggregate over the records that ran.
        assert by_strategy["idle"]["rounds_simulated_mean"] > 0

    def test_summarize_clean_shape_unchanged(self, cells, clean):
        """No failures -> byte-identical summary shape (no 'failed'
        column appears)."""
        flat = [rec for recs in clean for rec in recs]
        rows = summarize(flat, "strategy")
        assert all("failed" not in r for r in rows)

    def test_grid_run_threads_policy_and_faults(self, g):
        gr = grid(rows=[5], graphs=g, strategies=["idle", "squatter"])
        faults = FaultPlan({gr.keys()[0]: FaultSpec("error", attempts=None)})
        results = gr.run(policy=FAST, faults=faults)
        assert len(results.failures()) == 1
        clean_results = gr.run()
        assert results.filter(lambda r: not r.get("failed")) == \
            [r for r in clean_results if r["strategy"] != results.failures()[0]["strategy"]]


# --------------------------------------------------------------------- #
# Torn-write durability (satellite): a writer killed mid-put
# --------------------------------------------------------------------- #

def _torn_writer(path: str, key_ok: str, key_torn: str, offset_seed: int):
    """Subprocess body: one clean put, then die partway through a second.

    The torn put is made literal: the exact bytes ``RunStore.put`` would
    append are cut at a seeded random offset, written, flushed — and the
    process exits without cleanup, as an OOM kill would.
    """
    store = RunStore(path)
    store.put(key_ok, [{"v": 1, "rounds": 40}])
    line = json.dumps(
        {"key": key_torn,
         "sha": _records_sha([{"v": 2}]),
         "records": [{"v": 2}]},
        separators=(",", ":"),
    )
    data = (line + "\n").encode("utf-8")
    offset = random.Random(offset_seed).randrange(1, len(data) - 1)
    shard = store._shard_path(key_torn)
    with open(shard, "ab") as fh:
        fh.write(data[:offset])
        fh.flush()
        os.fsync(fh.fileno())
    os._exit(1)


class TestTornWriteDurability:
    @pytest.mark.parametrize("offset_seed", [0, 1, 2, 3])
    def test_killed_writer_loses_only_inflight_cell(self, tmp_path,
                                                    offset_seed):
        path = str(tmp_path / "store")
        # Keys sharing a shard make the torn tail sit directly after the
        # good line — the worst case for the line-oriented loader.
        key_ok = "aa" + "0" * 62
        key_torn = "aa" + "1" * 62
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_torn_writer,
                           args=(path, key_ok, key_torn, offset_seed))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 1
        store = RunStore(path)
        assert store.get(key_ok) == [{"v": 1, "rounds": 40}]
        assert store.get(key_torn) is None  # only the in-flight cell lost
        report = store.verify()
        assert report["ok"] is True  # no *live* entry is corrupt
        assert report["torn_lines"] + report["torn_shards"] >= 1
        # A put after reopening lands cleanly despite the torn tail.
        store.put(key_torn, [{"v": 2}])
        assert RunStore(path).get(key_torn) == [{"v": 2}]

    def test_repair_and_compact_leave_verifiable_store(self, tmp_path):
        path = str(tmp_path / "store")
        key_ok = "ab" + "0" * 62
        key_torn = "ab" + "1" * 62
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=_torn_writer,
                           args=(path, key_ok, key_torn, 5))
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == 1
        store = RunStore(path)
        repair = store.repair()
        assert repair["dropped_lines"] >= 1
        report = store.verify()
        assert report["ok"] and report["torn_lines"] == 0
        assert store.get(key_ok) == [{"v": 1, "rounds": 40}]
        # Supersede the surviving cell, compact, and re-verify.
        store.put(key_ok, [{"v": 9}])
        compact = store.compact()
        assert compact["dropped_lines"] == 1
        assert compact["reclaimed_bytes"] > 0
        final = RunStore(path)
        assert final.get(key_ok) == [{"v": 9}]
        assert final.verify()["ok"]
        assert final.verify()["stale_lines"] == 0


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #

class TestCLI:
    def test_sweep_nonzero_exit_and_table_on_quarantine(
            self, monkeypatch, capsys):
        def always_failing(cell):
            raise RuntimeError("injected CLI fault")

        monkeypatch.setattr(experiments, "_cell_records", always_failing)
        code = main(["sweep", "--n", "8", "--strategies", "idle",
                     "--serials", "5", "--retries", "0"])
        out = capsys.readouterr().out
        assert code == 1
        assert "Quarantined cells (1)" in out
        assert "RuntimeError" in out
        assert "injected CLI fault" in out

    def test_sweep_strict_flag_raises(self, monkeypatch):
        def always_failing(cell):
            raise RuntimeError("injected CLI fault")

        monkeypatch.setattr(experiments, "_cell_records", always_failing)
        with pytest.raises(SweepFaultError):
            main(["sweep", "--n", "8", "--strategies", "idle",
                  "--serials", "5", "--retries", "0", "--strict"])

    def test_store_verify_cli(self, tmp_path, capsys):
        path = str(tmp_path / "store")
        store = RunStore(path)
        key = "cd" + "0" * 62
        store.put(key, [{"v": 1}])
        assert main(["store", "verify", path]) == 0
        out = capsys.readouterr().out
        assert "status           : ok" in out
        # Corrupt the entry on disk; verify now fails, --repair heals.
        shard = store._shard_path(key)
        data = open(shard, "rb").read().replace(b'{"v":1}', b'{"v":7}')
        open(shard, "wb").write(data)
        assert main(["store", "verify", path]) == 1
        assert main(["store", "verify", path, "--repair"]) == 0
        assert main(["store", "verify", path]) == 0

    def test_store_compact_cli(self, tmp_path, capsys):
        path = str(tmp_path / "store")
        store = RunStore(path)
        key = "ef" + "0" * 62
        store.put(key, [{"v": 1}])
        store.put(key, [{"v": 2}])
        assert main(["store", "compact", path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["dropped_lines"] == 1
        assert RunStore(path).get(key) == [{"v": 2}]

    def test_store_subcommands_refuse_missing_store(self, tmp_path):
        missing = str(tmp_path / "nope")
        for argv in (["store", "verify", missing],
                     ["store", "compact", missing]):
            with pytest.raises(SystemExit, match="not a run store"):
                main(argv)
        assert not os.path.exists(missing)  # no store created at the typo
