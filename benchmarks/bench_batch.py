#!/usr/bin/env python
"""Batched-engine benchmark: SoA BatchWorld sweeps vs per-cell execution.

Standalone entry point around :mod:`repro.analysis.batchbench` (the same
harness ``python -m repro bench --suite batch`` drives).  Scenarios
replay the repo's three sweep shapes — a seed sweep, a tolerance sweep,
and a strategies × placements grid — through ``execute_plan`` with
``batch=True`` (grouped struct-of-arrays execution) vs ``batch=False``
(the per-cell oracle path); every scenario verifies the two modes
produce byte-identical records, store cell keys, and stored cell bytes.

Usage::

    python benchmarks/bench_batch.py                    # defaults
    python benchmarks/bench_batch.py --repeats 5 --cells 128
    python benchmarks/bench_batch.py --out BENCH_batch.json

The JSON output is the repo's perf-trajectory record; the checked-in
baseline lives at ``benchmarks/BENCH_batch.json`` and is discovered and
guarded by ``benchmarks/check_regression.py`` (same two-signal rule as
the engine benchmark).
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.batchbench import format_batch_report, run_batch_benchmark  # noqa: E402
from repro.analysis.benchmark import write_bench_json  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--repeats", type=int, default=3, help="best-of timing repeats")
    ap.add_argument("--cells", type=int, default=64,
                    help="simulations per scenario (the ISSUE's 64-cell sweep)")
    ap.add_argument("--out", default="", help="write BENCH_batch.json here")
    args = ap.parse_args(argv)

    payload = run_batch_benchmark(
        seed=args.seed, repeats=args.repeats, cells=args.cells
    )
    print(format_batch_report(payload))
    if args.out:
        write_bench_json(payload, args.out)
        print(f"wrote {args.out}")
    return 0 if payload["all_identical"] else 1


if __name__ == "__main__":
    sys.exit(main())
